#include "crypto/cpu_features.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define ESD_CPUID_AVAILABLE 1
#endif

namespace esd
{

namespace
{

struct CpuFeatures
{
    bool aesni = false;
    bool sha = false;
    bool crc32c = false;

    CpuFeatures()
    {
#ifdef ESD_CPUID_AVAILABLE
        unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
        if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
            return;
        const bool ssse3 = ecx & (1u << 9);
        const bool sse41 = ecx & (1u << 19);
        const bool sse42 = ecx & (1u << 20);
        const bool aes = ecx & (1u << 25);
        aesni = aes && sse41;
        crc32c = sse42;
        if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
            sha = (ebx & (1u << 29)) && ssse3 && sse41;
#endif
    }
};

const CpuFeatures &
features()
{
    static const CpuFeatures f;
    return f;
}

} // namespace

bool
cpuHasAesni()
{
    return features().aesni;
}

bool
cpuHasSha()
{
    return features().sha;
}

bool
cpuHasCrc32c()
{
    return features().crc32c;
}

} // namespace esd
