#include "crypto/aes.hh"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

#include "crypto/cpu_features.hh"
#define ESD_AES_HW 1
#endif

namespace esd
{

namespace
{

/** GF(2^8) multiply modulo x^8+x^4+x^3+x+1 (0x11b). */
std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a = static_cast<std::uint8_t>(a << 1);
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

std::uint8_t
rotl8(std::uint8_t v, int n)
{
    return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
}

std::uint32_t
pack(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2, std::uint8_t b3)
{
    return static_cast<std::uint32_t>(b0) |
           (static_cast<std::uint32_t>(b1) << 8) |
           (static_cast<std::uint32_t>(b2) << 16) |
           (static_cast<std::uint32_t>(b3) << 24);
}

/**
 * The AES S-box built from first principles (multiplicative inverse +
 * affine transform), plus the four fused SubBytes/ShiftRows/MixColumns
 * T-tables for the fast encrypt path. Byte 0 of a packed column word
 * is state row 0.
 */
struct AesTables
{
    std::array<std::uint8_t, 256> s{};
    std::array<std::uint32_t, 256> t0{}, t1{}, t2{}, t3{};

    AesTables()
    {
        std::array<std::uint8_t, 256> inv{};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)) == 1) {
                    inv[a] = static_cast<std::uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            std::uint8_t b = inv[x];
            s[x] = static_cast<std::uint8_t>(b ^ rotl8(b, 1) ^
                                             rotl8(b, 2) ^ rotl8(b, 3) ^
                                             rotl8(b, 4) ^ 0x63);
            std::uint8_t s1 = s[x];
            std::uint8_t s2 = gmul(s1, 2);
            std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s1);
            t0[x] = pack(s2, s1, s1, s3);
            t1[x] = pack(s3, s2, s1, s1);
            t2[x] = pack(s1, s3, s2, s1);
            t3[x] = pack(s1, s1, s3, s2);
        }
    }
};

const AesTables tbl;

constexpr std::uint8_t kRcon[10] = {
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

inline std::uint8_t
byteOf(std::uint32_t w, int i)
{
    return static_cast<std::uint8_t>(w >> (8 * i));
}

#ifdef ESD_AES_HW

/**
 * The packed column words are little-endian with byte 0 in the low
 * byte, so the 44-word round-key array is byte-for-byte the FIPS-197
 * expanded key schedule: each group of four consecutive words loads
 * directly as one AES-NI round key.
 */
__attribute__((target("aes,sse2"))) AesBlock
encryptBlockHw(const std::uint32_t *rk, const AesBlock &in)
{
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in.data()));
    b = _mm_xor_si128(b,
                      _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk)));
    for (int r = 1; r <= 9; ++r) {
        b = _mm_aesenc_si128(b, _mm_loadu_si128(reinterpret_cast<
                                                const __m128i *>(rk + 4 * r)));
    }
    b = _mm_aesenclast_si128(
        b, _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk + 40)));
    AesBlock out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), b);
    return out;
}

/** Four interleaved streams hide the aesenc latency behind each other. */
__attribute__((target("aes,sse2"))) void
encryptBlocks4Hw(const std::uint32_t *rk, const AesBlock *in, AesBlock *out)
{
    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk));
    __m128i b0 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[0].data())), k);
    __m128i b1 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[1].data())), k);
    __m128i b2 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[2].data())), k);
    __m128i b3 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[3].data())), k);
    for (int r = 1; r <= 9; ++r) {
        k = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 4 * r));
        b0 = _mm_aesenc_si128(b0, k);
        b1 = _mm_aesenc_si128(b1, k);
        b2 = _mm_aesenc_si128(b2, k);
        b3 = _mm_aesenc_si128(b3, k);
    }
    k = _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk + 40));
    b0 = _mm_aesenclast_si128(b0, k);
    b1 = _mm_aesenclast_si128(b1, k);
    b2 = _mm_aesenclast_si128(b2, k);
    b3 = _mm_aesenclast_si128(b3, k);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[0].data()), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[1].data()), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[2].data()), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[3].data()), b3);
}

#endif // ESD_AES_HW

} // namespace

std::uint8_t
Aes128::sbox(std::uint8_t x)
{
    return tbl.s[x];
}

void
Aes128::expandKey(const AesKey &key)
{
    std::uint8_t bytes[176];
    std::memcpy(bytes, key.data(), 16);
    for (int i = 4; i < 44; ++i) {
        std::uint8_t t[4];
        std::memcpy(t, bytes + (i - 1) * 4, 4);
        if (i % 4 == 0) {
            std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(tbl.s[t[1]] ^
                                             kRcon[i / 4 - 1]);
            t[1] = tbl.s[t[2]];
            t[2] = tbl.s[t[3]];
            t[3] = tbl.s[tmp];
        }
        for (int j = 0; j < 4; ++j)
            bytes[i * 4 + j] =
                static_cast<std::uint8_t>(bytes[(i - 4) * 4 + j] ^ t[j]);
    }
    for (int w = 0; w < 44; ++w) {
        roundKeys_[w] = pack(bytes[w * 4], bytes[w * 4 + 1],
                             bytes[w * 4 + 2], bytes[w * 4 + 3]);
    }
}

AesBlock
Aes128::encryptBlock(const AesBlock &in) const
{
#ifdef ESD_AES_HW
    if (cpuHasAesni())
        return encryptBlockHw(roundKeys_.data(), in);
#endif
    // Column-major state: word j holds s[0..3][j], byte 0 = row 0.
    std::uint32_t c[4];
    for (int j = 0; j < 4; ++j) {
        c[j] = pack(in[4 * j], in[4 * j + 1], in[4 * j + 2],
                    in[4 * j + 3]) ^
               roundKeys_[j];
    }

    // Rounds 1..9: fused SubBytes + ShiftRows + MixColumns via the
    // four T-tables; output column j consumes s[r][j+r].
    for (int round = 1; round <= 9; ++round) {
        std::uint32_t n[4];
        const std::uint32_t *rk = &roundKeys_[round * 4];
        for (int j = 0; j < 4; ++j) {
            n[j] = tbl.t0[byteOf(c[j], 0)] ^
                   tbl.t1[byteOf(c[(j + 1) & 3], 1)] ^
                   tbl.t2[byteOf(c[(j + 2) & 3], 2)] ^
                   tbl.t3[byteOf(c[(j + 3) & 3], 3)] ^ rk[j];
        }
        std::memcpy(c, n, sizeof(c));
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    AesBlock out;
    for (int j = 0; j < 4; ++j) {
        std::uint32_t w =
            pack(tbl.s[byteOf(c[j], 0)], tbl.s[byteOf(c[(j + 1) & 3], 1)],
                 tbl.s[byteOf(c[(j + 2) & 3], 2)],
                 tbl.s[byteOf(c[(j + 3) & 3], 3)]) ^
            roundKeys_[40 + j];
        out[4 * j] = byteOf(w, 0);
        out[4 * j + 1] = byteOf(w, 1);
        out[4 * j + 2] = byteOf(w, 2);
        out[4 * j + 3] = byteOf(w, 3);
    }
    return out;
}

void
Aes128::encryptBlocks4(const AesBlock in[4], AesBlock out[4]) const
{
#ifdef ESD_AES_HW
    if (cpuHasAesni()) {
        encryptBlocks4Hw(roundKeys_.data(), in, out);
        return;
    }
#endif
    for (int i = 0; i < 4; ++i)
        out[i] = encryptBlock(in[i]);
}

} // namespace esd
