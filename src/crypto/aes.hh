/**
 * @file
 * AES-128 block cipher (FIPS-197), encrypt direction only — sufficient
 * for the counter-mode encryption (CME) the paper's write path uses.
 *
 * The S-box is generated at startup from the GF(2^8) multiplicative
 * inverse plus the affine transform rather than pasted as a literal
 * table, and is validated against the FIPS-197 test vector in the unit
 * tests.
 */

#ifndef ESD_CRYPTO_AES_HH
#define ESD_CRYPTO_AES_HH

#include <array>
#include <cstdint>

namespace esd
{

/** A 128-bit AES key. */
using AesKey = std::array<std::uint8_t, 16>;

/** A 128-bit cipher block. */
using AesBlock = std::array<std::uint8_t, 16>;

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key) { expandKey(key); }

    /** Encrypt one 16-byte block in place semantics: returns the
     * ciphertext of @p in. */
    AesBlock encryptBlock(const AesBlock &in) const;

    /**
     * Encrypt four independent blocks. On machines with AES-NI the
     * four streams share one pass over the key schedule and keep the
     * AES unit's pipeline full (the counter-mode pad of one cache line
     * is exactly four blocks); elsewhere this is four encryptBlock()
     * calls. Bit-identical to the one-block path either way.
     */
    void encryptBlocks4(const AesBlock in[4], AesBlock out[4]) const;

    /** The S-box value of @p x (exposed for tests). */
    static std::uint8_t sbox(std::uint8_t x);

  private:
    void expandKey(const AesKey &key);

    /** 11 round keys as 44 packed column words (byte 0 = row 0). */
    std::array<std::uint32_t, 44> roundKeys_;
};

} // namespace esd

#endif // ESD_CRYPTO_AES_HH
