/**
 * @file
 * MD5 (RFC 1321) — included because the paper cites MD5 (312 ns/line)
 * as the other classic fingerprint choice; the collision bench and the
 * scheme cost model both reference it.
 */

#ifndef ESD_CRYPTO_MD5_HH
#define ESD_CRYPTO_MD5_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace esd
{

/** A 128-bit MD5 digest. */
using Md5Digest = std::array<std::uint8_t, 16>;

/** Incremental MD5 hasher. */
class Md5
{
  public:
    Md5() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);
    Md5Digest finish();

    static Md5Digest digest(const void *data, std::size_t len);

    static Md5Digest
    digestLine(const CacheLine &line)
    {
        return digest(line.data(), kLineSize);
    }

    /** First 64 bits of the line digest as an index key. */
    static std::uint64_t fingerprint64(const CacheLine &line);

    static std::string toHex(const Md5Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[4];
    std::uint8_t buf_[64];
    std::size_t bufLen_;
    std::uint64_t totalLen_;
};

} // namespace esd

#endif // ESD_CRYPTO_MD5_HH
