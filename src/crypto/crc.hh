/**
 * @file
 * CRC fingerprints — the lightweight hash DeWrite (MICRO'18) uses for
 * duplicate prediction. CRC32C (Castagnoli) and CRC64 (ECMA-182) with
 * table-driven implementations; the Fig. 8 collision bench compares
 * their collision behaviour against ECC and SHA-1 fingerprints.
 */

#ifndef ESD_CRYPTO_CRC_HH
#define ESD_CRYPTO_CRC_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace esd
{

/** CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78). */
class Crc32c
{
  public:
    /** CRC of @p len bytes, seeded/continuing from @p crc. */
    static std::uint32_t compute(const void *data, std::size_t len,
                                 std::uint32_t crc = 0);

    /** CRC32C of a cache line — DeWrite's fingerprint. */
    static std::uint32_t
    line(const CacheLine &l)
    {
        return compute(l.data(), kLineSize);
    }
};

/** CRC64/ECMA-182 (polynomial 0x42F0E1EBA9EA3693, reflected). */
class Crc64
{
  public:
    static std::uint64_t compute(const void *data, std::size_t len,
                                 std::uint64_t crc = 0);

    static std::uint64_t
    line(const CacheLine &l)
    {
        return compute(l.data(), kLineSize);
    }
};

} // namespace esd

#endif // ESD_CRYPTO_CRC_HH
