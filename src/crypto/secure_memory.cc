#include "crypto/secure_memory.hh"

#include "common/logging.hh"

namespace esd
{

SecureCounterMemory::SecureCounterMemory(const AesKey &key,
                                         std::uint32_t persist_stride,
                                         const EccEngine &ecc)
    : aes_(key), stride_(persist_stride), ecc_(ecc)
{
    if (stride_ == 0)
        esd_fatal("persist stride must be positive");
}

CacheLine
SecureCounterMemory::pad(Addr addr, std::uint64_t ctr,
                         const CacheLine &in) const
{
    CacheLine out;
    for (unsigned blk = 0; blk < kLineSize / 16; ++blk) {
        AesBlock cb{};
        for (int i = 0; i < 8; ++i)
            cb[i] = static_cast<std::uint8_t>(addr >> (8 * i));
        for (int i = 0; i < 7; ++i)
            cb[8 + i] = static_cast<std::uint8_t>(ctr >> (8 * i));
        cb[15] = static_cast<std::uint8_t>(blk);
        AesBlock p = aes_.encryptBlock(cb);
        for (unsigned i = 0; i < 16; ++i)
            out[blk * 16 + i] = in[blk * 16 + i] ^ p[i];
    }
    return out;
}

void
SecureCounterMemory::write(Addr addr, const CacheLine &plain)
{
    addr = lineAlign(addr);
    std::uint64_t ctr = ++volatileCtr_[addr];

    SecureLine line;
    line.cipher = pad(addr, ctr, plain);
    line.plainEcc = ecc_.encodeLine(plain);
    lines_[addr] = line;

    // Lazy persistence: write the counter through only every
    // stride-th increment (and on first touch so recovery has a
    // starting point).
    if (ctr == 1 || ctr % stride_ == 0) {
        persistedCtr_[addr] = ctr;
        ++persists_;
    }
}

bool
SecureCounterMemory::read(Addr addr, CacheLine &out) const
{
    addr = lineAlign(addr);
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return false;
    auto ctr_it = volatileCtr_.find(addr);
    esd_assert(ctr_it != volatileCtr_.end(),
               "stored line without live counter (recover first?)");
    out = pad(addr, ctr_it->second, it->second.cipher);
    return true;
}

void
SecureCounterMemory::crash()
{
    volatileCtr_.clear();
}

RecoveryReport
SecureCounterMemory::recover()
{
    RecoveryReport rep;
    for (const auto &[addr, line] : lines_) {
        ++rep.lines;
        auto it = persistedCtr_.find(addr);
        esd_assert(it != persistedCtr_.end(),
                   "line with no persisted counter");
        std::uint64_t base = it->second;

        bool found = false;
        // Pass 1: the true counter lies in [base, base + stride); try
        // each candidate and accept the one whose plaintext verifies
        // against the stored ECC exactly.
        for (std::uint32_t delta = 0; delta < stride_ && !found;
             ++delta) {
            std::uint64_t cand = base + delta;
            ++rep.trialDecrypts;
            CacheLine plain = pad(addr, cand, line.cipher);
            if (ecc_.encodeLine(plain) == line.plainEcc) {
                volatileCtr_[addr] = cand;
                found = true;
                if (delta == 0)
                    ++rep.exact;
                else
                    ++rep.recovered;
            }
        }

        // Pass 2: no exact match — the line may carry a (single-bit,
        // correctable) media fault on top of the counter lag. Accept
        // the candidate whose plaintext the SEC-DED can reconcile with
        // the stored check bits. A wrong counter yields effectively
        // random plaintext, which passes per-word correction only with
        // small probability, so exact matches are always preferred.
        for (std::uint32_t delta = 0; delta < stride_ && !found;
             ++delta) {
            std::uint64_t cand = base + delta;
            ++rep.trialDecrypts;
            CacheLine plain = pad(addr, cand, line.cipher);
            LineDecodeResult r = ecc_.decodeLine(plain, line.plainEcc);
            if (r.status != EccStatus::Uncorrectable &&
                r.correctedWords <= 1) {
                volatileCtr_[addr] = cand;
                found = true;
                ++rep.recoveredScrubbed;
            }
        }
        if (!found)
            ++rep.unrecoverable;
    }
    return rep;
}

void
SecureCounterMemory::corruptStoredBit(Addr addr, unsigned bit)
{
    addr = lineAlign(addr);
    auto it = lines_.find(addr);
    esd_assert(it != lines_.end(), "corrupting an empty line");
    esd_assert(bit < 512, "cipher bit index out of range");
    it->second.cipher[bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

} // namespace esd
