/**
 * @file
 * SHA-1 (FIPS 180-4) — the fingerprint function of the Dedup_SHA1
 * baseline scheme. Functionally complete (arbitrary-length messages,
 * streaming interface) so the collision benches operate on true
 * digests; cost modelling (321 ns / line) lives in CryptoCostConfig.
 */

#ifndef ESD_CRYPTO_SHA1_HH
#define ESD_CRYPTO_SHA1_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace esd
{

/** A 160-bit SHA-1 digest. */
using Sha1Digest = std::array<std::uint8_t, 20>;

/** Incremental SHA-1 hasher. */
class Sha1
{
  public:
    Sha1() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes from @p data. */
    void update(const void *data, std::size_t len);

    /** Finalize and produce the digest; the object must be reset()
     * before reuse. */
    Sha1Digest finish();

    /** One-shot digest of a buffer. */
    static Sha1Digest digest(const void *data, std::size_t len);

    /** One-shot digest of a cache line. */
    static Sha1Digest
    digestLine(const CacheLine &line)
    {
        return digest(line.data(), kLineSize);
    }

    /** First 64 bits of the line digest — the index key used by the
     * Dedup_SHA1 fingerprint tables. */
    static std::uint64_t fingerprint64(const CacheLine &line);

    /** Lowercase hex rendering of a digest. */
    static std::string toHex(const Sha1Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[5];
    std::uint8_t buf_[64];
    std::size_t bufLen_;
    std::uint64_t totalLen_;
};

} // namespace esd

#endif // ESD_CRYPTO_SHA1_HH
