/**
 * @file
 * Runtime x86 ISA feature probes for the hardware-accelerated crypto
 * fast paths (AES-NI, SHA extensions, SSE4.2 CRC32).
 *
 * The build deliberately carries no -march flags, so the binary stays
 * runnable on any x86-64; the accelerated kernels are compiled with
 * per-function target attributes and selected here at run time. Every
 * fast path computes the exact same function as its portable fallback
 * (same FIPS algorithms, same polynomial), so feature availability can
 * never change simulation results — only host wall-clock.
 */

#ifndef ESD_CRYPTO_CPU_FEATURES_HH
#define ESD_CRYPTO_CPU_FEATURES_HH

namespace esd
{

/** AES-NI plus the SSE2 loads/stores the AES kernel needs. */
bool cpuHasAesni();

/** SHA-1 extensions plus the SSSE3/SSE4.1 shuffles the kernel needs. */
bool cpuHasSha();

/** SSE4.2 crc32 instruction (CRC32C polynomial). */
bool cpuHasCrc32c();

} // namespace esd

#endif // ESD_CRYPTO_CPU_FEATURES_HH
