/**
 * @file
 * Counter-mode encryption (CME) of cache lines.
 *
 * The ESD write path encrypts every line that survives deduplication
 * before it crosses the memory bus (Section III-A). Counter-mode
 * encryption keeps the per-line pad precomputable: the pad depends only
 * on (line address, per-line write counter), so the XOR is the only
 * work left on the critical path — which is why CryptoCostConfig models
 * a small encryptLatency.
 *
 * A 64-byte line needs four AES blocks; the counter block packs the
 * line address, the monotonically increasing write counter, and the
 * block index.
 */

#ifndef ESD_CRYPTO_CTR_MODE_HH
#define ESD_CRYPTO_CTR_MODE_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "crypto/aes.hh"

namespace esd
{

/**
 * Line-granular counter-mode encryption engine with a per-line counter
 * table (the "minor counter" store of CME designs).
 */
class CtrModeEngine
{
  public:
    explicit CtrModeEngine(const AesKey &key) : aes_(key) {}

    /**
     * Encrypt @p plain for @p addr, bumping the line's write counter.
     * @return the ciphertext line.
     */
    CacheLine
    encrypt(Addr addr, const CacheLine &plain)
    {
        std::uint64_t ctr = ++counters_[lineAlign(addr)];
        return applyPad(addr, ctr, plain);
    }

    /**
     * Decrypt @p cipher previously produced for @p addr with the
     * current counter value.
     */
    CacheLine
    decrypt(Addr addr, const CacheLine &cipher) const
    {
        auto it = counters_.find(lineAlign(addr));
        std::uint64_t ctr = (it == counters_.end()) ? 0 : it->second;
        return applyPad(addr, ctr, cipher);
    }

    /** Current write counter of @p addr (0 when never written). */
    std::uint64_t
    counter(Addr addr) const
    {
        auto it = counters_.find(lineAlign(addr));
        return it == counters_.end() ? 0 : it->second;
    }

    /** The full per-line counter table. Crash tooling snapshots this
     * as the ground-truth oracle a recovered counter set is audited
     * against (a recovered counter below the true value means a pad
     * would be reused). */
    const FlatMap<Addr, std::uint64_t> &table() const { return counters_; }

    /** Stateless pad application used by both directions. */
    CacheLine
    applyPad(Addr addr, std::uint64_t ctr, const CacheLine &in) const
    {
        static_assert(kLineSize == 64, "pad batch assumes 4 AES blocks");
        AesBlock cb[4];
        for (unsigned blk = 0; blk < 4; ++blk) {
            // Counter block: addr | ctr | blk.
            for (int i = 0; i < 8; ++i)
                cb[blk][i] = static_cast<std::uint8_t>(addr >> (8 * i));
            for (int i = 0; i < 7; ++i)
                cb[blk][8 + i] = static_cast<std::uint8_t>(ctr >> (8 * i));
            cb[blk][15] = static_cast<std::uint8_t>(blk);
        }
        AesBlock pad[4];
        aes_.encryptBlocks4(cb, pad);
        CacheLine out;
        for (unsigned blk = 0; blk < 4; ++blk) {
            for (unsigned i = 0; i < 16; ++i)
                out[blk * 16 + i] = in[blk * 16 + i] ^ pad[blk][i];
        }
        return out;
    }

  private:
    Aes128 aes_;
    FlatMap<Addr, std::uint64_t> counters_;
};

} // namespace esd

#endif // ESD_CRYPTO_CTR_MODE_HH
