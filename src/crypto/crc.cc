#include "crypto/crc.hh"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>

#include "crypto/cpu_features.hh"
#define ESD_CRC_HW 1
#endif

namespace esd
{

namespace
{

/** Reflected CRC32C table. */
struct Crc32cTable
{
    std::array<std::uint32_t, 256> t{};

    Crc32cTable()
    {
        constexpr std::uint32_t poly = 0x82F63B78u;
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
    }
};

/** Reflected CRC64/ECMA table. */
struct Crc64Table
{
    std::array<std::uint64_t, 256> t{};

    Crc64Table()
    {
        constexpr std::uint64_t poly = 0xC96C5795D7870F42ull; // reflected
        for (std::uint64_t i = 0; i < 256; ++i) {
            std::uint64_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
    }
};

const Crc32cTable crc32c_tbl;
const Crc64Table crc64_tbl;

#ifdef ESD_CRC_HW

/**
 * SSE4.2's crc32 instruction implements exactly this CRC32C variant
 * (reflected 0x82F63B78); the caller supplies and receives the
 * pre-complemented running value.
 */
__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(const std::uint8_t *p, std::size_t len, std::uint32_t crc)
{
    std::uint64_t c = crc;
    while (len >= 8) {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        c = _mm_crc32_u64(c, v);
        p += 8;
        len -= 8;
    }
    crc = static_cast<std::uint32_t>(c);
    while (len > 0) {
        crc = _mm_crc32_u8(crc, *p++);
        --len;
    }
    return crc;
}

#endif // ESD_CRC_HW

} // namespace

std::uint32_t
Crc32c::compute(const void *data, std::size_t len, std::uint32_t crc)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
#ifdef ESD_CRC_HW
    if (cpuHasCrc32c())
        return ~crc32cHw(p, len, ~crc);
#endif
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = crc32c_tbl.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

std::uint64_t
Crc64::compute(const void *data, std::size_t len, std::uint64_t crc)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = crc64_tbl.t[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace esd
