/**
 * @file
 * Crash-consistent counter-mode memory with ECC-assisted counter
 * recovery — the Section III-E consistency machinery, following the
 * Osiris approach the paper cites ([64], MICRO'18).
 *
 * Counter-mode encryption needs the per-line write counter to decrypt.
 * Persisting the counter on *every* write doubles write traffic, so
 * the controller keeps counters in volatile on-chip state and persists
 * only every `persistStride`-th value per line. After a crash the
 * persisted counter may lag the true one by up to stride-1 increments.
 *
 * Osiris' insight: the line's ECC (computed over *plaintext* and
 * stored with the ciphertext) acts as a sanity check. Recovery tries
 * candidate counters c, c+1, ..., c+stride-1 from the persisted value,
 * decrypts with each, and accepts the candidate whose plaintext
 * matches the stored ECC — with 64 check bits a wrong counter passes
 * with probability ~2^-64.
 */

#ifndef ESD_CRYPTO_SECURE_MEMORY_HH
#define ESD_CRYPTO_SECURE_MEMORY_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "crypto/aes.hh"
#include "crypto/ctr_mode.hh"
#include "ecc/ecc_engine.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

/** Outcome of post-crash recovery. */
struct RecoveryReport
{
    std::uint64_t lines = 0;        ///< lines examined
    std::uint64_t exact = 0;        ///< persisted counter was current
    std::uint64_t recovered = 0;    ///< counter re-derived via ECC
    std::uint64_t recoveredScrubbed = 0; ///< re-derived despite a
                                         ///< correctable media fault
    std::uint64_t unrecoverable = 0;///< no candidate passed the check
    std::uint64_t trialDecrypts = 0;

    bool ok() const { return unrecoverable == 0; }
};

/**
 * A self-contained encrypted line memory with lazily persisted
 * counters and ECC-assisted recovery.
 */
class SecureCounterMemory
{
  public:
    /**
     * @param key            AES-128 key
     * @param persist_stride counter persistence interval (1 = every
     *                       write, Osiris uses 4-8)
     * @param ecc            line codec the plaintext ECC oracle uses;
     *                       recovery must probe with the same engine
     *                       that encoded the stored lines
     */
    SecureCounterMemory(const AesKey &key, std::uint32_t persist_stride,
                        const EccEngine &ecc =
                            eccEngine(EccEngineKind::Hamming));

    /** Encrypt and store @p plain at @p addr. */
    void write(Addr addr, const CacheLine &plain);

    /**
     * Decrypt the line at @p addr.
     * @return false when nothing is stored there.
     */
    bool read(Addr addr, CacheLine &out) const;

    /**
     * Power failure: all volatile counter state is lost; only the
     * (possibly stale) persisted counters and the NVMM contents
     * survive.
     */
    void crash();

    /** Re-derive exact counters for every stored line via the
     * ECC-assisted search. */
    RecoveryReport recover();

    /** Number of counter persists issued (extra NVMM write traffic
     * the stride amortises). */
    std::uint64_t counterPersists() const { return persists_; }

    std::uint64_t linesStored() const { return lines_.size(); }

    /** Volatile counter of @p addr (0 if unknown). */
    std::uint64_t
    counter(Addr addr) const
    {
        auto it = volatileCtr_.find(lineAlign(addr));
        return it == volatileCtr_.end() ? 0 : it->second;
    }

    /** Fault injection for tests: flip a stored ciphertext bit. */
    void corruptStoredBit(Addr addr, unsigned bit);

  private:
    struct SecureLine
    {
        CacheLine cipher;
        LineEcc plainEcc = 0;
    };

    CacheLine pad(Addr addr, std::uint64_t ctr,
                  const CacheLine &in) const;

    Aes128 aes_;
    std::uint32_t stride_;
    const EccEngine &ecc_;

    /** Volatile (on-chip) exact counters — lost at crash. */
    FlatMap<Addr, std::uint64_t> volatileCtr_;

    /** Persisted (NVMM) counters — may lag by < stride. */
    FlatMap<Addr, std::uint64_t> persistedCtr_;

    /** NVMM contents: ciphertext + plaintext-ECC. */
    FlatMap<Addr, SecureLine> lines_;

    std::uint64_t persists_ = 0;
};

} // namespace esd

#endif // ESD_CRYPTO_SECURE_MEMORY_HH
