#include "crypto/sha1.hh"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

#include "crypto/cpu_features.hh"
#define ESD_SHA1_HW 1
#endif

namespace esd
{

namespace
{

inline std::uint32_t
rotl(std::uint32_t v, unsigned n)
{
    return std::rotl(v, static_cast<int>(n));
}

#ifdef ESD_SHA1_HW

/**
 * SHA-1 compression via the SHA extensions. sha1rnds4 runs four rounds
 * per issue with the round function picked by the immediate, sha1msg1/
 * sha1msg2/xor implement the W[t] recurrence four lanes at a time, and
 * sha1nexte folds the rotated 'a' into the next round group's message
 * words. The byte shuffle converts the big-endian message words into
 * the lane order the instructions expect (W[t] in the high lane).
 */
__attribute__((target("sha,ssse3,sse4.1"))) void
processBlockHw(std::uint32_t *h, const std::uint8_t *data)
{
    const __m128i kShuf = _mm_set_epi64x(
        static_cast<long long>(0x0001020304050607ull),
        static_cast<long long>(0x08090a0b0c0d0e0full));

    __m128i abcd =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(h));
    abcd = _mm_shuffle_epi32(abcd, 0x1B);
    __m128i e0 = _mm_set_epi32(static_cast<int>(h[4]), 0, 0, 0);
    const __m128i abcdSave = abcd;
    const __m128i e0Save = e0;
    __m128i e1;

    // Rounds 0-3.
    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data)), kShuf);
    e0 = _mm_add_epi32(e0, m0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7.
    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 16)),
        kShuf);
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    m0 = _mm_sha1msg1_epu32(m0, m1);

    // Rounds 8-11.
    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 32)),
        kShuf);
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    m1 = _mm_sha1msg1_epu32(m1, m2);
    m0 = _mm_xor_si128(m0, m2);

    // Rounds 12-15.
    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(data + 48)),
        kShuf);
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    m0 = _mm_sha1msg2_epu32(m0, m3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    m2 = _mm_sha1msg1_epu32(m2, m3);
    m1 = _mm_xor_si128(m1, m3);

    // Rounds 16-19.
    e0 = _mm_sha1nexte_epu32(e0, m0);
    e1 = abcd;
    m1 = _mm_sha1msg2_epu32(m1, m0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    m3 = _mm_sha1msg1_epu32(m3, m0);
    m2 = _mm_xor_si128(m2, m0);

    // Rounds 20-23.
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    m2 = _mm_sha1msg2_epu32(m2, m1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    m0 = _mm_sha1msg1_epu32(m0, m1);
    m3 = _mm_xor_si128(m3, m1);

    // Rounds 24-27.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    m3 = _mm_sha1msg2_epu32(m3, m2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    m1 = _mm_sha1msg1_epu32(m1, m2);
    m0 = _mm_xor_si128(m0, m2);

    // Rounds 28-31.
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    m0 = _mm_sha1msg2_epu32(m0, m3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    m2 = _mm_sha1msg1_epu32(m2, m3);
    m1 = _mm_xor_si128(m1, m3);

    // Rounds 32-35.
    e0 = _mm_sha1nexte_epu32(e0, m0);
    e1 = abcd;
    m1 = _mm_sha1msg2_epu32(m1, m0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    m3 = _mm_sha1msg1_epu32(m3, m0);
    m2 = _mm_xor_si128(m2, m0);

    // Rounds 36-39.
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    m2 = _mm_sha1msg2_epu32(m2, m1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    m0 = _mm_sha1msg1_epu32(m0, m1);
    m3 = _mm_xor_si128(m3, m1);

    // Rounds 40-43.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    m3 = _mm_sha1msg2_epu32(m3, m2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    m1 = _mm_sha1msg1_epu32(m1, m2);
    m0 = _mm_xor_si128(m0, m2);

    // Rounds 44-47.
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    m0 = _mm_sha1msg2_epu32(m0, m3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    m2 = _mm_sha1msg1_epu32(m2, m3);
    m1 = _mm_xor_si128(m1, m3);

    // Rounds 48-51.
    e0 = _mm_sha1nexte_epu32(e0, m0);
    e1 = abcd;
    m1 = _mm_sha1msg2_epu32(m1, m0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    m3 = _mm_sha1msg1_epu32(m3, m0);
    m2 = _mm_xor_si128(m2, m0);

    // Rounds 52-55.
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    m2 = _mm_sha1msg2_epu32(m2, m1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    m0 = _mm_sha1msg1_epu32(m0, m1);
    m3 = _mm_xor_si128(m3, m1);

    // Rounds 56-59.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    m3 = _mm_sha1msg2_epu32(m3, m2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    m1 = _mm_sha1msg1_epu32(m1, m2);
    m0 = _mm_xor_si128(m0, m2);

    // Rounds 60-63.
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    m0 = _mm_sha1msg2_epu32(m0, m3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    m2 = _mm_sha1msg1_epu32(m2, m3);
    m1 = _mm_xor_si128(m1, m3);

    // Rounds 64-67.
    e0 = _mm_sha1nexte_epu32(e0, m0);
    e1 = abcd;
    m1 = _mm_sha1msg2_epu32(m1, m0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    m3 = _mm_sha1msg1_epu32(m3, m0);
    m2 = _mm_xor_si128(m2, m0);

    // Rounds 68-71.
    e1 = _mm_sha1nexte_epu32(e1, m1);
    e0 = abcd;
    m2 = _mm_sha1msg2_epu32(m2, m1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    m3 = _mm_xor_si128(m3, m1);

    // Rounds 72-75.
    e0 = _mm_sha1nexte_epu32(e0, m2);
    e1 = abcd;
    m3 = _mm_sha1msg2_epu32(m3, m2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79.
    e1 = _mm_sha1nexte_epu32(e1, m3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    // Fold into the chaining state.
    e0 = _mm_sha1nexte_epu32(e0, e0Save);
    abcd = _mm_add_epi32(abcd, abcdSave);
    abcd = _mm_shuffle_epi32(abcd, 0x1B);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(h), abcd);
    h[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

#endif // ESD_SHA1_HW

} // namespace

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xEFCDAB89u;
    h_[2] = 0x98BADCFEu;
    h_[3] = 0x10325476u;
    h_[4] = 0xC3D2E1F0u;
    bufLen_ = 0;
    totalLen_ = 0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
#ifdef ESD_SHA1_HW
    if (cpuHasSha()) {
        processBlockHw(h_, block);
        return;
    }
#endif
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];

    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    totalLen_ += len;
    while (len > 0) {
        std::size_t take = std::min<std::size_t>(64 - bufLen_, len);
        std::memcpy(buf_ + bufLen_, p, take);
        bufLen_ += take;
        p += take;
        len -= take;
        if (bufLen_ == 64) {
            processBlock(buf_);
            bufLen_ = 0;
        }
    }
}

Sha1Digest
Sha1::finish()
{
    std::uint64_t bit_len = totalLen_ * 8;
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0;
    while (bufLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass totalLen_ accounting for the length field itself.
    std::memcpy(buf_ + bufLen_, len_be, 8);
    processBlock(buf_);
    bufLen_ = 0;

    Sha1Digest out;
    for (int i = 0; i < 5; ++i) {
        out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return out;
}

Sha1Digest
Sha1::digest(const void *data, std::size_t len)
{
    Sha1 s;
    s.update(data, len);
    return s.finish();
}

std::uint64_t
Sha1::fingerprint64(const CacheLine &line)
{
    Sha1Digest d = digestLine(line);
    std::uint64_t fp = 0;
    for (int i = 0; i < 8; ++i)
        fp = (fp << 8) | d[i];
    return fp;
}

std::string
Sha1::toHex(const Sha1Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    s.reserve(40);
    for (std::uint8_t b : d) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

} // namespace esd
