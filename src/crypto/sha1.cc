#include "crypto/sha1.hh"

#include <bit>
#include <cstring>

namespace esd
{

namespace
{

inline std::uint32_t
rotl(std::uint32_t v, unsigned n)
{
    return std::rotl(v, static_cast<int>(n));
}

} // namespace

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xEFCDAB89u;
    h_[2] = 0x98BADCFEu;
    h_[3] = 0x10325476u;
    h_[4] = 0xC3D2E1F0u;
    bufLen_ = 0;
    totalLen_ = 0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];

    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    totalLen_ += len;
    while (len > 0) {
        std::size_t take = std::min<std::size_t>(64 - bufLen_, len);
        std::memcpy(buf_ + bufLen_, p, take);
        bufLen_ += take;
        p += take;
        len -= take;
        if (bufLen_ == 64) {
            processBlock(buf_);
            bufLen_ = 0;
        }
    }
}

Sha1Digest
Sha1::finish()
{
    std::uint64_t bit_len = totalLen_ * 8;
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0;
    while (bufLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass totalLen_ accounting for the length field itself.
    std::memcpy(buf_ + bufLen_, len_be, 8);
    processBlock(buf_);
    bufLen_ = 0;

    Sha1Digest out;
    for (int i = 0; i < 5; ++i) {
        out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return out;
}

Sha1Digest
Sha1::digest(const void *data, std::size_t len)
{
    Sha1 s;
    s.update(data, len);
    return s.finish();
}

std::uint64_t
Sha1::fingerprint64(const CacheLine &line)
{
    Sha1Digest d = digestLine(line);
    std::uint64_t fp = 0;
    for (int i = 0; i < 8; ++i)
        fp = (fp << 8) | d[i];
    return fp;
}

std::string
Sha1::toHex(const Sha1Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    s.reserve(40);
    for (std::uint8_t b : d) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

} // namespace esd
