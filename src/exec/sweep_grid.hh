/**
 * @file
 * Config-grid expansion for sweep tools.
 *
 * A sweep spec is a comma-separated list of dimension assignments:
 *
 *   -sweep scheme=0..5,channels=1,2,8,app=mcf,lbm
 *
 * A token containing '=' opens a dimension; bare tokens append more
 * values to the open dimension, so comma does double duty as both the
 * dimension and the value separator. Integer dimensions accept a..b
 * inclusive ranges. Dimensions: app, scheme, channels, wpq_depth.
 *
 * Expansion order is fixed (app, then scheme, then channels, then
 * wpq_depth, each in spec order) so job indices — and therefore the
 * deriveJobSeed() streams and the merged report — are a pure function
 * of the spec, never of flag order or thread count.
 */

#ifndef ESD_EXEC_SWEEP_GRID_HH
#define ESD_EXEC_SWEEP_GRID_HH

#include <string>
#include <vector>

#include "exec/sweep_runner.hh"

namespace esd::exec
{

/** The sweep dimensions after parsing; empty vector = dimension not
 * swept (the base config's value is used). */
struct SweepGrid
{
    std::vector<std::string> apps;
    std::vector<SchemeKind> schemes;
    std::vector<unsigned> channels;
    std::vector<unsigned> wpqDepths;
};

/**
 * Parse one -sweep spec into @p grid (values accumulate across calls,
 * so the flag is repeatable).
 *
 * @return true on success; false with a human-readable message in
 *         @p err naming the offending token and the valid choices.
 */
bool parseSweepSpec(const std::string &spec, SweepGrid &grid,
                    std::string *err);

/**
 * Cross-product @p grid over @p base into a job list. Unswept
 * dimensions keep the base config's values; apps default to mcf and
 * schemes to all six when unswept. Job i's seed is
 * deriveJobSeed(base_seed, i).
 */
std::vector<SweepJob> expandGrid(const SweepGrid &grid,
                                 const SimConfig &base,
                                 std::uint64_t records,
                                 std::uint64_t warmup,
                                 std::uint64_t base_seed);

} // namespace esd::exec

#endif // ESD_EXEC_SWEEP_GRID_HH
