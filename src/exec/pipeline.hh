/**
 * @file
 * Intra-simulation sharded write pipeline.
 *
 * SweepRunner (sweep_runner.hh) parallelises *across* independent
 * simulations; this layer parallelises *inside* one simulation. The
 * per-channel metadata sharding of the schemes — EFIT/AMT/fingerprint
 * partitions, LineStore allocation, and PCM channel queues are all
 * keyed by channelOf(addr) — means a line in channel c can only ever
 * deduplicate against channel c. ShardedPipeline cashes that in: it
 * runs one complete Simulator per channel shard (shared-nothing — each
 * owns its scheme, device, store, RAS state, persistence journal, and
 * StatRegistry) and demultiplexes the trace by channelOf(line) into
 * per-shard work queues consumed by worker threads.
 *
 * Determinism contract (the strongest the repo has): the merged stats
 * report is byte-for-byte identical at any worker count, because
 *
 *   - the demux assigns records to shards by address alone, so every
 *     shard sees the same input stream whatever the thread count;
 *   - each shard simulator is single-threaded and touches no shared
 *     mutable state between barriers (the TSan CI job enforces this);
 *   - cross-shard effects apply only at deterministic *epoch barriers*
 *     (every [pipeline] epoch_records trace records), in canonical
 *     shard order: the global dedup-suspension latch (RAS UE counts
 *     summed across shards), and the merged interval-sampling rows;
 *   - the merge visits shards in index order and reuses the exact
 *     mergeable-stat machinery (LogHistogram/LatencyStat::merge,
 *     summed counters), so no float is ever combined in a
 *     scheduling-dependent order;
 *   - the worker count is an execution knob, never serialized into
 *     the report (exactly like -jobs= for sweeps).
 *
 * Composition: [persistence] journals commit per shard on the shard's
 * own write counts (journal records are ordered by (shard, seq));
 * crash injection by global write index is tagged by the demux and
 * armed on the owning shard just before the chosen write. [ras] fault
 * streams stay per shard; only the suspension latch crosses shards.
 *
 * tests/test_pipeline.cc enforces the byte-identity guarantee;
 * ESD_TEST_JITTER=1 injects randomized per-worker barrier delays so
 * the TSan job also flushes scheduling-dependent merges.
 */

#ifndef ESD_EXEC_PIPELINE_HH
#define ESD_EXEC_PIPELINE_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/simulator.hh"

namespace esd::exec
{

/**
 * One parallel simulation: S = channels.count shard simulators driven
 * by min(workers, S) worker threads joining at epoch barriers.
 *
 * Single-shot: construct, run() once, then read results / the report.
 */
class ShardedPipeline
{
  public:
    /** One merged counter row recorded at an epoch barrier (all
     * counters cumulative since the measurement reset). */
    struct IntervalRow
    {
        std::uint64_t epoch = 0;          ///< 1-based barrier index
        std::uint64_t logicalWrites = 0;
        std::uint64_t dedupHits = 0;
        std::uint64_t nvmWritesTotal = 0;
        std::uint64_t nvmReadsTotal = 0;
    };

    /**
     * @param cfg     the run configuration; shard count =
     *                cfg.channels.count, barrier cadence and queue
     *                window from cfg.pipeline
     * @param kind    scheme under test (one instance per shard)
     * @param workers worker threads; clamped to [1, shard count]
     */
    ShardedPipeline(const SimConfig &cfg, SchemeKind kind,
                    unsigned workers);
    ~ShardedPipeline();

    ShardedPipeline(const ShardedPipeline &) = delete;
    ShardedPipeline &operator=(const ShardedPipeline &) = delete;

    /**
     * Demultiplex @p trace through the shard simulators. May be called
     * exactly once.
     *
     * @param records total records to consume (0 = until exhausted)
     * @param warmup  leading records excluded from statistics (global
     *                index, same semantics as Simulator::run)
     * @return the merged run result (also available via result())
     */
    const RunResult &run(TraceSource &trace, std::uint64_t records,
                         std::uint64_t warmup = 0);

    unsigned shardCount() const { return shardCount_; }

    /** Resolved worker count (>= 1, <= shardCount). */
    unsigned workers() const { return workers_; }

    Simulator &shard(unsigned s) { return *shards_[s]; }
    const Simulator &shard(unsigned s) const { return *shards_[s]; }

    /** Per-shard run result; valid after run(). */
    const RunResult &shardResult(unsigned s) const
    {
        return results_[s];
    }

    /** The merged result; valid after run(). */
    const RunResult &result() const { return merged_; }

    /** Epoch barriers executed (= ceil(records / epoch_records), plus
     * the final partial epoch). */
    std::uint64_t epochsRun() const { return epochsRun_; }

    /** True once the cross-shard UE sum latched dedup suspension on
     * every shard. */
    bool dedupSuspendedGlobally() const { return globalSuspend_; }

    /** Barrier index (0-based) at which the global latch fired; only
     * meaningful when dedupSuspendedGlobally(). */
    std::uint64_t suspendEpoch() const { return suspendEpoch_; }

    /** Shard whose persistence manager captured a crash image, or -1
     * when none crashed. */
    int crashedShard() const;

    /**
     * Post-run self-check for runs that injected a crash (mirrors the
     * sweep runner's checkInjectedCrash): the crash must have fired,
     * recovery off the crashed shard's image must complete cleanly,
     * and the pad-safety audit must be clean.
     * @return empty on success (or when no crash was requested), else
     *         the failure reason.
     */
    std::string checkInjectedCrash() const;

    /** Merged counter rows recorded at barriers ([pipeline]
     * sample_epochs > 0). */
    const std::vector<IntervalRow> &intervals() const
    {
        return intervalRows_;
    }

    /**
     * Write the merged stats report document:
     *   {"config": {...}, "pipeline": {...}, "result": {...},
     *    "shards": [{"shard": i, "result": {...}, "stats": {...}},
     *    ...], "intervals": {...}}   // intervals only when sampled
     * Byte-identical at any worker count: the pipeline section carries
     * shard count and barrier cadence but never the worker count.
     */
    void writeReport(std::ostream &os, int indent = 2,
                     bool histogram_buckets = false) const;

  private:
    struct Item;
    struct Batch;
    struct ShardQueue;
    struct Barrier;

    void workerLoop(unsigned w);
    void applyBarrierEffects(std::uint64_t epoch);
    void flushEpoch(std::vector<std::vector<Item>> &pending, bool final);
    RunResult mergeResults() const;

    SimConfig cfg_;
    SchemeKind kind_;
    unsigned shardCount_;
    unsigned workers_;
    bool jitter_;

    std::vector<std::unique_ptr<Simulator>> shards_;
    std::vector<std::unique_ptr<ShardQueue>> queues_;
    std::unique_ptr<Barrier> barrier_;

    std::vector<RunResult> results_;
    RunResult merged_;
    bool ran_ = false;

    std::uint64_t epochsRun_ = 0;
    bool globalSuspend_ = false;
    std::uint64_t suspendEpoch_ = 0;
    std::vector<IntervalRow> intervalRows_;
};

} // namespace esd::exec

#endif // ESD_EXEC_PIPELINE_HH
