/**
 * @file
 * Shared-nothing parallel sweep execution.
 *
 * Every paper figure and ablation is a grid of independent
 * (application x scheme x config) simulations; SweepRunner executes
 * those grid points on a host thread pool. Each job owns its entire
 * simulated world — config, trace generator (PCG-seeded), Simulator,
 * StatRegistry, PcmDevice — so workers share no mutable state and the
 * merged sweep report is byte-identical whatever the thread count or
 * completion order:
 *
 *   - job seeds are fixed by the job list (deriveJobSeed(base, index)
 *     or the caller's explicit cfg.seed), never by scheduling;
 *   - each worker serializes its own per-job JSON fragment while its
 *     registry is alive;
 *   - the merger splices fragments in job-index order.
 *
 * test_sweep_determinism.cc enforces the byte-identity guarantee; the
 * TSan CI job enforces the shared-nothing claim.
 */

#ifndef ESD_EXEC_SWEEP_RUNNER_HH
#define ESD_EXEC_SWEEP_RUNNER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/simulator.hh"

namespace esd::exec
{

/** One grid point: a full simulation the runner owns end to end. */
struct SweepJob
{
    std::string app;          ///< paper application profile name
    SchemeKind scheme = SchemeKind::Baseline;
    SimConfig cfg;            ///< complete config incl. the job's seed
    std::uint64_t records = 0;
    std::uint64_t warmup = 0;

    /** On-disk trace to replay through the streaming frontend instead
     * of generating `app` synthetically (esd_batch -trace-in=). Each
     * job opens its own frontend, so jobs stay shared-nothing. */
    std::string traceFile;

    /** Intra-simulation pipeline threads (exec/pipeline.hh). 0 keeps
     * the classic single-Simulator path; >= 1 runs the job through a
     * ShardedPipeline, whose report fragment uses the pipeline schema
     * (per-shard results) and is byte-identical at any thread count.
     * Don't mix modes within one sweep — the two schemas differ. */
    unsigned pipelineWorkers = 0;
};

/** What one finished job yields. */
struct SweepOutcome
{
    RunResult result;

    /** Compact per-job JSON document: job identity + the full stats
     * report ({"config","result","stats"}), or job identity + "error"
     * when the job failed. Deterministic — contains no host timing. */
    std::string reportJson;

    /** Host wall-clock seconds this job took (bench-only; deliberately
     * excluded from reportJson). */
    double hostSeconds = 0;

    /** False when the job failed — it threw, or its injected crash
     * did not recover cleanly. A failed slot is a first-class outcome:
     * callers must surface it, never silently drop it. */
    bool ok = true;

    /** Human-readable failure reason when !ok. */
    std::string error;
};

/**
 * Deterministic per-job seed: splitmix64 over (base_seed, job_index).
 * Depends only on the job's grid position, so a sweep's random streams
 * are identical at any -jobs=N. Never returns 0.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            std::uint64_t job_index);

/** Serialized progress callback: (job index, job, its result). */
using SweepProgressFn =
    std::function<void(std::size_t, const SweepJob &, const RunResult &)>;

/**
 * Thread-pooled executor for independent Simulator jobs.
 *
 * Workers pull job indices from an atomic cursor and write outcomes
 * into per-job slots, so results always come back in job order
 * regardless of completion order. The progress callback runs under a
 * mutex (safe to print from).
 */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 1);

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** Execute every job; outcomes[i] belongs to jobs[i]. */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs,
                                  const SweepProgressFn &progress =
                                      nullptr) const;

  private:
    unsigned jobs_;
};

/**
 * Merge per-job fragments into the one sweep report document:
 *   {"job_count": N, "jobs": [{...}, ...],
 *    "aggregate": {"read_latency": {...}, "write_latency": {...}}}
 * The aggregate merges every job's exact latency histograms (buckets
 * included), so sweep-wide percentiles are exact, not
 * percentile-of-percentiles. Byte-identical for identical job lists,
 * independent of the worker count that produced @p outcomes.
 */
void writeSweepReport(std::ostream &os,
                      const std::vector<SweepOutcome> &outcomes);

/**
 * First structural divergence between two JSON documents as a
 * dotted/indexed path ("jobs[3].report.stats.pcm.writes"), or "" when
 * structurally equal. Diagnostic for determinism-test failures.
 */
std::string firstJsonDivergence(const std::string &a,
                                const std::string &b);

} // namespace esd::exec

#endif // ESD_EXEC_SWEEP_RUNNER_HH
