#include "exec/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stat_registry.hh"
#include "core/run_report.hh"
#include "exec/pipeline.hh"
#include "persist/recovery.hh"
#include "trace/trace_frontend.hh"
#include "trace/workloads.hh"

namespace esd::exec
{

namespace
{

/** Job-identity preamble shared by report and error fragments. */
void
writeJobIdentity(JsonWriter &w, const SweepJob &job, std::size_t index)
{
    w.kv("index", static_cast<std::uint64_t>(index));
    w.kv("app", job.app);
    // Only trace-replay jobs carry the key: synthetic sweeps keep
    // their pre-frontend report schema byte-for-byte.
    if (!job.traceFile.empty())
        w.kv("trace", job.traceFile);
    w.kv("scheme", schemeName(job.scheme));
    w.kv("scheme_kind", static_cast<int>(job.scheme));
    w.kv("records", job.records);
    w.kv("warmup", job.warmup);
    w.kv("seed", job.cfg.seed);
}

/**
 * Post-run self-check for jobs that injected a crash: the crash must
 * have fired, recovery must complete with no unresolved state, and the
 * pad-safety audit must be clean. A violation is a job failure, not a
 * quiet row of crash-tainted numbers.
 * @return empty on success, else the failure reason.
 */
std::string
checkInjectedCrash(Simulator &sim)
{
    const PersistenceManager *pm = sim.persistence();
    if (!pm || pm->config().crashAtWrite == 0)
        return "";
    if (!pm->crashed())
        return "run ended before the injected crash point (write " +
               std::to_string(pm->config().crashAtWrite) + ")";
    RecoveredState rec = recoverFromImage(pm->image(), pm->config(),
                                          sim.scheme().crypto(),
                                          sim.scheme().ecc());
    PadSafetyReport audit = auditPadSafety(rec, pm->image());
    if (!rec.summary.ok)
        return "crash recovery failed: " +
               std::to_string(rec.summary.countersUnresolved) +
               " counters unresolved, " +
               std::to_string(rec.summary.mappingsInvalidated) +
               " mappings invalidated";
    if (audit.violations != 0)
        return "pad-safety audit failed: " +
               std::to_string(audit.violations) + " of " +
               std::to_string(audit.countersChecked) +
               " counter floors below the true counter";
    return "";
}

/** Run one grid point start to finish on the calling thread. */
SweepOutcome
runOneJob(const SweepJob &job, std::size_t index)
{
    auto t0 = std::chrono::steady_clock::now();

    SweepOutcome out;
    try {
        std::unique_ptr<TraceSource> trace_owner;
        if (!job.traceFile.empty())
            trace_owner = std::make_unique<TraceFrontend>(
                job.traceFile, job.cfg.trace);
        else
            trace_owner = std::make_unique<SyntheticWorkload>(
                findApp(job.app), job.cfg.seed);
        TraceSource &trace = *trace_owner;
        std::string rep_str;
        if (job.pipelineWorkers >= 1) {
            // Sharded intra-simulation pipeline: the job still owns
            // its whole world (pipeline included), so jobs stay
            // shared-nothing across the sweep pool.
            ShardedPipeline pipe(job.cfg, job.scheme,
                                 job.pipelineWorkers);
            out.result = pipe.run(trace, job.records, job.warmup);
            out.error = pipe.checkInjectedCrash();
            out.ok = out.error.empty();
            if (out.ok) {
                std::ostringstream rep;
                pipe.writeReport(rep, /*indent=*/0);
                rep_str = rep.str();
            }
        } else {
            Simulator sim(job.cfg, job.scheme);
            out.result = sim.run(trace, job.records, job.warmup);
            out.error = checkInjectedCrash(sim);
            out.ok = out.error.empty();
            if (out.ok) {
                // Per-job report fragment, serialized here while the
                // job's StatRegistry is alive. Compact (indent 0) so
                // the merged document stays one line per job.
                std::ostringstream rep;
                writeStatsReport(rep, job.cfg, out.result,
                                 sim.statRegistry(), nullptr,
                                 /*indent=*/0);
                rep_str = rep.str();
            }
        }

        if (out.ok) {
            while (!rep_str.empty() && rep_str.back() == '\n')
                rep_str.pop_back();

            std::ostringstream frag;
            JsonWriter w(frag, /*indent=*/0);
            w.beginObject();
            writeJobIdentity(w, job, index);
            w.key("report");
            w.rawValue(rep_str);
            w.endObject();
            out.reportJson = frag.str();
        }
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = e.what();
    }

    if (!out.ok) {
        // Failed slots keep their grid position with an error fragment
        // instead of a report — the merged document stays valid JSON
        // and the failure is machine-readable in place.
        std::ostringstream frag;
        JsonWriter w(frag, /*indent=*/0);
        w.beginObject();
        writeJobIdentity(w, job, index);
        w.kv("error", out.error);
        w.endObject();
        out.reportJson = frag.str();
    }

    out.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t job_index)
{
    // splitmix64 of the (base, index) pair: decorrelated streams per
    // grid point, reproducible from the pair alone.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (job_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 1;
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs,
                 const SweepProgressFn &progress) const
{
    std::vector<SweepOutcome> out(jobs.size());
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, jobs.size()));

    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            out[i] = runOneJob(jobs[i], i);
            if (progress)
                progress(i, jobs[i], out[i].result);
        }
        return out;
    }

    std::atomic<std::size_t> cursor{0};
    std::mutex progress_mu;
    auto worker = [&]() {
        for (;;) {
            std::size_t i = cursor.fetch_add(1);
            if (i >= jobs.size())
                return;
            out[i] = runOneJob(jobs[i], i);
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mu);
                progress(i, jobs[i], out[i].result);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return out;
}

void
writeSweepReport(std::ostream &os,
                 const std::vector<SweepOutcome> &outcomes)
{
    std::uint64_t failed = 0;
    for (const SweepOutcome &o : outcomes)
        if (!o.ok)
            ++failed;

    JsonWriter w(os);
    w.beginObject();
    w.kv("job_count", static_cast<std::uint64_t>(outcomes.size()));
    // Emitted only when jobs failed: all-green sweep documents stay
    // byte-identical to releases that predate failure propagation.
    if (failed)
        w.kv("failed_jobs", failed);
    w.key("jobs");
    w.beginArray();
    for (const SweepOutcome &o : outcomes)
        w.rawValue(o.reportJson);
    w.endArray();

    // Sweep-wide latency aggregate: LatencyStat::merge combines the
    // exact histograms, and merge order never changes the counts, so
    // this section is worker-count independent like the fragments.
    // Failed jobs contribute nothing — their partial numbers would
    // taint the sweep-wide percentiles.
    LatencyStat read_all;
    LatencyStat write_all;
    for (const SweepOutcome &o : outcomes) {
        if (!o.ok)
            continue;
        read_all.merge(o.result.readLatency);
        write_all.merge(o.result.writeLatency);
    }
    w.key("aggregate");
    w.beginObject();
    w.key("read_latency");
    writeLatencyJson(w, read_all, /*buckets=*/true);
    w.key("write_latency");
    writeLatencyJson(w, write_all, /*buckets=*/true);
    w.endObject();

    w.endObject();
    os << "\n";
}

namespace
{

std::string
divergeWalk(const JsonValue &a, const JsonValue &b,
            const std::string &path)
{
    auto here = [&path]() {
        return path.empty() ? std::string("$") : path;
    };
    if (a.type != b.type)
        return here() + " (type)";
    switch (a.type) {
      case JsonValue::Type::Null:
        return "";
      case JsonValue::Type::Bool:
        return a.boolean == b.boolean ? "" : here();
      case JsonValue::Type::Number:
        return a.number == b.number ? "" : here();
      case JsonValue::Type::String:
        return a.str == b.str ? "" : here();
      case JsonValue::Type::Array: {
        if (a.array.size() != b.array.size())
            return here() + " (array length)";
        for (std::size_t i = 0; i < a.array.size(); ++i) {
            std::string p = divergeWalk(a.array[i], b.array[i],
                                        path + "[" +
                                            std::to_string(i) + "]");
            if (!p.empty())
                return p;
        }
        return "";
      }
      case JsonValue::Type::Object: {
        if (a.object.size() != b.object.size())
            return here() + " (member count)";
        for (std::size_t i = 0; i < a.object.size(); ++i) {
            const auto &[ka, va] = a.object[i];
            const auto &[kb, vb] = b.object[i];
            std::string child =
                path.empty() ? ka : path + "." + ka;
            if (ka != kb)
                return child + " (key vs '" + kb + "')";
            std::string p = divergeWalk(va, vb, child);
            if (!p.empty())
                return p;
        }
        return "";
      }
    }
    return "";
}

} // namespace

std::string
firstJsonDivergence(const std::string &a, const std::string &b)
{
    if (a == b)
        return "";
    JsonValue va, vb;
    std::string err;
    if (!tryParseJson(a, va, &err))
        return "<left unparseable: " + err + ">";
    if (!tryParseJson(b, vb, &err))
        return "<right unparseable: " + err + ">";
    std::string p = divergeWalk(va, vb, "");
    if (!p.empty())
        return p;
    // Bytes differ but structure matches: formatting-level divergence.
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    return "<byte " + std::to_string(i) +
           " differs with no structural divergence>";
}

} // namespace esd::exec
