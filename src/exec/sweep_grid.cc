#include "exec/sweep_grid.hh"

#include <cstdlib>
#include <sstream>

#include "trace/workloads.hh"

namespace esd::exec
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        out.push_back(item);
    return out;
}

/** Parse "N" or "A..B" (inclusive) into @p out; false on bad syntax. */
bool
parseIntOrRange(const std::string &tok, std::vector<std::uint64_t> &out)
{
    auto parse_one = [](const std::string &s, std::uint64_t &v) {
        if (s.empty())
            return false;
        char *end = nullptr;
        v = std::strtoull(s.c_str(), &end, 10);
        return end && *end == '\0';
    };
    std::size_t dots = tok.find("..");
    if (dots == std::string::npos) {
        std::uint64_t v;
        if (!parse_one(tok, v))
            return false;
        out.push_back(v);
        return true;
    }
    std::uint64_t lo, hi;
    if (!parse_one(tok.substr(0, dots), lo) ||
        !parse_one(tok.substr(dots + 2), hi) || hi < lo ||
        hi - lo > 4096)
        return false;
    for (std::uint64_t v = lo; v <= hi; ++v)
        out.push_back(v);
    return true;
}

std::string
validAppNames()
{
    std::string names;
    for (const AppProfile &p : paperApps()) {
        if (!names.empty())
            names += ", ";
        names += p.name;
    }
    return names;
}

} // namespace

bool
parseSweepSpec(const std::string &spec, SweepGrid &grid, std::string *err)
{
    auto fail = [err](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };

    std::string key;
    for (const std::string &tok : splitCsv(spec)) {
        std::string value = tok;
        std::size_t eq = tok.find('=');
        if (eq != std::string::npos) {
            key = tok.substr(0, eq);
            value = tok.substr(eq + 1);
            if (key != "app" && key != "scheme" && key != "channels" &&
                key != "wpq_depth") {
                return fail("unknown sweep dimension '" + key +
                            "' (valid: app, scheme, channels, "
                            "wpq_depth)");
            }
        } else if (key.empty()) {
            return fail("sweep spec must start with 'dimension=value', "
                        "got '" + tok + "'");
        }
        if (value.empty())
            return fail("empty value for sweep dimension '" + key + "'");

        if (key == "app") {
            if (!tryFindApp(value))
                return fail("unknown application '" + value +
                            "' (valid: " + validAppNames() + ")");
            grid.apps.push_back(value);
        } else if (key == "scheme") {
            // Ranges expand over ordinals; names parse directly.
            std::vector<std::uint64_t> ints;
            if (value.find("..") != std::string::npos &&
                parseIntOrRange(value, ints)) {
                for (std::uint64_t v : ints) {
                    std::optional<SchemeKind> k =
                        tryParseSchemeKind(std::to_string(v));
                    if (!k)
                        return fail("scheme ordinal " +
                                    std::to_string(v) +
                                    " out of range (0..5)");
                    grid.schemes.push_back(*k);
                }
            } else {
                std::optional<SchemeKind> k = tryParseSchemeKind(value);
                if (!k)
                    return fail("unknown scheme '" + value +
                                "' (use 0..5 or a scheme name)");
                grid.schemes.push_back(*k);
            }
        } else if (key == "channels" || key == "wpq_depth") {
            std::vector<std::uint64_t> ints;
            if (!parseIntOrRange(value, ints))
                return fail("bad integer or range '" + value +
                            "' for sweep dimension '" + key + "'");
            for (std::uint64_t v : ints) {
                if (v == 0 || v > 1024)
                    return fail(key + " value " + std::to_string(v) +
                                " out of range (1..1024)");
                if (key == "channels")
                    grid.channels.push_back(
                        static_cast<unsigned>(v));
                else
                    grid.wpqDepths.push_back(
                        static_cast<unsigned>(v));
            }
        }
    }
    return true;
}

std::vector<SweepJob>
expandGrid(const SweepGrid &grid, const SimConfig &base,
           std::uint64_t records, std::uint64_t warmup,
           std::uint64_t base_seed)
{
    std::vector<std::string> apps = grid.apps;
    if (apps.empty())
        apps.push_back("mcf");
    std::vector<SchemeKind> schemes = grid.schemes;
    if (schemes.empty())
        schemes = allSchemeKindsExtended();
    std::vector<unsigned> channels = grid.channels;
    if (channels.empty())
        channels.push_back(base.channels.count);
    std::vector<unsigned> wpq = grid.wpqDepths;
    if (wpq.empty())
        wpq.push_back(base.channels.wpqDepth);

    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * schemes.size() * channels.size() *
                 wpq.size());
    for (const std::string &app : apps) {
        for (SchemeKind k : schemes) {
            for (unsigned ch : channels) {
                for (unsigned d : wpq) {
                    SweepJob job;
                    job.app = app;
                    job.scheme = k;
                    job.cfg = base;
                    job.cfg.channels.count = ch;
                    job.cfg.channels.wpqDepth = d;
                    job.cfg.seed =
                        deriveJobSeed(base_seed, jobs.size());
                    job.records = records;
                    job.warmup = warmup;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

} // namespace esd::exec
