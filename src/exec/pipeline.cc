#include "exec/pipeline.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/run_report.hh"
#include "dedup/dewrite.hh"
#include "dedup/dedup_sha1.hh"
#include "dedup/esd.hh"
#include "dedup/mapped_scheme.hh"
#include "persist/recovery.hh"

namespace esd::exec
{

// ----------------------------------------------------------------------
// Plumbing types.

/** One demultiplexed trace record. */
struct ShardedPipeline::Item
{
    TraceRecord rec;

    /** Inside the measurement window (global warmup already applied). */
    bool measured = false;

    /** Arm the shard's crash injection immediately before this write —
     * the global write index the user configured lands here. */
    bool armCrash = false;
};

/** One epoch's worth of one shard's records (possibly empty — every
 * shard receives exactly one batch per epoch, so batch arrival is the
 * epoch clock). */
struct ShardedPipeline::Batch
{
    bool final = false;
    std::vector<Item> items;
};

/** Bounded SPSC-in-spirit batch queue (the demux produces, the owning
 * worker consumes; a mutex keeps it simple and TSan-provable). */
struct ShardedPipeline::ShardQueue
{
    explicit ShardQueue(std::size_t cap) : cap_(cap < 1 ? 1 : cap) {}

    void
    push(Batch b)
    {
        std::unique_lock<std::mutex> lk(m_);
        notFull_.wait(lk, [&] { return q_.size() < cap_; });
        q_.push_back(std::move(b));
        notEmpty_.notify_one();
    }

    Batch
    pop()
    {
        std::unique_lock<std::mutex> lk(m_);
        notEmpty_.wait(lk, [&] { return !q_.empty(); });
        Batch b = std::move(q_.front());
        q_.pop_front();
        notFull_.notify_one();
        return b;
    }

  private:
    std::mutex m_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<Batch> q_;
    std::size_t cap_;
};

/** Generation-counting barrier; the last arriver runs the epoch action
 * while every other worker is parked, so the action reads and mutates
 * shard state with all shards quiesced (and with happens-before edges
 * through the barrier mutex in both directions). */
struct ShardedPipeline::Barrier
{
    explicit Barrier(unsigned n) : total_(n) {}

    void
    arriveAndWait(const std::function<void()> &action)
    {
        std::unique_lock<std::mutex> lk(m_);
        std::uint64_t gen = generation_;
        if (++arrived_ == total_) {
            action();
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
        } else {
            cv_.wait(lk, [&] { return generation_ != gen; });
        }
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    unsigned total_;
    unsigned arrived_ = 0;
    std::uint64_t generation_ = 0;
};

// ----------------------------------------------------------------------
// Construction.

ShardedPipeline::ShardedPipeline(const SimConfig &cfg, SchemeKind kind,
                                 unsigned workers)
    : cfg_(cfg),
      kind_(kind),
      shardCount_(cfg.channels.count < 1 ? 1 : cfg.channels.count)
{
    workers_ = workers < 1 ? 1 : workers;
    if (workers_ > shardCount_)
        workers_ = shardCount_;

    const char *jit = std::getenv("ESD_TEST_JITTER");
    jitter_ = jit != nullptr && jit[0] != '\0' &&
              !(jit[0] == '0' && jit[1] == '\0');

    // Shard configs are the user config verbatim — same geometry, same
    // seed (the AES keys and fingerprint spaces must match a serial
    // run), full-size caches (set-associative metadata caches index
    // sets by channel, so a shard only ever touches its own channel's
    // sets and behaves exactly like its slice of the global cache).
    // Only crash injection is stripped: the crash index is *global*
    // write order, which the demux counts — it arms the owning shard
    // at the chosen write instead.
    SimConfig shard_cfg = cfg_;
    shard_cfg.persist.crashAtWrite = 0;
    shards_.reserve(shardCount_);
    queues_.reserve(shardCount_);
    for (unsigned s = 0; s < shardCount_; ++s) {
        shards_.push_back(std::make_unique<Simulator>(shard_cfg, kind_));
        queues_.push_back(std::make_unique<ShardQueue>(
            static_cast<std::size_t>(cfg_.pipeline.queueEpochs)));
    }
    barrier_ = std::make_unique<Barrier>(workers_);
}

ShardedPipeline::~ShardedPipeline() = default;

// ----------------------------------------------------------------------
// Execution.

void
ShardedPipeline::flushEpoch(std::vector<std::vector<Item>> &pending,
                            bool final)
{
    // Every shard gets a batch every epoch, empty or not: batch
    // arrival is how workers count epochs toward the barrier.
    for (unsigned s = 0; s < shardCount_; ++s) {
        Batch b;
        b.final = final;
        b.items = std::move(pending[s]);
        pending[s].clear();
        queues_[s]->push(std::move(b));
    }
}

void
ShardedPipeline::workerLoop(unsigned w)
{
    // Barrier-jitter stress (ESD_TEST_JITTER=1): randomize the arrival
    // order at every barrier so scheduling-dependent merges, were any
    // to exist, would show up as byte diffs and TSan reports.
    Pcg32 jrng(cfg_.seed + 0x6a17 + w, w);

    std::uint64_t epoch = 0;
    bool done = false;
    while (!done) {
        for (unsigned s = w; s < shardCount_; s += workers_) {
            Batch b = queues_[s]->pop();
            Simulator &sim = *shards_[s];
            for (const Item &it : b.items) {
                if (it.armCrash && sim.persistence() != nullptr)
                    sim.persistence()->armCrashOnNextWrite();
                sim.stepRecord(it.rec, it.measured);
            }
            if (b.final)
                done = true;
        }
        if (jitter_)
            std::this_thread::sleep_for(
                std::chrono::microseconds(jrng.next() % 500));
        barrier_->arriveAndWait([this, epoch] {
            applyBarrierEffects(epoch);
        });
        ++epoch;
    }
}

void
ShardedPipeline::applyBarrierEffects(std::uint64_t epoch)
{
    // All shards are quiescent here (their workers are parked in the
    // barrier); reads and mutations below need no further locking, in
    // canonical shard order throughout.

    // Global dedup-suspension latch: the RAS policy counts
    // uncorrectable errors *system wide*, so the threshold compares
    // against the cross-shard sum and, once crossed, suspends
    // deduplication on every shard.
    if (cfg_.ras.enabled && cfg_.ras.dedupSuspendUes > 0 &&
        !globalSuspend_) {
        std::uint64_t ues = 0;
        for (unsigned s = 0; s < shardCount_; ++s)
            ues += shards_[s]->scheme().ras().stats().ueEvents.value();
        if (ues >= cfg_.ras.dedupSuspendUes) {
            globalSuspend_ = true;
            suspendEpoch_ = epoch;
            for (unsigned s = 0; s < shardCount_; ++s)
                shards_[s]->scheme().ras().forceSuspendDedup();
        }
    }

    const std::uint64_t every = cfg_.pipeline.sampleEpochs;
    bool all_measuring = true;
    for (unsigned s = 0; s < shardCount_; ++s)
        all_measuring = all_measuring && shards_[s]->measuring();
    // Rows only once every shard has reset into its measurement
    // window: a barrier inside (or straddling) the warmup would mix
    // warmup counters from not-yet-reset shards into the row, breaking
    // both monotonicity and the rows' meaning. The skip is a pure
    // function of the demux, so it is identical at any worker count.
    if (every > 0 && all_measuring && (epoch + 1) % every == 0) {
        IntervalRow row;
        row.epoch = epoch + 1;
        for (unsigned s = 0; s < shardCount_; ++s) {
            const SchemeStats &ss = shards_[s]->scheme().stats();
            row.logicalWrites += ss.logicalWrites.value();
            row.dedupHits += ss.dedupHits.value();
            row.nvmWritesTotal +=
                shards_[s]->device().stats().writes.value();
            row.nvmReadsTotal +=
                shards_[s]->device().stats().reads.value();
        }
        intervalRows_.push_back(row);
    }

    epochsRun_ = epoch + 1;
}

const RunResult &
ShardedPipeline::run(TraceSource &trace, std::uint64_t records,
                     std::uint64_t warmup)
{
    if (ran_)
        esd_fatal("ShardedPipeline::run may only be called once");
    ran_ = true;

    auto t0 = std::chrono::steady_clock::now();

    for (unsigned s = 0; s < shardCount_; ++s)
        shards_[s]->beginRun();

    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        threads.emplace_back(&ShardedPipeline::workerLoop, this, w);

    // Demux: the reader thread is the only consumer of the trace, so
    // record order — and with it every shard's input stream, the
    // global warmup boundary, and the global crash index — is
    // identical at any worker count. Records are pulled in batches
    // (TraceSource::nextBatch) so streaming sources pay one virtual
    // call per buffer, not per record; the consumed sequence is the
    // same either way.
    const std::uint64_t crash_at =
        cfg_.persist.enabled ? cfg_.persist.crashAtWrite : 0;
    const std::uint64_t epoch_records = cfg_.pipeline.epochRecords;
    std::vector<std::vector<Item>> pending(shardCount_);
    constexpr std::size_t kDemuxChunk = 1024;
    std::vector<TraceRecord> chunk(kDemuxChunk);
    std::uint64_t processed = 0;
    std::uint64_t writes_seen = 0;
    std::uint64_t in_epoch = 0;
    while (records == 0 || processed < records) {
        std::size_t want = kDemuxChunk;
        if (records != 0 && records - processed < want)
            want = static_cast<std::size_t>(records - processed);
        std::size_t got = trace.nextBatch(chunk.data(), want);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i) {
            const TraceRecord &rec = chunk[i];
            Item it;
            it.rec = rec;
            it.measured = processed >= warmup;
            if (rec.op == OpType::Write) {
                ++writes_seen;
                it.armCrash = crash_at != 0 && writes_seen == crash_at;
            }
            pending[lineIndex(rec.addr) % shardCount_].push_back(
                std::move(it));
            ++processed;
            if (++in_epoch == epoch_records) {
                flushEpoch(pending, /*final=*/false);
                in_epoch = 0;
            }
        }
    }
    flushEpoch(pending, /*final=*/true);

    for (auto &t : threads)
        t.join();

    if (warmup > 0 && processed <= warmup)
        esd_fatal("trace shorter than the %llu-record warmup",
                  static_cast<unsigned long long>(warmup));

    results_.reserve(shardCount_);
    for (unsigned s = 0; s < shardCount_; ++s)
        results_.push_back(shards_[s]->endRun());

    merged_ = mergeResults();
    merged_.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return merged_;
}

// ----------------------------------------------------------------------
// Merging.

RunResult
ShardedPipeline::mergeResults() const
{
    RunResult m;
    m.schemeName = results_[0].schemeName;

    // Exact accumulations, visiting shards in index order. Integer
    // counters sum; the latency histograms merge bucket-wise (exact);
    // simulated runtime is the slowest shard's clock — the shards
    // advance one interleaved trace, they do not run back to back.
    for (unsigned s = 0; s < shardCount_; ++s) {
        const RunResult &r = results_[s];
        m.records += r.records;
        m.instructions += r.instructions;
        if (r.runtimeNs > m.runtimeNs)
            m.runtimeNs = r.runtimeNs;
        m.readLatency.merge(r.readLatency);
        m.writeLatency.merge(r.writeLatency);
        m.logicalWrites += r.logicalWrites;
        m.logicalReads += r.logicalReads;
        m.dedupHits += r.dedupHits;
        m.nvmDataWrites += r.nvmDataWrites;
        m.nvmReadsTotal += r.nvmReadsTotal;
        m.nvmWritesTotal += r.nvmWritesTotal;
        m.nvmWritesCoalesced += r.nvmWritesCoalesced;
        m.energy.deviceRead += r.energy.deviceRead;
        m.energy.deviceWrite += r.energy.deviceWrite;
        m.energy.hash += r.energy.hash;
        m.energy.crypto += r.energy.crypto;
        m.energy.metadata += r.energy.metadata;
        m.breakdown.add(r.breakdown);
        m.metadataNvmBytes += r.metadataNvmBytes;
        m.uniqueLinesStored += r.uniqueLinesStored;
        m.wear.totalWrites += r.wear.totalWrites;
        m.wear.linesTouched += r.wear.linesTouched;
        if (r.wear.maxLineWrites > m.wear.maxLineWrites) {
            m.wear.maxLineWrites = r.wear.maxLineWrites;
            m.wear.hottestLine = r.wear.hottestLine;
        }
    }

    double cycles = m.runtimeNs * cfg_.core.clockGhz;
    m.ipc = cycles > 0 ? m.instructions / cycles : 0.0;

    // Ratio stats are recomputed from summed numerators and
    // denominators — averaging per-shard ratios would weight shards
    // equally regardless of traffic.
    std::uint64_t fp_cache_hits = 0;
    std::uint64_t fp_nvm_hits = 0;
    std::uint64_t fp_hits = 0;
    std::uint64_t fp_lookups = 0;
    std::uint64_t amt_hits = 0;
    std::uint64_t amt_lookups = 0;
    for (unsigned s = 0; s < shardCount_; ++s) {
        const DedupScheme &sch = shards_[s]->scheme();
        fp_cache_hits += sch.stats().dedupHitsFpCache.value();
        fp_nvm_hits += sch.stats().dedupHitsFpNvm.value();
        if (auto *esd_s = dynamic_cast<const EsdScheme *>(&sch)) {
            fp_hits += esd_s->efit().stats().hits.value();
            fp_lookups += esd_s->efit().stats().lookups.value();
        } else if (auto *s1 =
                       dynamic_cast<const DedupSha1Scheme *>(&sch)) {
            fp_hits += s1->fpTable().stats().cacheHits.value();
            fp_lookups += s1->fpTable().stats().lookups.value();
        } else if (auto *dw = dynamic_cast<const DeWriteScheme *>(&sch)) {
            fp_hits += dw->fpTable().stats().cacheHits.value();
            fp_lookups += dw->fpTable().stats().lookups.value();
        }
        if (auto *mp = dynamic_cast<const MappedDedupScheme *>(&sch)) {
            amt_hits += mp->amt().stats().cacheHits.value();
            amt_lookups += mp->amt().stats().lookups.value();
        }
    }
    if (m.logicalWrites > 0) {
        m.dedupViaFpCacheFrac =
            static_cast<double>(fp_cache_hits) / m.logicalWrites;
        m.dedupViaFpNvmFrac =
            static_cast<double>(fp_nvm_hits) / m.logicalWrites;
    }
    if (fp_lookups > 0)
        m.fpCacheHitRate = static_cast<double>(fp_hits) / fp_lookups;
    if (amt_lookups > 0)
        m.amtCacheHitRate = static_cast<double>(amt_hits) / amt_lookups;

    return m;
}

// ----------------------------------------------------------------------
// Crash self-check.

int
ShardedPipeline::crashedShard() const
{
    for (unsigned s = 0; s < shardCount_; ++s) {
        const PersistenceManager *pm = shards_[s]->persistence();
        if (pm != nullptr && pm->crashed())
            return static_cast<int>(s);
    }
    return -1;
}

std::string
ShardedPipeline::checkInjectedCrash() const
{
    if (!cfg_.persist.enabled || cfg_.persist.crashAtWrite == 0)
        return "";
    int cs = crashedShard();
    if (cs < 0)
        return "run ended before the injected crash point (write " +
               std::to_string(cfg_.persist.crashAtWrite) + ")";
    Simulator &sim = *shards_[static_cast<unsigned>(cs)];
    const PersistenceManager *pm = sim.persistence();
    RecoveredState rec = recoverFromImage(pm->image(), pm->config(),
                                          sim.scheme().crypto(),
                                          sim.scheme().ecc());
    PadSafetyReport audit = auditPadSafety(rec, pm->image());
    if (!rec.summary.ok)
        return "crash recovery failed: " +
               std::to_string(rec.summary.countersUnresolved) +
               " counters unresolved, " +
               std::to_string(rec.summary.mappingsInvalidated) +
               " mappings invalidated";
    if (audit.violations != 0)
        return "pad-safety audit failed: " +
               std::to_string(audit.violations) + " of " +
               std::to_string(audit.countersChecked) +
               " counter floors below the true counter";
    return "";
}

// ----------------------------------------------------------------------
// Reporting.

void
ShardedPipeline::writeReport(std::ostream &os, int indent,
                             bool histogram_buckets) const
{
    JsonWriter w(os, indent);
    w.beginObject();

    w.key("config");
    writeConfigJson(w, cfg_);

    // Execution-shape section: shard count and barrier cadence affect
    // where cross-shard effects land, so they are part of the result's
    // identity. The worker count is not — it must never appear here.
    w.key("pipeline");
    w.beginObject();
    w.kv("shards", static_cast<std::uint64_t>(shardCount_));
    w.kv("epoch_records", cfg_.pipeline.epochRecords);
    w.kv("epochs", epochsRun_);
    w.kv("dedup_suspended", globalSuspend_);
    if (globalSuspend_)
        w.kv("suspend_epoch", suspendEpoch_);
    w.endObject();

    w.key("result");
    writeRunResultJson(w, merged_, histogram_buckets);

    w.key("shards");
    w.beginArray();
    for (unsigned s = 0; s < shardCount_; ++s) {
        w.beginObject();
        w.kv("shard", static_cast<std::uint64_t>(s));
        w.key("result");
        writeRunResultJson(w, results_[s], histogram_buckets);
        w.key("stats");
        shards_[s]->statRegistry().writeJson(w, histogram_buckets);
        w.endObject();
    }
    w.endArray();

    if (!intervalRows_.empty()) {
        w.key("intervals");
        w.beginObject();
        w.kv("every_epochs", cfg_.pipeline.sampleEpochs);
        w.key("rows");
        w.beginArray();
        for (const IntervalRow &row : intervalRows_) {
            w.beginArray();
            w.value(row.epoch);
            w.value(row.logicalWrites);
            w.value(row.dedupHits);
            w.value(row.nvmWritesTotal);
            w.value(row.nvmReadsTotal);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }

    w.endObject();
    os << "\n";
}

} // namespace esd::exec
