/**
 * @file
 * Crash-consistency subsystem: persistence domains, epoch group-commit
 * journaling, and deterministic crash injection.
 *
 * The PersistenceManager sits beside the write pipeline:
 *
 *   - Schemes report every crash-relevant metadata mutation through
 *     note() and every content-store write through noteLineWrite();
 *     records buffer per write and flush as an atomic group when the
 *     simulator calls onWriteEnd().
 *   - Every epoch_writes writes the buffered records commit behind one
 *     persist barrier. Under ADR the barrier first waits for the WPQ
 *     to drain (committed journal records therefore only ever describe
 *     data that reached the array); under eADR the flush buffer itself
 *     is inside the persistence domain, so flushed-but-uncommitted
 *     records survive a crash too.
 *   - The commit wait, barrier cost, and per-record append cost are
 *     returned from onWriteEnd() and charged to the triggering write,
 *     so journaling overhead shows up honestly in the latency
 *     histograms and the `persist` profiler phase.
 *   - Every checkpoint_epochs commits, the committed records fold into
 *     a CheckpointState and the journal truncates.
 *
 * Crash injection: `crash_at_write` + `crash_phase` place one
 * deterministic crash (mid-journal tear points are PCG-seeded off the
 * sim seed). The crash captures a CrashImage — exactly what the
 * configured domain preserves: surviving array content (ADR reverts
 * store writes still queued at the crash tick via an undo log), the
 * durable journal, the last checkpoint, plus a ground-truth counter
 * oracle for pad-reuse auditing. The simulation continues after the
 * snapshot; recovery is run offline on the image (see recovery.hh).
 */

#ifndef ESD_PERSIST_PERSISTENCE_HH
#define ESD_PERSIST_PERSISTENCE_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "crypto/ctr_mode.hh"
#include "metrics/profiler.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"
#include "persist/journal.hh"

namespace esd
{

class StatRegistry;

/** Journaling / crash-injection accounting. */
struct PersistStats
{
    Counter journalRecords;   ///< records emitted (all groups)
    Counter epochCommits;     ///< group commits (persist barriers)
    Counter earlyCommits;     ///< commits forced by a full flush buffer
    Counter checkpoints;      ///< checkpoint folds
    Counter recordsFolded;    ///< records truncated into checkpoints
    Counter barrierNs;        ///< total commit overhead charged, ns
    Counter drainWaitNs;      ///< portion of barrierNs spent draining WPQs
};

/** Everything the configured persistence domain preserves at the
 * instant of an injected crash. */
struct CrashImage
{
    PersistDomain domain = PersistDomain::Adr;
    CrashPhase phase = CrashPhase::PostData;

    /** 1-based index of the write the crash struck. */
    std::uint64_t crashWriteIndex = 0;

    /** Simulated time of the power cut. */
    Tick tick = 0;

    /** The crashed scheme keeps data in place (no AMT indirection). */
    bool inPlace = false;

    /** Last durable checkpoint. */
    CheckpointState checkpoint;

    /** Durable journal records beyond the checkpoint, seq order. */
    std::vector<JournalRecord> records;

    /** Records lost to the torn flush (mid-journal crashes). */
    std::uint64_t tornRecords = 0;

    /** Surviving content: the PCM array (ADR) or array + WPQ (eADR). */
    std::vector<std::pair<Addr, StoredLine>> content;

    /** Ground-truth encryption counters at the crash instant. Not an
     * input to recovery — the oracle pad-reuse audits compare
     * against. */
    std::vector<std::pair<Addr, std::uint64_t>> trueCounters;
};

/**
 * The crash-consistency engine threaded through the write pipeline.
 */
class PersistenceManager
{
  public:
    PersistenceManager(const PersistenceConfig &cfg, PcmDevice &device,
                       NvmStore &store, std::uint64_t seed);

    /** The scheme's counter engine: the crash oracle and the recovery
     * probe both need it. */
    void attachCrypto(const CtrModeEngine *crypto) { crypto_ = crypto; }

    /** Whether the attached scheme writes data in place (baseline) or
     * through the AMT — recorded into crash images. */
    void setInPlace(bool in_place) { inPlace_ = in_place; }

    /** Called at every epoch commit — mapped schemes promote their
     * deferred line reclamations here. */
    void setEpochCommitHook(std::function<void()> fn)
    {
        epochCommitHook_ = std::move(fn);
    }

    void setProfiler(Profiler *p) { prof_ = p; }

    // ------------------------------------------------------------------
    // Simulator-side write hooks.

    /** A logical write is starting at @p now (counts every write,
     * warmup included — crash injection indexes this sequence). */
    void onWriteBegin(Tick now);

    /**
     * The write's scheme work finished at @p end_t: flush its record
     * group, commit the epoch when due, run checkpoints.
     * @return extra nanoseconds of journaling overhead to charge to
     *         this write's latency.
     */
    Tick onWriteEnd(Tick end_t);

    // ------------------------------------------------------------------
    // Scheme/RAS-side journal emission.

    /** Append one metadata mutation record to the current group. */
    void
    note(JournalOp op, Addr a, Addr b = kInvalidAddr,
         std::uint64_t value = 0)
    {
        JournalRecord r;
        r.op = op;
        r.a = a;
        r.b = b;
        r.value = value;
        r.seq = ++seq_;
        r.epoch = epochsCommitted_;
        group_.push_back(r);
    }

    /**
     * A content-store line write is in flight: capture the undo state
     * (what the array held before) so an ADR crash image can revert
     * writes that had not drained by the crash tick, and trigger the
     * post-data crash point.
     *
     * @param phys     store key being (over)written
     * @param old      previous content at @p phys, nullptr when absent
     * @param complete device tick the array write retires at
     */
    void noteLineWrite(Addr phys, const StoredLine *old, Tick complete);

    // ------------------------------------------------------------------
    // Crash state.

    bool crashed() const { return crashed_; }
    const CrashImage &image() const { return image_; }

    /** Arm the deterministic crash to strike on the next write seen by
     * this manager. The sharded pipeline injects crashes by *global*
     * write index, which only the trace demux can count — it arms the
     * owning shard's manager just before stepping the chosen write
     * (shard configs carry crash_at_write = 0). */
    void
    armCrashOnNextWrite()
    {
        if (!crashed_)
            cfg_.crashAtWrite = writeIndex_ + 1;
    }

    /** Counter slack with the 0=auto default resolved (ADR: one epoch
     * of un-journaled bumps, eADR: one torn group). */
    std::uint64_t effectiveCounterSlack() const;

    const PersistenceConfig &config() const { return cfg_; }

    std::uint64_t writeIndex() const { return writeIndex_; }
    std::uint64_t epochsCommitted() const { return epochsCommitted_; }

    const PersistStats &stats() const { return stats_; }
    void resetStats() { stats_ = PersistStats{}; }

    /** Register journaling counters under "<prefix>.*". Call only on
     * persistence-enabled runs — registration changes the stats-JSON
     * schema. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct UndoEntry
    {
        Addr phys = kInvalidAddr;
        bool hadOld = false;
        StoredLine old;
        Tick complete = 0;
    };

    bool
    crashArmedAt(CrashPhase phase) const
    {
        return !crashed_ && cfg_.crashAtWrite != 0 &&
               writeIndex_ == cfg_.crashAtWrite &&
               cfg_.crashPhase == phase;
    }

    /** Records durable with no further barrier: the committed journal,
     * plus the flush buffer under eADR. */
    std::vector<JournalRecord> durableBase() const;

    /** Snapshot what the domain preserves at @p tick into image_. */
    void captureImage(CrashPhase phase, Tick tick,
                      std::vector<JournalRecord> records,
                      std::uint64_t torn);

    /** Drop undo entries whose writes drained at or before @p tick. */
    void pruneUndo(Tick tick);

    void checkpoint();

    PersistenceConfig cfg_;
    PcmDevice &device_;
    NvmStore &store_;
    const CtrModeEngine *crypto_ = nullptr;
    Profiler *prof_ = nullptr;
    std::function<void()> epochCommitHook_;
    bool inPlace_ = false;

    Pcg32 rng_;

    std::uint64_t writeIndex_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t epochsCommitted_ = 0;

    /** Current write's record group (atomic: flushes whole). */
    std::vector<JournalRecord> group_;

    /** Flushed groups awaiting the epoch-commit barrier (the eADR
     * metadata write-back buffer). */
    std::vector<JournalRecord> pending_;

    /** Committed journal beyond the last checkpoint. */
    std::vector<JournalRecord> committed_;

    CheckpointState checkpoint_;

    /** Store-content undo log (ADR crash capture only). */
    std::vector<UndoEntry> undo_;
    bool collectUndo_ = false;

    bool crashed_ = false;
    CrashImage image_;

    PersistStats stats_;
};

} // namespace esd

#endif // ESD_PERSIST_PERSISTENCE_HH
