/**
 * @file
 * The write-ahead metadata journal: record format and the shared
 * replay fold.
 *
 * Every scheme mutation that must survive a crash — an AMT update, a
 * refcount change, an EFIT/fingerprint insert or evict, a counter-mode
 * encryption counter bump, a RAS line retirement — emits one ordered
 * JournalRecord. Records buffer per write, flush as an atomic group at
 * the end of the write, and become durable at the next epoch commit
 * (one persist barrier per epoch, not per record — the group-commit
 * amortization). Checkpoints fold the committed prefix into a compact
 * CheckpointState with the exact same applyRecord() fold that recovery
 * uses, so a checkpoint is by construction equivalent to replaying the
 * truncated records.
 */

#ifndef ESD_PERSIST_JOURNAL_HH
#define ESD_PERSIST_JOURNAL_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace esd
{

/** What kind of metadata mutation a journal record describes. */
enum class JournalOp : std::uint8_t
{
    AmtUpdate,   ///< a = logical addr, b = new phys
    RefAdd,      ///< a = phys gaining a reference
    RefRelease,  ///< a = phys losing a reference
    EfitInsert,  ///< a = phys, value = fingerprint key (ECC/hash)
    EfitEvict,   ///< a = phys whose fingerprint entry died
    CtrBump,     ///< a = counter addr, value = new counter value
    LineRetire,  ///< a = phys retired, b = spare medium
    DataWrite,   ///< a = line written in place (no indirection)
};

/** Config-file / report spelling of a journal op. */
const char *journalOpName(JournalOp op);

/** One ordered journal record. */
struct JournalRecord
{
    JournalOp op = JournalOp::DataWrite;
    Addr a = kInvalidAddr;
    Addr b = kInvalidAddr;
    std::uint64_t value = 0;

    /** Global emission order (strictly increasing). */
    std::uint64_t seq = 0;

    /** Group-commit epoch the record was emitted in. */
    std::uint64_t epoch = 0;
};

/**
 * The durable table images a checkpoint holds — also the accumulator
 * recovery replays the journal into.
 */
struct CheckpointState
{
    /** Logical line -> physical line (AMT image). */
    FlatMap<Addr, Addr> amt;

    /** Physical line -> reference count. */
    FlatMap<Addr, std::uint32_t> refs;

    /** Physical line -> fingerprint key (surviving EFIT/FP entries). */
    FlatMap<Addr, std::uint64_t> fp;

    /** Counter addr -> last journaled encryption counter. */
    FlatMap<Addr, std::uint64_t> ctr;

    /** Physical lines retired to the spare region. */
    FlatSet<Addr> retired;

    /** All records with seq <= this are folded in. */
    std::uint64_t seq = 0;
};

/** Fold one record into @p st (checkpointing and recovery share
 * this — the single definition of what a record means). */
void applyRecord(CheckpointState &st, const JournalRecord &r);

} // namespace esd

#endif // ESD_PERSIST_JOURNAL_HH
