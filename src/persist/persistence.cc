#include "persist/persistence.hh"

#include <algorithm>

#include "common/stat_registry.hh"

namespace esd
{

PersistenceManager::PersistenceManager(const PersistenceConfig &cfg,
                                       PcmDevice &device, NvmStore &store,
                                       std::uint64_t seed)
    : cfg_(cfg), device_(device), store_(store),
      rng_(seed, 0x7e57ab1ecab1e5ull)
{
    // The undo log exists only to build ADR crash images; without an
    // armed crash (or under eADR, where queued writes survive) it
    // would be dead weight on every content write.
    collectUndo_ = cfg_.enabled && cfg_.crashAtWrite != 0 &&
                   cfg_.domain == PersistDomain::Adr;
}

std::uint64_t
PersistenceManager::effectiveCounterSlack() const
{
    if (cfg_.counterSlack != 0)
        return cfg_.counterSlack;
    // Un-journaled counter bumps per line are bounded by the
    // uncommitted window: a full epoch under ADR, the one torn group
    // under eADR.
    return cfg_.domain == PersistDomain::Adr ? cfg_.epochWrites : 1;
}

void
PersistenceManager::onWriteBegin(Tick now)
{
    ++writeIndex_;
    if (crashArmedAt(CrashPhase::PreBarrier))
        captureImage(CrashPhase::PreBarrier, now, durableBase(), 0);
}

void
PersistenceManager::noteLineWrite(Addr phys, const StoredLine *old,
                                  Tick complete)
{
    if (collectUndo_ && !crashed_) {
        UndoEntry u;
        u.phys = lineAlign(phys);
        u.hadOld = old != nullptr;
        if (old)
            u.old = *old;
        u.complete = complete;
        undo_.push_back(u);
    }
    if (crashArmedAt(CrashPhase::PostData)) {
        // Data installed (queued to the array), metadata group not yet
        // flushed: snapshot at the instant this data write retires, so
        // the write itself is durable under ADR too.
        captureImage(CrashPhase::PostData, complete, durableBase(), 0);
    }
}

Tick
PersistenceManager::onWriteEnd(Tick end_t)
{
    Profiler::Scope scope(prof_, Profiler::Persist);
    Tick extra = 0;

    // Post-data crashes on writes with no data write (dedup hits)
    // degrade to "end of scheme work, group unflushed".
    if (crashArmedAt(CrashPhase::PostData))
        captureImage(CrashPhase::PostData, end_t, durableBase(), 0);

    bool boundary = writeIndex_ % cfg_.epochWrites == 0;
    bool buffer_full =
        pending_.size() + group_.size() >= cfg_.metadataBufferRecords;
    bool commit_now = boundary || buffer_full;

    extra += static_cast<Tick>(group_.size()) * cfg_.journalAppendNs;
    stats_.journalRecords.inc(group_.size());

    // ADR barriers wait for the WPQ first: a committed journal record
    // must never describe data the array does not hold. Under eADR the
    // WPQ is inside the persistence domain, so commits skip the drain.
    Tick commit_tick = commit_now && cfg_.domain == PersistDomain::Adr
                           ? device_.wpqDrainTick(end_t)
                           : end_t;

    if (crashArmedAt(CrashPhase::MidJournal)) {
        std::vector<JournalRecord> durable;
        std::vector<JournalRecord> tail;
        Tick tick = end_t;
        if (cfg_.domain == PersistDomain::Eadr) {
            // The flush buffer persists; only this group can tear.
            durable = durableBase();
            tail = group_;
        } else if (commit_now) {
            // Mid-commit: the drain finished, the journal flush tore.
            durable = committed_;
            tail = pending_;
            tail.insert(tail.end(), group_.begin(), group_.end());
            tick = commit_tick;
        } else {
            // ADR off-boundary: nothing new was being persisted.
            durable = committed_;
        }
        std::uint64_t keep =
            tail.empty()
                ? 0
                : rng_.below(static_cast<std::uint32_t>(tail.size() + 1));
        durable.insert(durable.end(), tail.begin(),
                       tail.begin() + static_cast<std::ptrdiff_t>(keep));
        captureImage(CrashPhase::MidJournal, tick, std::move(durable),
                     tail.size() - keep);
    }

    // Flush the group (under eADR this is the persistent buffer).
    pending_.insert(pending_.end(), group_.begin(), group_.end());
    group_.clear();

    if (commit_now) {
        Tick drain_wait = commit_tick - end_t;
        extra += drain_wait + cfg_.barrierNs;
        stats_.drainWaitNs.inc(drain_wait);
        stats_.barrierNs.inc(drain_wait + cfg_.barrierNs);

        committed_.insert(committed_.end(), pending_.begin(),
                          pending_.end());
        pending_.clear();
        ++epochsCommitted_;
        stats_.epochCommits.inc();
        if (!boundary)
            stats_.earlyCommits.inc();
        if (epochCommitHook_)
            epochCommitHook_();
        pruneUndo(commit_tick);

        if (epochsCommitted_ % cfg_.checkpointEpochs == 0) {
            checkpoint();
            extra += cfg_.barrierNs;
            stats_.barrierNs.inc(cfg_.barrierNs);
        }
    }
    return extra;
}

std::vector<JournalRecord>
PersistenceManager::durableBase() const
{
    std::vector<JournalRecord> out = committed_;
    if (cfg_.domain == PersistDomain::Eadr)
        out.insert(out.end(), pending_.begin(), pending_.end());
    return out;
}

void
PersistenceManager::captureImage(CrashPhase phase, Tick tick,
                                 std::vector<JournalRecord> records,
                                 std::uint64_t torn)
{
    image_.domain = cfg_.domain;
    image_.phase = phase;
    image_.crashWriteIndex = writeIndex_;
    image_.tick = tick;
    image_.inPlace = inPlace_;
    image_.checkpoint = checkpoint_;
    image_.records = std::move(records);
    image_.tornRecords = torn;

    // Surviving content: the store as of now, with (under ADR) every
    // write that had not drained by the crash tick unwound newest-
    // first, so re-written lines fall back to their last durable
    // state.
    FlatMap<Addr, StoredLine> content;
    for (Addr a : store_.residentAddrs())
        content[a] = *store_.peek(a);
    if (cfg_.domain == PersistDomain::Adr) {
        for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
            if (it->complete <= tick)
                continue;
            if (it->hadOld)
                content[it->phys] = it->old;
            else
                content.erase(it->phys);
        }
    }
    image_.content.clear();
    image_.content.reserve(content.size());
    for (const auto &[a, line] : content)
        image_.content.emplace_back(a, line);

    image_.trueCounters.clear();
    if (crypto_) {
        image_.trueCounters.reserve(crypto_->table().size());
        for (const auto &[a, c] : crypto_->table())
            image_.trueCounters.emplace_back(a, c);
    }

    crashed_ = true;
}

void
PersistenceManager::pruneUndo(Tick tick)
{
    if (undo_.empty())
        return;
    undo_.erase(std::remove_if(undo_.begin(), undo_.end(),
                               [tick](const UndoEntry &u) {
                                   return u.complete <= tick;
                               }),
                undo_.end());
}

void
PersistenceManager::checkpoint()
{
    for (const JournalRecord &r : committed_)
        applyRecord(checkpoint_, r);
    stats_.recordsFolded.inc(committed_.size());
    stats_.checkpoints.inc();
    committed_.clear();
}

void
PersistenceManager::registerStats(StatRegistry &reg,
                                  const std::string &prefix) const
{
    reg.addCounter(prefix + ".journal_records", stats_.journalRecords,
                   "metadata journal records emitted");
    reg.addCounter(prefix + ".epoch_commits", stats_.epochCommits,
                   "group commits (persist barriers)");
    reg.addCounter(prefix + ".early_commits", stats_.earlyCommits,
                   "commits forced by a full flush buffer");
    reg.addCounter(prefix + ".checkpoints", stats_.checkpoints,
                   "checkpoint folds truncating the journal");
    reg.addCounter(prefix + ".records_folded", stats_.recordsFolded,
                   "journal records truncated into checkpoints");
    reg.addCounter(prefix + ".barrier_ns", stats_.barrierNs,
                   "journaling overhead charged to writes, ns");
    reg.addCounter(prefix + ".drain_wait_ns", stats_.drainWaitNs,
                   "barrier time spent draining write queues, ns");
}

} // namespace esd
