#include "persist/journal.hh"

#include "common/logging.hh"

namespace esd
{

const char *
journalOpName(JournalOp op)
{
    switch (op) {
      case JournalOp::AmtUpdate: return "amt_update";
      case JournalOp::RefAdd: return "ref_add";
      case JournalOp::RefRelease: return "ref_release";
      case JournalOp::EfitInsert: return "efit_insert";
      case JournalOp::EfitEvict: return "efit_evict";
      case JournalOp::CtrBump: return "ctr_bump";
      case JournalOp::LineRetire: return "line_retire";
      case JournalOp::DataWrite: return "data_write";
    }
    esd_panic("unreachable journal op %u", static_cast<unsigned>(op));
}

void
applyRecord(CheckpointState &st, const JournalRecord &r)
{
    switch (r.op) {
      case JournalOp::AmtUpdate:
        if (r.b == kInvalidAddr)
            st.amt.erase(r.a);
        else
            st.amt[r.a] = r.b;
        break;
      case JournalOp::RefAdd:
        ++st.refs[r.a];
        break;
      case JournalOp::RefRelease: {
        auto it = st.refs.find(r.a);
        if (it == st.refs.end()) {
            // A release whose matching add predates the checkpoint
            // horizon of a torn group; recovery's AMT reconciliation
            // re-derives the true count.
            break;
        }
        if (--it->second == 0)
            st.refs.erase(r.a);
        break;
      }
      case JournalOp::EfitInsert:
        st.fp[r.a] = r.value;
        break;
      case JournalOp::EfitEvict:
        st.fp.erase(r.a);
        break;
      case JournalOp::CtrBump:
        st.ctr[r.a] = r.value;
        break;
      case JournalOp::LineRetire:
        st.retired.insert(r.a);
        break;
      case JournalOp::DataWrite:
        break;
    }
    if (r.seq > st.seq)
        st.seq = r.seq;
}

} // namespace esd
