#include "persist/recovery.hh"

#include "common/config_io.hh"
#include "common/json.hh"
#include "ecc/ecc_engine.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

namespace
{

/**
 * Osiris-style counter probe: find the counter that decrypts @p line
 * at @p addr, trying the journaled value @p j first, then upward
 * through the slack window (un-journaled bumps whose data landed),
 * then downward (journaled bumps whose data write was lost). A
 * candidate is accepted when the decrypted plaintext re-encodes to
 * the stored line ECC.
 *
 * @return the accepted counter, or 0 when none decrypts within the
 *         probe budget (counters are >= 1 once a line was written).
 */
std::uint64_t
probeCounter(const CtrModeEngine &crypto, const EccEngine &ecc, Addr addr,
             const StoredLine &line, std::uint64_t j, std::uint64_t slack,
             std::uint64_t budget, std::uint64_t &probes_used)
{
    auto tryCtr = [&](std::uint64_t c) {
        ++probes_used;
        CacheLine plain = crypto.applyPad(addr, c, line.data);
        return ecc.encodeLine(plain) == line.ecc;
    };
    std::uint64_t lo = j > slack ? j - slack : 1;
    for (std::uint64_t c = j < 1 ? 1 : j;
         c <= j + slack && probes_used < budget; ++c) {
        if (tryCtr(c))
            return c;
    }
    for (std::uint64_t c = j; c-- > lo && probes_used < budget;) {
        if (tryCtr(c))
            return c;
    }
    return 0;
}

} // namespace

RecoveredState
recoverFromImage(const CrashImage &img, const PersistenceConfig &cfg,
                 const CtrModeEngine &crypto, const EccEngine &ecc)
{
    RecoveredState out;
    RecoverySummary &s = out.summary;

    // 1. Replay the durable journal over the checkpoint.
    CheckpointState st = img.checkpoint;
    for (const JournalRecord &r : img.records)
        applyRecord(st, r);
    s.recordsReplayed = img.records.size();
    s.tornRecords = img.tornRecords;
    out.retired = st.retired;

    std::uint64_t slack =
        cfg.counterSlack != 0
            ? cfg.counterSlack
            : (img.domain == PersistDomain::Adr ? cfg.epochWrites : 1);
    out.ctrFloorDefault = slack;

    // 2. Counter recovery over every surviving line.
    FlatSet<Addr> live;
    for (const auto &[addr, line] : img.content) {
        auto it = st.ctr.find(addr);
        std::uint64_t j = it == st.ctr.end() ? 0 : it->second;
        std::uint64_t probes = 0;
        std::uint64_t found = probeCounter(crypto, ecc, addr, line, j, slack,
                                           cfg.counterProbeMax, probes);
        s.countersProbed += probes;
        std::uint64_t safe = j;
        if (found != 0) {
            out.ctrDecrypt[addr] = found;
            live.insert(addr);
            if (found != j)
                ++s.countersRepaired;
            if (found > safe)
                safe = found;
        } else {
            ++s.countersUnresolved;
        }
        out.ctrNext[addr] = safe + slack;
    }
    // Counters the journal named but whose line is gone (released or
    // reverted): the monotonic floor must survive so the address can
    // never restart low.
    for (const auto &[addr, j] : st.ctr)
        if (!out.ctrNext.count(addr))
            out.ctrNext[addr] = j + slack;

    s.liveLines = live.size();

    // 3. AMT reconciliation: drop mappings to dead or retired lines,
    // then re-derive refcounts from what survived (the AMT is the
    // authority — torn groups can strand an add without its update).
    for (const auto &[logical, phys] : st.amt) {
        if (live.count(phys) != 0 && st.retired.count(phys) == 0) {
            out.amt[logical] = phys;
            ++out.refs[phys];
        } else {
            ++s.mappingsInvalidated;
        }
    }
    for (const auto &[phys, n] : out.refs) {
        auto it = st.refs.find(phys);
        if (it == st.refs.end() || it->second != n)
            ++s.refcountsRepaired;
    }
    for (const auto &[phys, n] : st.refs)
        if (out.refs.count(phys) == 0)
            ++s.refcountsRepaired;

    // 4. Fingerprint pruning: an entry may only survive while its
    // physical line carries live references — anything else could
    // fake a dedup hit against dead content.
    for (const auto &[phys, key] : st.fp) {
        if (out.refs.count(phys) != 0)
            out.fp[phys] = key;
        else
            ++s.dedupHitsInvalidated;
    }

    // Orphans: decryptable lines no mapping reaches (leaked space a
    // background sweep would reclaim). In-place schemes address lines
    // directly, so the concept is void there.
    if (!img.inPlace) {
        for (Addr addr : live)
            if (out.refs.count(addr) == 0)
                ++s.linesOrphaned;
    }

    s.liveMappings = out.amt.size();
    s.ok = s.countersUnresolved == 0 && s.mappingsInvalidated == 0;
    return out;
}

PadSafetyReport
auditPadSafety(const RecoveredState &st, const CrashImage &img)
{
    PadSafetyReport rep;
    for (const auto &[addr, true_ctr] : img.trueCounters) {
        ++rep.countersChecked;
        auto it = st.ctrNext.find(addr);
        std::uint64_t floor =
            it == st.ctrNext.end() ? st.ctrFloorDefault : it->second;
        if (floor < true_ctr)
            ++rep.violations;
    }
    return rep;
}

void
writeRecoveryJson(std::ostream &os, const CrashImage &img,
                  const RecoveredState &st, int indent)
{
    const RecoverySummary &s = st.summary;
    JsonWriter w(os, indent);
    w.beginObject();
    w.key("crash");
    w.beginObject();
    w.kv("write_index", img.crashWriteIndex);
    w.kv("tick", img.tick);
    w.kv("domain", persistDomainName(img.domain));
    w.kv("phase", crashPhaseName(img.phase));
    w.kv("in_place", img.inPlace);
    w.kv("surviving_lines",
         static_cast<std::uint64_t>(img.content.size()));
    w.kv("durable_records",
         static_cast<std::uint64_t>(img.records.size()));
    w.kv("torn_records", img.tornRecords);
    w.endObject();
    w.key("recovery");
    w.beginObject();
    w.kv("records_replayed", s.recordsReplayed);
    w.kv("counters_probed", s.countersProbed);
    w.kv("counters_repaired", s.countersRepaired);
    w.kv("counters_unresolved", s.countersUnresolved);
    w.kv("refcounts_repaired", s.refcountsRepaired);
    w.kv("mappings_invalidated", s.mappingsInvalidated);
    w.kv("lines_orphaned", s.linesOrphaned);
    w.kv("dedup_hits_invalidated", s.dedupHitsInvalidated);
    w.kv("live_lines", s.liveLines);
    w.kv("live_mappings", s.liveMappings);
    w.kv("counter_floor_default", st.ctrFloorDefault);
    w.kv("ok", s.ok);
    w.endObject();
    w.endObject();
    os << "\n";
}

} // namespace esd
