/**
 * @file
 * Post-crash recovery: replay the durable journal over the last
 * checkpoint, rebuild derived state, and repair the encryption
 * counters so a stale counter can never reuse a pad.
 *
 * Recovery consumes only what the persistence domain preserved (a
 * CrashImage) plus the AES key (which lives in the processor's secure
 * region and survives by assumption):
 *
 *   1. Replay — fold checkpoint + durable records in seq order into
 *      the AMT / refcount / fingerprint / counter / retirement images.
 *   2. Counter recovery — for every surviving line, probe candidate
 *      counters around the journaled value (decrypt with the
 *      candidate, accept when the plaintext re-encodes to the stored
 *      line ECC — the Osiris trick of using ECC as a counter oracle).
 *      The forward-safe counter is max(probed, journaled) + slack,
 *      where slack bounds the un-journaled bumps an epoch can hide;
 *      lines the journal never named start from the same slack floor.
 *      Monotonicity repair therefore never hands out a used pad.
 *   3. Reconciliation — drop AMT mappings to dead/retired lines, re-
 *      derive refcounts from the surviving mappings (the AMT is
 *      authoritative; torn groups can leave counts skewed), and drop
 *      fingerprint entries whose physical line no longer carries a
 *      live reference so a stale entry can never fake a dedup hit.
 *
 * The result carries a machine-readable RecoverySummary (records
 * replayed, counters repaired, lines orphaned, dedup hits
 * invalidated, ...) and the pad-safety audit compares the recovered
 * counter floors against the image's ground-truth oracle.
 */

#ifndef ESD_PERSIST_RECOVERY_HH
#define ESD_PERSIST_RECOVERY_HH

#include <ostream>

#include "ecc/ecc_engine.hh"
#include "persist/persistence.hh"

namespace esd
{

/** Machine-readable recovery outcome. */
struct RecoverySummary
{
    std::uint64_t recordsReplayed = 0;   ///< durable records folded
    std::uint64_t tornRecords = 0;       ///< lost to the torn flush
    std::uint64_t countersProbed = 0;    ///< decrypt+ECC probe attempts
    std::uint64_t countersRepaired = 0;  ///< lines whose counter != journal
    std::uint64_t countersUnresolved = 0;///< lines no candidate decrypted
    std::uint64_t refcountsRepaired = 0; ///< lines re-derived from the AMT
    std::uint64_t mappingsInvalidated = 0;///< AMT entries to dead lines
    std::uint64_t linesOrphaned = 0;     ///< live content, zero references
    std::uint64_t dedupHitsInvalidated = 0;///< fingerprint entries dropped
    std::uint64_t liveLines = 0;         ///< decryptable surviving lines
    std::uint64_t liveMappings = 0;      ///< AMT entries after repair

    /** No live state was lost: every surviving counter resolved and
     * every mapping still points at a decryptable line. */
    bool ok = true;
};

/** Rebuilt post-crash state. */
struct RecoveredState
{
    /** Logical -> physical, pruned to decryptable live lines. */
    FlatMap<Addr, Addr> amt;

    /** Physical -> refcount, re-derived from the recovered AMT. */
    FlatMap<Addr, std::uint32_t> refs;

    /** Physical -> fingerprint key, pruned to referenced lines. */
    FlatMap<Addr, std::uint64_t> fp;

    /** Counter addr -> counter that decrypts the surviving content. */
    FlatMap<Addr, std::uint64_t> ctrDecrypt;

    /** Counter addr -> forward-safe floor: the next write to the addr
     * must use a counter strictly above this. Addresses absent here
     * fall under the default floor (effective slack). */
    FlatMap<Addr, std::uint64_t> ctrNext;

    /** Default ctrNext floor for addresses the journal never named. */
    std::uint64_t ctrFloorDefault = 0;

    FlatSet<Addr> retired;

    RecoverySummary summary;
};

/**
 * Run recovery on @p img. @p crypto supplies the surviving AES key
 * (counter probes decrypt with it); @p cfg supplies slack and probe
 * bounds; @p ecc must be the engine the crashed run encoded with, or
 * every counter probe's re-encode comparison is meaningless.
 */
RecoveredState recoverFromImage(
    const CrashImage &img, const PersistenceConfig &cfg,
    const CtrModeEngine &crypto,
    const EccEngine &ecc = eccEngine(EccEngineKind::Hamming));

/** Pad-reuse audit against the image's ground-truth counter oracle. */
struct PadSafetyReport
{
    std::uint64_t countersChecked = 0;

    /** Addresses whose recovered floor is below the true counter —
     * a future write could reuse a pad. Must be zero. */
    std::uint64_t violations = 0;
};

PadSafetyReport auditPadSafety(const RecoveredState &st,
                               const CrashImage &img);

/** Serialize the machine-readable recovery summary as JSON. */
void writeRecoveryJson(std::ostream &os, const CrashImage &img,
                       const RecoveredState &st, int indent = 2);

} // namespace esd

#endif // ESD_PERSIST_RECOVERY_HH
