/**
 * @file
 * The scheme abstraction: one object per evaluated design point
 * (Baseline, Dedup_SHA1, DeWrite, ESD) handling the write path (LLC
 * eviction) and the read path (LLC miss fill) against a shared PCM
 * timing device and content store.
 *
 * Every scheme reports the Fig. 17 write-latency breakdown
 * (fingerprint computation / fingerprint NVMM_lookup / read-for-
 * comparison / line write) and the side-band energy beyond the raw
 * device energy (hashing, encryption, metadata cache).
 */

#ifndef ESD_DEDUP_SCHEME_HH
#define ESD_DEDUP_SCHEME_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/write_trace.hh"
#include "crypto/ctr_mode.hh"
#include "dedup/amt.hh"
#include "dedup/line_store.hh"
#include "ecc/ecc_engine.hh"
#include "ecc/line_ecc.hh"
#include "metrics/profiler.hh"
#include "metrics/span_trace.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"
#include "persist/persistence.hh"
#include "ras/ras_engine.hh"

namespace esd
{

class StatRegistry;

/** Integrity of the data a read handed back. */
enum class ReadIntegrity
{
    Ok,             ///< clean (or never-written zero line)
    Corrected,      ///< media faults repaired by ECC
    Poisoned,       ///< line was retired after a UE; defined zero line
    Uncorrectable,  ///< double fault: the returned data is corrupt
};

const char *toString(ReadIntegrity integrity);

/** A decrypted, ECC-scrubbed stored line. */
struct VerifiedRead
{
    CacheLine line;
    ReadIntegrity integrity = ReadIntegrity::Ok;
};

/** Nanoseconds attributed to each write-path component (Fig. 17). */
struct WriteBreakdown
{
    double fpCompute = 0;    ///< hash / CRC fingerprint computation
    double fpNvmLookup = 0;  ///< fingerprint NVMM_lookup reads
    double readCompare = 0;  ///< reading candidate lines for comparison
    double lineWrite = 0;    ///< writing the unique line (incl. queue)
    double encrypt = 0;      ///< counter-mode pad application
    double metadata = 0;     ///< on-chip metadata cache accesses

    double
    total() const
    {
        return fpCompute + fpNvmLookup + readCompare + lineWrite +
               encrypt + metadata;
    }

    void
    add(const WriteBreakdown &o)
    {
        fpCompute += o.fpCompute;
        fpNvmLookup += o.fpNvmLookup;
        readCompare += o.readCompare;
        lineWrite += o.lineWrite;
        encrypt += o.encrypt;
        metadata += o.metadata;
    }
};

/** Result of one logical access through a scheme. */
struct AccessResult
{
    /** Observed latency in ns, from issue to completion. */
    Tick latency = 0;

    /** Stall imposed on the core (write-queue backpressure). */
    Tick issuerStall = 0;

    /** Write was eliminated by deduplication. */
    bool dedup = false;

    /** Integrity of the returned data (reads only). */
    ReadIntegrity integrity = ReadIntegrity::Ok;
};

/** Per-scheme aggregate statistics. */
struct SchemeStats
{
    Counter logicalWrites;
    Counter logicalReads;
    Counter dedupHits;           ///< eliminated data writes
    Counter dedupHitsZeroLine;
    Counter dedupHitsFpCache;    ///< duplicate found via on-chip fp entry
    Counter dedupHitsFpNvm;      ///< duplicate found via fp NVMM_lookup
    Counter nvmDataWrites;
    Counter nvmDataReads;
    Counter compareReads;        ///< byte-compare candidate fetches
    Counter compareMismatches;   ///< fingerprint collisions caught
    Counter fpNvmLookups;
    Counter fpNvmStores;
    Counter amtTrafficReads;
    Counter amtTrafficWrites;
    Counter refHOverflowRewrites;
    Counter eccCorrectedReads;      ///< media faults repaired on read
    Counter eccUncorrectableReads;  ///< double faults detected on read
    Counter sdcEvents;              ///< corrupt data returned to a consumer
    Counter poisonedReads;          ///< demand reads of retired lines
    Counter dedupSuspendedWrites;   ///< writes bypassing suspended dedup

    Energy hashEnergy = 0;       ///< SHA-1 / MD5 / CRC computation
    Energy cryptoEnergy = 0;     ///< counter-mode encryption
    Energy metadataEnergy = 0;   ///< on-chip metadata cache accesses

    WriteBreakdown breakdown;

    double
    writeReduction() const
    {
        return logicalWrites.value() == 0
                   ? 0.0
                   : static_cast<double>(dedupHits.value()) /
                         logicalWrites.value();
    }

    /** Register every field under "<prefix>." in @p reg. The struct's
     * address must be stable for the registry's lifetime (it is: it
     * sits by value inside the scheme, and resetStats() assigns over
     * it rather than replacing it). */
    void registerIn(StatRegistry &reg, const std::string &prefix) const;
};

/**
 * Base class wiring a scheme to the shared device/store and providing
 * the timed-access helpers every scheme uses.
 */
class DedupScheme
{
  public:
    DedupScheme(const SimConfig &cfg, PcmDevice &device, NvmStore &store);
    virtual ~DedupScheme() = default;

    DedupScheme(const DedupScheme &) = delete;
    DedupScheme &operator=(const DedupScheme &) = delete;

    /** Handle a dirty LLC eviction of @p data to logical @p addr. */
    virtual AccessResult write(Addr addr, const CacheLine &data,
                               Tick now) = 0;

    /** Handle an LLC miss fill; @p out receives the line content. */
    virtual AccessResult read(Addr addr, CacheLine &out, Tick now) = 0;

    /** Scheme display name. */
    virtual std::string name() const = 0;

    /** Bytes of scheme metadata resident in NVMM (Fig. 19). */
    virtual std::uint64_t metadataNvmBytes() const = 0;

    const SchemeStats &stats() const { return stats_; }

    virtual void
    resetStats()
    {
        stats_ = SchemeStats{};
        ras_.resetStats();
    }

    /** The scheme's RAS pipeline (fault planting and inspection in
     * tests and benches). */
    RasEngine &ras() { return ras_; }
    const RasEngine &ras() const { return ras_; }

    /**
     * Register this scheme's statistics (and those of any owned
     * metadata structures) in @p reg under hierarchical names
     * ("scheme.*", "esd.efit.*", "cache.amt.*", ...). Call once per
     * registry; the scheme must outlive it.
     */
    virtual void registerStats(StatRegistry &reg) const;

    /** Attach (or detach with nullptr) a write-event trace sink. */
    void setEventTrace(WriteEventTrace *trace) { trace_ = trace; }

    /** Attach (or detach with nullptr) a host-side phase profiler.
     * Detached (the default) every phase marker is one null check. */
    void setProfiler(Profiler *prof) { prof_ = prof; }

    /** Attach (or detach with nullptr) a simulated-time span trace.
     * Detached (the default) the write path pays one null check. */
    void setSpanTrace(SpanTrace *spans) { spans_ = spans; }

    /**
     * Attach (or detach with nullptr) the crash-consistency engine.
     * Attached, every crash-relevant metadata mutation (AMT updates,
     * refcount changes, fingerprint inserts/evicts, counter bumps,
     * retirements) journals through it and content writes report their
     * undo state. Detached (the default) the write path pays one null
     * check per mutation and behaves bit-identically to before the
     * subsystem existed.
     */
    virtual void
    setPersistence(PersistenceManager *pm)
    {
        persist_ = pm;
        ras_.setPersistence(pm);
        if (pm) {
            pm->attachCrypto(&crypto_);
            pm->setInPlace(persistInPlace());
        }
    }

    /** The scheme writes data at its logical address (no AMT
     * indirection) — recorded into crash images so recovery knows
     * whether orphaned lines are possible. */
    virtual bool persistInPlace() const { return true; }

    /** The counter-mode engine (holds the AES key that survives a
     * crash) — recovery decrypts counter probes with it. */
    const CtrModeEngine &crypto() const { return crypto_; }

    /** The line ECC engine this run fingerprints and scrubs with —
     * recovery re-encodes counter probes through the same codec. */
    const EccEngine &ecc() const { return ecc_; }

    /** Total scheme-side (non-device) energy in pJ. */
    Energy
    sideEnergy() const
    {
        return stats_.hashEnergy + stats_.cryptoEnergy +
               stats_.metadataEnergy;
    }

  protected:
    /** Host-profiling phase marker (no-op without a profiler). */
    Profiler::Scope
    profScope(Profiler::Phase phase)
    {
        return Profiler::Scope(prof_, phase);
    }

    /** Timed read of @p addr content; charges device stats, injects
     * read-path media faults, and follows retirement remaps. */
    NvmAccessResult
    deviceRead(Addr addr, Tick arrival)
    {
        Profiler::Scope ps(prof_, Profiler::Device);
        ras_.beforeRead(addr);
        return device_.access(OpType::Read, ras_.resolve(addr), arrival);
    }

    /** Timed write (metadata traffic); charges device stats and feeds
     * the patrol-scrub write budget. */
    NvmAccessResult
    deviceWrite(Addr addr, Tick arrival)
    {
        Profiler::Scope ps(prof_, Profiler::Device);
        NvmAccessResult r =
            device_.access(OpType::Write, ras_.resolve(addr), arrival);
        ras_.patrolTick(r.complete);
        return r;
    }

    /** Content write: store @p cipher + @p ecc at @p phys and issue
     * the timed device write through the RAS pipeline (fault
     * injection, write-verify/retry, retirement). */
    NvmAccessResult
    writeLine(Addr phys, const CacheLine &cipher, LineEcc ecc,
              Tick arrival)
    {
        Profiler::Scope ps(prof_, Profiler::Device);
        if (persist_) {
            // Capture the pre-write state before RAS overwrites it:
            // crash images revert writes still queued at the crash.
            const StoredLine *prev = store_.peek(lineAlign(phys));
            bool had = prev != nullptr;
            StoredLine old;
            if (had)
                old = *prev;
            NvmAccessResult r = ras_.storeAndWrite(phys, cipher, ecc,
                                                   arrival);
            persist_->noteLineWrite(phys, had ? &old : nullptr,
                                    r.complete);
            return r;
        }
        return ras_.storeAndWrite(phys, cipher, ecc, arrival);
    }

    /** Charge one metadata-cache access (latency returned, energy
     * accumulated). */
    Tick
    metadataAccess()
    {
        stats_.metadataEnergy += cfg_.crypto.metadataCacheEnergy;
        return cfg_.crypto.metadataCacheLatency;
    }

    /** Encrypt @p plain for physical @p phys, charging cost and
     * journaling the counter bump. */
    CacheLine
    encryptLine(Addr phys, const CacheLine &plain)
    {
        Profiler::Scope ps(prof_, Profiler::Encrypt);
        stats_.cryptoEnergy += cfg_.crypto.encryptEnergy;
        CacheLine out = crypto_.encrypt(phys, plain);
        if (persist_)
            persist_->note(JournalOp::CtrBump, lineAlign(phys),
                           kInvalidAddr, crypto_.counter(phys));
        return out;
    }

    /** Decrypt the stored line at @p phys. */
    CacheLine
    decryptLine(Addr phys, const CacheLine &cipher) const
    {
        return crypto_.decrypt(phys, cipher);
    }

    /**
     * Decrypt and ECC-scrub a stored line on the read path. Counter
     * mode maps each flipped ciphertext bit to exactly one plaintext
     * bit, so the per-word SEC-DED (computed over plaintext) corrects
     * single media faults after decryption and flags double faults.
     *
     * Corrected reads trigger a demand scrub; uncorrectable ones run
     * the retirement policy and return the corrupt plaintext marked
     * Uncorrectable — the *caller* decides whether handing it on is a
     * silent data corruption (demand fills) or a detected failure
     * (candidate compares, which simply never match).
     */
    VerifiedRead
    verifyStored(Addr phys, const StoredLine &stored, Tick now)
    {
        VerifiedRead out;
        CacheLine plain = decryptLine(phys, stored.data);
        LineDecodeResult r = ecc_.decodeLine(plain, stored.ecc);
        if (r.status == EccStatus::Uncorrectable) {
            stats_.eccUncorrectableReads.inc();
            if (!ras_.enabled()) {
                // Legacy offline-injection path: corruption is
                // unexpected, make it loud.
                esd_warn("uncorrectable media fault at phys 0x%llx",
                         static_cast<unsigned long long>(phys));
            }
            ras_.onUncorrectable(phys, now);
            out.line = plain;
            out.integrity = ReadIntegrity::Uncorrectable;
            return out;
        }
        if (r.correctedWords > 0) {
            stats_.eccCorrectedReads.inc();
            ras_.demandScrub(phys, r.line, r.ecc, now);
            out.integrity = ReadIntegrity::Corrected;
        }
        out.line = r.line;
        return out;
    }

    /**
     * Demand-fill fetch of the stored content at @p phys: handles
     * poisoned (retired) and never-written lines, then verifies.
     * Callers must count sdcEvents when forwarding Uncorrectable data.
     */
    VerifiedRead
    fetchStored(Addr phys, Tick now)
    {
        VerifiedRead out;
        out.line = CacheLine{};
        if (ras_.isPoisoned(phys)) {
            stats_.poisonedReads.inc();
            out.integrity = ReadIntegrity::Poisoned;
            return out;
        }
        const StoredLine *stored = store_.peek(phys);
        if (!stored)
            return out;
        return verifyStored(phys, *stored, now);
    }

    /**
     * Verified byte comparison of @p data against the stored candidate
     * at @p cand. Correctable media faults are repaired (and scrubbed)
     * before comparing, so a single-bit fault cannot defeat
     * deduplication; uncorrectable or poisoned candidates never match,
     * so a fault can never produce a wrong dedup hit.
     *
     * @param plain_out when non-null, receives the corrected plaintext
     */
    bool
    compareStored(Addr cand, const CacheLine &data, Tick now,
                  CacheLine *plain_out = nullptr)
    {
        Profiler::Scope ps(prof_, Profiler::Compare);
        if (ras_.isPoisoned(cand))
            return false;
        const StoredLine *stored = store_.peek(cand);
        if (!stored)
            return false;
        VerifiedRead vr = verifyStored(cand, *stored, now);
        if (plain_out)
            *plain_out = vr.line;
        return vr.integrity != ReadIntegrity::Uncorrectable &&
               linesEqualFast(vr.line, data);
    }

    /** Memory channel servicing @p addr — also the metadata shard the
     * schemes probe, so dedup lookups on different channels touch
     * disjoint EFIT/AMT/fingerprint partitions. */
    unsigned channelOf(Addr addr) const { return device_.channelOf(addr); }

    /** Partition count for per-channel metadata shards. */
    unsigned metadataShards() const { return device_.channelCount(); }

    /** True when dedup is suspended by the RAS UE policy; counts the
     * bypassed write. Call once per write at the fingerprint probe. */
    bool
    dedupSuspended()
    {
        if (!ras_.dedupSuspended())
            return false;
        stats_.dedupSuspendedWrites.inc();
        return true;
    }

    /**
     * Emit one write-path trace record and, when a span trace is
     * attached and admits this write, the per-phase span tree (no-op
     * without sinks — two pointer tests on the hot path).
     *
     * @param bank_addr the decisive device access's address: the new
     *        physical line for unique writes, the compared candidate
     *        for dedup hits (its bank and queue wait are what the
     *        record reports)
     * @param bd this write's latency breakdown — the span slices
     */
    void
    traceWrite(Tick now, Addr addr, std::uint64_t fp, FpProbe probe,
               CompareVerdict compare, WriteOutcome outcome,
               Addr bank_addr, Tick queue_wait, Tick encrypt_ns,
               Tick latency, const WriteBreakdown &bd)
    {
        if (trace_) {
            WriteEvent e;
            e.tick = now;
            e.addr = addr;
            e.fingerprint = fp;
            e.probe = probe;
            e.compare = compare;
            e.outcome = outcome;
            e.bank =
                static_cast<std::uint16_t>(device_.bankOf(bank_addr));
            e.channel =
                static_cast<std::uint16_t>(device_.channelOf(bank_addr));
            e.queueWaitNs = queue_wait;
            e.encryptNs = encrypt_ns;
            e.latencyNs = latency;
            trace_->record(e);
        }
        if (spans_ && spans_->admitWrite())
            emitWriteSpans(now, addr, fp, probe, compare, outcome,
                           bank_addr, queue_wait, latency, bd);
    }

    /** Cold path of traceWrite: the admitted write's span tree. */
    void emitWriteSpans(Tick now, Addr addr, std::uint64_t fp,
                        FpProbe probe, CompareVerdict compare,
                        WriteOutcome outcome, Addr bank_addr,
                        Tick queue_wait, Tick latency,
                        const WriteBreakdown &bd);

    /** Journal one metadata mutation (no-op when detached). */
    void
    noteJournal(JournalOp op, Addr a, Addr b = kInvalidAddr,
                std::uint64_t value = 0)
    {
        if (persist_)
            persist_->note(op, a, b, value);
    }

    SimConfig cfg_;
    PcmDevice &device_;
    NvmStore &store_;
    CtrModeEngine crypto_;
    const EccEngine &ecc_;
    RasEngine ras_;
    SchemeStats stats_;
    WriteEventTrace *trace_ = nullptr;
    Profiler *prof_ = nullptr;
    SpanTrace *spans_ = nullptr;
    PersistenceManager *persist_ = nullptr;
};

} // namespace esd

#endif // ESD_DEDUP_SCHEME_HH
