/**
 * @file
 * The scheme abstraction: one object per evaluated design point
 * (Baseline, Dedup_SHA1, DeWrite, ESD) handling the write path (LLC
 * eviction) and the read path (LLC miss fill) against a shared PCM
 * timing device and content store.
 *
 * Every scheme reports the Fig. 17 write-latency breakdown
 * (fingerprint computation / fingerprint NVMM_lookup / read-for-
 * comparison / line write) and the side-band energy beyond the raw
 * device energy (hashing, encryption, metadata cache).
 */

#ifndef ESD_DEDUP_SCHEME_HH
#define ESD_DEDUP_SCHEME_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/write_trace.hh"
#include "crypto/ctr_mode.hh"
#include "dedup/amt.hh"
#include "dedup/line_store.hh"
#include "ecc/line_ecc.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{

class StatRegistry;

/** Nanoseconds attributed to each write-path component (Fig. 17). */
struct WriteBreakdown
{
    double fpCompute = 0;    ///< hash / CRC fingerprint computation
    double fpNvmLookup = 0;  ///< fingerprint NVMM_lookup reads
    double readCompare = 0;  ///< reading candidate lines for comparison
    double lineWrite = 0;    ///< writing the unique line (incl. queue)
    double encrypt = 0;      ///< counter-mode pad application
    double metadata = 0;     ///< on-chip metadata cache accesses

    double
    total() const
    {
        return fpCompute + fpNvmLookup + readCompare + lineWrite +
               encrypt + metadata;
    }

    void
    add(const WriteBreakdown &o)
    {
        fpCompute += o.fpCompute;
        fpNvmLookup += o.fpNvmLookup;
        readCompare += o.readCompare;
        lineWrite += o.lineWrite;
        encrypt += o.encrypt;
        metadata += o.metadata;
    }
};

/** Result of one logical access through a scheme. */
struct AccessResult
{
    /** Observed latency in ns, from issue to completion. */
    Tick latency = 0;

    /** Stall imposed on the core (write-queue backpressure). */
    Tick issuerStall = 0;

    /** Write was eliminated by deduplication. */
    bool dedup = false;
};

/** Per-scheme aggregate statistics. */
struct SchemeStats
{
    Counter logicalWrites;
    Counter logicalReads;
    Counter dedupHits;           ///< eliminated data writes
    Counter dedupHitsZeroLine;
    Counter dedupHitsFpCache;    ///< duplicate found via on-chip fp entry
    Counter dedupHitsFpNvm;      ///< duplicate found via fp NVMM_lookup
    Counter nvmDataWrites;
    Counter nvmDataReads;
    Counter compareReads;        ///< byte-compare candidate fetches
    Counter compareMismatches;   ///< fingerprint collisions caught
    Counter fpNvmLookups;
    Counter fpNvmStores;
    Counter amtTrafficReads;
    Counter amtTrafficWrites;
    Counter refHOverflowRewrites;
    Counter eccCorrectedReads;      ///< media faults repaired on read
    Counter eccUncorrectableReads;  ///< double faults detected on read

    Energy hashEnergy = 0;       ///< SHA-1 / MD5 / CRC computation
    Energy cryptoEnergy = 0;     ///< counter-mode encryption
    Energy metadataEnergy = 0;   ///< on-chip metadata cache accesses

    WriteBreakdown breakdown;

    double
    writeReduction() const
    {
        return logicalWrites.value() == 0
                   ? 0.0
                   : static_cast<double>(dedupHits.value()) /
                         logicalWrites.value();
    }

    /** Register every field under "<prefix>." in @p reg. The struct's
     * address must be stable for the registry's lifetime (it is: it
     * sits by value inside the scheme, and resetStats() assigns over
     * it rather than replacing it). */
    void registerIn(StatRegistry &reg, const std::string &prefix) const;
};

/**
 * Base class wiring a scheme to the shared device/store and providing
 * the timed-access helpers every scheme uses.
 */
class DedupScheme
{
  public:
    DedupScheme(const SimConfig &cfg, PcmDevice &device, NvmStore &store);
    virtual ~DedupScheme() = default;

    DedupScheme(const DedupScheme &) = delete;
    DedupScheme &operator=(const DedupScheme &) = delete;

    /** Handle a dirty LLC eviction of @p data to logical @p addr. */
    virtual AccessResult write(Addr addr, const CacheLine &data,
                               Tick now) = 0;

    /** Handle an LLC miss fill; @p out receives the line content. */
    virtual AccessResult read(Addr addr, CacheLine &out, Tick now) = 0;

    /** Scheme display name. */
    virtual std::string name() const = 0;

    /** Bytes of scheme metadata resident in NVMM (Fig. 19). */
    virtual std::uint64_t metadataNvmBytes() const = 0;

    const SchemeStats &stats() const { return stats_; }
    virtual void resetStats() { stats_ = SchemeStats{}; }

    /**
     * Register this scheme's statistics (and those of any owned
     * metadata structures) in @p reg under hierarchical names
     * ("scheme.*", "esd.efit.*", "cache.amt.*", ...). Call once per
     * registry; the scheme must outlive it.
     */
    virtual void registerStats(StatRegistry &reg) const;

    /** Attach (or detach with nullptr) a write-event trace sink. */
    void setEventTrace(WriteEventTrace *trace) { trace_ = trace; }

    /** Total scheme-side (non-device) energy in pJ. */
    Energy
    sideEnergy() const
    {
        return stats_.hashEnergy + stats_.cryptoEnergy +
               stats_.metadataEnergy;
    }

  protected:
    /** Timed read of @p addr content; charges device stats. */
    NvmAccessResult
    deviceRead(Addr addr, Tick arrival)
    {
        return device_.access(OpType::Read, addr, arrival);
    }

    /** Timed write; charges device stats. */
    NvmAccessResult
    deviceWrite(Addr addr, Tick arrival)
    {
        return device_.access(OpType::Write, addr, arrival);
    }

    /** Charge one metadata-cache access (latency returned, energy
     * accumulated). */
    Tick
    metadataAccess()
    {
        stats_.metadataEnergy += cfg_.crypto.metadataCacheEnergy;
        return cfg_.crypto.metadataCacheLatency;
    }

    /** Encrypt @p plain for physical @p phys, charging cost. */
    CacheLine
    encryptLine(Addr phys, const CacheLine &plain)
    {
        stats_.cryptoEnergy += cfg_.crypto.encryptEnergy;
        return crypto_.encrypt(phys, plain);
    }

    /** Decrypt the stored line at @p phys. */
    CacheLine
    decryptLine(Addr phys, const CacheLine &cipher) const
    {
        return crypto_.decrypt(phys, cipher);
    }

    /**
     * Decrypt and ECC-scrub a stored line on the read path. Counter
     * mode maps each flipped ciphertext bit to exactly one plaintext
     * bit, so the per-word SEC-DED (computed over plaintext) corrects
     * single media faults after decryption and flags double faults.
     */
    CacheLine
    readVerified(Addr phys, const StoredLine &stored)
    {
        CacheLine plain = decryptLine(phys, stored.data);
        LineDecodeResult r = LineEccCodec::decode(plain, stored.ecc);
        if (r.status == EccStatus::Uncorrectable) {
            stats_.eccUncorrectableReads.inc();
            esd_warn("uncorrectable media fault at phys 0x%llx",
                     static_cast<unsigned long long>(phys));
            return plain;
        }
        if (r.correctedWords > 0)
            stats_.eccCorrectedReads.inc();
        return r.line;
    }

    /**
     * Emit one write-path trace record (no-op without an attached
     * trace — one pointer test on the hot path).
     *
     * @param bank_addr the decisive device access's address: the new
     *        physical line for unique writes, the compared candidate
     *        for dedup hits (its bank and queue wait are what the
     *        record reports)
     */
    void
    traceWrite(Tick now, Addr addr, std::uint64_t fp, FpProbe probe,
               CompareVerdict compare, WriteOutcome outcome,
               Addr bank_addr, Tick queue_wait, Tick encrypt_ns,
               Tick latency)
    {
        if (!trace_)
            return;
        WriteEvent e;
        e.tick = now;
        e.addr = addr;
        e.fingerprint = fp;
        e.probe = probe;
        e.compare = compare;
        e.outcome = outcome;
        e.bank = static_cast<std::uint16_t>(device_.bankOf(bank_addr));
        e.queueWaitNs = queue_wait;
        e.encryptNs = encrypt_ns;
        e.latencyNs = latency;
        trace_->record(e);
    }

    SimConfig cfg_;
    PcmDevice &device_;
    NvmStore &store_;
    CtrModeEngine crypto_;
    SchemeStats stats_;
    WriteEventTrace *trace_ = nullptr;
};

} // namespace esd

#endif // ESD_DEDUP_SCHEME_HH
