/**
 * @file
 * Reference-counted physical line allocation for deduplicating schemes.
 *
 * Dedup decouples logical addresses from physical lines: many logical
 * lines may reference one stored physical line. The LineStore owns
 * that relationship — allocating physical line addresses (bump pointer
 * plus free list), counting references, and releasing content back to
 * the NvmStore when the last reference dies.
 */

#ifndef ESD_DEDUP_LINE_STORE_HH
#define ESD_DEDUP_LINE_STORE_HH

#include <vector>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "nvm/nvm_store.hh"

namespace esd
{

/** Physical-line allocator with reference counting.
 *
 * With @p shards > 1 the allocator hands out per-shard address
 * streams: shard s only produces lines with lineIndex % shards == s,
 * so a line allocated for a logical address lands on the same memory
 * channel (the device uses the identical mod-N interleave). One shard
 * reproduces the original bump-pointer sequence exactly. */
class LineStore
{
  public:
    explicit LineStore(NvmStore &store, unsigned shards = 1)
        : store_(store), shards_(shards), bump_(shards), free_(shards)
    {
        esd_assert(shards_ > 0, "line store needs at least one shard");
    }

    /** Allocate a fresh physical line address in @p shard (refcount
     * starts at 0; callers addRef() for each mapping created). */
    Addr
    allocate(unsigned shard = 0)
    {
        esd_assert(shard < shards_, "line store shard out of range");
        Addr phys;
        if (!free_[shard].empty()) {
            phys = free_[shard].back();
            free_[shard].pop_back();
        } else {
            phys = (bump_[shard] * shards_ + shard) * kLineSize;
            ++bump_[shard];
            esd_assert(lineIndex(phys) < store_.capacityLines(),
                       "physical line space exhausted");
        }
        refs_[phys] = 0;
        return phys;
    }

    /** Shard owning physical line @p phys (the device interleave). */
    unsigned
    shardOf(Addr phys) const
    {
        return static_cast<unsigned>(lineIndex(phys) % shards_);
    }

    /** Add one reference to @p phys. */
    void
    addRef(Addr phys)
    {
        auto it = refs_.find(lineAlign(phys));
        esd_assert(it != refs_.end(), "addRef on unallocated line");
        ++it->second;
    }

    /**
     * Drop one reference.
     * @return true when the line died (content erased, address freed —
     *         or, under deferred reclamation, queued to be).
     */
    bool
    release(Addr phys)
    {
        phys = lineAlign(phys);
        auto it = refs_.find(phys);
        esd_assert(it != refs_.end(), "release on unallocated line");
        esd_assert(it->second > 0, "refcount underflow");
        if (--it->second == 0) {
            refs_.erase(it);
            if (deferred_) {
                pendingFree_.push_back(phys);
            } else {
                store_.erase(phys);
                free_[shardOf(phys)].push_back(phys);
            }
            return true;
        }
        return false;
    }

    /**
     * Defer the destructive half of release() (content erase + free-
     * list push) until promoteFreed(). Crash consistency needs this: a
     * physical line must not be reused before the journal record that
     * released it commits, or recovery could resurrect a mapping onto
     * foreign content. Off (the default) release() is immediate and
     * allocation order is bit-identical to the pre-persistence code.
     */
    void
    setDeferredReclaim(bool on)
    {
        esd_assert(on || pendingFree_.empty(),
                   "disabling deferred reclaim with frees pending");
        deferred_ = on;
    }

    /** Reclaim every deferred-dead line (call at epoch commit). */
    void
    promoteFreed()
    {
        for (Addr phys : pendingFree_) {
            store_.erase(phys);
            free_[shardOf(phys)].push_back(phys);
        }
        pendingFree_.clear();
    }

    /** Current reference count (0 when unknown). */
    std::uint32_t
    refCount(Addr phys) const
    {
        auto it = refs_.find(lineAlign(phys));
        return it == refs_.end() ? 0 : it->second;
    }

    bool
    isLive(Addr phys) const
    {
        return refs_.count(lineAlign(phys)) != 0;
    }

    /** Live unique physical lines. */
    std::uint64_t liveLines() const { return refs_.size(); }

    /** All live (phys, refcount) pairs — for the Fig. 3 analysis. */
    const FlatMap<Addr, std::uint32_t> &refTable() const
    {
        return refs_;
    }

  private:
    NvmStore &store_;
    unsigned shards_;
    FlatMap<Addr, std::uint32_t> refs_;
    std::vector<std::uint64_t> bump_;           ///< per-shard bump pointer
    std::vector<std::vector<Addr>> free_;       ///< per-shard free lists
    std::vector<Addr> pendingFree_;             ///< dead, awaiting commit
    bool deferred_ = false;
};

} // namespace esd

#endif // ESD_DEDUP_LINE_STORE_HH
