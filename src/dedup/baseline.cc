#include "dedup/baseline.hh"

namespace esd
{

AccessResult
BaselineScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;

    addr = lineAlign(addr);
    Tick t = now;

    Tick enc = cfg_.crypto.encryptLatency;
    CacheLine cipher = encryptLine(addr, data);
    t += enc;
    bd.encrypt += static_cast<double>(enc);

    LineEcc ecc;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        ecc = ecc_.encodeLine(data);
    }
    NvmAccessResult r = writeLine(addr, cipher, ecc, t);
    bd.lineWrite += static_cast<double>(r.complete - t);
    stats_.nvmDataWrites.inc();
    noteJournal(JournalOp::DataWrite, addr);

    res.latency = r.complete - now;
    res.issuerStall = r.issuerStall;
    stats_.breakdown.add(bd);

    // No fingerprinting at all: every write is unique by construction.
    traceWrite(now, addr, ecc, FpProbe::None, CompareVerdict::None,
               WriteOutcome::Unique, addr, r.queueDelay, enc,
               res.latency, bd);
    return res;
}

AccessResult
BaselineScheme::read(Addr addr, CacheLine &out, Tick now)
{
    stats_.logicalReads.inc();
    AccessResult res;

    addr = lineAlign(addr);
    NvmAccessResult r = deviceRead(addr, now);
    stats_.nvmDataReads.inc();

    VerifiedRead vr = fetchStored(addr, r.complete);
    out = vr.line;
    res.integrity = vr.integrity;
    if (vr.integrity == ReadIntegrity::Uncorrectable)
        stats_.sdcEvents.inc();

    res.latency = r.complete - now;
    return res;
}

} // namespace esd
