#include "dedup/efit.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

void
Efit::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("lookups"), stats_.lookups);
    reg.addCounter(n("hits"), stats_.hits);
    reg.addCounter(n("misses"), stats_.misses);
    reg.addCounter(n("inserts"), stats_.inserts);
    reg.addCounter(n("evictions"), stats_.evictions);
    reg.addCounter(n("evictions_ref1"), stats_.evictionsRef1,
                   "victims whose referH was 1 (the LRCU target)");
    reg.addCounter(n("decay_rounds"), stats_.decayRounds);
    reg.addCounter(n("referh_saturations"), stats_.referHSaturations);

    reg.addGauge(n("hit_rate"), [this] { return stats_.hitRate(); });
    reg.addGauge(n("occupancy"),
                 [this] { return static_cast<double>(validEntries()); },
                 "valid entries currently cached");
    reg.addGauge(n("capacity"), [this] {
        return static_cast<double>(capacityEntries());
    });
}

Efit::Efit(const MetadataConfig &cfg, unsigned shards)
    : cfg_(cfg), shards_(shards), assoc_(cfg.efitAssoc)
{
    std::uint64_t entries = cfg.efitCacheBytes / cfg.efitEntryBytes;
    if (entries < assoc_)
        esd_fatal("EFIT cache too small for %u ways", assoc_);
    if (shards_ == 0)
        esd_fatal("EFIT needs at least one shard");
    std::uint64_t total_sets = entries / assoc_;
    if (total_sets < shards_)
        esd_fatal("EFIT cache too small for %u shards", shards_);
    // Round the capacity down to a whole number of sets per shard so
    // every channel owns an equal partition. One shard keeps the full
    // set count (unsharded behaviour unchanged).
    setsPerShard_ = total_sets / shards_;
    sets_ = setsPerShard_ * shards_;
    entries_.resize(sets_ * assoc_);
}

std::uint64_t
Efit::setOf(LineEcc ecc, unsigned shard) const
{
    esd_assert(shard < shards_, "EFIT shard out of range");
    // Mix the 64-bit fingerprint before indexing: check bytes of
    // structured data are far from uniform.
    std::uint64_t h = ecc;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return shard * setsPerShard_ + h % setsPerShard_;
}

Efit::Entry *
Efit::lookup(LineEcc ecc, unsigned shard)
{
    stats_.lookups.inc();
    std::uint64_t base = setOf(ecc, shard) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.ecc == ecc) {
            stats_.hits.inc();
            e.lastUse = ++useClock_;
            return &e;
        }
    }
    stats_.misses.inc();
    return nullptr;
}

void
Efit::insert(LineEcc ecc, Addr phys, unsigned shard)
{
    stats_.inserts.inc();
    std::uint64_t base = setOf(ecc, shard) * assoc_;

    // Reuse an invalid way when available; otherwise LRCU: evict the
    // way with the smallest referH (prioritising referH == 1), break
    // ties by least-recent use. With useLrcu disabled this degenerates
    // to plain LRU for the Fig. 18 ablation.
    Entry *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim) {
            victim = &e;
            continue;
        }
        bool better;
        if (cfg_.useLrcu) {
            better = e.referH < victim->referH ||
                     (e.referH == victim->referH &&
                      e.lastUse < victim->lastUse);
        } else {
            better = e.lastUse < victim->lastUse;
        }
        if (better)
            victim = &e;
    }

    if (victim->valid) {
        stats_.evictions.inc();
        if (victim->referH <= 1)
            stats_.evictionsRef1.inc();
    }

    victim->valid = true;
    victim->ecc = ecc;
    victim->phys = PackedPhys::fromAddr(phys);
    victim->referH = 1;
    victim->lastUse = ++useClock_;

    if (cfg_.decayPeriod > 0 &&
        ++insertsSinceDecay_ >= cfg_.decayPeriod) {
        insertsSinceDecay_ = 0;
        decayAll();
    }
}

bool
Efit::bumpRef(Entry *entry)
{
    esd_assert(entry && entry->valid, "bumpRef on invalid entry");
    if (entry->referH >= cfg_.referHMax) {
        stats_.referHSaturations.inc();
        return false;
    }
    ++entry->referH;
    return true;
}

void
Efit::erase(LineEcc ecc, Addr phys, unsigned shard)
{
    std::uint64_t base = setOf(ecc, shard) * assoc_;
    PackedPhys packed = PackedPhys::fromAddr(phys);
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.ecc == ecc && e.phys == packed) {
            e.valid = false;
            return;
        }
    }
}

void
Efit::decayAll()
{
    stats_.decayRounds.inc();
    for (Entry &e : entries_) {
        if (!e.valid)
            continue;
        if (e.referH > cfg_.decayDelta)
            e.referH -= cfg_.decayDelta;
        else
            e.referH = 1;
    }
}

std::uint64_t
Efit::validEntries() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

std::vector<Efit::Entry>
Efit::snapshotValid() const
{
    std::vector<Entry> out;
    for (const Entry &e : entries_)
        if (e.valid)
            out.push_back(e);
    return out;
}

} // namespace esd
