/**
 * @file
 * ESD — the paper's contribution (Section III): ECC-assisted,
 * selective deduplication for encrypted NVMM.
 *
 * Write path:
 *   1. the per-line ECC already computed by the memory controller is
 *      intercepted as a free fingerprint (no hash latency or energy);
 *   2. the EFIT (on-chip only) is probed — a miss *definitively* means
 *      no cached duplicate: encrypt and write, then insert the
 *      fingerprint under LRCU replacement;
 *   3. a hit means "similar": the candidate is read back from NVMM
 *      (cheap — reads are half the cost of writes on PCM) and byte-
 *      compared; equality dedups the write, inequality was an ECC
 *      collision and the line is written normally.
 *
 * There is no fingerprint store in NVMM at all — the selective part —
 * so the fingerprint NVMM_lookup bottleneck (Fig. 5) and its space
 * overhead (Fig. 19) vanish. A saturated referH (1 byte) causes the
 * paper's "treat as new line" rewrite.
 */

#ifndef ESD_DEDUP_ESD_HH
#define ESD_DEDUP_ESD_HH


#include "common/flat_map.hh"
#include "dedup/efit.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{

/** The ESD scheme. */
class EsdScheme : public MappedDedupScheme
{
  public:
    EsdScheme(const SimConfig &cfg, PcmDevice &device, NvmStore &store);

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;

    std::string name() const override { return "ESD"; }

    /** Adds the EFIT under "esd.efit.*". */
    void registerStats(StatRegistry &reg) const override;

    /** Only the AMT lives in NVMM — no fingerprint store. */
    std::uint64_t metadataNvmBytes() const override
    {
        return amt_.nvmBytes();
    }

    const Efit &efit() const { return efit_; }

  protected:
    void onPhysFreed(Addr phys) override;

    Efit efit_;
    FlatMap<Addr, LineEcc> physToEcc_;
};

} // namespace esd

#endif // ESD_DEDUP_ESD_HH
