/**
 * @file
 * Full-deduplication fingerprint table, as used by Dedup_SHA1 and
 * DeWrite (Section II-B / Fig. 10): the complete fingerprint index
 * resides in NVMM while a small on-chip cache holds recently used
 * entries. A cache miss forces a fingerprint NVMM_lookup — the exact
 * bottleneck ESD's selective deduplication eliminates.
 */

#ifndef ESD_DEDUP_FP_TABLE_HH
#define ESD_DEDUP_FP_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dedup/amt.hh"

namespace esd
{

/** Fingerprint table statistics. */
struct FpTableStats
{
    Counter lookups;
    Counter cacheHits;
    Counter cacheMisses;
    Counter nvmLookups;      ///< reads of the NVMM-resident index
    Counter nvmFoundAfterMiss;
    Counter nvmStores;       ///< index inserts written to NVMM
    Counter erases;

    double
    cacheHitRate() const
    {
        return lookups.value() == 0
                   ? 0.0
                   : static_cast<double>(cacheHits.value()) /
                         lookups.value();
    }
};

/**
 * The fingerprint index: full map "in NVMM" + set-associative on-chip
 * cache keyed by a 64-bit fingerprint.
 */
class FpTable
{
  public:
    /**
     * @param cache_bytes on-chip cache capacity
     * @param entry_bytes modelled entry size (SHA-1: 26 B; DeWrite:
     *                    ~16 B) — determines cached entry count and the
     *                    Fig. 19 NVMM space accounting
     * @param assoc       cache associativity
     * @param nvm_base    byte address of the NVMM-resident index region
     * @param shards      partition the cache sets and the NVMM index
     *                    into this many per-channel shards; one shard
     *                    (the default) reproduces the unsharded table
     */
    FpTable(std::uint64_t cache_bytes, std::uint64_t entry_bytes,
            unsigned assoc, Addr nvm_base, unsigned shards = 1);

    struct LookupResult
    {
        bool found = false;       ///< fingerprint known to the system
        Addr phys = kInvalidAddr; ///< stored line it references
        bool cacheHit = false;    ///< resolved without NVMM access
        bool nvmLookup = false;   ///< an NVMM index read was required
        Addr nvmAddr = kInvalidAddr;
    };

    /** Query @p fp in @p shard; misses consult (and cache from) the
     * NVMM index. */
    LookupResult lookup(std::uint64_t fp, unsigned shard = 0);

    /**
     * Register a fresh fingerprint for the line at @p phys. The write
     * to the NVMM-resident index is reported through @p nvm_store_addr
     * so the scheme can charge a device write.
     */
    void insert(std::uint64_t fp, Addr phys, Addr &nvm_store_addr,
                unsigned shard = 0);

    /** Remove @p fp from @p shard (its physical line died). */
    void erase(std::uint64_t fp, unsigned shard = 0);

    /** NVMM line address of @p fp 's index bucket in @p shard. */
    Addr entryNvmAddr(std::uint64_t fp, unsigned shard = 0) const;

    /** Entries resident in the NVMM index (all shards). */
    std::uint64_t
    nvmEntries() const
    {
        std::uint64_t n = 0;
        for (const auto &m : maps_)
            n += m.size();
        return n;
    }

    /** NVMM bytes consumed by the index (Fig. 19). */
    std::uint64_t nvmBytes() const { return nvmEntries() * entryBytes_; }

    std::uint64_t cacheCapacityEntries() const { return sets_ * assoc_; }

    const FpTableStats &stats() const { return stats_; }
    void resetStats() { stats_ = FpTableStats{}; }

    /** Register counters, hit rate, and footprint under
     * "<prefix>.*". */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t fp = 0;
        PackedPhys phys;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(std::uint64_t fp, unsigned shard) const;
    Way *findWay(std::uint64_t fp, unsigned shard);
    void fill(std::uint64_t fp, PackedPhys phys, unsigned shard);

    std::uint64_t entryBytes_;
    Addr nvmBase_;
    std::uint64_t sets_;
    std::uint64_t setsPerShard_;
    unsigned shards_;
    unsigned assoc_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_;

    /** Authoritative NVMM-resident index, one partition per shard
     * (functional model). */
    std::vector<FlatMap<std::uint64_t, PackedPhys>> maps_;

    FpTableStats stats_;
};

} // namespace esd

#endif // ESD_DEDUP_FP_TABLE_HH
