/**
 * @file
 * Offline exact-deduplication analysis of a write stream — produces
 * the workload characterisation the paper opens with:
 *   - duplicate rate of cache lines (Fig. 1),
 *   - reference-count distribution before dedup and occupied-space
 *     distribution after dedup (Fig. 3),
 *   - zero-line share.
 *
 * This is ground truth (content-hash exact match), independent of any
 * scheme's fingerprints or caches.
 */

#ifndef ESD_DEDUP_ANALYZER_HH
#define ESD_DEDUP_ANALYZER_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace esd
{

/** Streaming exact-dedup analyser. */
class DedupAnalyzer
{
  public:
    /** Feed one written line. */
    void
    addWrite(const CacheLine &line)
    {
        ++totalWrites_;
        if (line.isZero())
            ++zeroWrites_;
        std::uint64_t key = line.contentHash();
        auto [it, inserted] = refs_.emplace(key, 0);
        if (!inserted)
            ++duplicateWrites_;
        ++it->second;
    }

    std::uint64_t totalWrites() const { return totalWrites_; }
    std::uint64_t duplicateWrites() const { return duplicateWrites_; }
    std::uint64_t uniqueLines() const { return refs_.size(); }
    std::uint64_t zeroWrites() const { return zeroWrites_; }

    /** Fraction of written lines whose content was seen before. */
    double
    duplicateRate() const
    {
        return totalWrites_ == 0
                   ? 0.0
                   : static_cast<double>(duplicateWrites_) / totalWrites_;
    }

    /** The Fig. 3 bucket histogram over unique-line reference counts. */
    RefCountBuckets
    buckets() const
    {
        RefCountBuckets b;
        for (const auto &[key, refs] : refs_)
            b.add(refs);
        return b;
    }

    void
    reset()
    {
        refs_.clear();
        totalWrites_ = duplicateWrites_ = zeroWrites_ = 0;
    }

  private:
    FlatMap<std::uint64_t, std::uint64_t> refs_;
    std::uint64_t totalWrites_ = 0;
    std::uint64_t duplicateWrites_ = 0;
    std::uint64_t zeroWrites_ = 0;
};

} // namespace esd

#endif // ESD_DEDUP_ANALYZER_HH
