/**
 * @file
 * Address Mapping Table (AMT) — Section III-B.
 *
 * The AMT records the many-to-one mapping from a logical line address
 * (what the LLC evicts) to the physical line that stores its content.
 * The full table lives in NVMM; hot entries are buffered in a 512 KB
 * on-chip cache inside the memory controller. A lookup that misses the
 * cache costs a real NVMM read (reported to the caller so the scheme
 * can charge the device access); dirty cache evictions cost an NVMM
 * write-back.
 *
 * Entries model the paper's 40-bit split physical address:
 * Addr_base (4 B, 8-bit left shift) + Addr_offsets (1 B), addressing
 * 64 TB of line-granular space.
 *
 * The on-chip cache is organised at NVMM-line granularity: several
 * consecutive logical lines' entries (64 B / amtEntryBytes) share one
 * cached block, so spatially local updates coalesce into a single
 * dirty write-back — matching how a real controller moves metadata.
 */

#ifndef ESD_DEDUP_AMT_HH
#define ESD_DEDUP_AMT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace esd
{

class StatRegistry;

/** Packed 40-bit physical address in the paper's base+offset format. */
struct PackedPhys
{
    std::uint32_t base = 0;    ///< Addr_base: upper 32 of 40 line bits
    std::uint8_t offset = 0;   ///< Addr_offsets: low 8 bits

    /** Pack a physical line address. */
    static PackedPhys
    fromAddr(Addr phys)
    {
        std::uint64_t line = lineIndex(phys);
        PackedPhys p;
        p.base = static_cast<std::uint32_t>(line >> 8);
        p.offset = static_cast<std::uint8_t>(line & 0xff);
        return p;
    }

    /** Unpack back to a byte address: (base << 8 | offset) * 64. */
    Addr
    toAddr() const
    {
        std::uint64_t line =
            (static_cast<std::uint64_t>(base) << 8) | offset;
        return line * kLineSize;
    }

    bool
    operator==(const PackedPhys &o) const
    {
        return base == o.base && offset == o.offset;
    }
};

/** What a metadata operation had to touch — the caller translates
 * these into timed device accesses. */
struct MetadataEffects
{
    /** The on-chip cache missed and an NVMM read of the table entry's
     * line was required. */
    bool nvmRead = false;

    /** Address of the entry line read from NVMM (valid iff nvmRead). */
    Addr nvmReadAddr = kInvalidAddr;

    /** A dirty cached entry was displaced and written back. */
    bool nvmWriteback = false;
    Addr nvmWritebackAddr = kInvalidAddr;
};

/** AMT statistics. */
struct AmtStats
{
    Counter lookups;
    Counter cacheHits;
    Counter cacheMisses;
    Counter nvmReads;
    Counter nvmWritebacks;
    Counter updates;

    double
    hitRate() const
    {
        return lookups.value() == 0
                   ? 0.0
                   : static_cast<double>(cacheHits.value()) /
                         lookups.value();
    }
};

/**
 * The AMT: full logical->physical map plus a set-associative hot-entry
 * cache with write-back semantics.
 */
class Amt
{
  public:
    /**
     * @param cfg       metadata sizing (cache bytes, entry bytes, assoc)
     * @param nvm_base  byte address where the NVMM-resident table
     *                  begins (entries are packed amtEntryBytes apart)
     * @param shards    partition the cache sets per memory channel.
     *                  The AMT is keyed by logical address, so the
     *                  shard is derived internally from the entry
     *                  block with the same mod-N interleave the device
     *                  uses; one shard (default) is the unsharded
     *                  cache.
     */
    Amt(const MetadataConfig &cfg, Addr nvm_base, unsigned shards = 1);

    /** Result of a lookup. */
    struct LookupResult
    {
        bool found = false;      ///< a mapping exists
        Addr phys = kInvalidAddr;
        bool cacheHit = false;   ///< served from the on-chip cache
        MetadataEffects effects;
    };

    /** Find the physical line of @p logical (read path). */
    LookupResult lookup(Addr logical);

    /**
     * Install/overwrite the mapping (write path). The entry becomes
     * dirty in the cache; the returned effects may include a write-back
     * of a displaced dirty entry (and a fill read when the paper's
     * write-allocate behaviour misses).
     */
    MetadataEffects update(Addr logical, Addr phys);

    /** Previous mapping of @p logical without touching the cache —
     * used by write paths to find the reference to release. */
    std::optional<Addr> peek(Addr logical) const;

    /** NVMM line address holding @p logical 's entry. */
    Addr entryNvmAddr(Addr logical) const;

    /** Mappings resident in the (conceptual) NVMM table. */
    std::uint64_t mappingCount() const { return map_.size(); }

    /** NVMM bytes consumed by the table (Fig. 19 accounting). */
    std::uint64_t
    nvmBytes() const
    {
        return map_.size() * cfg_.amtEntryBytes;
    }

    const AmtStats &stats() const { return stats_; }
    void resetStats() { stats_ = AmtStats{}; }

    /** Register counters, hit rate, and footprint under
     * "<prefix>.*". */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Logical-line entries the cache can hold. */
    std::uint64_t
    cacheEntries() const
    {
        return sets_ * assoc_ * entriesPerBlock_;
    }

    /** Consecutive logical lines sharing one cached 64 B block. */
    std::uint64_t entriesPerBlock() const { return entriesPerBlock_; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;   ///< entry-block index (group of lines)
        std::uint64_t lastUse = 0;
    };

    std::uint64_t groupOf(std::uint64_t line) const
    {
        return line / entriesPerBlock_;
    }

    /** Set index of @p group: its shard's partition, indexed by the
     * group bits above the shard selector. */
    std::uint64_t
    setOf(std::uint64_t group) const
    {
        std::uint64_t shard = group % shards_;
        return shard * setsPerShard_ + (group / shards_) % setsPerShard_;
    }

    Way *findWay(std::uint64_t group);
    /** Insert @p group, returning the displaced dirty victim group
     * when a write-back is needed. */
    std::optional<std::uint64_t> fill(std::uint64_t group, bool dirty);

    MetadataConfig cfg_;
    Addr nvmBase_;
    std::uint64_t entriesPerBlock_;
    std::uint64_t sets_;
    std::uint64_t setsPerShard_;
    unsigned shards_;
    unsigned assoc_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_;

    /** The authoritative NVMM-resident table (functional model). */
    FlatMap<std::uint64_t, PackedPhys> map_;

    AmtStats stats_;
};

} // namespace esd

#endif // ESD_DEDUP_AMT_HH
