#include "dedup/scheme.hh"

#include "common/stat_registry.hh"

namespace esd
{

const char *
toString(ReadIntegrity integrity)
{
    switch (integrity) {
    case ReadIntegrity::Ok:
        return "ok";
    case ReadIntegrity::Corrected:
        return "corrected";
    case ReadIntegrity::Poisoned:
        return "poisoned";
    case ReadIntegrity::Uncorrectable:
        return "uncorrectable";
    }
    return "?";
}

void
SchemeStats::registerIn(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("logical_writes"), logicalWrites);
    reg.addCounter(n("logical_reads"), logicalReads);
    reg.addCounter(n("dedup_hits"), dedupHits,
                   "data writes eliminated by deduplication");
    reg.addCounter(n("dedup_hits_zero_line"), dedupHitsZeroLine);
    reg.addCounter(n("dedup_hits_fp_cache"), dedupHitsFpCache);
    reg.addCounter(n("dedup_hits_fp_nvm"), dedupHitsFpNvm);
    reg.addCounter(n("nvm_data_writes"), nvmDataWrites);
    reg.addCounter(n("nvm_data_reads"), nvmDataReads);
    reg.addCounter(n("compare_reads"), compareReads);
    reg.addCounter(n("compare_mismatches"), compareMismatches,
                   "fingerprint collisions caught by byte comparison");
    reg.addCounter(n("fp_nvm_lookups"), fpNvmLookups);
    reg.addCounter(n("fp_nvm_stores"), fpNvmStores);
    reg.addCounter(n("amt_traffic_reads"), amtTrafficReads);
    reg.addCounter(n("amt_traffic_writes"), amtTrafficWrites);
    reg.addCounter(n("referh_overflow_rewrites"), refHOverflowRewrites);
    reg.addCounter(n("ecc_corrected_reads"), eccCorrectedReads);
    reg.addCounter(n("ecc_uncorrectable_reads"), eccUncorrectableReads);
    reg.addCounter(n("sdc_events"), sdcEvents,
                   "corrupt data returned to a consumer");
    reg.addCounter(n("poisoned_reads"), poisonedReads,
                   "demand reads of retired (poisoned) lines");
    reg.addCounter(n("dedup_suspended_writes"), dedupSuspendedWrites,
                   "writes that bypassed suspended deduplication");

    reg.addGauge(n("dedup_rate"), [this] { return writeReduction(); },
                 "dedup_hits / logical_writes");
    reg.addGauge(n("energy.hash_pj"), [this] { return hashEnergy; });
    reg.addGauge(n("energy.crypto_pj"), [this] { return cryptoEnergy; });
    reg.addGauge(n("energy.metadata_pj"),
                 [this] { return metadataEnergy; });

    reg.addGauge(n("breakdown.fp_compute_ns"),
                 [this] { return breakdown.fpCompute; });
    reg.addGauge(n("breakdown.fp_nvm_lookup_ns"),
                 [this] { return breakdown.fpNvmLookup; });
    reg.addGauge(n("breakdown.read_compare_ns"),
                 [this] { return breakdown.readCompare; });
    reg.addGauge(n("breakdown.line_write_ns"),
                 [this] { return breakdown.lineWrite; });
    reg.addGauge(n("breakdown.encrypt_ns"),
                 [this] { return breakdown.encrypt; });
    reg.addGauge(n("breakdown.metadata_ns"),
                 [this] { return breakdown.metadata; });
}

void
DedupScheme::registerStats(StatRegistry &reg) const
{
    stats_.registerIn(reg, "scheme");
    ras_.registerStats(reg, "ras");
}

namespace
{

AesKey
defaultKey(std::uint64_t seed)
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>((seed >> ((i % 8) * 8)) ^
                                           (0x5a + i));
    return key;
}

} // namespace

DedupScheme::DedupScheme(const SimConfig &cfg, PcmDevice &device,
                         NvmStore &store)
    : cfg_(cfg), device_(device), store_(store),
      crypto_(defaultKey(cfg.seed)),
      ecc_(eccEngine(cfg.ecc.engine)),
      ras_(cfg.ras, store, device, crypto_, ecc_, cfg.seed)
{
}

void
DedupScheme::emitWriteSpans(Tick now, Addr addr, std::uint64_t fp,
                            FpProbe probe, CompareVerdict compare,
                            WriteOutcome outcome, Addr bank_addr,
                            Tick queue_wait, Tick latency,
                            const WriteBreakdown &bd)
{
    // Parent span: the whole logical write, with the verdicts a
    // pipeline investigation needs as args.
    spans_->span(
        SpanTrace::kPipelineTrack, "write", now, latency,
        {SpanTrace::str("outcome", writeOutcomeName(outcome)),
         SpanTrace::str("efit", fpProbeName(probe)),
         SpanTrace::str("compare", compareVerdictName(compare)),
         SpanTrace::hex("fp", fp), SpanTrace::hex("addr", addr),
         SpanTrace::num("channel", device_.channelOf(bank_addr)),
         SpanTrace::num("bank", device_.bankOf(bank_addr)),
         SpanTrace::num("wpq_wait_ns",
                        static_cast<std::uint64_t>(queue_wait))});

    // Child slices: the Fig. 17 phases laid out back to back in
    // pipeline order. The breakdown components are critical-path ns,
    // so the slices tile the parent up to queue/verify residue.
    struct Slice
    {
        const char *name;
        double ns;
    };
    const Slice slices[] = {
        {"fingerprint", bd.fpCompute}, {"metadata", bd.metadata},
        {"fp_nvm_lookup", bd.fpNvmLookup},
        {"read_compare", bd.readCompare}, {"encrypt", bd.encrypt},
        {"line_write", bd.lineWrite}};
    Tick cursor = now;
    for (const Slice &s : slices) {
        auto dur = static_cast<Tick>(s.ns);
        if (dur == 0)
            continue;
        spans_->span(SpanTrace::kPipelineTrack, s.name, cursor, dur);
        cursor += dur;
    }
}

} // namespace esd
