#include "dedup/scheme.hh"

namespace esd
{

namespace
{

AesKey
defaultKey(std::uint64_t seed)
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>((seed >> ((i % 8) * 8)) ^
                                           (0x5a + i));
    return key;
}

} // namespace

DedupScheme::DedupScheme(const SimConfig &cfg, PcmDevice &device,
                         NvmStore &store)
    : cfg_(cfg), device_(device), store_(store),
      crypto_(defaultKey(cfg.seed))
{
}

} // namespace esd
