#include "dedup/scheme.hh"

#include "common/stat_registry.hh"

namespace esd
{

const char *
toString(ReadIntegrity integrity)
{
    switch (integrity) {
    case ReadIntegrity::Ok:
        return "ok";
    case ReadIntegrity::Corrected:
        return "corrected";
    case ReadIntegrity::Poisoned:
        return "poisoned";
    case ReadIntegrity::Uncorrectable:
        return "uncorrectable";
    }
    return "?";
}

void
SchemeStats::registerIn(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("logical_writes"), logicalWrites);
    reg.addCounter(n("logical_reads"), logicalReads);
    reg.addCounter(n("dedup_hits"), dedupHits,
                   "data writes eliminated by deduplication");
    reg.addCounter(n("dedup_hits_zero_line"), dedupHitsZeroLine);
    reg.addCounter(n("dedup_hits_fp_cache"), dedupHitsFpCache);
    reg.addCounter(n("dedup_hits_fp_nvm"), dedupHitsFpNvm);
    reg.addCounter(n("nvm_data_writes"), nvmDataWrites);
    reg.addCounter(n("nvm_data_reads"), nvmDataReads);
    reg.addCounter(n("compare_reads"), compareReads);
    reg.addCounter(n("compare_mismatches"), compareMismatches,
                   "fingerprint collisions caught by byte comparison");
    reg.addCounter(n("fp_nvm_lookups"), fpNvmLookups);
    reg.addCounter(n("fp_nvm_stores"), fpNvmStores);
    reg.addCounter(n("amt_traffic_reads"), amtTrafficReads);
    reg.addCounter(n("amt_traffic_writes"), amtTrafficWrites);
    reg.addCounter(n("referh_overflow_rewrites"), refHOverflowRewrites);
    reg.addCounter(n("ecc_corrected_reads"), eccCorrectedReads);
    reg.addCounter(n("ecc_uncorrectable_reads"), eccUncorrectableReads);
    reg.addCounter(n("sdc_events"), sdcEvents,
                   "corrupt data returned to a consumer");
    reg.addCounter(n("poisoned_reads"), poisonedReads,
                   "demand reads of retired (poisoned) lines");
    reg.addCounter(n("dedup_suspended_writes"), dedupSuspendedWrites,
                   "writes that bypassed suspended deduplication");

    reg.addGauge(n("dedup_rate"), [this] { return writeReduction(); },
                 "dedup_hits / logical_writes");
    reg.addGauge(n("energy.hash_pj"), [this] { return hashEnergy; });
    reg.addGauge(n("energy.crypto_pj"), [this] { return cryptoEnergy; });
    reg.addGauge(n("energy.metadata_pj"),
                 [this] { return metadataEnergy; });

    reg.addGauge(n("breakdown.fp_compute_ns"),
                 [this] { return breakdown.fpCompute; });
    reg.addGauge(n("breakdown.fp_nvm_lookup_ns"),
                 [this] { return breakdown.fpNvmLookup; });
    reg.addGauge(n("breakdown.read_compare_ns"),
                 [this] { return breakdown.readCompare; });
    reg.addGauge(n("breakdown.line_write_ns"),
                 [this] { return breakdown.lineWrite; });
    reg.addGauge(n("breakdown.encrypt_ns"),
                 [this] { return breakdown.encrypt; });
    reg.addGauge(n("breakdown.metadata_ns"),
                 [this] { return breakdown.metadata; });
}

void
DedupScheme::registerStats(StatRegistry &reg) const
{
    stats_.registerIn(reg, "scheme");
    ras_.registerStats(reg, "ras");
}

namespace
{

AesKey
defaultKey(std::uint64_t seed)
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>((seed >> ((i % 8) * 8)) ^
                                           (0x5a + i));
    return key;
}

} // namespace

DedupScheme::DedupScheme(const SimConfig &cfg, PcmDevice &device,
                         NvmStore &store)
    : cfg_(cfg), device_(device), store_(store),
      crypto_(defaultKey(cfg.seed)),
      ras_(cfg.ras, store, device, crypto_, cfg.seed)
{
}

} // namespace esd
