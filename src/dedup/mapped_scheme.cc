#include "dedup/mapped_scheme.hh"

namespace esd
{

namespace
{

/** The NVMM-resident AMT region sits above the data region. */
constexpr Addr kAmtRegionBase = 8ull << 30;

} // namespace

MappedDedupScheme::MappedDedupScheme(const SimConfig &cfg,
                                     PcmDevice &device, NvmStore &store)
    : DedupScheme(cfg, device, store),
      lines_(store, device.channelCount()),
      amt_(cfg.metadata, kAmtRegionBase, device.channelCount())
{
    // RAS retirement must see dedup reference counts (blast radius)
    // and invalidate the scheme's fingerprint metadata.
    RasEngine::Hooks hooks;
    hooks.refCountOf = [this](Addr phys) {
        return static_cast<std::uint64_t>(lines_.refCount(phys));
    };
    hooks.onRetire = [this](Addr phys) { onPhysFreed(phys); };
    ras_.setHooks(std::move(hooks));
}

void
MappedDedupScheme::registerStats(StatRegistry &reg) const
{
    DedupScheme::registerStats(reg);
    amt_.registerStats(reg, "cache.amt");
}

void
MappedDedupScheme::setPersistence(PersistenceManager *pm)
{
    DedupScheme::setPersistence(pm);
    lines_.setDeferredReclaim(pm != nullptr);
    if (pm)
        pm->setEpochCommitHook([this] { lines_.promoteFreed(); });
}

Tick
MappedDedupScheme::remap(Addr addr, Addr phys, Tick &t, WriteBreakdown &bd)
{
    Tick stall = 0;

    // Rewriting an address with its current mapping (the common case
    // for in-place duplicate rewrites) changes nothing: charge the
    // cache probe, leave the AMT clean.
    std::optional<Addr> old;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        old = amt_.peek(addr);
    }
    if (old && *old == phys) {
        Tick m = metadataAccess();
        t += m;
        bd.metadata += static_cast<double>(m);
        return stall;
    }

    // Order matters: take the new reference before dropping the old
    // one so remapping an address to its current line is a no-op.
    bool freed = false;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        lines_.addRef(phys);
        noteJournal(JournalOp::RefAdd, phys);
        if (old) {
            bool was_live = lines_.isLive(*old);
            freed = was_live && lines_.release(*old);
            if (was_live)
                noteJournal(JournalOp::RefRelease, *old);
        }
    }
    if (freed)
        onPhysFreed(*old);

    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    MetadataEffects eff;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        eff = amt_.update(addr, phys);
    }
    noteJournal(JournalOp::AmtUpdate, addr, phys);
    if (eff.nvmWriteback) {
        // Dirty metadata write-back: off the critical path but real
        // device traffic (and possible queue backpressure).
        stats_.amtTrafficWrites.inc();
        NvmAccessResult r = deviceWrite(eff.nvmWritebackAddr, t);
        stall += r.issuerStall;
    }
    return stall;
}

NvmAccessResult
MappedDedupScheme::writeNewLine(Addr addr, const CacheLine &data,
                                Addr &phys_out, Tick &t,
                                WriteBreakdown &bd)
{
    // Allocate on the logical address's channel so the data write, and
    // every later dedup probe for this content, stay channel-local.
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        phys_out = lines_.allocate(channelOf(addr));
    }

    Tick enc = cfg_.crypto.encryptLatency;
    CacheLine cipher = encryptLine(phys_out, data);
    t += enc;
    bd.encrypt += static_cast<double>(enc);

    LineEcc ecc;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        ecc = ecc_.encodeLine(data);
    }
    NvmAccessResult r = writeLine(phys_out, cipher, ecc, t);
    bd.lineWrite += static_cast<double>(r.complete - t);
    t = r.complete;
    stats_.nvmDataWrites.inc();
    return r;
}

AccessResult
MappedDedupScheme::read(Addr addr, CacheLine &out, Tick now)
{
    stats_.logicalReads.inc();
    AccessResult res;
    Tick t = now + metadataAccess();

    Amt::LookupResult lr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        lr = amt_.lookup(addr);
    }
    if (lr.effects.nvmRead) {
        stats_.amtTrafficReads.inc();
        NvmAccessResult r = deviceRead(lr.effects.nvmReadAddr, t);
        t = r.complete;
    }
    if (lr.effects.nvmWriteback) {
        stats_.amtTrafficWrites.inc();
        NvmAccessResult r = deviceWrite(lr.effects.nvmWritebackAddr, t);
        res.issuerStall += r.issuerStall;
    }

    // A never-written logical line has no mapping: the access still
    // costs a device read (of the uninitialised location), but the
    // content is the initialised-to-zero line — it must NOT alias
    // into the deduplicated physical space, which holds other
    // addresses' data.
    Addr phys = lr.found ? lr.phys : addr;

    NvmAccessResult r = deviceRead(phys, t);
    t = r.complete;
    stats_.nvmDataReads.inc();

    out = CacheLine{};
    if (lr.found) {
        VerifiedRead vr = fetchStored(phys, t);
        out = vr.line;
        res.integrity = vr.integrity;
        if (vr.integrity == ReadIntegrity::Uncorrectable)
            stats_.sdcEvents.inc();
    }

    res.latency = t - now;
    return res;
}

} // namespace esd
