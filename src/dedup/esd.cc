#include "dedup/esd.hh"

namespace esd
{

EsdScheme::EsdScheme(const SimConfig &cfg, PcmDevice &device,
                     NvmStore &store)
    : MappedDedupScheme(cfg, device, store),
      efit_(cfg.metadata, device.channelCount())
{
}

void
EsdScheme::registerStats(StatRegistry &reg) const
{
    MappedDedupScheme::registerStats(reg);
    efit_.registerStats(reg, "esd.efit");
}

void
EsdScheme::onPhysFreed(Addr phys)
{
    Profiler::Scope ps = profScope(Profiler::Lookup);
    auto it = physToEcc_.find(phys);
    if (it != physToEcc_.end()) {
        // Lines allocate on their logical address's channel, so the
        // owning EFIT shard is recoverable from the physical address.
        efit_.erase(it->second, phys, channelOf(phys));
        physToEcc_.erase(it);
        noteJournal(JournalOp::EfitEvict, phys);
    }
}

AccessResult
EsdScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);

    // 1. The fingerprint is the ECC the controller already computed —
    //    zero latency, zero energy on the critical path.
    LineEcc ecc;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        ecc = ecc_.encodeLine(data);
    }
    Tick t = now + cfg_.crypto.eccLatency;
    bd.fpCompute += static_cast<double>(cfg_.crypto.eccLatency);
    stats_.hashEnergy += cfg_.crypto.eccEnergy;

    // 2. EFIT probe — on-chip only; a miss never consults NVMM.
    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    // The RAS UE policy can suspend dedup: skip the probe, never
    // insert, and let every write take the unique path.
    bool suspended = dedupSuspended();
    unsigned shard = channelOf(addr);
    Efit::Entry *entry = nullptr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        if (!suspended)
            entry = efit_.lookup(ecc, shard);
    }
    bool dedup_done = false;
    bool saturated_rewrite = false;

    FpProbe probe = FpProbe::Miss;
    CompareVerdict verdict = CompareVerdict::None;
    Addr decisive_addr = addr;
    Tick decisive_queue = 0;
    Tick encrypt_ns = 0;

    if (entry && lines_.isLive(entry->phys.toAddr())) {
        probe = FpProbe::Hit;
        // 3. Similar line: fetch and byte-compare (PCM reads are half
        //    the cost of the write being saved — the asymmetry the
        //    selective design exploits).
        Addr cand = entry->phys.toAddr();
        NvmAccessResult r = deviceRead(cand, t);
        bd.readCompare += static_cast<double>(r.complete - t);
        t = r.complete;
        decisive_addr = cand;
        decisive_queue = r.queueDelay;
        stats_.compareReads.inc();
        stats_.metadataEnergy += cfg_.crypto.compareEnergy;
        t += cfg_.crypto.compareLatency;

        if (compareStored(cand, data, t)) {
            verdict = CompareVerdict::Equal;
            if (efit_.bumpRef(entry)) {
                // Duplicate eliminated.
                stats_.dedupHits.inc();
                if (data.isZero())
                    stats_.dedupHitsZeroLine.inc();
                stats_.dedupHitsFpCache.inc();
                res.issuerStall += remap(addr, cand, t, bd);
                res.dedup = true;
                dedup_done = true;
            } else {
                // referH saturated: the paper writes the line as a new
                // cache line and updates the AMT (Section III-D); the
                // fresh copy becomes the dedup target from now on.
                stats_.refHOverflowRewrites.inc();
                saturated_rewrite = true;
            }
        } else {
            // ECC collision caught by the content comparison.
            stats_.compareMismatches.inc();
            verdict = CompareVerdict::Mismatch;
        }
    } else if (entry) {
        // Stale entry whose line died — drop it.
        Profiler::Scope ps = profScope(Profiler::Lookup);
        noteJournal(JournalOp::EfitEvict, entry->phys.toAddr());
        efit_.erase(entry->ecc, entry->phys.toAddr(), shard);
    }

    if (!dedup_done) {
        // Non-duplicate (or collision / saturation): encrypt + write,
        // then remember the fingerprint under LRCU.
        Addr phys;
        NvmAccessResult w = writeNewLine(addr, data, phys, t, bd);
        res.issuerStall += w.issuerStall;
        decisive_addr = phys;
        decisive_queue = w.queueDelay;
        encrypt_ns = cfg_.crypto.encryptLatency;

        {
            Profiler::Scope ps = profScope(Profiler::Lookup);
            if (saturated_rewrite) {
                // Retarget the saturated entry instead of duplicating
                // it.
                noteJournal(JournalOp::EfitEvict, entry->phys.toAddr());
                efit_.redirect(entry, phys);
                physToEcc_[phys] = ecc;
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            ecc);
            } else if (!suspended) {
                efit_.insert(ecc, phys, shard);
                physToEcc_[phys] = ecc;
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            ecc);
            }
        }

        res.issuerStall += remap(addr, phys, t, bd);
    }

    res.latency = t - now;
    stats_.breakdown.add(bd);

    WriteOutcome outcome = WriteOutcome::Unique;
    if (dedup_done)
        outcome = WriteOutcome::Dedup;
    else if (saturated_rewrite)
        outcome = WriteOutcome::SaturatedRewrite;
    else if (verdict == CompareVerdict::Mismatch)
        outcome = WriteOutcome::Collision;
    traceWrite(now, addr, ecc, probe, verdict, outcome, decisive_addr,
               decisive_queue, encrypt_ns, res.latency, bd);
    return res;
}

} // namespace esd
