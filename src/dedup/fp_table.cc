#include "dedup/fp_table.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

void
FpTable::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("lookups"), stats_.lookups);
    reg.addCounter(n("cache_hits"), stats_.cacheHits);
    reg.addCounter(n("cache_misses"), stats_.cacheMisses);
    reg.addCounter(n("nvm_lookups"), stats_.nvmLookups);
    reg.addCounter(n("nvm_found_after_miss"), stats_.nvmFoundAfterMiss);
    reg.addCounter(n("nvm_stores"), stats_.nvmStores);
    reg.addCounter(n("erases"), stats_.erases);

    reg.addGauge(n("hit_rate"),
                 [this] { return stats_.cacheHitRate(); });
    reg.addGauge(n("nvm_entries"), [this] {
        return static_cast<double>(nvmEntries());
    });
    reg.addGauge(n("nvm_bytes"),
                 [this] { return static_cast<double>(nvmBytes()); });
}

FpTable::FpTable(std::uint64_t cache_bytes, std::uint64_t entry_bytes,
                 unsigned assoc, Addr nvm_base)
    : entryBytes_(entry_bytes), nvmBase_(nvm_base), assoc_(assoc)
{
    esd_assert(entry_bytes > 0 && assoc > 0, "bad fp table geometry");
    std::uint64_t entries = cache_bytes / entry_bytes;
    if (entries < assoc)
        esd_fatal("fingerprint cache too small for %u ways", assoc);
    sets_ = entries / assoc;
    ways_.resize(sets_ * assoc_);
}

std::uint64_t
FpTable::setOf(std::uint64_t fp) const
{
    std::uint64_t h = fp;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h % sets_;
}

Addr
FpTable::entryNvmAddr(std::uint64_t fp) const
{
    // Bucket the index by fingerprint hash; entries pack into lines.
    std::uint64_t bucket = setOf(fp) * assoc_ ;
    return lineAlign(nvmBase_ + bucket * entryBytes_);
}

FpTable::Way *
FpTable::findWay(std::uint64_t fp)
{
    std::uint64_t base = setOf(fp) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.fp == fp)
            return &way;
    }
    return nullptr;
}

void
FpTable::fill(std::uint64_t fp, PackedPhys phys)
{
    std::uint64_t base = setOf(fp) * assoc_;
    Way *lru = &ways_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &cand = ways_[base + w];
        if (!cand.valid) {
            lru = &cand;
            break;
        }
        if (cand.lastUse < lru->lastUse)
            lru = &cand;
    }
    lru->valid = true;
    lru->fp = fp;
    lru->phys = phys;
    lru->lastUse = ++useClock_;
}

FpTable::LookupResult
FpTable::lookup(std::uint64_t fp)
{
    LookupResult res;
    stats_.lookups.inc();

    if (Way *way = findWay(fp)) {
        stats_.cacheHits.inc();
        way->lastUse = ++useClock_;
        res.found = true;
        res.cacheHit = true;
        res.phys = way->phys.toAddr();
        return res;
    }

    stats_.cacheMisses.inc();
    // Full dedup must consult the NVMM-resident index before declaring
    // the line unique — this is the fingerprint NVMM_lookup.
    stats_.nvmLookups.inc();
    res.nvmLookup = true;
    res.nvmAddr = entryNvmAddr(fp);

    auto it = map_.find(fp);
    if (it == map_.end())
        return res;

    stats_.nvmFoundAfterMiss.inc();
    res.found = true;
    res.phys = it->second.toAddr();
    fill(fp, it->second);
    return res;
}

void
FpTable::insert(std::uint64_t fp, Addr phys, Addr &nvm_store_addr)
{
    PackedPhys packed = PackedPhys::fromAddr(phys);
    map_[fp] = packed;
    fill(fp, packed);
    stats_.nvmStores.inc();
    nvm_store_addr = entryNvmAddr(fp);
}

void
FpTable::erase(std::uint64_t fp)
{
    stats_.erases.inc();
    map_.erase(fp);
    std::uint64_t base = setOf(fp) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.fp == fp) {
            way.valid = false;
            return;
        }
    }
}

} // namespace esd
