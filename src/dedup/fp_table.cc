#include "dedup/fp_table.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

void
FpTable::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("lookups"), stats_.lookups);
    reg.addCounter(n("cache_hits"), stats_.cacheHits);
    reg.addCounter(n("cache_misses"), stats_.cacheMisses);
    reg.addCounter(n("nvm_lookups"), stats_.nvmLookups);
    reg.addCounter(n("nvm_found_after_miss"), stats_.nvmFoundAfterMiss);
    reg.addCounter(n("nvm_stores"), stats_.nvmStores);
    reg.addCounter(n("erases"), stats_.erases);

    reg.addGauge(n("hit_rate"),
                 [this] { return stats_.cacheHitRate(); });
    reg.addGauge(n("nvm_entries"), [this] {
        return static_cast<double>(nvmEntries());
    });
    reg.addGauge(n("nvm_bytes"),
                 [this] { return static_cast<double>(nvmBytes()); });
}

FpTable::FpTable(std::uint64_t cache_bytes, std::uint64_t entry_bytes,
                 unsigned assoc, Addr nvm_base, unsigned shards)
    : entryBytes_(entry_bytes), nvmBase_(nvm_base), shards_(shards),
      assoc_(assoc)
{
    esd_assert(entry_bytes > 0 && assoc > 0, "bad fp table geometry");
    std::uint64_t entries = cache_bytes / entry_bytes;
    if (entries < assoc)
        esd_fatal("fingerprint cache too small for %u ways", assoc);
    if (shards_ == 0)
        esd_fatal("fingerprint table needs at least one shard");
    std::uint64_t total_sets = entries / assoc;
    if (total_sets < shards_)
        esd_fatal("fingerprint cache too small for %u shards", shards_);
    setsPerShard_ = total_sets / shards_;
    sets_ = setsPerShard_ * shards_;
    ways_.resize(sets_ * assoc_);
    maps_.resize(shards_);
}

std::uint64_t
FpTable::setOf(std::uint64_t fp, unsigned shard) const
{
    esd_assert(shard < shards_, "fp table shard out of range");
    std::uint64_t h = fp;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return shard * setsPerShard_ + h % setsPerShard_;
}

Addr
FpTable::entryNvmAddr(std::uint64_t fp, unsigned shard) const
{
    // Bucket the index by fingerprint hash; entries pack into lines.
    std::uint64_t bucket = setOf(fp, shard) * assoc_;
    return lineAlign(nvmBase_ + bucket * entryBytes_);
}

FpTable::Way *
FpTable::findWay(std::uint64_t fp, unsigned shard)
{
    std::uint64_t base = setOf(fp, shard) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.fp == fp)
            return &way;
    }
    return nullptr;
}

void
FpTable::fill(std::uint64_t fp, PackedPhys phys, unsigned shard)
{
    std::uint64_t base = setOf(fp, shard) * assoc_;
    Way *lru = &ways_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &cand = ways_[base + w];
        if (!cand.valid) {
            lru = &cand;
            break;
        }
        if (cand.lastUse < lru->lastUse)
            lru = &cand;
    }
    lru->valid = true;
    lru->fp = fp;
    lru->phys = phys;
    lru->lastUse = ++useClock_;
}

FpTable::LookupResult
FpTable::lookup(std::uint64_t fp, unsigned shard)
{
    LookupResult res;
    stats_.lookups.inc();

    if (Way *way = findWay(fp, shard)) {
        stats_.cacheHits.inc();
        way->lastUse = ++useClock_;
        res.found = true;
        res.cacheHit = true;
        res.phys = way->phys.toAddr();
        return res;
    }

    stats_.cacheMisses.inc();
    // Full dedup must consult the NVMM-resident index before declaring
    // the line unique — this is the fingerprint NVMM_lookup.
    stats_.nvmLookups.inc();
    res.nvmLookup = true;
    res.nvmAddr = entryNvmAddr(fp, shard);

    auto &map = maps_[shard];
    auto it = map.find(fp);
    if (it == map.end())
        return res;

    stats_.nvmFoundAfterMiss.inc();
    res.found = true;
    res.phys = it->second.toAddr();
    fill(fp, it->second, shard);
    return res;
}

void
FpTable::insert(std::uint64_t fp, Addr phys, Addr &nvm_store_addr,
                unsigned shard)
{
    PackedPhys packed = PackedPhys::fromAddr(phys);
    maps_[shard][fp] = packed;
    fill(fp, packed, shard);
    stats_.nvmStores.inc();
    nvm_store_addr = entryNvmAddr(fp, shard);
}

void
FpTable::erase(std::uint64_t fp, unsigned shard)
{
    stats_.erases.inc();
    maps_[shard].erase(fp);
    std::uint64_t base = setOf(fp, shard) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.fp == fp) {
            way.valid = false;
            return;
        }
    }
}

} // namespace esd
