/**
 * @file
 * Baseline scheme: encrypted NVMM without deduplication (the paper's
 * normalisation reference). Every eviction is counter-mode encrypted
 * and written in place (physical = logical); reads fetch and decrypt
 * directly — no AMT, no fingerprints, no metadata in NVMM.
 */

#ifndef ESD_DEDUP_BASELINE_HH
#define ESD_DEDUP_BASELINE_HH

#include "dedup/scheme.hh"

namespace esd
{

/** Encrypt-only write-through scheme. */
class BaselineScheme : public DedupScheme
{
  public:
    BaselineScheme(const SimConfig &cfg, PcmDevice &device,
                   NvmStore &store)
        : DedupScheme(cfg, device, store)
    {
    }

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;
    AccessResult read(Addr addr, CacheLine &out, Tick now) override;

    std::string name() const override { return "Baseline"; }

    std::uint64_t metadataNvmBytes() const override { return 0; }
};

} // namespace esd

#endif // ESD_DEDUP_BASELINE_HH
