#include "dedup/dewrite.hh"

#include "common/stat_registry.hh"
#include "crypto/crc.hh"

namespace esd
{

namespace
{

/** NVMM region of the CRC fingerprint index. */
constexpr Addr kFpRegionBase = 13ull << 30;

} // namespace

DeWriteScheme::DeWriteScheme(const SimConfig &cfg, PcmDevice &device,
                             NvmStore &store)
    : MappedDedupScheme(cfg, device, store),
      fps_(cfg.metadata.efitCacheBytes, kEntryBytes, cfg.metadata.efitAssoc,
           kFpRegionBase, device.channelCount())
{
}

void
DeWriteScheme::registerStats(StatRegistry &reg) const
{
    MappedDedupScheme::registerStats(reg);
    fps_.registerStats(reg, "cache.fp");

    const PredictorStats &p = predictor_.stats();
    reg.addCounter("scheme.predictor.t1_dup_dup",
                   p.predictDupActualDup,
                   "predicted duplicate, was duplicate");
    reg.addCounter("scheme.predictor.f2_dup_new",
                   p.predictDupActualNew,
                   "predicted duplicate, was new");
    reg.addCounter("scheme.predictor.t3_new_new",
                   p.predictNewActualNew,
                   "predicted new, was new");
    reg.addCounter("scheme.predictor.f4_new_dup",
                   p.predictNewActualDup,
                   "predicted new, was duplicate");
    reg.addGauge("scheme.predictor.accuracy",
                 [&p] { return p.accuracy(); },
                 "fraction of correct predictions");
}

void
DeWriteScheme::onPhysFreed(Addr phys)
{
    Profiler::Scope ps = profScope(Profiler::Lookup);
    auto it = physToFp_.find(phys);
    if (it != physToFp_.end()) {
        // Lines allocate on their logical address's channel, so the
        // owning fingerprint shard follows from the physical address.
        fps_.erase(it->second, channelOf(phys));
        physToFp_.erase(it);
        noteJournal(JournalOp::EfitEvict, phys);
    }
}

std::uint64_t
DeWriteScheme::metadataNvmBytes() const
{
    return fps_.nvmBytes() + amt_.nvmBytes();
}

DeWriteScheme::CheckOutcome
DeWriteScheme::resolveDuplicate(std::uint64_t fp, const CacheLine &data,
                                unsigned shard, Tick &t,
                                WriteBreakdown &bd)
{
    CheckOutcome out;

    // Suspended dedup: no probe, no compare — the write goes unique.
    if (dedupSuspended())
        return out;

    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    FpTable::LookupResult lr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        lr = fps_.lookup(fp, shard);
    }
    if (lr.nvmLookup) {
        stats_.fpNvmLookups.inc();
        NvmAccessResult r = deviceRead(lr.nvmAddr, t);
        bd.fpNvmLookup += static_cast<double>(r.complete - t);
        t = r.complete;
    }

    if (!lr.found || !lines_.isLive(lr.phys)) {
        if (lr.found) {
            noteJournal(JournalOp::EfitEvict, lr.phys);
            fps_.erase(fp, shard);  // stale entry
        }
        return out;
    }
    out.probe = FpProbe::Hit;
    out.cand = lr.phys;

    // CRC collides easily (Fig. 8): always verify by byte comparison.
    NvmAccessResult r = deviceRead(lr.phys, t);
    bd.readCompare += static_cast<double>(r.complete - t);
    t = r.complete;
    out.compareQueue = r.queueDelay;
    stats_.compareReads.inc();
    stats_.metadataEnergy += cfg_.crypto.compareEnergy;
    t += cfg_.crypto.compareLatency;

    if (compareStored(lr.phys, data, t)) {
        out.dup = true;
        out.phys = lr.phys;
        out.viaCache = lr.cacheHit;
        out.verdict = CompareVerdict::Equal;
    } else {
        stats_.compareMismatches.inc();
        out.verdict = CompareVerdict::Mismatch;
    }
    return out;
}

AccessResult
DeWriteScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);

    // CRC is computed for every line, predicted duplicate or not.
    Tick crc_lat = cfg_.crypto.crcLatency;
    stats_.hashEnergy += cfg_.crypto.crcEnergy;
    std::uint64_t fp;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        fp = Crc32c::line(data);
    }
    bd.fpCompute += static_cast<double>(crc_lat);

    bool predicted_dup = predictor_.predictDuplicate(addr);
    unsigned shard = channelOf(addr);

    Tick t_check = now + crc_lat;
    CheckOutcome chk;
    Tick t_end;
    Addr decisive_addr = addr;
    Tick decisive_queue = 0;
    Tick encrypt_ns = 0;

    if (predicted_dup) {
        // Serial path: the write waits for the check.
        chk = resolveDuplicate(fp, data, shard, t_check, bd);
        predictor_.train(addr, predicted_dup, chk.dup);

        if (chk.dup) {
            // T1: duplicate confirmed, write eliminated.
            t_end = t_check;
            decisive_addr = chk.cand;
            decisive_queue = chk.compareQueue;
        } else {
            // F2: worst case — full check, then encrypt + write.
            Addr phys;
            Tick t = t_check;
            NvmAccessResult w = writeNewLine(addr, data, phys, t, bd);
            res.issuerStall += w.issuerStall;
            decisive_addr = phys;
            decisive_queue = w.queueDelay;
            encrypt_ns = cfg_.crypto.encryptLatency;

            if (!ras_.dedupSuspended()) {
                Addr fp_store;
                {
                    Profiler::Scope ps = profScope(Profiler::Lookup);
                    fps_.insert(fp, phys, fp_store, shard);
                    physToFp_[phys] = fp;
                }
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            fp);
                stats_.fpNvmStores.inc();
                NvmAccessResult fs = deviceWrite(fp_store, t);
                res.issuerStall += fs.issuerStall;
            }

            chk.phys = phys;
            t_end = t;
        }
    } else {
        // Parallel path: encryption (and, for true uniques, the write)
        // overlaps the dedup check.
        chk = resolveDuplicate(fp, data, shard, t_check, bd);
        predictor_.train(addr, predicted_dup, chk.dup);

        if (!chk.dup) {
            // T3: prediction right; write latency overlaps the check.
            Addr phys;
            Tick t_write = now;
            NvmAccessResult w = writeNewLine(addr, data, phys, t_write, bd);
            res.issuerStall += w.issuerStall;
            decisive_addr = phys;
            decisive_queue = w.queueDelay;
            encrypt_ns = cfg_.crypto.encryptLatency;

            if (!ras_.dedupSuspended()) {
                Addr fp_store;
                {
                    Profiler::Scope ps = profScope(Profiler::Lookup);
                    fps_.insert(fp, phys, fp_store, shard);
                    physToFp_[phys] = fp;
                }
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            fp);
                stats_.fpNvmStores.inc();
                NvmAccessResult fs = deviceWrite(fp_store, t_check);
                res.issuerStall += fs.issuerStall;
            }

            chk.phys = phys;
            t_end = std::max(t_check, t_write);
        } else {
            // F4: the line was speculatively encrypted for nothing —
            // wasted crypto energy, latency hidden behind the check.
            stats_.cryptoEnergy += cfg_.crypto.encryptEnergy;
            Tick enc_done = now + cfg_.crypto.encryptLatency;
            t_end = std::max(t_check, enc_done);
            decisive_addr = chk.cand;
            decisive_queue = chk.compareQueue;
            encrypt_ns = cfg_.crypto.encryptLatency;
        }
    }

    if (chk.dup) {
        stats_.dedupHits.inc();
        if (data.isZero())
            stats_.dedupHitsZeroLine.inc();
        if (chk.viaCache)
            stats_.dedupHitsFpCache.inc();
        else
            stats_.dedupHitsFpNvm.inc();
        res.dedup = true;
    }

    res.issuerStall += remap(addr, chk.phys, t_end, bd);
    res.latency = t_end - now;
    stats_.breakdown.add(bd);

    WriteOutcome outcome = WriteOutcome::Unique;
    if (chk.dup)
        outcome = WriteOutcome::Dedup;
    else if (chk.verdict == CompareVerdict::Mismatch)
        outcome = WriteOutcome::Collision;
    traceWrite(now, addr, fp, chk.probe, chk.verdict, outcome,
               decisive_addr, decisive_queue, encrypt_ns, res.latency, bd);
    return res;
}

} // namespace esd
