#include "dedup/scheme_factory.hh"

#include "common/logging.hh"
#include "dedup/baseline.hh"
#include "dedup/dedup_sha1.hh"
#include "dedup/dewrite.hh"
#include "dedup/esd.hh"
#include "dedup/esd_full.hh"
#include "dedup/esd_plus.hh"

namespace esd
{

const std::vector<SchemeKind> &
allSchemeKinds()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::Baseline,
        SchemeKind::DedupSha1,
        SchemeKind::DeWrite,
        SchemeKind::Esd,
    };
    return kinds;
}

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return "Baseline";
      case SchemeKind::DedupSha1:
        return "Dedup_SHA1";
      case SchemeKind::DeWrite:
        return "DeWrite";
      case SchemeKind::Esd:
        return "ESD";
      case SchemeKind::EsdFull:
        return "ESD_Full";
      case SchemeKind::EsdPlus:
        return "ESD+";
    }
    esd_panic("invalid scheme kind");
}

const std::vector<SchemeKind> &
allSchemeKindsExtended()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::Baseline,
        SchemeKind::DedupSha1,
        SchemeKind::DeWrite,
        SchemeKind::Esd,
        SchemeKind::EsdFull,
        SchemeKind::EsdPlus,
    };
    return kinds;
}

std::optional<SchemeKind>
tryParseSchemeKind(const std::string &s)
{
    if (s == "0" || s == "Baseline" || s == "baseline")
        return SchemeKind::Baseline;
    if (s == "1" || s == "Dedup_SHA1" || s == "sha1" || s == "Tra_sha1")
        return SchemeKind::DedupSha1;
    if (s == "2" || s == "DeWrite" || s == "dewrite")
        return SchemeKind::DeWrite;
    if (s == "3" || s == "ESD" || s == "esd")
        return SchemeKind::Esd;
    if (s == "4" || s == "ESD_Full" || s == "esd_full")
        return SchemeKind::EsdFull;
    if (s == "5" || s == "ESD+" || s == "esd_plus" || s == "esd+")
        return SchemeKind::EsdPlus;
    return std::nullopt;
}

SchemeKind
parseSchemeKind(const std::string &s)
{
    if (std::optional<SchemeKind> k = tryParseSchemeKind(s))
        return *k;
    esd_fatal("unknown scheme '%s' (use 0..5 or a scheme name)",
              s.c_str());
}

std::unique_ptr<DedupScheme>
makeScheme(SchemeKind kind, const SimConfig &cfg, PcmDevice &device,
           NvmStore &store)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return std::make_unique<BaselineScheme>(cfg, device, store);
      case SchemeKind::DedupSha1:
        return std::make_unique<DedupSha1Scheme>(cfg, device, store);
      case SchemeKind::DeWrite:
        return std::make_unique<DeWriteScheme>(cfg, device, store);
      case SchemeKind::Esd:
        return std::make_unique<EsdScheme>(cfg, device, store);
      case SchemeKind::EsdFull:
        return std::make_unique<EsdFullScheme>(cfg, device, store);
      case SchemeKind::EsdPlus:
        return std::make_unique<EsdPlusScheme>(cfg, device, store);
    }
    esd_panic("invalid scheme kind");
}

} // namespace esd
