/**
 * @file
 * ECC-based Fingerprint Index Table (EFIT) — Section III-B/III-D.
 *
 * The EFIT lives *only* in the on-chip memory-controller cache: this
 * is the heart of selective deduplication. Entries are
 * <ECC, Addr_base, Addr_offsets, referH>; replacement is LRCU (Least
 * Reference Count Used) so that high-reference-count fingerprints — the
 * content-locality winners of Fig. 3 — survive, while the referH-of-1
 * long tail is evicted first. A periodic decay subtracts a fixed value
 * from every cached referH so stale once-hot entries age out.
 */

#ifndef ESD_DEDUP_EFIT_HH
#define ESD_DEDUP_EFIT_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dedup/amt.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

class StatRegistry;

/** EFIT statistics. */
struct EfitStats
{
    Counter lookups;
    Counter hits;
    Counter misses;
    Counter inserts;
    Counter evictions;
    Counter evictionsRef1;  ///< victims whose referH was 1 (LRCU target)
    Counter decayRounds;
    Counter referHSaturations;

    double
    hitRate() const
    {
        return lookups.value() == 0
                   ? 0.0
                   : static_cast<double>(hits.value()) / lookups.value();
    }
};

/**
 * The EFIT cache.
 */
class Efit
{
  public:
    /** One cached fingerprint entry. */
    struct Entry
    {
        bool valid = false;
        LineEcc ecc = 0;
        PackedPhys phys;
        std::uint32_t referH = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * @param shards Partition the sets into this many disjoint
     *               per-channel shards; lookups carry the shard index
     *               so controllers on different channels never touch
     *               the same sets. One shard (the default) reproduces
     *               the unsharded cache exactly.
     */
    explicit Efit(const MetadataConfig &cfg, unsigned shards = 1);

    /**
     * Look up @p ecc within @p shard.
     * @return the matching entry (LRU refreshed) or nullptr.
     */
    Entry *lookup(LineEcc ecc, unsigned shard = 0);

    /**
     * Insert a fingerprint for the line stored at @p phys with an
     * initial referH of 1 into @p shard. Applies LRCU replacement when
     * the set is full and triggers decay every decayPeriod insertions.
     */
    void insert(LineEcc ecc, Addr phys, unsigned shard = 0);

    /**
     * Credit one more reference to @p entry.
     * @return false when referH was already saturated at referHMax —
     *         the paper's "treat as a new cache line" condition.
     */
    bool bumpRef(Entry *entry);

    /**
     * Repoint @p entry at a freshly written copy and restart its
     * reference count — the paper's referH-saturation handling: the
     * rewritten line becomes the deduplication target for subsequent
     * identical writes (Section III-D).
     */
    void
    redirect(Entry *entry, Addr phys)
    {
        esd_assert(entry && entry->valid, "redirect on invalid entry");
        entry->phys = PackedPhys::fromAddr(phys);
        entry->referH = 1;
        entry->lastUse = ++useClock_;
    }

    /** Drop the entry matching (@p ecc, @p phys) if cached in
     * @p shard — called when the referenced physical line dies. */
    void erase(LineEcc ecc, Addr phys, unsigned shard = 0);

    std::uint64_t capacityEntries() const { return sets_ * assoc_; }
    std::uint64_t sets() const { return sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned shards() const { return shards_; }

    /** Count of valid entries (tests / occupancy reporting). */
    std::uint64_t validEntries() const;

    /** Copy of every valid entry (invariant checks in tests). */
    std::vector<Entry> snapshotValid() const;

    const EfitStats &stats() const { return stats_; }
    void resetStats() { stats_ = EfitStats{}; }

    /** Register counters, hit rate, and occupancy under
     * "<prefix>.*". */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::uint64_t setOf(LineEcc ecc, unsigned shard) const;
    void decayAll();

    MetadataConfig cfg_;
    std::uint64_t sets_;
    std::uint64_t setsPerShard_;
    unsigned shards_;
    unsigned assoc_;
    std::uint64_t useClock_ = 0;
    std::uint64_t insertsSinceDecay_ = 0;
    std::vector<Entry> entries_;
    EfitStats stats_;
};

} // namespace esd

#endif // ESD_DEDUP_EFIT_HH
