/**
 * @file
 * DeWrite (MICRO'18) — the state-of-the-art comparison scheme. Full
 * deduplication with a lightweight CRC fingerprint, a duplication
 * predictor, and parallel encryption:
 *
 *   - predicted duplicate  -> serial: CRC, fingerprint lookup (cache
 *     then NVMM), candidate read + byte comparison; mispredictions
 *     (F2 in Fig. 4) pay the whole check *and* the encrypt+write;
 *   - predicted non-duplicate -> encryption+write overlap the check;
 *     wrong predictions (F4) waste the encryption work (energy) even
 *     though the check hides the latency.
 *
 * CRC collisions are caught by byte comparison, so like ESD this
 * scheme never loses data — but it computes CRC for every line and
 * keeps the full fingerprint index in NVMM.
 */

#ifndef ESD_DEDUP_DEWRITE_HH
#define ESD_DEDUP_DEWRITE_HH


#include "common/flat_map.hh"
#include "dedup/fp_table.hh"
#include "dedup/mapped_scheme.hh"
#include "dedup/predictor.hh"

namespace esd
{

/** DeWrite: CRC + prediction + parallel encryption, full dedup. */
class DeWriteScheme : public MappedDedupScheme
{
  public:
    DeWriteScheme(const SimConfig &cfg, PcmDevice &device,
                  NvmStore &store);

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;

    std::string name() const override { return "DeWrite"; }

    std::uint64_t metadataNvmBytes() const override;

    /** Adds the fingerprint index ("cache.fp.*") and the predictor
     * ("scheme.predictor.*"). */
    void registerStats(StatRegistry &reg) const override;

    const FpTable &fpTable() const { return fps_; }
    const DupPredictor &predictor() const { return predictor_; }

  protected:
    void onPhysFreed(Addr phys) override;

  private:
    /** The duplicate-or-not resolution common to both predicted paths:
     * fingerprint lookup plus byte comparison of the candidate.
     * Advances @p t along the *check* path. */
    struct CheckOutcome
    {
        bool dup = false;
        Addr phys = kInvalidAddr;
        bool viaCache = false;

        // Trace annotations.
        FpProbe probe = FpProbe::Miss;
        CompareVerdict verdict = CompareVerdict::None;
        Addr cand = kInvalidAddr;  ///< compared candidate line
        Tick compareQueue = 0;     ///< candidate-read bank wait
    };
    CheckOutcome resolveDuplicate(std::uint64_t fp, const CacheLine &data,
                                  unsigned shard, Tick &t,
                                  WriteBreakdown &bd);

    /** DeWrite entry: 16 B + 3 bits, modelled as 17 B. */
    static constexpr std::uint64_t kEntryBytes = 17;

    FpTable fps_;
    DupPredictor predictor_;
    FlatMap<Addr, std::uint64_t> physToFp_;
};

} // namespace esd

#endif // ESD_DEDUP_DEWRITE_HH
