/**
 * @file
 * Construction of the four evaluated schemes by enum — mirrors the
 * artifact's scheme selector (0: Baseline, 1: Tra_sha1, 2: DeWrite,
 * 3: ESD).
 */

#ifndef ESD_DEDUP_SCHEME_FACTORY_HH
#define ESD_DEDUP_SCHEME_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dedup/scheme.hh"

namespace esd
{

/** The evaluated design points. */
enum class SchemeKind
{
    Baseline = 0,
    DedupSha1 = 1,
    DeWrite = 2,
    Esd = 3,

    /** Ablation-only: ECC fingerprints with a full NVMM-resident
     * index (not a paper scheme; see bench_abl_selective). */
    EsdFull = 4,

    /** Extension: ESD plus a hot-content cache that answers byte
     * comparisons on chip (not a paper scheme; see
     * bench_abl_content_cache). */
    EsdPlus = 5,
};

/** All four kinds in evaluation order. */
const std::vector<SchemeKind> &allSchemeKinds();

/** Display name of a kind. */
const char *schemeName(SchemeKind kind);

/** Parse a scheme name or ordinal; fatal on unknown input. */
SchemeKind parseSchemeKind(const std::string &s);

/** Parse a scheme name or ordinal; nullopt on unknown input — the
 * validating form CLIs use to reject bad -schemes= lists up front. */
std::optional<SchemeKind> tryParseSchemeKind(const std::string &s);

/** Every kind including the ablation/extension schemes (0..5). */
const std::vector<SchemeKind> &allSchemeKindsExtended();

/** Build a scheme instance over the shared device and store. */
std::unique_ptr<DedupScheme> makeScheme(SchemeKind kind,
                                        const SimConfig &cfg,
                                        PcmDevice &device,
                                        NvmStore &store);

} // namespace esd

#endif // ESD_DEDUP_SCHEME_FACTORY_HH
