#include "dedup/esd_full.hh"

namespace esd
{

namespace
{

/** NVMM region of the full ECC fingerprint index (ablation). */
constexpr Addr kFpRegionBase = 14ull << 30;

} // namespace

EsdFullScheme::EsdFullScheme(const SimConfig &cfg, PcmDevice &device,
                             NvmStore &store)
    : MappedDedupScheme(cfg, device, store),
      fps_(cfg.metadata.efitCacheBytes, kEntryBytes,
           cfg.metadata.efitAssoc, kFpRegionBase, device.channelCount())
{
}

void
EsdFullScheme::registerStats(StatRegistry &reg) const
{
    MappedDedupScheme::registerStats(reg);
    fps_.registerStats(reg, "cache.fp");
}

void
EsdFullScheme::onPhysFreed(Addr phys)
{
    Profiler::Scope ps = profScope(Profiler::Lookup);
    auto it = physToFp_.find(phys);
    if (it != physToFp_.end()) {
        // Lines allocate on their logical address's channel, so the
        // owning fingerprint shard follows from the physical address.
        fps_.erase(it->second, channelOf(phys));
        physToFp_.erase(it);
        noteJournal(JournalOp::EfitEvict, phys);
    }
}

std::uint64_t
EsdFullScheme::metadataNvmBytes() const
{
    return fps_.nvmBytes() + amt_.nvmBytes();
}

AccessResult
EsdFullScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);

    // Free ECC fingerprint, exactly as in ESD.
    LineEcc ecc;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        ecc = ecc_.encodeLine(data);
    }
    Tick t = now + cfg_.crypto.eccLatency;

    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    // Full dedup: a cache miss forces the fingerprint NVMM_lookup.
    bool suspended = dedupSuspended();
    unsigned shard = channelOf(addr);
    FpTable::LookupResult lr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        if (!suspended)
            lr = fps_.lookup(ecc, shard);
    }
    if (lr.nvmLookup) {
        stats_.fpNvmLookups.inc();
        NvmAccessResult r = deviceRead(lr.nvmAddr, t);
        bd.fpNvmLookup += static_cast<double>(r.complete - t);
        t = r.complete;
    }

    bool dedup = false;
    FpProbe probe = FpProbe::Miss;
    CompareVerdict verdict = CompareVerdict::None;
    Addr decisive_addr = addr;
    Tick decisive_queue = 0;
    Tick encrypt_ns = 0;

    if (lr.found && lines_.isLive(lr.phys)) {
        probe = FpProbe::Hit;
        decisive_addr = lr.phys;
        // Verify by byte comparison (ECC collisions are expected).
        NvmAccessResult r = deviceRead(lr.phys, t);
        bd.readCompare += static_cast<double>(r.complete - t);
        t = r.complete;
        decisive_queue = r.queueDelay;
        stats_.compareReads.inc();
        stats_.metadataEnergy += cfg_.crypto.compareEnergy;
        t += cfg_.crypto.compareLatency;

        if (compareStored(lr.phys, data, t)) {
            verdict = CompareVerdict::Equal;
            dedup = true;
            stats_.dedupHits.inc();
            if (data.isZero())
                stats_.dedupHitsZeroLine.inc();
            if (lr.cacheHit)
                stats_.dedupHitsFpCache.inc();
            else
                stats_.dedupHitsFpNvm.inc();
            res.issuerStall += remap(addr, lr.phys, t, bd);
            res.dedup = true;
        } else {
            stats_.compareMismatches.inc();
            verdict = CompareVerdict::Mismatch;
        }
    } else if (lr.found) {
        noteJournal(JournalOp::EfitEvict, lr.phys);
        fps_.erase(ecc, shard);
    }

    if (!dedup) {
        Addr phys;
        NvmAccessResult w = writeNewLine(addr, data, phys, t, bd);
        res.issuerStall += w.issuerStall;
        decisive_addr = phys;
        decisive_queue = w.queueDelay;
        encrypt_ns = cfg_.crypto.encryptLatency;

        if (!suspended) {
            Addr fp_store;
            {
                Profiler::Scope ps = profScope(Profiler::Lookup);
                fps_.insert(ecc, phys, fp_store, shard);
                physToFp_[phys] = ecc;
            }
            noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr, ecc);
            stats_.fpNvmStores.inc();
            NvmAccessResult fs = deviceWrite(fp_store, t);
            res.issuerStall += fs.issuerStall;
        }

        res.issuerStall += remap(addr, phys, t, bd);
    }

    res.latency = t - now;
    stats_.breakdown.add(bd);

    WriteOutcome outcome = WriteOutcome::Unique;
    if (dedup)
        outcome = WriteOutcome::Dedup;
    else if (verdict == CompareVerdict::Mismatch)
        outcome = WriteOutcome::Collision;
    traceWrite(now, addr, ecc, probe, verdict, outcome, decisive_addr,
               decisive_queue, encrypt_ns, res.latency, bd);
    return res;
}

} // namespace esd
