#include "dedup/amt.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

void
Amt::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("lookups"), stats_.lookups);
    reg.addCounter(n("cache_hits"), stats_.cacheHits);
    reg.addCounter(n("cache_misses"), stats_.cacheMisses);
    reg.addCounter(n("nvm_reads"), stats_.nvmReads);
    reg.addCounter(n("nvm_writebacks"), stats_.nvmWritebacks);
    reg.addCounter(n("updates"), stats_.updates);

    reg.addGauge(n("hit_rate"), [this] { return stats_.hitRate(); });
    reg.addGauge(n("mappings"), [this] {
        return static_cast<double>(mappingCount());
    });
    reg.addGauge(n("nvm_bytes"),
                 [this] { return static_cast<double>(nvmBytes()); });
}

Amt::Amt(const MetadataConfig &cfg, Addr nvm_base, unsigned shards)
    : cfg_(cfg), nvmBase_(nvm_base),
      entriesPerBlock_(kLineSize / cfg.amtEntryBytes), shards_(shards),
      assoc_(cfg.amtAssoc)
{
    esd_assert(entriesPerBlock_ > 0, "AMT entry larger than a line");
    if (shards_ == 0)
        esd_fatal("AMT needs at least one shard");
    std::uint64_t blocks = cfg.amtCacheBytes / kLineSize;
    if (blocks < assoc_)
        esd_fatal("AMT cache too small for %u ways", assoc_);
    std::uint64_t total_sets = blocks / assoc_;
    if (total_sets < shards_)
        esd_fatal("AMT cache too small for %u shards", shards_);
    setsPerShard_ = total_sets / shards_;
    sets_ = setsPerShard_ * shards_;
    ways_.resize(sets_ * assoc_);
}

Addr
Amt::entryNvmAddr(Addr logical) const
{
    // Each entry block occupies one NVMM line in the table region.
    return nvmBase_ + groupOf(lineIndex(logical)) * kLineSize;
}

Amt::Way *
Amt::findWay(std::uint64_t group)
{
    std::uint64_t base = setOf(group) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == group)
            return &way;
    }
    return nullptr;
}

std::optional<std::uint64_t>
Amt::fill(std::uint64_t group, bool dirty)
{
    std::optional<std::uint64_t> writeback;
    Way *way = findWay(group);
    if (!way) {
        std::uint64_t base = setOf(group) * assoc_;
        Way *lru = &ways_[base];
        for (unsigned w = 0; w < assoc_; ++w) {
            Way &cand = ways_[base + w];
            if (!cand.valid) {
                lru = &cand;
                break;
            }
            if (cand.lastUse < lru->lastUse)
                lru = &cand;
        }
        if (lru->valid && lru->dirty)
            writeback = lru->tag;
        way = lru;
        way->valid = true;
        way->tag = group;
        way->dirty = false;
    }
    way->dirty = way->dirty || dirty;
    way->lastUse = ++useClock_;
    return writeback;
}

Amt::LookupResult
Amt::lookup(Addr logical)
{
    LookupResult res;
    std::uint64_t line = lineIndex(logical);
    std::uint64_t group = groupOf(line);
    stats_.lookups.inc();

    auto resolve = [&]() {
        auto it = map_.find(line);
        if (it != map_.end()) {
            res.found = true;
            res.phys = it->second.toAddr();
        }
    };

    if (Way *way = findWay(group)) {
        stats_.cacheHits.inc();
        way->lastUse = ++useClock_;
        res.cacheHit = true;
        resolve();
        return res;
    }

    stats_.cacheMisses.inc();
    // The entry block must be fetched from the NVMM-resident table.
    stats_.nvmReads.inc();
    res.effects.nvmRead = true;
    res.effects.nvmReadAddr = entryNvmAddr(logical);
    resolve();

    if (auto wb = fill(group, false)) {
        stats_.nvmWritebacks.inc();
        res.effects.nvmWriteback = true;
        res.effects.nvmWritebackAddr =
            nvmBase_ + *wb * kLineSize;
    }
    return res;
}

MetadataEffects
Amt::update(Addr logical, Addr phys)
{
    MetadataEffects eff;
    std::uint64_t line = lineIndex(logical);
    stats_.updates.inc();

    map_[line] = PackedPhys::fromAddr(phys);

    // Write-allocate without fetch: the controller write-combines the
    // entry into its block; only dirty evictions touch NVMM.
    if (auto wb = fill(groupOf(line), true)) {
        stats_.nvmWritebacks.inc();
        eff.nvmWriteback = true;
        eff.nvmWritebackAddr = nvmBase_ + *wb * kLineSize;
    }
    return eff;
}

std::optional<Addr>
Amt::peek(Addr logical) const
{
    auto it = map_.find(lineIndex(logical));
    if (it == map_.end())
        return std::nullopt;
    return it->second.toAddr();
}

} // namespace esd
