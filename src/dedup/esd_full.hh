/**
 * @file
 * Ablation variant: ECC-assisted *full* deduplication.
 *
 * Identical to ESD in how it fingerprints (free ECC interception, no
 * hash) and verifies (byte-by-byte comparison), but instead of the
 * cache-only EFIT it keeps the complete fingerprint index in NVMM
 * behind the on-chip cache, like Dedup_SHA1/DeWrite do. Comparing this
 * against EsdScheme isolates the contribution of *selective*
 * deduplication from the contribution of the ECC fingerprint itself
 * (the bench_abl_selective experiment; not a paper scheme).
 */

#ifndef ESD_DEDUP_ESD_FULL_HH
#define ESD_DEDUP_ESD_FULL_HH


#include "common/flat_map.hh"
#include "dedup/fp_table.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{

/** ECC fingerprints + full NVMM-resident index. */
class EsdFullScheme : public MappedDedupScheme
{
  public:
    EsdFullScheme(const SimConfig &cfg, PcmDevice &device,
                  NvmStore &store);

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;

    std::string name() const override { return "ESD_Full"; }

    std::uint64_t metadataNvmBytes() const override;

    /** Adds the fingerprint index under "cache.fp.*". */
    void registerStats(StatRegistry &reg) const override;

    const FpTable &fpTable() const { return fps_; }

  protected:
    void onPhysFreed(Addr phys) override;

  private:
    /** ECC fp (8 B) + packed phys (5 B) + refcount (1 B). */
    static constexpr std::uint64_t kEntryBytes = 14;

    FpTable fps_;
    FlatMap<Addr, std::uint64_t> physToFp_;
};

} // namespace esd

#endif // ESD_DEDUP_ESD_FULL_HH
