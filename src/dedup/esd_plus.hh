/**
 * @file
 * ESD+ — an extension beyond the paper: a small on-chip *content*
 * cache for the hottest deduplication targets.
 *
 * ESD's only remaining write-path NVMM access for a duplicate is the
 * byte-compare read of the candidate line. But the content-locality
 * observation (Fig. 3) cuts both ways: the same few lines (the zero
 * line above all) are compared against over and over. ESD+ keeps the
 * plaintext of EFIT entries whose referH crosses a threshold in a
 * tiny SRAM cache (default 64 lines = 4 KB), turning their
 * comparisons into pure on-chip work — no device read at all.
 *
 * Correctness is unchanged: the cached content is installed from a
 * verified compare and invalidated when its physical line dies.
 */

#ifndef ESD_DEDUP_ESD_PLUS_HH
#define ESD_DEDUP_ESD_PLUS_HH

#include <list>

#include "common/flat_map.hh"
#include "dedup/esd.hh"

namespace esd
{

/** ESD with a hot-content cache on the compare path. */
class EsdPlusScheme : public EsdScheme
{
  public:
    EsdPlusScheme(const SimConfig &cfg, PcmDevice &device,
                  NvmStore &store);

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;

    std::string name() const override { return "ESD+"; }

    /** Adds the content cache under "esd.content_cache.*". */
    void registerStats(StatRegistry &reg) const override;

    /** Compares answered without a device read. */
    std::uint64_t contentCacheHits() const { return contentHits_; }
    std::uint64_t contentCacheCapacity() const { return capacity_; }
    std::uint64_t contentCacheSize() const { return lru_.size(); }

  protected:
    void onPhysFreed(Addr phys) override;

  private:
    struct CachedLine
    {
        Addr phys;
        CacheLine data;
    };

    /** Cached plaintext of @p phys, or nullptr. */
    const CacheLine *findContent(Addr phys);

    /** Install (or refresh) @p phys 's plaintext, evicting LRU. */
    void installContent(Addr phys, const CacheLine &data);

    void eraseContent(Addr phys);

    /** referH at which a line earns a content-cache slot. */
    std::uint32_t hotThreshold_;
    std::uint64_t capacity_;
    std::uint64_t contentHits_ = 0;

    std::list<CachedLine> lru_;  // front = most recent
    FlatMap<Addr, std::list<CachedLine>::iterator> index_;
};

} // namespace esd

#endif // ESD_DEDUP_ESD_PLUS_HH
