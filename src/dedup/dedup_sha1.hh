/**
 * @file
 * Dedup_SHA1: the traditional full-deduplication baseline (Section
 * IV-A). Every evicted line is fingerprinted with SHA-1 (321 ns on the
 * critical path), the full fingerprint index lives in NVMM behind a
 * small on-chip cache, and a duplicate is declared on fingerprint
 * match alone (collision-trusting, like classic dedup storage).
 */

#ifndef ESD_DEDUP_DEDUP_SHA1_HH
#define ESD_DEDUP_DEDUP_SHA1_HH

#include "common/flat_map.hh"
#include "dedup/fp_table.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{

/** SHA-1 full deduplication. */
class DedupSha1Scheme : public MappedDedupScheme
{
  public:
    DedupSha1Scheme(const SimConfig &cfg, PcmDevice &device,
                    NvmStore &store);

    AccessResult write(Addr addr, const CacheLine &data,
                       Tick now) override;

    std::string name() const override { return "Dedup_SHA1"; }

    std::uint64_t metadataNvmBytes() const override;

    /** Adds the fingerprint index under "cache.fp.*". */
    void registerStats(StatRegistry &reg) const override;

    const FpTable &fpTable() const { return fps_; }

  protected:
    void onPhysFreed(Addr phys) override;

  private:
    /** SHA-1 entry: 20 B digest + 5 B packed phys + 1 B refcount. */
    static constexpr std::uint64_t kEntryBytes = 26;

    FpTable fps_;
    FlatMap<Addr, std::uint64_t> physToFp_;
};

} // namespace esd

#endif // ESD_DEDUP_DEDUP_SHA1_HH
