#include "dedup/esd_plus.hh"

namespace esd
{

EsdPlusScheme::EsdPlusScheme(const SimConfig &cfg, PcmDevice &device,
                             NvmStore &store)
    : EsdScheme(cfg, device, store),
      hotThreshold_(2),
      capacity_(64)  // 64 lines = 4 KB of SRAM
{
}

const CacheLine *
EsdPlusScheme::findContent(Addr phys)
{
    auto it = index_.find(lineAlign(phys));
    if (it == index_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->data;
}

void
EsdPlusScheme::installContent(Addr phys, const CacheLine &data)
{
    phys = lineAlign(phys);
    auto it = index_.find(phys);
    if (it != index_.end()) {
        it->second->data = data;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().phys);
        lru_.pop_back();
    }
    lru_.push_front(CachedLine{phys, data});
    index_[phys] = lru_.begin();
}

void
EsdPlusScheme::eraseContent(Addr phys)
{
    auto it = index_.find(lineAlign(phys));
    if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
}

void
EsdPlusScheme::onPhysFreed(Addr phys)
{
    eraseContent(phys);
    EsdScheme::onPhysFreed(phys);
}

AccessResult
EsdPlusScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);

    LineEcc ecc = LineEccCodec::encode(data);
    Tick t = now + cfg_.crypto.eccLatency;

    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    Efit::Entry *entry = efit_.lookup(ecc);
    bool dedup_done = false;
    bool saturated_rewrite = false;

    if (entry && lines_.isLive(entry->phys.toAddr())) {
        Addr cand = entry->phys.toAddr();

        // Fast path: hot candidate content is on chip — the compare
        // costs comparator latency only, no device read.
        bool matched = false;
        bool resolved = false;
        if (const CacheLine *cached = findContent(cand)) {
            ++contentHits_;
            t += cfg_.crypto.compareLatency;
            stats_.metadataEnergy += cfg_.crypto.compareEnergy;
            matched = (*cached == data);
            resolved = true;
        }

        if (!resolved) {
            // Slow path: fetch and compare, as plain ESD.
            NvmAccessResult r = deviceRead(cand, t);
            bd.readCompare += static_cast<double>(r.complete - t);
            t = r.complete;
            stats_.compareReads.inc();
            stats_.metadataEnergy += cfg_.crypto.compareEnergy;
            t += cfg_.crypto.compareLatency;

            auto stored = store_.read(cand);
            CacheLine plain;
            if (stored) {
                plain = decryptLine(cand, stored->data);
                matched = (plain == data);
                // Promote proven-hot lines into the content cache.
                if (matched && entry->referH + 1 >= hotThreshold_)
                    installContent(cand, plain);
            }
        }

        if (matched) {
            if (efit_.bumpRef(entry)) {
                stats_.dedupHits.inc();
                if (data.isZero())
                    stats_.dedupHitsZeroLine.inc();
                stats_.dedupHitsFpCache.inc();
                res.issuerStall += remap(addr, cand, t, bd);
                res.dedup = true;
                dedup_done = true;
            } else {
                stats_.refHOverflowRewrites.inc();
                saturated_rewrite = true;
                eraseContent(cand);  // the new copy becomes the target
            }
        } else {
            stats_.compareMismatches.inc();
        }
    } else if (entry) {
        efit_.erase(entry->ecc, entry->phys.toAddr());
    }

    if (!dedup_done) {
        Addr phys;
        NvmAccessResult w = writeNewLine(data, phys, t, bd);
        res.issuerStall += w.issuerStall;

        if (saturated_rewrite)
            efit_.redirect(entry, phys);
        else
            efit_.insert(ecc, phys);
        physToEcc_[phys] = ecc;

        res.issuerStall += remap(addr, phys, t, bd);
    }

    res.latency = t - now;
    stats_.breakdown.add(bd);
    return res;
}

} // namespace esd
