#include "dedup/esd_plus.hh"

#include "common/stat_registry.hh"

namespace esd
{

EsdPlusScheme::EsdPlusScheme(const SimConfig &cfg, PcmDevice &device,
                             NvmStore &store)
    : EsdScheme(cfg, device, store),
      hotThreshold_(2),
      capacity_(64)  // 64 lines = 4 KB of SRAM
{
}

void
EsdPlusScheme::registerStats(StatRegistry &reg) const
{
    EsdScheme::registerStats(reg);
    reg.addGauge("esd.content_cache.hits",
                 [this] { return static_cast<double>(contentHits_); },
                 "compares answered on chip, no device read");
    reg.addGauge("esd.content_cache.size",
                 [this] { return static_cast<double>(lru_.size()); },
                 "resident hot lines");
    reg.addGauge("esd.content_cache.capacity",
                 [this] { return static_cast<double>(capacity_); },
                 "content-cache capacity in lines");
}

const CacheLine *
EsdPlusScheme::findContent(Addr phys)
{
    auto it = index_.find(lineAlign(phys));
    if (it == index_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->data;
}

void
EsdPlusScheme::installContent(Addr phys, const CacheLine &data)
{
    phys = lineAlign(phys);
    auto it = index_.find(phys);
    if (it != index_.end()) {
        it->second->data = data;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().phys);
        lru_.pop_back();
    }
    lru_.push_front(CachedLine{phys, data});
    index_[phys] = lru_.begin();
}

void
EsdPlusScheme::eraseContent(Addr phys)
{
    auto it = index_.find(lineAlign(phys));
    if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
}

void
EsdPlusScheme::onPhysFreed(Addr phys)
{
    eraseContent(phys);
    EsdScheme::onPhysFreed(phys);
}

AccessResult
EsdPlusScheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);

    LineEcc ecc;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        ecc = ecc_.encodeLine(data);
    }
    Tick t = now + cfg_.crypto.eccLatency;

    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    bool suspended = dedupSuspended();
    unsigned shard = channelOf(addr);
    Efit::Entry *entry = nullptr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        if (!suspended)
            entry = efit_.lookup(ecc, shard);
    }
    bool dedup_done = false;
    bool saturated_rewrite = false;

    FpProbe probe = FpProbe::Miss;
    CompareVerdict verdict = CompareVerdict::None;
    Addr decisive_addr = addr;
    Tick decisive_queue = 0;
    Tick encrypt_ns = 0;

    if (entry && lines_.isLive(entry->phys.toAddr())) {
        Addr cand = entry->phys.toAddr();
        probe = FpProbe::Hit;
        decisive_addr = cand;

        // Fast path: hot candidate content is on chip — the compare
        // costs comparator latency only, no device read.
        bool matched = false;
        bool resolved = false;
        if (const CacheLine *cached = findContent(cand)) {
            ++contentHits_;
            t += cfg_.crypto.compareLatency;
            stats_.metadataEnergy += cfg_.crypto.compareEnergy;
            matched = linesEqualFast(*cached, data);
            resolved = true;
        }

        if (!resolved) {
            // Slow path: fetch and compare, as plain ESD.
            NvmAccessResult r = deviceRead(cand, t);
            bd.readCompare += static_cast<double>(r.complete - t);
            t = r.complete;
            decisive_queue = r.queueDelay;
            stats_.compareReads.inc();
            stats_.metadataEnergy += cfg_.crypto.compareEnergy;
            t += cfg_.crypto.compareLatency;

            CacheLine plain;
            matched = compareStored(cand, data, t, &plain);
            // Promote proven-hot lines into the content cache.
            if (matched && entry->referH + 1 >= hotThreshold_)
                installContent(cand, plain);
        }

        verdict = matched ? CompareVerdict::Equal : CompareVerdict::Mismatch;
        if (matched) {
            if (efit_.bumpRef(entry)) {
                stats_.dedupHits.inc();
                if (data.isZero())
                    stats_.dedupHitsZeroLine.inc();
                stats_.dedupHitsFpCache.inc();
                res.issuerStall += remap(addr, cand, t, bd);
                res.dedup = true;
                dedup_done = true;
            } else {
                stats_.refHOverflowRewrites.inc();
                saturated_rewrite = true;
                eraseContent(cand);  // the new copy becomes the target
            }
        } else {
            stats_.compareMismatches.inc();
        }
    } else if (entry) {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        noteJournal(JournalOp::EfitEvict, entry->phys.toAddr());
        efit_.erase(entry->ecc, entry->phys.toAddr(), shard);
    }

    if (!dedup_done) {
        Addr phys;
        NvmAccessResult w = writeNewLine(addr, data, phys, t, bd);
        res.issuerStall += w.issuerStall;
        decisive_addr = phys;
        decisive_queue = w.queueDelay;
        encrypt_ns = cfg_.crypto.encryptLatency;

        {
            Profiler::Scope ps = profScope(Profiler::Lookup);
            if (saturated_rewrite) {
                noteJournal(JournalOp::EfitEvict, entry->phys.toAddr());
                efit_.redirect(entry, phys);
                physToEcc_[phys] = ecc;
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            ecc);
            } else if (!suspended) {
                efit_.insert(ecc, phys, shard);
                physToEcc_[phys] = ecc;
                noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr,
                            ecc);
            }
        }

        res.issuerStall += remap(addr, phys, t, bd);
    }

    res.latency = t - now;
    stats_.breakdown.add(bd);

    WriteOutcome outcome = WriteOutcome::Unique;
    if (dedup_done)
        outcome = WriteOutcome::Dedup;
    else if (saturated_rewrite)
        outcome = WriteOutcome::SaturatedRewrite;
    else if (verdict == CompareVerdict::Mismatch)
        outcome = WriteOutcome::Collision;
    traceWrite(now, addr, ecc, probe, verdict, outcome, decisive_addr,
               decisive_queue, encrypt_ns, res.latency, bd);
    return res;
}

} // namespace esd
