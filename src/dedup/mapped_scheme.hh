/**
 * @file
 * Shared machinery of the deduplicating schemes (Dedup_SHA1, DeWrite,
 * ESD): reference-counted physical allocation, AMT-mediated remapping
 * on the write path, and the AMT-indirected read path. The concrete
 * schemes differ only in how they fingerprint and when they dedup.
 */

#ifndef ESD_DEDUP_MAPPED_SCHEME_HH
#define ESD_DEDUP_MAPPED_SCHEME_HH

#include "dedup/scheme.hh"

namespace esd
{

/**
 * Base for schemes that remap logical lines through the AMT.
 */
class MappedDedupScheme : public DedupScheme
{
  public:
    MappedDedupScheme(const SimConfig &cfg, PcmDevice &device,
                      NvmStore &store);

    /** AMT-indirected miss fill, common to all dedup schemes. */
    AccessResult read(Addr addr, CacheLine &out, Tick now) override;

    /** Adds the AMT metadata cache under "cache.amt.*". */
    void registerStats(StatRegistry &reg) const override;

    /** Mapped schemes additionally defer line reclamation to epoch
     * commits, so a freed physical line is never reused before the
     * journal record releasing it is durable. */
    void setPersistence(PersistenceManager *pm) override;

    /** Data lives behind the AMT, not at its logical address. */
    bool persistInPlace() const override { return false; }

    const Amt &amt() const { return amt_; }
    const LineStore &lineStore() const { return lines_; }

  protected:
    /** Hook: the physical line @p phys lost its last reference; the
     * scheme must drop any fingerprint entry referencing it. */
    virtual void onPhysFreed(Addr phys) = 0;

    /**
     * Point @p addr at @p phys: bump the new reference, release the
     * old mapping (possibly freeing a line), update the AMT, and issue
     * any metadata write-back traffic.
     *
     * @param t  running timestamp; advanced by the metadata access
     * @param bd write breakdown accumulator
     * @return stall from async metadata traffic (queue backpressure)
     */
    Tick remap(Addr addr, Addr phys, Tick &t, WriteBreakdown &bd);

    /**
     * Allocate a physical line on logical @p addr 's channel, encrypt
     * @p data into it, store it, and issue the timed device write.
     *
     * @param t running timestamp; advanced past encryption; the
     *          returned result's complete is the write completion
     */
    NvmAccessResult writeNewLine(Addr addr, const CacheLine &data,
                                 Addr &phys_out, Tick &t,
                                 WriteBreakdown &bd);

    LineStore lines_;
    Amt amt_;
};

} // namespace esd

#endif // ESD_DEDUP_MAPPED_SCHEME_HH
