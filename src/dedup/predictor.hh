/**
 * @file
 * DeWrite's duplication predictor (Section II-B, Fig. 4).
 *
 * DeWrite decides per write whether to run the dedup check serially
 * (predicted duplicate) or to overlap encryption+write with the check
 * (predicted non-duplicate). We model the predictor as a table of
 * 2-bit saturating counters indexed by a hash of the logical line —
 * write regions tend to be persistently duplicate-heavy or not, which
 * is the locality the original scheme exploits.
 */

#ifndef ESD_DEDUP_PREDICTOR_HH
#define ESD_DEDUP_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace esd
{

/** Predictor accuracy statistics (the T1/F2/T3/F4 cases of Fig. 4). */
struct PredictorStats
{
    Counter predictDupActualDup;       ///< T1
    Counter predictDupActualNew;       ///< F2
    Counter predictNewActualNew;       ///< T3
    Counter predictNewActualDup;       ///< F4

    std::uint64_t
    total() const
    {
        return predictDupActualDup.value() + predictDupActualNew.value() +
               predictNewActualNew.value() + predictNewActualDup.value();
    }

    double
    accuracy() const
    {
        std::uint64_t t = total();
        return t == 0 ? 0.0
                      : static_cast<double>(predictDupActualDup.value() +
                                            predictNewActualNew.value()) /
                            t;
    }
};

/** 2-bit saturating-counter duplicate predictor. */
class DupPredictor
{
  public:
    explicit DupPredictor(std::size_t entries = 4096)
        : table_(entries, 1)  // weakly not-duplicate
    {
    }

    /** Predict whether the write to @p logical will be a duplicate. */
    bool
    predictDuplicate(Addr logical) const
    {
        return table_[indexOf(logical)] >= 2;
    }

    /** Train with the resolved outcome and record accuracy. */
    void
    train(Addr logical, bool predicted_dup, bool actual_dup)
    {
        std::uint8_t &ctr = table_[indexOf(logical)];
        if (actual_dup) {
            if (ctr < 3)
                ++ctr;
        } else if (ctr > 0) {
            --ctr;
        }
        if (predicted_dup && actual_dup)
            stats_.predictDupActualDup.inc();
        else if (predicted_dup && !actual_dup)
            stats_.predictDupActualNew.inc();
        else if (!predicted_dup && !actual_dup)
            stats_.predictNewActualNew.inc();
        else
            stats_.predictNewActualDup.inc();
    }

    const PredictorStats &stats() const { return stats_; }
    void resetStats() { stats_ = PredictorStats{}; }

  private:
    std::size_t
    indexOf(Addr logical) const
    {
        std::uint64_t h = lineIndex(logical);
        h ^= h >> 17;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return static_cast<std::size_t>(h % table_.size());
    }

    std::vector<std::uint8_t> table_;
    PredictorStats stats_;
};

} // namespace esd

#endif // ESD_DEDUP_PREDICTOR_HH
