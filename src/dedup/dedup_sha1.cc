#include "dedup/dedup_sha1.hh"

#include "crypto/sha1.hh"

namespace esd
{

namespace
{

/** NVMM region of the SHA-1 fingerprint index. */
constexpr Addr kFpRegionBase = 12ull << 30;

} // namespace

DedupSha1Scheme::DedupSha1Scheme(const SimConfig &cfg, PcmDevice &device,
                                 NvmStore &store)
    : MappedDedupScheme(cfg, device, store),
      fps_(cfg.metadata.efitCacheBytes, kEntryBytes, cfg.metadata.efitAssoc,
           kFpRegionBase, device.channelCount())
{
}

void
DedupSha1Scheme::registerStats(StatRegistry &reg) const
{
    MappedDedupScheme::registerStats(reg);
    fps_.registerStats(reg, "cache.fp");
}

void
DedupSha1Scheme::onPhysFreed(Addr phys)
{
    Profiler::Scope ps = profScope(Profiler::Lookup);
    auto it = physToFp_.find(phys);
    if (it != physToFp_.end()) {
        // Lines allocate on their logical address's channel, so the
        // owning fingerprint shard follows from the physical address.
        fps_.erase(it->second, channelOf(phys));
        physToFp_.erase(it);
        noteJournal(JournalOp::EfitEvict, phys);
    }
}

std::uint64_t
DedupSha1Scheme::metadataNvmBytes() const
{
    return fps_.nvmBytes() + amt_.nvmBytes();
}

AccessResult
DedupSha1Scheme::write(Addr addr, const CacheLine &data, Tick now)
{
    stats_.logicalWrites.inc();
    AccessResult res;
    WriteBreakdown bd;
    addr = lineAlign(addr);
    Tick t = now;

    // 1. SHA-1 fingerprint — charged on the critical path for *every*
    //    line, duplicate or not (the paper's first challenge).
    Tick fp_lat = cfg_.crypto.sha1Latency;
    stats_.hashEnergy += cfg_.crypto.sha1Energy;
    std::uint64_t fp;
    {
        Profiler::Scope ps = profScope(Profiler::Fingerprint);
        fp = Sha1::fingerprint64(data);
    }
    t += fp_lat;
    bd.fpCompute += static_cast<double>(fp_lat);

    // 2. On-chip fingerprint cache, then the NVMM-resident index.
    Tick m = metadataAccess();
    t += m;
    bd.metadata += static_cast<double>(m);

    bool suspended = dedupSuspended();
    unsigned shard = channelOf(addr);
    FpTable::LookupResult lr;
    {
        Profiler::Scope ps = profScope(Profiler::Lookup);
        if (!suspended)
            lr = fps_.lookup(fp, shard);
    }
    if (lr.nvmLookup) {
        stats_.fpNvmLookups.inc();
        NvmAccessResult r = deviceRead(lr.nvmAddr, t);
        bd.fpNvmLookup += static_cast<double>(r.complete - t);
        t = r.complete;
    }

    bool dup = lr.found && lines_.isLive(lr.phys);
    if (lr.found && !dup) {
        // Stale index entry pointing at a dead line.
        noteJournal(JournalOp::EfitEvict, lr.phys);
        fps_.erase(fp, shard);
    }

    FpProbe probe = dup ? FpProbe::Hit : FpProbe::Miss;
    Addr decisive_addr = addr;
    Tick decisive_queue = 0;
    Tick encrypt_ns = 0;

    if (dup) {
        decisive_addr = lr.phys;
        // Fingerprint match is trusted — no byte comparison (classic
        // hash-dedup risk the paper contrasts with ESD in Section V).
        stats_.dedupHits.inc();
        if (data.isZero())
            stats_.dedupHitsZeroLine.inc();
        if (lr.cacheHit)
            stats_.dedupHitsFpCache.inc();
        else
            stats_.dedupHitsFpNvm.inc();
        res.issuerStall += remap(addr, lr.phys, t, bd);
        res.dedup = true;
    } else {
        // Unique line: register the fingerprint (an NVMM index store,
        // off the critical path), encrypt, and write.
        Addr phys;
        NvmAccessResult w = writeNewLine(addr, data, phys, t, bd);
        res.issuerStall += w.issuerStall;
        decisive_addr = phys;
        decisive_queue = w.queueDelay;
        encrypt_ns = cfg_.crypto.encryptLatency;

        if (!suspended) {
            Addr fp_store_addr;
            {
                Profiler::Scope ps = profScope(Profiler::Lookup);
                fps_.insert(fp, phys, fp_store_addr, shard);
                physToFp_[phys] = fp;
            }
            noteJournal(JournalOp::EfitInsert, phys, kInvalidAddr, fp);
            stats_.fpNvmStores.inc();
            NvmAccessResult fs = deviceWrite(fp_store_addr, t);
            res.issuerStall += fs.issuerStall;
        }

        res.issuerStall += remap(addr, phys, t, bd);
    }

    res.latency = t - now;
    stats_.breakdown.add(bd);

    // Fingerprint match is final here — there is never a compare.
    traceWrite(now, addr, fp, probe, CompareVerdict::None,
               dup ? WriteOutcome::Dedup : WriteOutcome::Unique,
               decisive_addr, decisive_queue, encrypt_ns, res.latency, bd);
    return res;
}

} // namespace esd
