#include "nvm/pcm_device.hh"

#include "common/logging.hh"

namespace esd
{

PcmDevice::PcmDevice(const PcmConfig &cfg) : cfg_(cfg)
{
    if (cfg_.totalBanks() == 0)
        esd_fatal("PCM device needs at least one bank");
    banks_.assign(cfg_.totalBanks(), 0);
    readChain_.assign(cfg_.totalBanks(), 0);
    openRow_.assign(cfg_.totalBanks(), ~std::uint64_t{0});
}

unsigned
PcmDevice::bankOf(Addr addr) const
{
    // Line-interleaved: consecutive lines land on consecutive banks,
    // spreading streams across the full bank parallelism.
    return static_cast<unsigned>(lineIndex(addr) % banks_.size());
}

void
PcmDevice::drainCompleted(Tick now)
{
    while (!writeCompletions_.empty() && writeCompletions_.top() <= now)
        writeCompletions_.pop();
}

Addr
PcmDevice::wearAddrOf(Addr addr)
{
    if (!cfg_.startGapEnabled)
        return lineAlign(addr);

    std::uint64_t line = lineIndex(addr);
    std::uint64_t region = line / cfg_.startGapRegionLines;
    std::uint64_t offset = line % cfg_.startGapRegionLines;

    auto it = gapRegions_.find(region);
    if (it == gapRegions_.end()) {
        it = gapRegions_
                 .emplace(region, std::make_unique<StartGap>(
                                      cfg_.startGapRegionLines,
                                      cfg_.gapMovePeriod))
                 .first;
    }
    // Each region owns regionLines + 1 physical slots in the wear
    // index space.
    std::uint64_t slot = it->second->slotOf(offset);
    return (region * (cfg_.startGapRegionLines + 1) + slot) * kLineSize;
}

NvmAccessResult
PcmDevice::access(OpType type, Addr addr, Tick arrival)
{
    NvmAccessResult res;

    if (type == OpType::Write) {
        drainCompleted(arrival);
        if (writeCompletions_.size() >= cfg_.writeQueueDepth) {
            // The queue is full: the issuer stalls until the earliest
            // outstanding write retires.
            Tick free_at = writeCompletions_.top();
            esd_assert(free_at > arrival, "stale completion in queue");
            res.issuerStall = free_at - arrival;
            arrival = free_at;
            drainCompleted(arrival);
            stats_.writeQueueStalls.inc();
        }
    }

    unsigned bank = bankOf(addr);

    Tick latency;
    if (type == OpType::Read) {
        latency = cfg_.readLatency;
        if (cfg_.rowBufferLines > 0) {
            std::uint64_t row = lineIndex(addr) / cfg_.rowBufferLines;
            if (openRow_[bank] == row) {
                latency = cfg_.rowHitReadLatency;
                stats_.rowHits.inc();
            } else {
                openRow_[bank] = row;
            }
        }
    } else {
        latency = cfg_.writeLatency;
        if (cfg_.rowBufferLines > 0)
            openRow_[bank] = lineIndex(addr) / cfg_.rowBufferLines;
    }

    if (cfg_.readPriority && type == OpType::Read) {
        // A read waits for earlier reads and for at most the write
        // currently occupying the bank — never for the queued backlog.
        Tick write_block = std::min(banks_[bank],
                                    arrival + cfg_.writeLatency);
        res.start = std::max({arrival, readChain_[bank], write_block});
        res.complete = res.start + latency;
        readChain_[bank] = res.complete;
    } else {
        res.start = std::max(arrival, banks_[bank]);
        if (cfg_.readPriority)
            res.start = std::max(res.start, readChain_[bank]);
        res.complete = res.start + latency;
        banks_[bank] = res.complete;
        if (!cfg_.readPriority)
            readChain_[bank] = res.complete;
    }
    res.queueDelay = res.start - arrival;

    if (type == OpType::Read) {
        stats_.reads.inc();
        stats_.readEnergy += cfg_.readEnergy;
    } else {
        stats_.writes.inc();
        stats_.writeEnergy += cfg_.writeEnergy;
        writeCompletions_.push(res.complete);

        wear_.recordWrite(wearAddrOf(addr));

        if (cfg_.startGapEnabled) {
            std::uint64_t region =
                lineIndex(addr) / cfg_.startGapRegionLines;
            StartGap &sg = *gapRegions_[region];
            std::uint64_t old_gap = sg.gap();
            if (sg.recordWrite()) {
                // Internal copy: one read + one write behind the
                // demand stream on this bank; the destination slot
                // (the old gap) takes the wear.
                stats_.gapMoves.inc();
                stats_.readEnergy += cfg_.readEnergy;
                stats_.writeEnergy += cfg_.writeEnergy;
                banks_[bank] += cfg_.readLatency + cfg_.writeLatency;
                // The copy lands in the slot the gap just vacated.
                Addr dest =
                    (region * (cfg_.startGapRegionLines + 1) + old_gap) *
                    kLineSize;
                wear_.recordWrite(dest);
            }
        }
    }
    return res;
}

} // namespace esd
