#include "nvm/pcm_device.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

PcmDevice::PcmDevice(const PcmConfig &cfg) : cfg_(cfg)
{
    if (cfg_.totalBanks() == 0)
        esd_fatal("PCM device needs at least one bank");
    banks_.assign(cfg_.totalBanks(), 0);
    bankStats_.resize(cfg_.totalBanks());
    readChain_.assign(cfg_.totalBanks(), 0);
    openRow_.assign(cfg_.totalBanks(), ~std::uint64_t{0});
}

void
PcmDevice::registerStats(StatRegistry &reg) const
{
    reg.addCounter("pcm.reads", stats_.reads);
    reg.addCounter("pcm.writes", stats_.writes);
    reg.addCounter("pcm.write_queue_stalls", stats_.writeQueueStalls,
                   "writes that back-pressured the issuer");
    reg.addCounter("pcm.row_hits", stats_.rowHits);
    reg.addCounter("pcm.gap_moves", stats_.gapMoves);
    reg.addGauge("pcm.energy.read_pj", [this] { return stats_.readEnergy; });
    reg.addGauge("pcm.energy.write_pj",
                 [this] { return stats_.writeEnergy; });
    reg.addGauge("pcm.write_queue.occupancy", [this] {
        return static_cast<double>(writeCompletions_.size());
    }, "outstanding writes at sampling time");

    for (std::size_t b = 0; b < bankStats_.size(); ++b) {
        std::string p = "pcm.bank" + std::to_string(b) + ".";
        const BankStats &s = bankStats_[b];
        reg.addCounter(p + "reads", s.reads);
        reg.addCounter(p + "writes", s.writes);
        reg.addGauge(p + "queue_wait_ns", [&s] { return s.queueWaitNs; },
                     "accumulated bank-queue wait");
        reg.addGauge(p + "busy_ns", [&s] { return s.busyNs; },
                     "accumulated service time");
    }
}

unsigned
PcmDevice::bankOf(Addr addr) const
{
    // Line-interleaved: consecutive lines land on consecutive banks,
    // spreading streams across the full bank parallelism.
    return static_cast<unsigned>(lineIndex(addr) % banks_.size());
}

void
PcmDevice::drainCompleted(Tick now)
{
    while (!writeCompletions_.empty() && writeCompletions_.top() <= now)
        writeCompletions_.pop();
}

Addr
PcmDevice::wearAddrOf(Addr addr)
{
    if (!cfg_.startGapEnabled)
        return lineAlign(addr);

    std::uint64_t line = lineIndex(addr);
    std::uint64_t region = line / cfg_.startGapRegionLines;
    std::uint64_t offset = line % cfg_.startGapRegionLines;

    auto it = gapRegions_.find(region);
    if (it == gapRegions_.end()) {
        it = gapRegions_
                 .emplace(region, std::make_unique<StartGap>(
                                      cfg_.startGapRegionLines,
                                      cfg_.gapMovePeriod))
                 .first;
    }
    // Each region owns regionLines + 1 physical slots in the wear
    // index space.
    std::uint64_t slot = it->second->slotOf(offset);
    return (region * (cfg_.startGapRegionLines + 1) + slot) * kLineSize;
}

NvmAccessResult
PcmDevice::access(OpType type, Addr addr, Tick arrival)
{
    NvmAccessResult res;

    if (type == OpType::Write) {
        drainCompleted(arrival);
        if (writeCompletions_.size() >= cfg_.writeQueueDepth) {
            // The queue is full: the issuer stalls until the earliest
            // outstanding write retires.
            Tick free_at = writeCompletions_.top();
            esd_assert(free_at > arrival, "stale completion in queue");
            res.issuerStall = free_at - arrival;
            arrival = free_at;
            drainCompleted(arrival);
            stats_.writeQueueStalls.inc();
        }
    }

    unsigned bank = bankOf(addr);

    Tick latency;
    if (type == OpType::Read) {
        latency = cfg_.readLatency;
        if (cfg_.rowBufferLines > 0) {
            std::uint64_t row = lineIndex(addr) / cfg_.rowBufferLines;
            if (openRow_[bank] == row) {
                latency = cfg_.rowHitReadLatency;
                stats_.rowHits.inc();
            } else {
                openRow_[bank] = row;
            }
        }
    } else {
        latency = cfg_.writeLatency;
        if (cfg_.rowBufferLines > 0)
            openRow_[bank] = lineIndex(addr) / cfg_.rowBufferLines;
    }

    if (cfg_.readPriority && type == OpType::Read) {
        // A read waits for earlier reads and for at most the write
        // currently occupying the bank — never for the queued backlog.
        Tick write_block = std::min(banks_[bank],
                                    arrival + cfg_.writeLatency);
        res.start = std::max({arrival, readChain_[bank], write_block});
        res.complete = res.start + latency;
        readChain_[bank] = res.complete;
    } else {
        res.start = std::max(arrival, banks_[bank]);
        if (cfg_.readPriority)
            res.start = std::max(res.start, readChain_[bank]);
        res.complete = res.start + latency;
        banks_[bank] = res.complete;
        if (!cfg_.readPriority)
            readChain_[bank] = res.complete;
    }
    res.queueDelay = res.start - arrival;

    BankStats &bs = bankStats_[bank];
    bs.queueWaitNs += static_cast<double>(res.queueDelay);
    bs.busyNs += static_cast<double>(latency);

    if (type == OpType::Read) {
        stats_.reads.inc();
        stats_.readEnergy += cfg_.readEnergy;
        bs.reads.inc();
    } else {
        stats_.writes.inc();
        bs.writes.inc();
        stats_.writeEnergy += cfg_.writeEnergy;
        writeCompletions_.push(res.complete);

        wear_.recordWrite(wearAddrOf(addr));

        if (cfg_.startGapEnabled) {
            std::uint64_t region =
                lineIndex(addr) / cfg_.startGapRegionLines;
            StartGap &sg = *gapRegions_[region];
            std::uint64_t old_gap = sg.gap();
            if (sg.recordWrite()) {
                // Internal copy: one read + one write behind the
                // demand stream on this bank; the destination slot
                // (the old gap) takes the wear.
                stats_.gapMoves.inc();
                stats_.readEnergy += cfg_.readEnergy;
                stats_.writeEnergy += cfg_.writeEnergy;
                banks_[bank] += cfg_.readLatency + cfg_.writeLatency;
                // The copy lands in the slot the gap just vacated.
                Addr dest =
                    (region * (cfg_.startGapRegionLines + 1) + old_gap) *
                    kLineSize;
                wear_.recordWrite(dest);
            }
        }
    }
    return res;
}

} // namespace esd
