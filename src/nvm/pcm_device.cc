#include "nvm/pcm_device.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

PcmDevice::PcmDevice(const PcmConfig &cfg, const ChannelConfig &channels)
    : cfg_(cfg), chCfg_(channels)
{
    if (cfg_.totalBanks() == 0)
        esd_fatal("PCM device needs at least one bank");
    if (chCfg_.count == 0)
        esd_fatal("PCM device needs at least one channel");
    banksPerChannel_ = cfg_.totalBanks();
    wpqDepth_ = chCfg_.wpqDepth ? chCfg_.wpqDepth : cfg_.writeQueueDepth;
    if (wpqDepth_ == 0)
        esd_fatal("write queue depth must be at least 1");

    unsigned total = totalBanks();
    banks_.assign(total, 0);
    bankStats_.resize(total);
    readChain_.assign(total, 0);
    openRow_.assign(total, ~std::uint64_t{0});
    channelStats_.resize(chCfg_.count);
    wpqs_.resize(chCfg_.count);
}

void
PcmDevice::registerStats(StatRegistry &reg) const
{
    reg.addCounter("pcm.reads", stats_.reads);
    reg.addCounter("pcm.writes", stats_.writes,
                   "writes issued to the array");
    reg.addCounter("pcm.writes_offered", stats_.writesOffered,
                   "write requests presented to the WPQs");
    reg.addCounter("pcm.writes_coalesced", stats_.writesCoalesced,
                   "offered writes merged into a pending WPQ entry");
    reg.addCounter("pcm.write_queue_stalls", stats_.writeQueueStalls,
                   "writes that back-pressured the issuer");
    reg.addCounter("pcm.row_hits", stats_.rowHits);
    reg.addCounter("pcm.gap_moves", stats_.gapMoves);
    reg.addGauge("pcm.energy.read_pj", [this] { return stats_.readEnergy; });
    reg.addGauge("pcm.energy.write_pj",
                 [this] { return stats_.writeEnergy; });
    reg.addGauge("pcm.write_queue.occupancy", [this] {
        std::size_t n = 0;
        for (const ChannelWpq &q : wpqs_)
            n += q.completions.size();
        return static_cast<double>(n);
    }, "outstanding writes at sampling time, all channels");

    for (std::size_t c = 0; c < channelStats_.size(); ++c) {
        std::string p = "pcm.ch" + std::to_string(c) + ".";
        const ChannelStats &s = channelStats_[c];
        reg.addCounter(p + "reads", s.reads);
        reg.addCounter(p + "writes", s.writes);
        reg.addCounter(p + "coalesced_writes", s.coalescedWrites);
        reg.addCounter(p + "wpq_stalls", s.wpqStalls);
        reg.addGauge(p + "queue_wait_ns", [&s] { return s.queueWaitNs; },
                     "accumulated bank-queue wait on this channel");
        reg.addGauge(p + "busy_ns", [&s] { return s.busyNs; },
                     "accumulated service time on this channel");
        const ChannelWpq &q = wpqs_[c];
        reg.addGauge(p + "wpq.occupancy", [&q] {
            return static_cast<double>(q.completions.size());
        }, "outstanding writes at sampling time");
    }

    for (std::size_t b = 0; b < bankStats_.size(); ++b) {
        std::string p = "pcm.bank" + std::to_string(b) + ".";
        const BankStats &s = bankStats_[b];
        reg.addCounter(p + "reads", s.reads);
        reg.addCounter(p + "writes", s.writes);
        reg.addGauge(p + "queue_wait_ns", [&s] { return s.queueWaitNs; },
                     "accumulated bank-queue wait");
        reg.addGauge(p + "busy_ns", [&s] { return s.busyNs; },
                     "accumulated service time");
    }
}

unsigned
PcmDevice::bankOf(Addr addr) const
{
    // Line-interleaved: consecutive lines rotate over the channels,
    // and within a channel over its banks, spreading streams across
    // the full channel x bank parallelism.
    std::uint64_t line = lineIndex(addr);
    unsigned ch = static_cast<unsigned>(line % chCfg_.count);
    unsigned local = static_cast<unsigned>(
        (line / chCfg_.count) % banksPerChannel_);
    return ch * banksPerChannel_ + local;
}

void
PcmDevice::drainCompleted(unsigned ch, Tick now)
{
    ChannelWpq &q = wpqs_[ch];
    while (!q.completions.empty() && q.completions.top().first <= now) {
        const auto &[tick, line] = q.completions.top();
        // The map entry tracks the newest pending write to the line;
        // only remove it when this heap entry is that write.
        auto it = q.pending.find(line);
        if (it != q.pending.end() && it->second == tick)
            q.pending.erase(it);
        q.completions.pop();
    }
}

Addr
PcmDevice::wearAddrOf(Addr addr)
{
    if (!cfg_.startGapEnabled)
        return lineAlign(addr);

    std::uint64_t line = lineIndex(addr);
    std::uint64_t region = line / cfg_.startGapRegionLines;
    std::uint64_t offset = line % cfg_.startGapRegionLines;

    auto it = gapRegions_.find(region);
    if (it == gapRegions_.end()) {
        it = gapRegions_
                 .emplace(region, std::make_unique<StartGap>(
                                      cfg_.startGapRegionLines,
                                      cfg_.gapMovePeriod))
                 .first;
    }
    // Each region owns regionLines + 1 physical slots in the wear
    // index space.
    std::uint64_t slot = it->second->slotOf(offset);
    return (region * (cfg_.startGapRegionLines + 1) + slot) * kLineSize;
}

NvmAccessResult
PcmDevice::access(OpType type, Addr addr, Tick arrival)
{
    NvmAccessResult res;

    unsigned ch = channelOf(addr);
    ChannelStats &cs = channelStats_[ch];

    if (type == OpType::Write) {
        stats_.writesOffered.inc();
        ChannelWpq &q = wpqs_[ch];
        drainCompleted(ch, arrival);

        if (chCfg_.wpqCoalescing) {
            Addr line = lineAlign(addr);
            auto it = q.pending.find(line);
            if (it != q.pending.end()) {
                // Merge into the queued write: the pending array write
                // will carry the new data, so no second device write,
                // no energy and no extra wear. Data becomes durable
                // when the queued write retires.
                res.start = arrival;
                res.complete = it->second;
                res.coalesced = true;
                stats_.writesCoalesced.inc();
                cs.coalescedWrites.inc();
                if (spans_ && spans_->admitAccess()) {
                    spans_->instant(
                        SpanTrace::channelTrack(ch), "coalesced",
                        arrival,
                        {SpanTrace::hex("addr", addr),
                         SpanTrace::num("retires_at", it->second)});
                }
                return res;
            }
        }

        if (q.completions.size() >= wpqDepth_) {
            // The WPQ is full: the issuer stalls until the earliest
            // outstanding write on this channel retires.
            Tick free_at = q.completions.top().first;
            esd_assert(free_at > arrival, "stale completion in queue");
            res.issuerStall = free_at - arrival;
            arrival = free_at;
            drainCompleted(ch, arrival);
            stats_.writeQueueStalls.inc();
            cs.wpqStalls.inc();
        }
    }

    unsigned bank = bankOf(addr);

    Tick latency;
    if (type == OpType::Read) {
        latency = cfg_.readLatency;
        if (cfg_.rowBufferLines > 0) {
            std::uint64_t row = lineIndex(addr) / cfg_.rowBufferLines;
            if (openRow_[bank] == row) {
                latency = cfg_.rowHitReadLatency;
                stats_.rowHits.inc();
            } else {
                openRow_[bank] = row;
            }
        }
    } else {
        latency = cfg_.writeLatency;
        if (cfg_.rowBufferLines > 0)
            openRow_[bank] = lineIndex(addr) / cfg_.rowBufferLines;
    }

    if (cfg_.readPriority && type == OpType::Read) {
        // A read waits for earlier reads and for at most the write
        // currently occupying the bank — never for the queued backlog.
        Tick write_block = std::min(banks_[bank],
                                    arrival + cfg_.writeLatency);
        res.start = std::max({arrival, readChain_[bank], write_block});
        res.complete = res.start + latency;
        readChain_[bank] = res.complete;
    } else {
        res.start = std::max(arrival, banks_[bank]);
        if (cfg_.readPriority)
            res.start = std::max(res.start, readChain_[bank]);
        res.complete = res.start + latency;
        banks_[bank] = res.complete;
        if (!cfg_.readPriority)
            readChain_[bank] = res.complete;
    }
    res.queueDelay = res.start - arrival;

    if (spans_ && spans_->admitAccess()) {
        std::uint32_t track = SpanTrace::channelTrack(ch);
        if (res.queueDelay > 0) {
            spans_->span(track, "wpq_wait", arrival, res.queueDelay,
                         {SpanTrace::num("bank", bank)});
        }
        spans_->span(track,
                     type == OpType::Read ? "read" : "write",
                     res.start, latency,
                     {SpanTrace::hex("addr", addr),
                      SpanTrace::num("bank", bank),
                      SpanTrace::num("queue_ns", res.queueDelay),
                      SpanTrace::num("stall_ns", res.issuerStall)});
    }

    BankStats &bs = bankStats_[bank];
    bs.queueWaitNs += static_cast<double>(res.queueDelay);
    bs.busyNs += static_cast<double>(latency);
    cs.queueWaitNs += static_cast<double>(res.queueDelay);
    cs.busyNs += static_cast<double>(latency);

    if (type == OpType::Read) {
        stats_.reads.inc();
        stats_.readEnergy += cfg_.readEnergy;
        bs.reads.inc();
        cs.reads.inc();
    } else {
        stats_.writes.inc();
        bs.writes.inc();
        cs.writes.inc();
        stats_.writeEnergy += cfg_.writeEnergy;
        ChannelWpq &q = wpqs_[ch];
        q.completions.emplace(res.complete, lineAlign(addr));
        if (res.complete > maxQueuedComplete_)
            maxQueuedComplete_ = res.complete;
        if (chCfg_.wpqCoalescing)
            q.pending[lineAlign(addr)] = res.complete;

        wear_.recordWrite(wearAddrOf(addr));

        if (cfg_.startGapEnabled) {
            std::uint64_t region =
                lineIndex(addr) / cfg_.startGapRegionLines;
            StartGap &sg = *gapRegions_[region];
            std::uint64_t old_gap = sg.gap();
            if (sg.recordWrite()) {
                // Internal copy: one read + one write behind the
                // demand stream on this bank; the destination slot
                // (the old gap) takes the wear.
                stats_.gapMoves.inc();
                stats_.readEnergy += cfg_.readEnergy;
                stats_.writeEnergy += cfg_.writeEnergy;
                banks_[bank] += cfg_.readLatency + cfg_.writeLatency;
                // The copy lands in the slot the gap just vacated.
                Addr dest =
                    (region * (cfg_.startGapRegionLines + 1) + old_gap) *
                    kLineSize;
                wear_.recordWrite(dest);
            }
        }
    }
    return res;
}

} // namespace esd
