/**
 * @file
 * Functional content store of the NVMM: what is actually resident at
 * each physical line address, together with its line ECC.
 *
 * The timing model (PcmDevice) and the content model are deliberately
 * separate: schemes consult PcmDevice for *when* an access completes
 * and NvmStore for *what* the access returns — e.g. the ESD byte-by-
 * byte comparison reads real bytes back, so an ECC collision between
 * different lines is actually caught.
 *
 * Storage layout: a flat index of address -> slot plus a dense pool of
 * 72-byte StoredLine payloads. Keeping the big payloads out of the
 * hash table keeps its probe sequences inside a few cache lines (the
 * index entry is 12 bytes), and erased slots are recycled LIFO so the
 * pool stays as hot as the working set. Iteration order (patrol-scrub
 * sweeps) comes from the index and therefore depends only on the
 * address operation history, exactly as it did when the payloads lived
 * inline.
 */

#ifndef ESD_NVM_NVM_STORE_HH
#define ESD_NVM_NVM_STORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

/** One resident physical line: payload plus its protecting ECC. */
struct StoredLine
{
    CacheLine data;
    LineEcc ecc = 0;
};

/** Sparse map of physical line address to resident content. */
class NvmStore
{
  public:
    explicit NvmStore(std::uint64_t capacity_bytes)
        : capacityLines_(capacity_bytes / kLineSize)
    {
    }

    /** Install @p data (+ @p ecc) at physical address @p phys. */
    void
    write(Addr phys, const CacheLine &data, LineEcc ecc)
    {
        esd_assert(lineIndex(phys) < capacityLines_,
                   "physical address beyond device capacity");
        Addr key = lineAlign(phys);
        auto it = index_.find(key);
        if (it != index_.end()) {
            pool_[it->second].data = data;
            pool_[it->second].ecc = ecc;
            return;
        }
        std::uint32_t slot;
        if (!freeSlots_.empty()) {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
            pool_[slot].data = data;
            pool_[slot].ecc = ecc;
        } else {
            slot = static_cast<std::uint32_t>(pool_.size());
            pool_.push_back(StoredLine{data, ecc});
        }
        index_.emplace(key, slot);
    }

    /**
     * Borrowed view of the content at @p phys, or nullptr when never
     * written. The pointer is invalidated by the next mutating call —
     * hot-path readers (candidate compares, demand fills) consume it
     * immediately instead of copying the 72-byte line.
     */
    const StoredLine *
    peek(Addr phys) const
    {
        auto it = index_.find(lineAlign(phys));
        return it == index_.end() ? nullptr : &pool_[it->second];
    }

    /** Content at @p phys, or nullopt when never written. */
    std::optional<StoredLine>
    read(Addr phys) const
    {
        const StoredLine *l = peek(phys);
        if (!l)
            return std::nullopt;
        return *l;
    }

    /** Drop the line at @p phys (after its last reference died). */
    void
    erase(Addr phys)
    {
        Addr key = lineAlign(phys);
        auto it = index_.find(key);
        if (it == index_.end())
            return;
        freeSlots_.push_back(it->second);
        index_.erase(key);
    }

    /**
     * Fault injection: flip one stored bit of the line at @p phys.
     * Bits 0..511 hit the payload, 512..575 the ECC word.
     * @return false when no line is resident there.
     */
    bool
    corruptBit(Addr phys, unsigned bit)
    {
        StoredLine *l = peekMutable(phys);
        if (!l)
            return false;
        if (bit < 512) {
            l->data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
            l->ecc ^= 1ull << (bit - 512);
        }
        return true;
    }

    /**
     * Fault injection: force one stored bit of the line at @p phys to
     * @p value (stuck-at cells re-asserting after a write). Bit
     * numbering matches corruptBit().
     * @return false when no line is resident there.
     */
    bool
    setBit(Addr phys, unsigned bit, bool value)
    {
        StoredLine *l = peekMutable(phys);
        if (!l)
            return false;
        if (bit < 512) {
            auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
            if (value)
                l->data[bit / 8] |= mask;
            else
                l->data[bit / 8] &= static_cast<std::uint8_t>(~mask);
        } else {
            std::uint64_t mask = 1ull << (bit - 512);
            if (value)
                l->ecc |= mask;
            else
                l->ecc &= ~mask;
        }
        return true;
    }

    /** Current value of stored bit @p bit at @p phys (false when the
     * line is absent). */
    bool
    bitAt(Addr phys, unsigned bit) const
    {
        const StoredLine *l = peek(phys);
        if (!l)
            return false;
        if (bit < 512)
            return (l->data[bit / 8] >> (bit % 8)) & 1u;
        return (l->ecc >> (bit - 512)) & 1u;
    }

    bool contains(Addr phys) const
    {
        return index_.count(lineAlign(phys)) != 0;
    }

    /** Snapshot of every resident line address (patrol-scrub sweep
     * order source; slot order — deterministic for a given operation
     * history). */
    std::vector<Addr>
    residentAddrs() const
    {
        std::vector<Addr> out;
        out.reserve(index_.size());
        for (const auto &[addr, slot] : index_)
            out.push_back(addr);
        return out;
    }

    /** Number of resident lines (space-efficiency accounting). */
    std::uint64_t residentLines() const { return index_.size(); }

    std::uint64_t capacityLines() const { return capacityLines_; }

  private:
    StoredLine *
    peekMutable(Addr phys)
    {
        auto it = index_.find(lineAlign(phys));
        return it == index_.end() ? nullptr : &pool_[it->second];
    }

    std::uint64_t capacityLines_;
    /** Address -> pool slot; small entries keep probing cache-local. */
    FlatMap<Addr, std::uint32_t> index_;
    /** Dense payload storage addressed by slot. */
    std::vector<StoredLine> pool_;
    /** Recycled slots, reused LIFO. */
    std::vector<std::uint32_t> freeSlots_;
};

} // namespace esd

#endif // ESD_NVM_NVM_STORE_HH
