/**
 * @file
 * Functional content store of the NVMM: what is actually resident at
 * each physical line address, together with its line ECC.
 *
 * The timing model (PcmDevice) and the content model are deliberately
 * separate: schemes consult PcmDevice for *when* an access completes
 * and NvmStore for *what* the access returns — e.g. the ESD byte-by-
 * byte comparison reads real bytes back, so an ECC collision between
 * different lines is actually caught.
 */

#ifndef ESD_NVM_NVM_STORE_HH
#define ESD_NVM_NVM_STORE_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

/** One resident physical line: payload plus its protecting ECC. */
struct StoredLine
{
    CacheLine data;
    LineEcc ecc = 0;
};

/** Sparse map of physical line address to resident content. */
class NvmStore
{
  public:
    explicit NvmStore(std::uint64_t capacity_bytes)
        : capacityLines_(capacity_bytes / kLineSize)
    {
    }

    /** Install @p data (+ @p ecc) at physical address @p phys. */
    void
    write(Addr phys, const CacheLine &data, LineEcc ecc)
    {
        esd_assert(lineIndex(phys) < capacityLines_,
                   "physical address beyond device capacity");
        lines_[lineAlign(phys)] = StoredLine{data, ecc};
    }

    /** Content at @p phys, or nullopt when never written. */
    std::optional<StoredLine>
    read(Addr phys) const
    {
        auto it = lines_.find(lineAlign(phys));
        if (it == lines_.end())
            return std::nullopt;
        return it->second;
    }

    /** Drop the line at @p phys (after its last reference died). */
    void erase(Addr phys) { lines_.erase(lineAlign(phys)); }

    /**
     * Fault injection: flip one stored bit of the line at @p phys.
     * Bits 0..511 hit the payload, 512..575 the ECC word.
     * @return false when no line is resident there.
     */
    bool
    corruptBit(Addr phys, unsigned bit)
    {
        auto it = lines_.find(lineAlign(phys));
        if (it == lines_.end())
            return false;
        if (bit < 512) {
            it->second.data[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
            it->second.ecc ^= 1ull << (bit - 512);
        }
        return true;
    }

    /**
     * Fault injection: force one stored bit of the line at @p phys to
     * @p value (stuck-at cells re-asserting after a write). Bit
     * numbering matches corruptBit().
     * @return false when no line is resident there.
     */
    bool
    setBit(Addr phys, unsigned bit, bool value)
    {
        auto it = lines_.find(lineAlign(phys));
        if (it == lines_.end())
            return false;
        if (bit < 512) {
            auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
            if (value)
                it->second.data[bit / 8] |= mask;
            else
                it->second.data[bit / 8] &= static_cast<std::uint8_t>(~mask);
        } else {
            std::uint64_t mask = 1ull << (bit - 512);
            if (value)
                it->second.ecc |= mask;
            else
                it->second.ecc &= ~mask;
        }
        return true;
    }

    /** Current value of stored bit @p bit at @p phys (false when the
     * line is absent). */
    bool
    bitAt(Addr phys, unsigned bit) const
    {
        auto it = lines_.find(lineAlign(phys));
        if (it == lines_.end())
            return false;
        if (bit < 512)
            return (it->second.data[bit / 8] >> (bit % 8)) & 1u;
        return (it->second.ecc >> (bit - 512)) & 1u;
    }

    bool contains(Addr phys) const
    {
        return lines_.count(lineAlign(phys)) != 0;
    }

    /** Snapshot of every resident line address (patrol-scrub sweep
     * order source; unordered). */
    std::vector<Addr>
    residentAddrs() const
    {
        std::vector<Addr> out;
        out.reserve(lines_.size());
        for (const auto &[addr, line] : lines_)
            out.push_back(addr);
        return out;
    }

    /** Number of resident lines (space-efficiency accounting). */
    std::uint64_t residentLines() const { return lines_.size(); }

    std::uint64_t capacityLines() const { return capacityLines_; }

  private:
    std::uint64_t capacityLines_;
    std::unordered_map<Addr, StoredLine> lines_;
};

} // namespace esd

#endif // ESD_NVM_NVM_STORE_HH
