/**
 * @file
 * Timing and energy model of a banked PCM main memory device.
 *
 * The model captures what the ESD evaluation depends on:
 *   - asymmetric read/write array latency (75 ns / 150 ns) and energy
 *     (1.49 nJ / 6.75 nJ) per 64 B line (Table I),
 *   - bank-level parallelism with in-order per-bank service, so heavy
 *     write streams delay reads on the same bank (the read/write
 *     interference that deduplication alleviates, Section IV-C),
 *   - a finite controller write queue whose overflow back-pressures the
 *     core model (feeding the IPC results of Fig. 14).
 *
 * Requests are issued with a nanosecond arrival time; the device
 * returns the service start and completion times. There is no global
 * event queue — per-bank busy-until bookkeeping is sufficient because
 * callers issue requests in non-decreasing arrival order.
 */

#ifndef ESD_NVM_PCM_DEVICE_HH
#define ESD_NVM_PCM_DEVICE_HH

#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/start_gap.hh"
#include "nvm/wear_tracker.hh"

namespace esd
{

class StatRegistry;

/** Timing outcome of one device access. */
struct NvmAccessResult
{
    /** When the bank began servicing the request. */
    Tick start = 0;

    /** When the data movement finished. */
    Tick complete = 0;

    /** start - arrival: time spent waiting for the bank. */
    Tick queueDelay = 0;

    /** Extra stall imposed on the *issuer* because the write queue was
     * full at arrival (0 for reads and for non-saturated writes). */
    Tick issuerStall = 0;
};

/** Aggregate device statistics. */
struct NvmStats
{
    Counter reads;
    Counter writes;
    Counter writeQueueStalls;
    Counter rowHits;
    Counter gapMoves;  ///< Start-Gap internal line copies
    Energy readEnergy = 0;
    Energy writeEnergy = 0;

    Energy totalEnergy() const { return readEnergy + writeEnergy; }
};

/** Per-bank accounting (bank utilization / queue-wait time-series). */
struct BankStats
{
    Counter reads;
    Counter writes;

    /** Accumulated time requests waited for this bank, ns. */
    double queueWaitNs = 0;

    /** Bank busy time accumulated over serviced requests, ns. */
    double busyNs = 0;
};

/**
 * The banked PCM device.
 */
class PcmDevice
{
  public:
    explicit PcmDevice(const PcmConfig &cfg);

    /**
     * Issue an access.
     *
     * @param type    read (miss fill, metadata fetch) or write
     * @param addr    byte address; the containing line picks the bank
     * @param arrival issue time in ns, non-decreasing across calls
     */
    NvmAccessResult access(OpType type, Addr addr, Tick arrival);

    /** Bank servicing @p addr (line-interleaved across banks). */
    unsigned bankOf(Addr addr) const;

    /** Busy-until time of bank @p b (for tests). */
    Tick bankBusyUntil(unsigned b) const { return banks_[b]; }

    /** Outstanding (not yet completed relative to @p now) writes. */
    std::size_t
    outstandingWrites(Tick now)
    {
        drainCompleted(now);
        return writeCompletions_.size();
    }

    const NvmStats &stats() const { return stats_; }

    /** Per-bank accounting for bank @p b. */
    const BankStats &bankStats(unsigned b) const { return bankStats_[b]; }

    const PcmConfig &config() const { return cfg_; }

    /** Per-line endurance accounting (always on). */
    const WearTracker &wear() const { return wear_; }

    /** Register device-wide and per-bank statistics under "pcm.*" /
     * "pcm.bankN.*". */
    void registerStats(StatRegistry &reg) const;

    /** Zero all statistics (after warm-up); wear is cumulative and
     * reset separately via resetWear(). */
    void
    resetStats()
    {
        stats_ = NvmStats{};
        // Assign in place: registered stat references stay valid.
        for (BankStats &b : bankStats_)
            b = BankStats{};
    }

    /** Clear endurance accounting. */
    void resetWear() { wear_.reset(); }

  private:
    void drainCompleted(Tick now);

    PcmConfig cfg_;
    std::vector<Tick> banks_;
    std::vector<BankStats> bankStats_;

    /** Read-chain clocks per bank (used only under readPriority). */
    std::vector<Tick> readChain_;

    /** Open row per bank (row-buffer model); ~0 = closed. */
    std::vector<std::uint64_t> openRow_;

    /** Wear-index of @p addr after any Start-Gap rotation. */
    Addr wearAddrOf(Addr addr);

    WearTracker wear_;

    /** Lazily created Start-Gap remappers per rotation region. */
    std::unordered_map<std::uint64_t, std::unique_ptr<StartGap>>
        gapRegions_;

    /** Min-heap of outstanding write completion times implementing the
     * finite write queue. */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        writeCompletions_;

    NvmStats stats_;
};

} // namespace esd

#endif // ESD_NVM_PCM_DEVICE_HH
