/**
 * @file
 * Timing and energy model of a multi-channel, banked PCM main memory.
 *
 * The model captures what the ESD evaluation depends on:
 *   - asymmetric read/write array latency (75 ns / 150 ns) and energy
 *     (1.49 nJ / 6.75 nJ) per 64 B line (Table I),
 *   - bank-level parallelism with in-order per-bank service, so heavy
 *     write streams delay reads on the same bank (the read/write
 *     interference that deduplication alleviates, Section IV-C),
 *   - channel-level parallelism: lines interleave across N independent
 *     channels (channelOf = lineIndex % N), each owning a full copy of
 *     the bank geometry and its own write-pending queue (WPQ),
 *   - a finite per-channel WPQ whose overflow back-pressures the core
 *     model (feeding the IPC results of Fig. 14), with optional
 *     in-queue write coalescing: a write to a line that already has a
 *     pending WPQ entry updates that entry in place instead of issuing
 *     a second device write.
 *
 * With one channel and coalescing off the device is bit-identical to
 * the single-channel model that predates the channel layer.
 *
 * Requests are issued with a nanosecond arrival time; the device
 * returns the service start and completion times. There is no global
 * event queue — per-bank busy-until bookkeeping is sufficient because
 * callers issue requests in non-decreasing arrival order.
 */

#ifndef ESD_NVM_PCM_DEVICE_HH
#define ESD_NVM_PCM_DEVICE_HH

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "metrics/span_trace.hh"
#include "nvm/start_gap.hh"
#include "nvm/wear_tracker.hh"

namespace esd
{

class StatRegistry;

/** Timing outcome of one device access. */
struct NvmAccessResult
{
    /** When the bank began servicing the request. */
    Tick start = 0;

    /** When the data movement finished. */
    Tick complete = 0;

    /** start - arrival: time spent waiting for the bank. */
    Tick queueDelay = 0;

    /** Extra stall imposed on the *issuer* because the write queue was
     * full at arrival (0 for reads and for non-saturated writes). */
    Tick issuerStall = 0;

    /** The write merged into a pending WPQ entry: no array access was
     * issued and `complete` is the pending entry's completion time. */
    bool coalesced = false;
};

/** Aggregate device statistics. */
struct NvmStats
{
    Counter reads;
    Counter writes;            ///< writes issued to the array
    Counter writesOffered;     ///< write requests presented to the WPQs
    Counter writesCoalesced;   ///< offered writes merged into a WPQ entry
    Counter writeQueueStalls;
    Counter rowHits;
    Counter gapMoves;  ///< Start-Gap internal line copies
    Energy readEnergy = 0;
    Energy writeEnergy = 0;

    Energy totalEnergy() const { return readEnergy + writeEnergy; }
};

/** Per-bank accounting (bank utilization / queue-wait time-series). */
struct BankStats
{
    Counter reads;
    Counter writes;

    /** Accumulated time requests waited for this bank, ns. */
    double queueWaitNs = 0;

    /** Bank busy time accumulated over serviced requests, ns. */
    double busyNs = 0;
};

/** Per-channel accounting. */
struct ChannelStats
{
    Counter reads;
    Counter writes;            ///< array writes issued on this channel
    Counter coalescedWrites;   ///< offered writes merged in the WPQ
    Counter wpqStalls;         ///< writes that back-pressured the issuer

    /** Accumulated bank-queue wait of this channel's requests, ns. */
    double queueWaitNs = 0;

    /** Accumulated service time on this channel's banks, ns. */
    double busyNs = 0;
};

/**
 * The multi-channel banked PCM device.
 */
class PcmDevice
{
  public:
    /** Single-channel device (legacy shape: one channel, coalescing
     * off, WPQ depth = cfg.writeQueueDepth). */
    explicit PcmDevice(const PcmConfig &cfg)
        : PcmDevice(cfg, ChannelConfig{}) {}

    PcmDevice(const PcmConfig &cfg, const ChannelConfig &channels);

    /**
     * Issue an access.
     *
     * @param type    read (miss fill, metadata fetch) or write
     * @param addr    byte address; the containing line picks the
     *                channel and bank
     * @param arrival issue time in ns, non-decreasing across calls
     */
    NvmAccessResult access(OpType type, Addr addr, Tick arrival);

    /** Channel servicing @p addr (line-interleaved across channels). */
    unsigned
    channelOf(Addr addr) const
    {
        return static_cast<unsigned>(lineIndex(addr) % chCfg_.count);
    }

    /** Global bank id servicing @p addr: channel * banksPerChannel +
     * local bank (line-interleaved within the channel). */
    unsigned bankOf(Addr addr) const;

    /** Busy-until time of global bank @p b (for tests). */
    Tick bankBusyUntil(unsigned b) const { return banks_[b]; }

    /** Outstanding (not yet completed relative to @p now) writes,
     * summed over all channel WPQs. */
    std::size_t
    outstandingWrites(Tick now)
    {
        std::size_t n = 0;
        for (unsigned c = 0; c < chCfg_.count; ++c) {
            drainCompleted(c, now);
            n += wpqs_[c].completions.size();
        }
        return n;
    }

    /**
     * Earliest tick (>= @p now) by which every currently queued write
     * will have reached the array — what a persist barrier under ADR
     * waits for. Completions already at or before @p now have drained,
     * so tracking the max completion ever queued is exact.
     */
    Tick
    wpqDrainTick(Tick now) const
    {
        return maxQueuedComplete_ > now ? maxQueuedComplete_ : now;
    }

    const NvmStats &stats() const { return stats_; }

    /** Per-bank accounting for global bank @p b. */
    const BankStats &bankStats(unsigned b) const { return bankStats_[b]; }

    /** Per-channel accounting for channel @p c. */
    const ChannelStats &
    channelStats(unsigned c) const
    {
        return channelStats_[c];
    }

    const PcmConfig &config() const { return cfg_; }

    unsigned channelCount() const { return chCfg_.count; }

    /** Effective per-channel WPQ depth. */
    unsigned wpqDepth() const { return wpqDepth_; }

    bool coalescingEnabled() const { return chCfg_.wpqCoalescing; }

    /** Banks owned by each channel (= PcmConfig::totalBanks()). */
    unsigned banksPerChannel() const { return banksPerChannel_; }

    /** Total banks across all channels. */
    unsigned totalBanks() const
    {
        return banksPerChannel_ * chCfg_.count;
    }

    /** Per-line endurance accounting (always on). */
    const WearTracker &wear() const { return wear_; }

    /** Register device-wide, per-channel and per-bank statistics under
     * "pcm.*" / "pcm.chN.*" / "pcm.bankN.*". */
    void registerStats(StatRegistry &reg) const;

    /** Attach (or detach with nullptr) a span sink: every admitted
     * access emits a service span on its channel's track, plus a
     * wpq_wait span when it queued and an instant when it coalesced. */
    void setSpanTrace(SpanTrace *spans) { spans_ = spans; }

    /** Zero all statistics (after warm-up); wear is cumulative and
     * reset separately via resetWear(). */
    void
    resetStats()
    {
        stats_ = NvmStats{};
        // Assign in place: registered stat references stay valid.
        for (BankStats &b : bankStats_)
            b = BankStats{};
        for (ChannelStats &c : channelStats_)
            c = ChannelStats{};
    }

    /** Clear endurance accounting. */
    void resetWear() { wear_.reset(); }

  private:
    /** One channel's write-pending queue. */
    struct ChannelWpq
    {
        /** Min-heap of (completion, line) for outstanding writes. */
        std::priority_queue<std::pair<Tick, Addr>,
                            std::vector<std::pair<Tick, Addr>>,
                            std::greater<std::pair<Tick, Addr>>>
            completions;

        /** Pending line -> completion time, maintained only when
         * coalescing is on; a hit merges the new data in place. */
        FlatMap<Addr, Tick> pending;
    };

    void drainCompleted(unsigned ch, Tick now);

    PcmConfig cfg_;
    ChannelConfig chCfg_;
    unsigned banksPerChannel_ = 0;
    unsigned wpqDepth_ = 0;

    /** Max completion time among writes ever queued (wpqDrainTick). */
    Tick maxQueuedComplete_ = 0;

    std::vector<Tick> banks_;
    std::vector<BankStats> bankStats_;
    std::vector<ChannelStats> channelStats_;
    std::vector<ChannelWpq> wpqs_;

    /** Read-chain clocks per bank (used only under readPriority). */
    std::vector<Tick> readChain_;

    /** Open row per bank (row-buffer model); ~0 = closed. */
    std::vector<std::uint64_t> openRow_;

    /** Wear-index of @p addr after any Start-Gap rotation. */
    Addr wearAddrOf(Addr addr);

    WearTracker wear_;

    /** Lazily created Start-Gap remappers per rotation region. */
    FlatMap<std::uint64_t, std::unique_ptr<StartGap>> gapRegions_;

    NvmStats stats_;

    SpanTrace *spans_ = nullptr;
};

} // namespace esd

#endif // ESD_NVM_PCM_DEVICE_HH
