/**
 * @file
 * Per-line write-endurance tracking.
 *
 * PCM cells survive 10-100 million writes (Section I); reducing and
 * spreading writes is the endurance story behind Fig. 11. The tracker
 * records writes per physical line and summarises wear: totals, the
 * hottest line, and a projected lifetime improvement relative to a
 * reference write load.
 */

#ifndef ESD_NVM_WEAR_TRACKER_HH
#define ESD_NVM_WEAR_TRACKER_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace esd
{

/** Aggregate wear summary. */
struct WearStats
{
    std::uint64_t totalWrites = 0;
    std::uint64_t linesTouched = 0;
    std::uint64_t maxLineWrites = 0;
    Addr hottestLine = kInvalidAddr;

    /** Mean writes over touched lines. */
    double
    meanLineWrites() const
    {
        return linesTouched == 0
                   ? 0.0
                   : static_cast<double>(totalWrites) / linesTouched;
    }

    /** max/mean — 1.0 means perfectly even wear. */
    double
    imbalance() const
    {
        double mean = meanLineWrites();
        return mean == 0 ? 0.0 : maxLineWrites / mean;
    }
};

/** Records write counts per physical line. */
class WearTracker
{
  public:
    /** Count one write to the line containing @p addr. */
    void
    recordWrite(Addr addr)
    {
        ++writes_[lineIndex(addr)];
        ++total_;
    }

    /** Writes absorbed by @p addr 's line so far. */
    std::uint64_t
    lineWrites(Addr addr) const
    {
        auto it = writes_.find(lineIndex(addr));
        return it == writes_.end() ? 0 : it->second;
    }

    WearStats
    stats() const
    {
        WearStats s;
        s.totalWrites = total_;
        s.linesTouched = writes_.size();
        for (const auto &[line, count] : writes_) {
            if (count > s.maxLineWrites) {
                s.maxLineWrites = count;
                s.hottestLine = line * kLineSize;
            }
        }
        return s;
    }

    /**
     * Projected device lifetime (arbitrary time units) until the
     * hottest line exhausts @p cell_endurance writes, assuming the
     * recorded write pattern repeats at a constant rate.
     */
    double
    lifetimeUntilWearOut(double cell_endurance) const
    {
        WearStats s = stats();
        if (s.maxLineWrites == 0)
            return 0.0;
        return cell_endurance / s.maxLineWrites;
    }

    void
    reset()
    {
        writes_.clear();
        total_ = 0;
    }

  private:
    FlatMap<std::uint64_t, std::uint64_t> writes_;
    std::uint64_t total_ = 0;
};

} // namespace esd

#endif // ESD_NVM_WEAR_TRACKER_HH
