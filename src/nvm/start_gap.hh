/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09) — the standard
 * low-cost PCM wear-leveling layer the endurance literature the paper
 * builds on assumes.
 *
 * The device keeps one spare ("gap") line per region. Every
 * gapMovePeriod writes, the line just below the gap moves into the
 * gap and the gap shifts down by one; after N+1 such moves every line
 * has rotated one slot. Over time hot logical lines sweep across all
 * physical slots, bounding per-cell wear with only two registers
 * (start, gap) and one spare line of state.
 *
 * The mapping is purely positional:
 *   slot  = (line + start) % (n + 1)
 *   slot' = slot >= gap ? slot + 1 ... (classic formulation: lines at
 *           or above the gap are shifted by one)
 */

#ifndef ESD_NVM_START_GAP_HH
#define ESD_NVM_START_GAP_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace esd
{

/** Start-Gap remapper over a region of @p n logical lines backed by
 * n + 1 physical slots. */
class StartGap
{
  public:
    /**
     * @param lines           logical lines in the region
     * @param gap_move_period writes between gap movements (100 in the
     *                        original paper: <1% overhead)
     */
    StartGap(std::uint64_t lines, std::uint64_t gap_move_period)
        : lines_(lines), period_(gap_move_period), gap_(lines)
    {
        esd_assert(lines_ > 0, "empty start-gap region");
        esd_assert(period_ > 0, "gap move period must be positive");
    }

    /** Physical slot (0..lines) currently holding logical @p line. */
    std::uint64_t
    slotOf(std::uint64_t line) const
    {
        esd_assert(line < lines_, "line outside region");
        std::uint64_t slot = (line + start_) % lines_;
        // Slots at or above the gap are shifted down by one physical
        // position; equivalently the gap "hides" one slot.
        return slot >= gap_ ? slot + 1 : slot;
    }

    /**
     * Account one write; every period_ writes the gap moves.
     * @return true when a gap movement happened (the caller owes one
     *         internal line copy: a read plus a write).
     */
    bool
    recordWrite()
    {
        if (++writesSinceMove_ < period_)
            return false;
        writesSinceMove_ = 0;
        ++moves_;
        if (gap_ == 0) {
            gap_ = lines_;
            start_ = (start_ + 1) % lines_;
        } else {
            --gap_;
        }
        return true;
    }

    std::uint64_t gap() const { return gap_; }
    std::uint64_t start() const { return start_; }
    std::uint64_t lines() const { return lines_; }

    /** Total gap movements so far (each cost one line copy). */
    std::uint64_t moves() const { return moves_; }

  private:
    std::uint64_t lines_;
    std::uint64_t period_;
    std::uint64_t start_ = 0;
    std::uint64_t gap_;
    std::uint64_t writesSinceMove_ = 0;
    std::uint64_t moves_ = 0;
};

} // namespace esd

#endif // ESD_NVM_START_GAP_HH
