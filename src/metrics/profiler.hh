/**
 * @file
 * Self-profiling of the simulator's own hot path.
 *
 * The simulated timing model answers "how fast is the hardware"; this
 * profiler answers "how fast is the simulator" — host wall-clock
 * attributed to the phases every write walks through:
 *
 *   fingerprint  SHA-1 / MD5 / CRC / ECC fingerprint computation
 *   lookup       metadata structures (AMT, fingerprint/EFIT tables,
 *                refcounts) — the flat-map hot path
 *   compare      candidate fetch + decrypt + ECC verify + byte compare
 *   encrypt      counter-mode pad application (AES)
 *   device       PCM timing model, WPQ, wear, content-store writes
 *   persist      metadata journaling: record append, group commit,
 *                checkpoint folds (zero when [persistence] is off)
 *
 * Scopes are manual RAII markers placed in the schemes; when no
 * profiler is attached (the default) each marker is a single null
 * check, so the instrumented path stays branch-predictable and the
 * deterministic simulation results are unaffected either way.
 *
 * Enabled profiles register under "host.profile.*" in the
 * StatRegistry. They are deliberately NOT registered when profiling
 * is off: run reports stay byte-identical to unprofiled runs.
 */

#ifndef ESD_METRICS_PROFILER_HH
#define ESD_METRICS_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace esd
{

class StatRegistry;

/** Wall-clock phase accounting for one simulated system. */
class Profiler
{
  public:
    enum Phase : unsigned
    {
        Fingerprint,
        Lookup,
        Compare,
        Encrypt,
        Device,
        Persist,
        kPhaseCount
    };

    static const char *phaseName(unsigned phase);

    /** Accumulated host time and entry count of one phase. */
    struct PhaseTotals
    {
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
    };

    const PhaseTotals &
    phase(unsigned p) const
    {
        return totals_[p];
    }

    /** Host ns across all phases (phases do not nest). */
    std::uint64_t profiledNs() const;

    /** Record host wall-clock of the whole run() (set by the
     * simulator; includes un-attributed time between phases). */
    void setRunNs(std::uint64_t ns) { runNs_ = ns; }
    std::uint64_t runNs() const { return runNs_; }

    void
    add(Phase p, std::uint64_t ns)
    {
        totals_[p].ns += ns;
        ++totals_[p].calls;
    }

    void
    reset()
    {
        totals_ = {};
        runNs_ = 0;
    }

    /** Register per-phase gauges under "<prefix>.<phase>_ns" /
     * "_calls" plus "<prefix>.run_ns". Call only on profiled runs —
     * registration changes the stats-JSON schema. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * RAII phase marker. Constructed from a possibly-null profiler:
     * the null (not-profiling) case costs one branch and never reads
     * the clock.
     */
    class Scope
    {
      public:
        Scope(Profiler *p, Phase phase) : prof_(p), phase_(phase)
        {
            if (prof_)
                start_ = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (prof_) {
                auto end = std::chrono::steady_clock::now();
                prof_->add(phase_,
                           static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(end - start_)
                                   .count()));
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler *prof_;
        Phase phase_;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    std::array<PhaseTotals, kPhaseCount> totals_{};
    std::uint64_t runNs_ = 0;
};

} // namespace esd

#endif // ESD_METRICS_PROFILER_HH
