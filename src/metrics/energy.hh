/**
 * @file
 * Energy accounting across the system: raw PCM array energy plus the
 * scheme-side fingerprinting, encryption, and metadata energy — the
 * decomposition behind Fig. 16.
 */

#ifndef ESD_METRICS_ENERGY_HH
#define ESD_METRICS_ENERGY_HH

#include "common/types.hh"
#include "dedup/scheme.hh"
#include "nvm/pcm_device.hh"

namespace esd
{

/** Component-wise energy in picojoules. */
struct EnergyBreakdown
{
    Energy deviceRead = 0;
    Energy deviceWrite = 0;
    Energy hash = 0;      ///< SHA-1 / MD5 / CRC fingerprinting
    Energy crypto = 0;    ///< counter-mode encryption
    Energy metadata = 0;  ///< on-chip metadata caches + comparators

    Energy
    total() const
    {
        return deviceRead + deviceWrite + hash + crypto + metadata;
    }

    /** Assemble from device and scheme statistics. */
    static EnergyBreakdown
    collect(const NvmStats &nvm, const SchemeStats &scheme)
    {
        EnergyBreakdown e;
        e.deviceRead = nvm.readEnergy;
        e.deviceWrite = nvm.writeEnergy;
        e.hash = scheme.hashEnergy;
        e.crypto = scheme.cryptoEnergy;
        e.metadata = scheme.metadataEnergy;
        return e;
    }
};

} // namespace esd

#endif // ESD_METRICS_ENERGY_HH
