#include "metrics/span_trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/json.hh"

namespace esd
{

namespace
{

/** Track display name: tid 0 is the write pipeline, tid 1+c is
 * memory channel c. */
std::string
trackName(std::uint32_t track)
{
    if (track == SpanTrace::kPipelineTrack)
        return "write-pipeline";
    return "ch" + std::to_string(track - 1);
}

void
writeEventCommon(JsonWriter &w, const char *name, const char *ph,
                 std::uint32_t tid, Tick ts_ns)
{
    w.kv("name", name);
    w.kv("cat", "sim");
    w.kv("ph", ph);
    // Trace-event timestamps are microseconds; simulated ns / 1000
    // keeps sub-microsecond spans visible as fractions.
    w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
    w.kv("pid", 1);
    w.kv("tid", static_cast<std::uint64_t>(tid));
}

} // namespace

void
SpanTrace::writeChromeJson(std::ostream &os) const
{
    // Tracks actually used, ascending, for thread_name metadata.
    std::vector<std::uint32_t> tracks;
    for (const Span &s : spans_)
        tracks.push_back(s.track);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()),
                 tracks.end());

    JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.kv("generator", "esd_sim");
    w.kv("clock", "simulated-ns");
    w.kv("spans_recorded", totalRecorded());
    w.kv("spans_dropped", dropped_);
    w.kv("sample_every", sampleEvery_);
    w.endObject();

    w.key("traceEvents");
    w.beginArray();

    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.key("args");
    w.beginObject();
    w.kv("name", "esd_sim");
    w.endObject();
    w.endObject();

    for (std::uint32_t t : tracks) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(t));
        w.key("args");
        w.beginObject();
        w.kv("name", trackName(t));
        w.endObject();
        w.endObject();
    }

    for (const Span &s : spans_) {
        w.beginObject();
        if (s.instant) {
            writeEventCommon(w, s.name, "i", s.track, s.ts);
            w.kv("s", "t");  // thread-scoped instant
        } else {
            writeEventCommon(w, s.name, "X", s.track, s.ts);
            w.kv("dur", static_cast<double>(s.dur) / 1000.0);
        }
        if (!s.args.empty()) {
            w.key("args");
            w.beginObject();
            for (const Arg &a : s.args) {
                w.key(a.key);
                if (a.quoted)
                    w.value(a.value);
                else
                    w.rawValue(a.value);
            }
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace esd
