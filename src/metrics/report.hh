/**
 * @file
 * Fixed-width table rendering for the benchmark harnesses — every
 * bench prints the paper's rows/series through this so the output is
 * uniform and diffable.
 */

#ifndef ESD_METRICS_REPORT_HH
#define ESD_METRICS_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

namespace esd
{

/** A simple left/right aligned column table. */
class TablePrinter
{
  public:
    /** @param headers column titles; first column is left-aligned,
     * the rest right-aligned. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Add a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 3);

    /** Format as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render to @p os (default stdout). */
    void print(std::ostream &os = std::cout) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace esd

#endif // ESD_METRICS_REPORT_HH
