/**
 * @file
 * Prometheus text-format exposition of the stat registry.
 *
 * writePrometheusText() renders every registered stat in the
 * Prometheus text exposition format (v0.0.4): counters and gauges as
 * single samples, latency stats as summaries (quantile series plus
 * _sum/_count). Names are sanitized ("pcm.ch0.reads" ->
 * "esd_pcm_ch0_reads") and emitted in registry-sorted order so
 * snapshots diff cleanly.
 *
 * MetricsExporter is the file-based seam a future esd_serve daemon
 * will put behind a socket: attach it to a Simulator and it rewrites
 * the snapshot file every N measured writes (plus a final snapshot at
 * end of run), giving live dashboards something to scrape mid-run.
 */

#ifndef ESD_METRICS_PROMETHEUS_HH
#define ESD_METRICS_PROMETHEUS_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace esd
{

class StatRegistry;

/** Sanitize a dotted stat name into a Prometheus metric name:
 * "esd_" prefix, [a-zA-Z0-9_] body, everything else becomes '_'. */
std::string prometheusName(const std::string &stat_name);

/** Render the whole registry as one text-format exposition page. */
void writePrometheusText(std::ostream &os, const StatRegistry &reg);

/** Periodic snapshot writer (see file comment). */
class MetricsExporter
{
  public:
    /**
     * Attach to @p reg and rewrite @p path every @p every_writes
     * measured writes; 0 writes only the final end-of-run snapshot.
     */
    void
    configure(const StatRegistry &reg, std::string path,
              std::uint64_t every_writes)
    {
        reg_ = &reg;
        path_ = std::move(path);
        every_ = every_writes;
    }

    bool enabled() const { return reg_ != nullptr && !path_.empty(); }
    std::uint64_t interval() const { return every_; }
    const std::string &path() const { return path_; }

    /** Snapshots written so far. */
    std::uint64_t snapshots() const { return snapshots_; }

    /** Notify one completed measured write; rewrites the snapshot on
     * interval multiples. One branch when detached or final-only. */
    void
    onWrite(std::uint64_t writes_so_far)
    {
        if (!enabled() || every_ == 0 || writes_so_far % every_ != 0)
            return;
        writeSnapshot();
    }

    /** Rewrite the snapshot file now (end-of-run final snapshot). */
    void writeSnapshot();

    void reset() { snapshots_ = 0; }

  private:
    const StatRegistry *reg_ = nullptr;
    std::string path_;
    std::uint64_t every_ = 0;
    std::uint64_t snapshots_ = 0;
};

} // namespace esd

#endif // ESD_METRICS_PROMETHEUS_HH
