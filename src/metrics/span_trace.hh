/**
 * @file
 * Causal span tracing of the write pipeline and the PCM device.
 *
 * Where the phase profiler answers "how much host time went into each
 * phase overall", the span trace answers "where did *this* write's
 * simulated nanoseconds go": every admitted logical write emits a
 * parent span on the write-pipeline track with child slices for the
 * Fig. 17 phases (fingerprint, metadata, fp NVMM lookup,
 * read-for-compare, encrypt, line write), carrying the fp/EFIT/compare
 * verdicts as args so a dedup miss can be chased visually; every
 * admitted device access emits a span on its memory channel's track
 * (service window, preceded by a wpq_wait span when the bank queued
 * it, or an instant marker when the WPQ coalesced it away).
 *
 * Timestamps are simulated ns, so traces are deterministic. The
 * buffer is bounded (spans past the cap are counted, not stored) and
 * admission is sampled ([telemetry] span_sample_every), making
 * full-rate tracing an explicit opt-in. Detached — the default — every
 * instrumentation site is a single null-pointer test.
 *
 * writeChromeJson() emits the Chrome trace-event JSON flavor that
 * chrome://tracing and Perfetto load directly: one process, one
 * thread ("track") per lane, "X" complete events with microsecond
 * timestamps.
 */

#ifndef ESD_METRICS_SPAN_TRACE_HH
#define ESD_METRICS_SPAN_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace esd
{

/** Bounded, sampled collector of simulated-time spans. */
class SpanTrace
{
  public:
    /** Track (Chrome "tid") of the logical write pipeline. */
    static constexpr std::uint32_t kPipelineTrack = 0;

    /** Track of memory channel @p ch. */
    static std::uint32_t
    channelTrack(unsigned ch)
    {
        return 1 + ch;
    }

    /** One span argument; @p quoted selects JSON string vs number. */
    struct Arg
    {
        std::string key;
        std::string value;
        bool quoted = false;
    };

    static Arg
    num(const std::string &key, std::uint64_t v)
    {
        return Arg{key, std::to_string(v), false};
    }

    static Arg
    str(const std::string &key, std::string v)
    {
        return Arg{key, std::move(v), true};
    }

    /** Hex-rendered numeric arg (addresses, fingerprints). */
    static Arg
    hex(const std::string &key, std::uint64_t v)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(v));
        return Arg{key, buf, true};
    }

    /**
     * @param capacity     max retained spans; excess is dropped (and
     *                     counted) rather than wrapped, keeping the
     *                     run's leading window
     * @param sample_every admit every Nth write / device access
     *                     (1 = everything)
     */
    SpanTrace(std::size_t capacity, std::uint64_t sample_every)
        : capacity_(capacity),
          sampleEvery_(sample_every ? sample_every : 1)
    {
    }

    /** Admission test for the next logical write (own sample stream). */
    bool
    admitWrite()
    {
        return (writeSeq_++ % sampleEvery_) == 0;
    }

    /** Admission test for the next device access (own stream, so
     * channel tracks stay populated at the same sampling rate). */
    bool
    admitAccess()
    {
        return (accessSeq_++ % sampleEvery_) == 0;
    }

    /** Record a complete span of @p dur ns starting at @p ts. */
    void
    span(std::uint32_t track, const char *name, Tick ts, Tick dur,
         std::vector<Arg> args = {})
    {
        push(track, name, ts, dur, false, std::move(args));
    }

    /** Record an instant marker at @p ts. */
    void
    instant(std::uint32_t track, const char *name, Tick ts,
            std::vector<Arg> args = {})
    {
        push(track, name, ts, 0, true, std::move(args));
    }

    std::size_t capacity() const { return capacity_; }
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    /** Spans retained. */
    std::size_t size() const { return spans_.size(); }

    /** Spans lost to the capacity bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Spans ever offered (retained + dropped). */
    std::uint64_t totalRecorded() const
    {
        return spans_.size() + dropped_;
    }

    void
    clear()
    {
        spans_.clear();
        dropped_ = 0;
        writeSeq_ = 0;
        accessSeq_ = 0;
    }

    /** Emit the Chrome trace-event / Perfetto JSON document. */
    void writeChromeJson(std::ostream &os) const;

  private:
    struct Span
    {
        const char *name;
        std::uint32_t track;
        Tick ts;
        Tick dur;
        bool instant;
        std::vector<Arg> args;
    };

    void
    push(std::uint32_t track, const char *name, Tick ts, Tick dur,
         bool instant, std::vector<Arg> args)
    {
        if (spans_.size() >= capacity_) {
            ++dropped_;
            return;
        }
        spans_.push_back(
            Span{name, track, ts, dur, instant, std::move(args)});
    }

    std::size_t capacity_;
    std::uint64_t sampleEvery_;
    std::uint64_t writeSeq_ = 0;
    std::uint64_t accessSeq_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<Span> spans_;
};

} // namespace esd

#endif // ESD_METRICS_SPAN_TRACE_HH
