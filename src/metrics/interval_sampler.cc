#include "metrics/interval_sampler.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace esd
{

void
IntervalSampler::configure(const StatRegistry &reg,
                           std::uint64_t every_writes)
{
    reg_ = &reg;
    every_ = every_writes;
    columns_ = reg.scalarNames();
    reset();
}

void
IntervalSampler::reset()
{
    sampleWrites_.clear();
    rows_.clear();
}

void
IntervalSampler::takeSample(std::uint64_t writes_so_far)
{
    esd_assert(reg_ != nullptr, "sampler not configured");
    sampleWrites_.push_back(writes_so_far);
    rows_.push_back(reg_->scalarValues());
    esd_assert(rows_.back().size() == columns_.size(),
               "registry grew after sampler configuration");
}

void
IntervalSampler::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("every_writes", every_);
    w.key("columns");
    w.beginArray();
    for (const std::string &c : columns_)
        w.value(c);
    w.endArray();
    w.key("writes");
    w.beginArray();
    for (std::uint64_t n : sampleWrites_)
        w.value(n);
    w.endArray();
    w.key("rows");
    w.beginArray();
    for (const auto &row : rows_) {
        w.beginArray();
        for (double v : row)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

} // namespace esd
