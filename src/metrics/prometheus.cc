#include "metrics/prometheus.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

namespace
{

/** Prometheus sample value: %.10g matches the JSON writer so the two
 * exports agree digit-for-digit. */
std::string
sampleValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** HELP text: single-line, with backslash and newline escaped per the
 * exposition format. */
std::string
escapeHelp(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
writeHeader(std::ostream &os, const std::string &name,
            const std::string &desc, const char *type)
{
    if (!desc.empty())
        os << "# HELP " << name << " " << escapeHelp(desc) << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

} // namespace

std::string
prometheusName(const std::string &stat_name)
{
    std::string out = "esd_";
    out.reserve(stat_name.size() + 4);
    for (char c : stat_name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

void
writePrometheusText(std::ostream &os, const StatRegistry &reg)
{
    // Name-sorted like the JSON report, so snapshots diff cleanly.
    std::vector<const StatRegistry::Entry *> sorted;
    sorted.reserve(reg.entries().size());
    for (const StatRegistry::Entry &e : reg.entries())
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const StatRegistry::Entry *a,
                 const StatRegistry::Entry *b) {
                  return a->name < b->name;
              });

    for (const StatRegistry::Entry *e : sorted) {
        std::string name = prometheusName(e->name);
        switch (e->kind) {
          case StatRegistry::Kind::Counter:
            writeHeader(os, name, e->desc, "counter");
            os << name << " "
               << sampleValue(static_cast<double>(e->counter->value()))
               << "\n";
            break;
          case StatRegistry::Kind::Gauge:
            writeHeader(os, name, e->desc, "gauge");
            os << name << " " << sampleValue(e->gauge()) << "\n";
            break;
          case StatRegistry::Kind::Latency: {
            const LatencyStat &s = *e->latency;
            writeHeader(os, name, e->desc, "summary");
            for (double q : {0.5, 0.9, 0.99}) {
                os << name << "{quantile=\"" << sampleValue(q) << "\"} "
                   << sampleValue(s.percentile(q * 100.0)) << "\n";
            }
            os << name << "_sum " << sampleValue(s.sum()) << "\n";
            os << name << "_count "
               << sampleValue(static_cast<double>(s.count())) << "\n";
            break;
          }
        }
    }
}

void
MetricsExporter::writeSnapshot()
{
    if (!enabled())
        return;
    // Rendered in memory and published with an atomic rename: a
    // scraper sees the previous page or the new one, never a torn
    // half-written file — even if the process dies mid-export.
    std::ostringstream out;
    writePrometheusText(out, *reg_);
    if (!writeFileAtomic(path_, out.str()))
        return;
    ++snapshots_;
}

} // namespace esd
