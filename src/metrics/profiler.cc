#include "metrics/profiler.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

const char *
Profiler::phaseName(unsigned phase)
{
    switch (phase) {
      case Fingerprint:
        return "fingerprint";
      case Lookup:
        return "lookup";
      case Compare:
        return "compare";
      case Encrypt:
        return "encrypt";
      case Device:
        return "device";
      case Persist:
        return "persist";
      default:
        esd_panic("invalid profiler phase %u", phase);
    }
}

std::uint64_t
Profiler::profiledNs() const
{
    std::uint64_t total = 0;
    for (const PhaseTotals &t : totals_)
        total += t.ns;
    return total;
}

void
Profiler::registerStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    for (unsigned p = 0; p < kPhaseCount; ++p) {
        std::string name = phaseName(p);
        reg.addGauge(prefix + "." + name + "_ns",
                     [this, p] {
                         return static_cast<double>(totals_[p].ns);
                     },
                     "host wall-clock in the " + name + " phase");
        reg.addGauge(prefix + "." + name + "_calls",
                     [this, p] {
                         return static_cast<double>(totals_[p].calls);
                     },
                     "entries into the " + name + " phase");
    }
    reg.addGauge(prefix + ".run_ns",
                 [this] { return static_cast<double>(runNs_); },
                 "host wall-clock of the whole run");
}

} // namespace esd
