#include "metrics/report.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace esd
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    esd_assert(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    esd_assert(cells.size() == headers_.size(),
               "row width mismatches header");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c == 0)
                os << std::left << std::setw(static_cast<int>(width[c]))
                   << row[c];
            else
                os << "  " << std::right
                   << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace esd
