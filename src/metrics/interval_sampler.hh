/**
 * @file
 * Interval sampling of the stat registry: a snapshot of every scalar
 * stat (counters + gauges) every N simulated writes, producing the
 * time-series behind "dedup rate over time", EFIT occupancy curves,
 * and bank-utilization plots from a single run.
 *
 * Snapshots are columnar — one column list captured up front, one row
 * of values per sample — and serialize into the stats-JSON report as
 *   {"every_writes": N, "columns": [...], "writes": [...],
 *    "rows": [[...], ...]}.
 */

#ifndef ESD_METRICS_INTERVAL_SAMPLER_HH
#define ESD_METRICS_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stat_registry.hh"

namespace esd
{

/** The sampler. Disabled (zero overhead beyond one branch) until
 * configure() is called with a positive interval. */
class IntervalSampler
{
  public:
    /**
     * Attach to @p reg and snapshot every @p every_writes writes.
     * Columns are frozen at configure time, so configure after all
     * components registered their stats.
     */
    void configure(const StatRegistry &reg, std::uint64_t every_writes);

    bool enabled() const { return every_ > 0; }
    std::uint64_t interval() const { return every_; }

    /** Notify one completed (measured) write; samples on multiples of
     * the interval. @p writes_so_far is the running measured count. */
    void
    onWrite(std::uint64_t writes_so_far)
    {
        if (every_ == 0 || writes_so_far % every_ != 0)
            return;
        takeSample(writes_so_far);
    }

    /** Drop accumulated samples (measurement restart after warm-up). */
    void reset();

    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<std::uint64_t> &sampleWrites() const
    {
        return sampleWrites_;
    }
    const std::vector<std::vector<double>> &rows() const { return rows_; }

    /** Serialize as the "intervals" report section. */
    void writeJson(JsonWriter &w) const;

  private:
    void takeSample(std::uint64_t writes_so_far);

    const StatRegistry *reg_ = nullptr;
    std::uint64_t every_ = 0;
    std::vector<std::string> columns_;
    std::vector<std::uint64_t> sampleWrites_;
    std::vector<std::vector<double>> rows_;
};

} // namespace esd

#endif // ESD_METRICS_INTERVAL_SAMPLER_HH
