/**
 * @file
 * Interleaved binary BCH line codec: four BCH(144,128) codewords per
 * 64-byte line, t=2 bit errors correctable per codeword.
 *
 * Group g (0..3) protects line words 2g and 2g+1 (128 data bits) with
 * 16 check bits stored in LineEcc bits [16g, 16g+16). The code is the
 * narrow-sense binary BCH of length 255 over GF(2^8) (primitive
 * polynomial 0x11d) shortened to 144: generator g(x) = m1(x)·m3(x),
 * the product of the minimal polynomials of alpha and alpha^3, degree
 * 16, designed distance 5.
 *
 * Codeword bit positions: 0..15 hold the check bits (position j =
 * check bit j), 16..143 hold the data bits (position 16+i = data bit
 * i; bits 0..63 come from the even word, 64..127 from the odd word).
 *
 * Encode is a CRC-style byte-table remainder of d(x)·x^16 mod g(x);
 * encodeGroupNaive is the bitwise long-division oracle. Decode
 * computes syndromes S1 = r(alpha), S3 = r(alpha^3) from per-byte
 * XOR tables, corrects single errors at log(S1) and double errors via
 * the quadratic error locator with a Chien search over the 144 live
 * positions, and re-encodes to verify every correction.
 */

#ifndef ESD_ECC_BCH_HH
#define ESD_ECC_BCH_HH

#include "ecc/ecc_engine.hh"

namespace esd
{

class BchLineEngine final : public EccEngine
{
  public:
    /** Independent codewords per line. */
    static constexpr unsigned kGroups = 4;

    /** Codeword length in bits (16 check + 128 data). */
    static constexpr unsigned kCodeBits = 144;

    /** Check bits per codeword. */
    static constexpr unsigned kCheckBits = 16;

    /** The degree-16 generator polynomial m1·m3, including the x^16
     * term (bit 16 set) — exposed so tests can check its structure. */
    static std::uint32_t generatorPoly();

    /** Table-driven check bits of one group (@p lo = even word,
     * @p hi = odd word). */
    static std::uint16_t encodeGroup(std::uint64_t lo, std::uint64_t hi);

    /** Bitwise long-division oracle for encodeGroup. */
    static std::uint16_t encodeGroupNaive(std::uint64_t lo,
                                          std::uint64_t hi);

    EccEngineKind kind() const override { return EccEngineKind::Bch; }
    const char *name() const override { return "bch"; }

    EccCapability
    capability() const override
    {
        return EccCapability{kGroups, 2, 1, 128};
    }

    LineEcc encodeLine(const CacheLine &line) const override;
    LineEcc encodeLineOracle(const CacheLine &line) const override;
    LineDecodeResult decodeLine(const CacheLine &line,
                                LineEcc ecc) const override;
};

} // namespace esd

#endif // ESD_ECC_BCH_HH
