#include "ecc/gf256.hh"

#include "common/logging.hh"

namespace esd
{
namespace gf256
{

namespace
{

/** Log/antilog tables, built once at first use (thread-safe statics).
 * expTab is doubled so exp(log(a)+log(b)) needs no modular reduce. */
struct Tables
{
    std::uint8_t expTab[2 * kGroupOrder];
    unsigned logTab[256];

    Tables()
    {
        unsigned v = 1;
        for (unsigned i = 0; i < kGroupOrder; ++i) {
            expTab[i] = static_cast<std::uint8_t>(v);
            expTab[i + kGroupOrder] = static_cast<std::uint8_t>(v);
            logTab[v] = i;
            v <<= 1;
            if (v & 0x100)
                v ^= kPrimPoly;
        }
        logTab[0] = 0;  // never consulted; log(0) is a caller bug
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // namespace

std::uint8_t
mul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.expTab[t.logTab[a] + t.logTab[b]];
}

std::uint8_t
div(std::uint8_t a, std::uint8_t b)
{
    esd_assert(b != 0, "gf256 division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.expTab[t.logTab[a] + kGroupOrder - t.logTab[b]];
}

std::uint8_t
inv(std::uint8_t a)
{
    esd_assert(a != 0, "gf256 inverse of zero");
    const Tables &t = tables();
    return t.expTab[kGroupOrder - t.logTab[a]];
}

std::uint8_t
exp(unsigned e)
{
    return tables().expTab[e % kGroupOrder];
}

unsigned
log(std::uint8_t a)
{
    esd_assert(a != 0, "gf256 log of zero");
    return tables().logTab[a];
}

std::uint8_t
mulExp(std::uint8_t x, unsigned e)
{
    if (x == 0)
        return 0;
    const Tables &t = tables();
    return t.expTab[t.logTab[x] + (e % kGroupOrder)];
}

std::uint8_t
mulNaive(std::uint8_t a, std::uint8_t b)
{
    unsigned acc = 0;
    unsigned aa = a;
    for (unsigned bit = 0; bit < 8; ++bit) {
        if (b & (1u << bit))
            acc ^= aa << bit;
    }
    // Reduce the degree-<15 product by the primitive polynomial.
    for (int d = 14; d >= 8; --d) {
        if (acc & (1u << d))
            acc ^= kPrimPoly << (d - 8);
    }
    return static_cast<std::uint8_t>(acc);
}

std::uint8_t
powNaive(std::uint8_t a, unsigned e)
{
    std::uint8_t result = 1;
    std::uint8_t base = a;
    while (e != 0) {
        if (e & 1)
            result = mulNaive(result, base);
        base = mulNaive(base, base);
        e >>= 1;
    }
    return result;
}

} // namespace gf256
} // namespace esd
