/**
 * @file
 * Deterministic fault injection for ECC validation.
 *
 * Used by tests and the collision/robustness benches to flip specific
 * or random bits in a (line, ECC) pair and confirm the codec's
 * correct/detect behaviour — the "does reusing ECC as a fingerprint
 * compromise its error function?" question from Section III-C.
 */

#ifndef ESD_ECC_ERROR_INJECTOR_HH
#define ESD_ECC_ERROR_INJECTOR_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

/** Flips bits in stored (line, ECC) pairs to emulate media faults. */
class ErrorInjector
{
  public:
    explicit ErrorInjector(std::uint64_t seed = 7) : rng_(seed) {}

    /** Flip data bit @p bit (0..511) of @p line. */
    static void
    flipDataBit(CacheLine &line, unsigned bit)
    {
        line[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    /** Flip check bit @p bit (0..63) of @p ecc. */
    static void
    flipEccBit(LineEcc &ecc, unsigned bit)
    {
        ecc ^= 1ull << bit;
    }

    /** Flip one uniformly random bit of the 576-bit codeword; returns
     * the flipped global bit index (data bits first, then ECC bits). */
    unsigned
    flipRandomBit(CacheLine &line, LineEcc &ecc)
    {
        unsigned bit = rng_.below(512 + 64);
        if (bit < 512)
            flipDataBit(line, bit);
        else
            flipEccBit(ecc, bit - 512);
        return bit;
    }

    /** Flip @p n distinct random bits *within one word's codeword* so
     * multi-bit behaviour is exercised deterministically. */
    void
    flipBitsInWord(CacheLine &line, LineEcc &ecc, std::size_t word,
                   unsigned n)
    {
        std::uint64_t chosen = 0;
        while (n > 0) {
            unsigned b = rng_.below(72);
            if (chosen & (1ull << b))
                continue;
            chosen |= 1ull << b;
            if (b < 64) {
                line.setWord(word, line.word(word) ^ (1ull << b));
            } else {
                ecc ^= 1ull << (word * 8 + (b - 64));
            }
            --n;
        }
    }

  private:
    Pcg32 rng_;
};

} // namespace esd

#endif // ESD_ECC_ERROR_INJECTOR_HH
