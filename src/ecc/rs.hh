/**
 * @file
 * Reed-Solomon line codec: one RS(72,64) codeword over GF(2^8) per
 * 64-byte line, t=4 symbol (byte) errors correctable.
 *
 * The code is RS(255,247) shortened to length 72 with first root
 * alpha^0: g(x) = prod_{j=0..7} (x + alpha^j). Line byte k maps to the
 * coefficient of x^(71-k); parity byte j (LineEcc bits [8j, 8j+8)) is
 * the coefficient of x^j — systematic, so the 8 parity bytes are the
 * check word and, under ESD, the dedup fingerprint. Minimum distance 9
 * means any two lines differing in at most 8 bytes are guaranteed to
 * get different check words.
 *
 * encodeParity is the table-driven LFSR division; encodeParityNaive is
 * a schoolbook polynomial long division built on gf256::mulNaive.
 * Decode runs Horner syndromes, Berlekamp-Massey, a Chien search over
 * the 72 live positions, and the Forney value formula, then re-encodes
 * to verify every correction.
 */

#ifndef ESD_ECC_RS_HH
#define ESD_ECC_RS_HH

#include "ecc/ecc_engine.hh"

namespace esd
{

class RsLineEngine final : public EccEngine
{
  public:
    /** Parity symbols per codeword (= 2t). */
    static constexpr unsigned kParitySymbols = 8;

    /** Codeword length in symbols: 64 data + 8 parity. */
    static constexpr unsigned kCodeSymbols = 72;

    /** Table-driven LFSR parity of the 64 data bytes (byte 0 is the
     * highest coefficient). */
    static void encodeParity(const std::uint8_t data[64],
                             std::uint8_t parity[kParitySymbols]);

    /** Schoolbook long-division oracle for encodeParity. */
    static void encodeParityNaive(const std::uint8_t data[64],
                                  std::uint8_t parity[kParitySymbols]);

    EccEngineKind kind() const override { return EccEngineKind::Rs; }
    const char *name() const override { return "rs"; }

    EccCapability
    capability() const override
    {
        return EccCapability{1, 4, 8, 512};
    }

    LineEcc encodeLine(const CacheLine &line) const override;
    LineEcc encodeLineOracle(const CacheLine &line) const override;
    LineDecodeResult decodeLine(const CacheLine &line,
                                LineEcc ecc) const override;
};

} // namespace esd

#endif // ESD_ECC_RS_HH
