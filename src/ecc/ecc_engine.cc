#include "ecc/ecc_engine.hh"

#include "common/logging.hh"
#include "ecc/bch.hh"
#include "ecc/rs.hh"

namespace esd
{

namespace
{

/** The default engine: the existing bit-sliced per-word Hamming(72,64)
 * SEC-DED codec, wrapped unchanged so `ecc.engine = hamming` is
 * bit-identical to the pre-engine simulator. */
class HammingEngine final : public EccEngine
{
  public:
    EccEngineKind kind() const override { return EccEngineKind::Hamming; }
    const char *name() const override { return "hamming"; }

    EccCapability
    capability() const override
    {
        return EccCapability{kWordsPerLine, 1, 1, 64};
    }

    LineEcc
    encodeLine(const CacheLine &line) const override
    {
        return LineEccCodec::encode(line);
    }

    LineEcc
    encodeLineOracle(const CacheLine &line) const override
    {
        return LineEccCodec::encodeScalar(line);
    }

    LineDecodeResult
    decodeLine(const CacheLine &line, LineEcc ecc) const override
    {
        return LineEccCodec::decode(line, ecc);
    }
};

} // namespace

const EccEngine &
eccEngine(EccEngineKind kind)
{
    static const HammingEngine hamming;
    static const BchLineEngine bch;
    static const RsLineEngine rs;
    switch (kind) {
      case EccEngineKind::Hamming:
        return hamming;
      case EccEngineKind::Bch:
        return bch;
      case EccEngineKind::Rs:
        return rs;
    }
    esd_fatal("unknown ecc engine kind %d", static_cast<int>(kind));
}

} // namespace esd
