#include "ecc/hamming.hh"

#include <array>
#include <bit>

#include "common/logging.hh"

namespace esd
{

namespace
{

/** True when @p p is a power of two (a check-bit position). */
constexpr bool
isPow2(unsigned p)
{
    return p != 0 && (p & (p - 1)) == 0;
}

/** Tables mapping data-bit index <-> codeword position, plus the seven
 * parity coverage masks over data bits. Built once at startup. */
struct Tables
{
    std::array<unsigned, 64> dataToPos{};   // data bit i -> position 1..71
    std::array<int, 72> posToData{};        // position -> data bit or -1
    std::array<std::uint64_t, 7> mask{};    // check c covers data bits

    Tables()
    {
        posToData.fill(-1);
        unsigned i = 0;
        for (unsigned p = 1; p <= 71 && i < 64; ++p) {
            if (isPow2(p))
                continue;
            dataToPos[i] = p;
            posToData[p] = static_cast<int>(i);
            ++i;
        }
        for (unsigned c = 0; c < 7; ++c) {
            std::uint64_t m = 0;
            for (unsigned b = 0; b < 64; ++b) {
                if (dataToPos[b] & (1u << c))
                    m |= (1ull << b);
            }
            mask[c] = m;
        }
    }
};

const Tables tbl;

/** Even parity of a 64-bit value. */
inline unsigned
parity64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

} // namespace

std::uint64_t
Hamming72::checkMask(unsigned c)
{
    esd_assert(c < 7, "check index out of range");
    return tbl.mask[c];
}

unsigned
Hamming72::dataPosition(unsigned data_bit)
{
    return tbl.dataToPos[data_bit];
}

std::uint8_t
Hamming72::encode(std::uint64_t data)
{
    std::uint8_t check = 0;
    for (unsigned c = 0; c < 7; ++c) {
        if (parity64(data & tbl.mask[c]))
            check |= static_cast<std::uint8_t>(1u << c);
    }
    // Overall even parity over the 71 codeword bits (data + 7 checks).
    unsigned p = parity64(data) ^
                 parity64(static_cast<std::uint64_t>(check & 0x7f));
    if (p)
        check |= 0x80;
    return check;
}

EccDecodeResult
Hamming72::decode(std::uint64_t data, std::uint8_t check)
{
    EccDecodeResult res;
    res.data = data;
    res.check = check;

    // Syndrome: recomputed Hamming checks XOR received checks. With a
    // single flipped codeword bit the syndrome equals that bit's
    // position (check-bit positions are powers of two, so a flipped
    // check bit yields exactly its own position).
    unsigned syndrome = 0;
    for (unsigned c = 0; c < 7; ++c) {
        unsigned s = parity64(data & tbl.mask[c]) ^ ((check >> c) & 1u);
        syndrome |= s << c;
    }

    // Overall parity across all 72 bits: even when no (or an even number
    // of) flips occurred.
    unsigned overall = parity64(data) ^
                       parity64(static_cast<std::uint64_t>(check));

    if (syndrome == 0 && overall == 0) {
        res.status = EccStatus::Ok;
        return res;
    }

    if (overall == 0) {
        // Non-zero syndrome with even total parity: two bit flips.
        res.status = EccStatus::Uncorrectable;
        return res;
    }

    // Odd parity: assume a single flip.
    if (syndrome == 0) {
        // The overall-parity bit itself flipped.
        res.status = EccStatus::CorrectedCheck;
        res.check = check ^ 0x80;
        res.bitIndex = 7;
        return res;
    }

    if (syndrome > 71) {
        // Single-flip syndromes are valid positions <= 71; anything
        // larger means >= 3 errors conspired.
        res.status = EccStatus::Uncorrectable;
        return res;
    }

    if (isPow2(syndrome)) {
        // A Hamming check bit flipped.
        unsigned c = static_cast<unsigned>(std::countr_zero(syndrome));
        res.status = EccStatus::CorrectedCheck;
        res.check = check ^ static_cast<std::uint8_t>(1u << c);
        res.bitIndex = static_cast<std::uint8_t>(c);
        return res;
    }

    int data_bit = tbl.posToData[syndrome];
    esd_assert(data_bit >= 0, "syndrome maps to no data bit");
    res.status = EccStatus::CorrectedData;
    res.data = data ^ (1ull << data_bit);
    res.bitIndex = static_cast<std::uint8_t>(data_bit);
    return res;
}

} // namespace esd
