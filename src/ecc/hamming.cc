#include "ecc/hamming.hh"

#include <array>
#include <bit>

#include "common/logging.hh"

namespace esd
{

namespace
{

/** True when @p p is a power of two (a check-bit position). */
constexpr bool
isPow2(unsigned p)
{
    return p != 0 && (p & (p - 1)) == 0;
}

/** Tables mapping data-bit index <-> codeword position, plus the seven
 * parity coverage masks over data bits. Built once at startup. */
struct Tables
{
    std::array<unsigned, 64> dataToPos{};   // data bit i -> position 1..71
    std::array<int, 72> posToData{};        // position -> data bit or -1
    std::array<std::uint64_t, 7> mask{};    // check c covers data bits

    Tables()
    {
        posToData.fill(-1);
        unsigned i = 0;
        for (unsigned p = 1; p <= 71 && i < 64; ++p) {
            if (isPow2(p))
                continue;
            dataToPos[i] = p;
            posToData[p] = static_cast<int>(i);
            ++i;
        }
        for (unsigned c = 0; c < 7; ++c) {
            std::uint64_t m = 0;
            for (unsigned b = 0; b < 64; ++b) {
                if (dataToPos[b] & (1u << c))
                    m |= (1ull << b);
            }
            mask[c] = m;
        }
    }
};

const Tables tbl;

/** Even parity of a 64-bit value. */
inline unsigned
parity64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v) & 1);
}

/**
 * Transpose an 8x8 bit matrix held row-per-byte in a 64-bit word
 * (row i = byte i, bit j of row i = matrix element [i][j]) using the
 * three masked-swap steps of Hacker's Delight 7-3.
 */
inline std::uint64_t
transpose8x8(std::uint64_t x)
{
    std::uint64_t t;
    t = (x ^ (x >> 7)) & 0x00aa00aa00aa00aaull;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000cccc0000ccccull;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000f0f0f0f0ull;
    x ^= t ^ (t << 28);
    return x;
}

} // namespace

std::uint64_t
Hamming72::checkMask(unsigned c)
{
    esd_assert(c < 7, "check index out of range");
    return tbl.mask[c];
}

unsigned
Hamming72::dataPosition(unsigned data_bit)
{
    return tbl.dataToPos[data_bit];
}

std::uint8_t
Hamming72::encode(std::uint64_t data)
{
    std::uint8_t check = 0;
    for (unsigned c = 0; c < 7; ++c) {
        if (parity64(data & tbl.mask[c]))
            check |= static_cast<std::uint8_t>(1u << c);
    }
    // Overall even parity over the 71 codeword bits (data + 7 checks).
    unsigned p = parity64(data) ^
                 parity64(static_cast<std::uint64_t>(check & 0x7f));
    if (p)
        check |= 0x80;
    return check;
}

void
Hamming72::encodeLine(const std::uint64_t words[8], std::uint8_t checks[8])
{
    // Gather the 64 column bytes of the line: col[b] bit j = data bit b
    // of words[j]. Eight 8x8 block transposes, one per byte lane.
    std::uint8_t col[64];
    for (unsigned k = 0; k < 8; ++k) {
        std::uint64_t m = 0;
        for (unsigned j = 0; j < 8; ++j)
            m |= ((words[j] >> (8 * k)) & 0xffull) << (8 * j);
        std::uint64_t t = transpose8x8(m);
        for (unsigned b = 0; b < 8; ++b)
            col[8 * k + b] = static_cast<std::uint8_t>(t >> (8 * b));
    }

    // Bit-sliced parity accumulation: acc[c] bit j = Hamming check c of
    // words[j]; one byte XOR covers all eight words at once.
    std::uint8_t acc[7] = {0, 0, 0, 0, 0, 0, 0};
    std::uint8_t all = 0;  // bit j = parity of words[j]'s 64 data bits
    for (unsigned b = 0; b < 64; ++b) {
        std::uint8_t v = col[b];
        all ^= v;
        unsigned pos = tbl.dataToPos[b];
        for (unsigned c = 0; c < 7; ++c) {
            if (pos & (1u << c))
                acc[c] ^= v;
        }
    }

    // Overall-parity slice: parity(data) ^ parity(checks 0..6), lanewise.
    std::uint8_t q = 0;
    for (unsigned c = 0; c < 7; ++c)
        q ^= acc[c];
    const std::uint8_t acc7 = static_cast<std::uint8_t>(all ^ q);

    // Transpose the eight check slices back into per-word check bytes.
    std::uint64_t m = 0;
    for (unsigned c = 0; c < 7; ++c)
        m |= static_cast<std::uint64_t>(acc[c]) << (8 * c);
    m |= static_cast<std::uint64_t>(acc7) << 56;
    std::uint64_t t = transpose8x8(m);
    for (unsigned j = 0; j < 8; ++j)
        checks[j] = static_cast<std::uint8_t>(t >> (8 * j));
}

EccDecodeResult
Hamming72::decode(std::uint64_t data, std::uint8_t check)
{
    EccDecodeResult res;
    res.data = data;
    res.check = check;

    // Syndrome: recomputed Hamming checks XOR received checks. With a
    // single flipped codeword bit the syndrome equals that bit's
    // position (check-bit positions are powers of two, so a flipped
    // check bit yields exactly its own position).
    unsigned syndrome = 0;
    for (unsigned c = 0; c < 7; ++c) {
        unsigned s = parity64(data & tbl.mask[c]) ^ ((check >> c) & 1u);
        syndrome |= s << c;
    }

    // Overall parity across all 72 bits: even when no (or an even number
    // of) flips occurred.
    unsigned overall = parity64(data) ^
                       parity64(static_cast<std::uint64_t>(check));

    if (syndrome == 0 && overall == 0) {
        res.status = EccStatus::Ok;
        return res;
    }

    if (overall == 0) {
        // Non-zero syndrome with even total parity: two bit flips.
        res.status = EccStatus::Uncorrectable;
        return res;
    }

    // Odd parity: assume a single flip.
    if (syndrome == 0) {
        // The overall-parity bit itself flipped.
        res.status = EccStatus::CorrectedCheck;
        res.check = check ^ 0x80;
        res.bitIndex = 7;
        return res;
    }

    if (syndrome > 71) {
        // Single-flip syndromes are valid positions <= 71; anything
        // larger means >= 3 errors conspired.
        res.status = EccStatus::Uncorrectable;
        return res;
    }

    if (isPow2(syndrome)) {
        // A Hamming check bit flipped.
        unsigned c = static_cast<unsigned>(std::countr_zero(syndrome));
        res.status = EccStatus::CorrectedCheck;
        res.check = check ^ static_cast<std::uint8_t>(1u << c);
        res.bitIndex = static_cast<std::uint8_t>(c);
        return res;
    }

    int data_bit = tbl.posToData[syndrome];
    esd_assert(data_bit >= 0, "syndrome maps to no data bit");
    res.status = EccStatus::CorrectedData;
    res.data = data ^ (1ull << data_bit);
    res.bitIndex = static_cast<std::uint8_t>(data_bit);
    return res;
}

} // namespace esd
