/**
 * @file
 * Cache-line-granularity ECC: per-word Hamming(72,64) aggregated into
 * the 64-bit line ECC the memory controller transmits alongside data.
 *
 * This 64-bit value (8 check bytes, one per 8-byte word) is exactly
 * what ESD intercepts as its free fingerprint: equal lines always have
 * equal ECC; different lines collide only when every one of the eight
 * words collides in its 8-bit check space.
 */

#ifndef ESD_ECC_LINE_ECC_HH
#define ESD_ECC_LINE_ECC_HH

#include <cstdint>

#include "common/types.hh"
#include "ecc/hamming.hh"

namespace esd
{

/** The 64-bit per-line ECC word (check byte i protects word i). */
using LineEcc = std::uint64_t;

/** Outcome of scrubbing a full line against its ECC. */
struct LineDecodeResult
{
    /** Worst status across the eight words. */
    EccStatus status = EccStatus::Ok;

    /** Line after any single-bit corrections. */
    CacheLine line;

    /** ECC word after any check-bit corrections. */
    LineEcc ecc = 0;

    /** Number of words that needed correction. */
    unsigned correctedWords = 0;
};

/**
 * Encoder/decoder between 64-byte lines and their 64-bit ECC.
 */
class LineEccCodec
{
  public:
    /** Compute the 64-bit ECC of @p line (check byte i = word i) with
     * the bit-sliced whole-line encoder (one pass over all 8 words). */
    static LineEcc
    encode(const CacheLine &line)
    {
        std::uint64_t words[kWordsPerLine];
        for (std::size_t i = 0; i < kWordsPerLine; ++i)
            words[i] = line.word(i);
        std::uint8_t checks[kWordsPerLine];
        Hamming72::encodeLine(words, checks);
        LineEcc ecc = 0;
        for (std::size_t i = 0; i < kWordsPerLine; ++i)
            ecc |= static_cast<std::uint64_t>(checks[i]) << (i * 8);
        return ecc;
    }

    /** Reference oracle for encode(): eight independent scalar word
     * encodes (the pre-bit-slicing implementation). */
    static LineEcc
    encodeScalar(const CacheLine &line)
    {
        LineEcc ecc = 0;
        for (std::size_t i = 0; i < kWordsPerLine; ++i) {
            auto c = static_cast<std::uint64_t>(
                Hamming72::encode(line.word(i)));
            ecc |= c << (i * 8);
        }
        return ecc;
    }

    /** The check byte protecting word @p i inside @p ecc. */
    static std::uint8_t
    checkByte(LineEcc ecc, std::size_t i)
    {
        return static_cast<std::uint8_t>(ecc >> (i * 8));
    }

    /**
     * Verify-and-correct a line read back from (possibly faulty) media.
     *
     * Applies per-word SEC-DED: single-bit errors in any word are
     * corrected independently; any word with a double error marks the
     * whole line Uncorrectable.
     */
    static LineDecodeResult
    decode(const CacheLine &line, LineEcc ecc)
    {
        LineDecodeResult out;
        out.line = line;
        out.ecc = ecc;
        for (std::size_t i = 0; i < kWordsPerLine; ++i) {
            EccDecodeResult r =
                Hamming72::decode(line.word(i), checkByte(ecc, i));
            if (r.status == EccStatus::Uncorrectable) {
                out.status = EccStatus::Uncorrectable;
                return out;
            }
            if (r.corrected()) {
                ++out.correctedWords;
                out.line.setWord(i, r.data);
                out.ecc &= ~(0xffull << (i * 8));
                out.ecc |= static_cast<std::uint64_t>(r.check) << (i * 8);
                if (out.status == EccStatus::Ok)
                    out.status = r.status;
                else if (out.status != r.status)
                    out.status = EccStatus::CorrectedData;
            }
        }
        return out;
    }
};

} // namespace esd

#endif // ESD_ECC_LINE_ECC_HH
