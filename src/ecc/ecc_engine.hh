/**
 * @file
 * Runtime-selected line ECC engines.
 *
 * The paper's central bet — free SEC-DED check bits double as a dedup
 * fingerprint — is exercised against stronger codes through this
 * interface: one EccEngine per codec (Hamming SEC-DED, interleaved
 * BCH, Reed-Solomon), all emitting the same 64-bit LineEcc check word
 * so stored lines, EFIT entries, and trace records keep their layout
 * whatever the code.
 *
 * Engines are stateless; eccEngine() hands out process-wide
 * singletons. Selection flows from `[ecc] engine=` / `esd_sim -ecc=`
 * into SimConfig and from there into every consumer (scheme write and
 * verify paths, RAS scrub-correct-retire, Osiris counter probing).
 */

#ifndef ESD_ECC_ECC_ENGINE_HH
#define ESD_ECC_ECC_ENGINE_HH

#include "common/config.hh"
#include "ecc/line_ecc.hh"

namespace esd
{

/** Correction-strength metadata of one engine, in units of the code's
 * independent codewords ("units") per 64-byte line. */
struct EccCapability
{
    /** Independent codewords per line (Hamming: 8, BCH: 4, RS: 1). */
    unsigned units = 0;

    /** Guaranteed-correctable symbol errors per codeword (t). */
    unsigned tPerUnit = 0;

    /** Bits per code symbol (1 for the binary codes, 8 for RS). */
    unsigned symbolBits = 0;

    /** Data bits protected by one codeword. */
    unsigned dataBitsPerUnit = 0;
};

/**
 * One pluggable line codec: 64 data bytes in, 64 check bits out, with
 * decode-and-correct against possibly faulty media.
 */
class EccEngine
{
  public:
    virtual ~EccEngine() = default;

    virtual EccEngineKind kind() const = 0;

    /** Config-file spelling ("hamming" / "bch" / "rs"). */
    virtual const char *name() const = 0;

    /** Correction-capability metadata (drives generic tests and the
     * DESIGN.md capability table). */
    virtual EccCapability capability() const = 0;

    /** Check-word width — the fingerprint the dedup schemes intercept.
     * Every engine packs into the 64-bit LineEcc, so the EFIT entry
     * layout (8 B fingerprint field) is engine-independent. */
    unsigned fingerprintBits() const { return 64; }

    /** Compute the 64-bit check word of @p line (production kernel). */
    virtual LineEcc encodeLine(const CacheLine &line) const = 0;

    /** Naive scalar reference encoder — the test oracle; never used on
     * the simulation hot path. */
    virtual LineEcc encodeLineOracle(const CacheLine &line) const = 0;

    /**
     * Verify-and-correct @p line against @p ecc.
     *
     * Errors within each codeword's capability t are corrected (data
     * and check bits alike); anything beyond marks the line
     * Uncorrectable. Corrections are re-verified by re-encoding, so a
     * Corrected* result always carries a consistent (line, ecc) pair.
     */
    virtual LineDecodeResult decodeLine(const CacheLine &line,
                                        LineEcc ecc) const = 0;

    /** The dedup fingerprint of @p line — the check word itself. */
    std::uint64_t fingerprint(const CacheLine &line) const
    {
        return encodeLine(line);
    }
};

/** The process-wide singleton engine for @p kind. */
const EccEngine &eccEngine(EccEngineKind kind);

} // namespace esd

#endif // ESD_ECC_ECC_ENGINE_HH
