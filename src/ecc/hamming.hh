/**
 * @file
 * Hamming(72,64) SEC-DED codec for 8-byte words.
 *
 * This is the per-word ECC the paper piggybacks on: each 8-byte word of
 * a cache line carries 8 check bits (7 extended-Hamming checks plus one
 * overall parity), giving Single-Error-Correct / Double-Error-Detect
 * protection and — for ESD — a free 8-bit-per-word fingerprint.
 *
 * Layout: codeword positions are 1-indexed 1..71. Positions that are
 * powers of two (1,2,4,8,16,32,64) hold the seven Hamming check bits;
 * the remaining 64 positions hold data bits in increasing order. An
 * eighth bit holds overall (even) parity across all 71 bits, enabling
 * double-error detection.
 */

#ifndef ESD_ECC_HAMMING_HH
#define ESD_ECC_HAMMING_HH

#include <cstdint>

namespace esd
{

/** Outcome of decoding a possibly corrupted (72,64) codeword. */
enum class EccStatus : std::uint8_t
{
    Ok = 0,            ///< no error detected
    CorrectedData,     ///< single-bit error in a data bit, corrected
    CorrectedCheck,    ///< single-bit error in a check/parity bit, corrected
    Uncorrectable,     ///< double (or worse) error detected
};

/** Result of Hamming72::decode. */
struct EccDecodeResult
{
    EccStatus status = EccStatus::Ok;

    /** Data after any correction was applied. */
    std::uint64_t data = 0;

    /** Check byte after any correction was applied. */
    std::uint8_t check = 0;

    /** For CorrectedData: the corrected data bit index (0..63).
     * For CorrectedCheck: the corrected check bit index (0..7, 7 being
     * the overall parity). Unused otherwise. */
    std::uint8_t bitIndex = 0;

    bool corrected() const
    {
        return status == EccStatus::CorrectedData ||
               status == EccStatus::CorrectedCheck;
    }
};

/**
 * Stateless Hamming(72,64) SEC-DED encoder/decoder.
 *
 * All methods are static; the class exists to group the parity-mask
 * tables, which are computed once at namespace-scope initialisation.
 */
class Hamming72
{
  public:
    /** Number of check bits per 64-bit word (7 Hamming + 1 parity). */
    static constexpr unsigned kCheckBits = 8;

    /** Compute the 8 check bits for @p data. */
    static std::uint8_t encode(std::uint64_t data);

    /**
     * Word-parallel bit-sliced encode of a full cache line: computes
     * the check bytes of all eight 64-bit words in one pass.
     *
     * The line is transposed into 64 column bytes (bit j of column b =
     * bit b of word j), every Hamming check then accumulates whole
     * columns with single-byte XORs, so the eight words share each
     * parity reduction instead of running eight independent
     * popcount-per-mask encodes. Bit-identical to calling encode() on
     * each word — encodeLineScalar() is the reference oracle.
     *
     * @param words  the eight 64-bit data words of one line
     * @param checks receives the eight check bytes (checks[i] protects
     *               words[i])
     */
    static void encodeLine(const std::uint64_t words[8],
                           std::uint8_t checks[8]);

    /** Reference oracle for encodeLine(): eight scalar encodes. */
    static void
    encodeLineScalar(const std::uint64_t words[8], std::uint8_t checks[8])
    {
        for (unsigned i = 0; i < 8; ++i)
            checks[i] = encode(words[i]);
    }

    /**
     * Decode a received word.
     *
     * @param data  possibly corrupted 64 data bits
     * @param check possibly corrupted 8 check bits
     * @return decode outcome; on Corrected* the result carries the
     *         corrected data/check.
     */
    static EccDecodeResult decode(std::uint64_t data, std::uint8_t check);

    /** True when @p check is consistent with @p data (no error). */
    static bool
    verify(std::uint64_t data, std::uint8_t check)
    {
        return encode(data) == check;
    }

    /** Data-bit parity coverage mask of Hamming check @p c (0..6) —
     * exposed so tests can validate the code's linear structure. */
    static std::uint64_t checkMask(unsigned c);

  private:
    static unsigned dataPosition(unsigned data_bit);
};

} // namespace esd

#endif // ESD_ECC_HAMMING_HH
