#include "ecc/bch.hh"

#include "common/logging.hh"
#include "ecc/gf256.hh"

namespace esd
{

namespace
{

/** Bytes of one received codeword: 2 check bytes + 16 data bytes.
 * Bit b of byte B sits at codeword position 8B + b. */
constexpr unsigned kCodeBytes = BchLineEngine::kCodeBits / 8;

/** Precomputed encode remainders and per-byte syndrome partials. */
struct BchTables
{
    /** g(x) = m1(x)·m3(x) with the x^16 term (bit 16). */
    std::uint32_t gen = 0;

    /** encTab[v] = v(x)·x^16 mod g(x). */
    std::uint16_t encTab[256];

    /** sTab[0][B][v] = XOR of alpha^(8B+b) over set bits b of v;
     * sTab[1] the same with alpha^3. */
    std::uint8_t sTab[2][kCodeBytes][256];

    BchTables()
    {
        gen = generator();
        esd_assert(gen >> 16 == 1, "bch generator degree != 16");

        for (unsigned v = 0; v < 256; ++v) {
            std::uint32_t r = v << 16;
            for (int d = 23; d >= 16; --d) {
                if (r & (1u << d))
                    r ^= gen << (d - 16);
            }
            encTab[v] = static_cast<std::uint16_t>(r);
        }

        for (unsigned B = 0; B < kCodeBytes; ++B) {
            for (unsigned v = 0; v < 256; ++v) {
                std::uint8_t s1 = 0;
                std::uint8_t s3 = 0;
                for (unsigned b = 0; b < 8; ++b) {
                    if (v & (1u << b)) {
                        s1 ^= gf256::exp(8 * B + b);
                        s3 ^= gf256::exp(3 * (8 * B + b));
                    }
                }
                sTab[0][B][v] = s1;
                sTab[1][B][v] = s3;
            }
        }
    }

    /** Minimal polynomial of alpha^start over GF(2): the product of
     * (x + c) over the conjugacy class {alpha^(start·2^i)}. Returned
     * as a bitmask; every coefficient is asserted to be 0/1. */
    static std::uint32_t
    minPoly(unsigned start)
    {
        std::uint8_t coeff[17] = {1};  // coeff[i] = coefficient of x^i
        unsigned deg = 0;
        unsigned e = start;
        do {
            const std::uint8_t c = gf256::exp(e);
            // poly *= (x + c), in place from the top coefficient down.
            ++deg;
            esd_assert(deg <= 16, "bch minimal polynomial too large");
            coeff[deg] = 0;
            for (unsigned i = deg; i > 0; --i)
                coeff[i] = coeff[i - 1] ^ gf256::mul(coeff[i], c);
            coeff[0] = gf256::mul(coeff[0], c);
            e = (e * 2) % gf256::kGroupOrder;
        } while (e != start);

        std::uint32_t bits = 0;
        for (unsigned i = 0; i <= deg; ++i) {
            esd_assert(coeff[i] <= 1, "bch minimal polynomial not binary");
            bits |= static_cast<std::uint32_t>(coeff[i]) << i;
        }
        return bits;
    }

    static std::uint32_t
    generator()
    {
        const std::uint32_t m1 = minPoly(1);
        const std::uint32_t m3 = minPoly(3);
        // Carry-less multiply of the two binary polynomials.
        std::uint32_t g = 0;
        for (unsigned i = 0; i < 32; ++i) {
            if (m1 & (1u << i))
                g ^= m3 << i;
        }
        return g;
    }
};

const BchTables &
tables()
{
    static const BchTables t;
    return t;
}

/** The 16 data bytes of one group, MSB-first: byte 0 carries the top
 * coefficients x^143..x^136 (odd-word bits 56..63). */
std::uint8_t
dataByte(std::uint64_t lo, std::uint64_t hi, unsigned k)
{
    if (k < 8)
        return static_cast<std::uint8_t>(hi >> (8 * (7 - k)));
    return static_cast<std::uint8_t>(lo >> (8 * (15 - k)));
}

/** Per-group decode outcome fed back into the line-level summary. */
struct GroupFix
{
    bool ok = true;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint16_t check = 0;
    bool loFixed = false;
    bool hiFixed = false;
    bool checkFixed = false;
};

/** Flip codeword position @p p of the received (lo, hi, check). */
void
flipPosition(GroupFix &f, unsigned p)
{
    if (p < BchLineEngine::kCheckBits) {
        f.check = static_cast<std::uint16_t>(f.check ^ (1u << p));
        f.checkFixed = true;
    } else if (p < BchLineEngine::kCheckBits + 64) {
        f.lo ^= 1ull << (p - BchLineEngine::kCheckBits);
        f.loFixed = true;
    } else {
        f.hi ^= 1ull << (p - BchLineEngine::kCheckBits - 64);
        f.hiFixed = true;
    }
}

/** Syndrome-decode one group: correct up to two bit flips anywhere in
 * the 144-bit codeword, refuse anything it cannot pin down. */
GroupFix
decodeGroup(std::uint64_t lo, std::uint64_t hi, std::uint16_t check)
{
    const BchTables &t = tables();

    GroupFix f;
    f.lo = lo;
    f.hi = hi;
    f.check = check;

    std::uint8_t s1 = 0;
    std::uint8_t s3 = 0;
    for (unsigned B = 0; B < kCodeBytes; ++B) {
        std::uint8_t byte;
        if (B < 2) {
            byte = static_cast<std::uint8_t>(check >> (8 * B));
        } else {
            const unsigned j = B - 2;
            byte = static_cast<std::uint8_t>(
                j < 8 ? lo >> (8 * j) : hi >> (8 * (j - 8)));
        }
        s1 ^= t.sTab[0][B][byte];
        s3 ^= t.sTab[1][B][byte];
    }

    if (s1 == 0 && s3 == 0)
        return f;

    if (s1 == 0) {
        // Two errors would give s1 = alpha^i + alpha^j != 0; this is
        // three or more.
        f.ok = false;
        return f;
    }

    const std::uint8_t s1sq = gf256::mul(s1, s1);
    const std::uint8_t s1cu = gf256::mul(s1sq, s1);
    if (s1cu == s3) {
        // Single error at position log(s1).
        const unsigned p = gf256::log(s1);
        if (p >= BchLineEngine::kCodeBits) {
            f.ok = false;  // points into the shortened region
            return f;
        }
        flipPosition(f, p);
    } else {
        // Two errors: locator Lambda(x) = 1 + s1·x + (s3/s1 + s1^2)·x^2
        // searched over the 144 live positions; Lambda(alpha^-j) = 0
        // marks an error at j.
        const std::uint8_t sigma2 = gf256::div(s3, s1) ^ s1sq;
        std::uint8_t t1 = s1;
        std::uint8_t t2 = sigma2;
        unsigned roots[2];
        unsigned nroots = 0;
        for (unsigned j = 0; j < BchLineEngine::kCodeBits; ++j) {
            if (static_cast<std::uint8_t>(1 ^ t1 ^ t2) == 0) {
                if (nroots == 2) {
                    f.ok = false;  // locator degenerate: > 2 roots
                    return f;
                }
                roots[nroots++] = j;
            }
            t1 = gf256::mulExp(t1, gf256::kGroupOrder - 1);
            t2 = gf256::mulExp(t2, gf256::kGroupOrder - 2);
        }
        if (nroots != 2) {
            f.ok = false;
            return f;
        }
        flipPosition(f, roots[0]);
        flipPosition(f, roots[1]);
    }

    // A correction is only trusted if the patched codeword re-encodes
    // cleanly — beyond-capability patterns that alias into a "fix" are
    // rejected rather than silently mis-corrected.
    if (BchLineEngine::encodeGroup(f.lo, f.hi) != f.check)
        f.ok = false;
    return f;
}

} // namespace

std::uint32_t
BchLineEngine::generatorPoly()
{
    return tables().gen;
}

std::uint16_t
BchLineEngine::encodeGroup(std::uint64_t lo, std::uint64_t hi)
{
    const BchTables &t = tables();
    std::uint16_t rem = 0;
    for (unsigned k = 0; k < 16; ++k) {
        const std::uint8_t byte = dataByte(lo, hi, k);
        rem = static_cast<std::uint16_t>(
            (rem << 8) ^ t.encTab[(rem >> 8) ^ byte]);
    }
    return rem;
}

std::uint16_t
BchLineEngine::encodeGroupNaive(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint16_t glow = static_cast<std::uint16_t>(generatorPoly());
    std::uint16_t rem = 0;
    for (int i = 127; i >= 0; --i) {
        const unsigned top = (rem >> 15) & 1;
        const unsigned bit = static_cast<unsigned>(
            (i >= 64 ? hi >> (i - 64) : lo >> i) & 1);
        rem = static_cast<std::uint16_t>(rem << 1);
        if (top)
            rem ^= glow;
        if (bit)
            rem ^= glow;
    }
    return rem;
}

LineEcc
BchLineEngine::encodeLine(const CacheLine &line) const
{
    LineEcc ecc = 0;
    for (unsigned g = 0; g < kGroups; ++g) {
        const std::uint16_t c =
            encodeGroup(line.word(2 * g), line.word(2 * g + 1));
        ecc |= static_cast<std::uint64_t>(c) << (16 * g);
    }
    return ecc;
}

LineEcc
BchLineEngine::encodeLineOracle(const CacheLine &line) const
{
    LineEcc ecc = 0;
    for (unsigned g = 0; g < kGroups; ++g) {
        const std::uint16_t c =
            encodeGroupNaive(line.word(2 * g), line.word(2 * g + 1));
        ecc |= static_cast<std::uint64_t>(c) << (16 * g);
    }
    return ecc;
}

LineDecodeResult
BchLineEngine::decodeLine(const CacheLine &line, LineEcc ecc) const
{
    LineDecodeResult out;
    out.line = line;
    out.ecc = ecc;

    bool anyData = false;
    bool anyCheck = false;
    for (unsigned g = 0; g < kGroups; ++g) {
        const GroupFix f = decodeGroup(
            line.word(2 * g), line.word(2 * g + 1),
            static_cast<std::uint16_t>(ecc >> (16 * g)));
        if (!f.ok) {
            out.status = EccStatus::Uncorrectable;
            return out;
        }
        if (f.loFixed) {
            out.line.setWord(2 * g, f.lo);
            ++out.correctedWords;
            anyData = true;
        }
        if (f.hiFixed) {
            out.line.setWord(2 * g + 1, f.hi);
            ++out.correctedWords;
            anyData = true;
        }
        if (f.checkFixed) {
            out.ecc &= ~(0xffffull << (16 * g));
            out.ecc |= static_cast<std::uint64_t>(f.check) << (16 * g);
            if (!f.loFixed && !f.hiFixed)
                ++out.correctedWords;
            anyCheck = true;
        }
    }

    if (anyData)
        out.status = EccStatus::CorrectedData;
    else if (anyCheck)
        out.status = EccStatus::CorrectedCheck;
    return out;
}

} // namespace esd
