#include "ecc/rs.hh"

#include "common/logging.hh"
#include "ecc/gf256.hh"

namespace esd
{

namespace
{

constexpr unsigned kData = 64;
constexpr unsigned kPar = RsLineEngine::kParitySymbols;
constexpr unsigned kN = RsLineEngine::kCodeSymbols;
constexpr unsigned kT = 4;

/** Generator coefficients of g(x) = prod_{j<8} (x + alpha^j);
 * gen[i] is the coefficient of x^i, gen[8] = 1. */
struct RsTables
{
    std::uint8_t gen[kPar + 1] = {1};

    RsTables()
    {
        unsigned deg = 0;
        for (unsigned j = 0; j < kPar; ++j) {
            const std::uint8_t root = gf256::exp(j);
            ++deg;
            gen[deg] = 0;
            for (unsigned i = deg; i > 0; --i)
                gen[i] = gen[i - 1] ^ gf256::mul(gen[i], root);
            gen[0] = gf256::mul(gen[0], root);
        }
        esd_assert(gen[kPar] == 1, "rs generator not monic");
    }
};

const RsTables &
tables()
{
    static const RsTables t;
    return t;
}

/** Line byte k (k = 0..63) <-> word k/8, lane k%8 — the mapping is its
 * own inverse, so corrections land back in the right word. */
void
lineBytes(const CacheLine &line, std::uint8_t out[kData])
{
    for (unsigned k = 0; k < kData; ++k)
        out[k] = static_cast<std::uint8_t>(
            line.word(k / 8) >> (8 * (k % 8)));
}

void
storeLineBytes(CacheLine &line, const std::uint8_t in[kData])
{
    for (unsigned w = 0; w < kWordsPerLine; ++w) {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(in[8 * w + b]) << (8 * b);
        line.setWord(w, v);
    }
}

std::uint64_t
packParity(const std::uint8_t parity[kPar])
{
    std::uint64_t ecc = 0;
    for (unsigned j = 0; j < kPar; ++j)
        ecc |= static_cast<std::uint64_t>(parity[j]) << (8 * j);
    return ecc;
}

} // namespace

void
RsLineEngine::encodeParity(const std::uint8_t data[64],
                           std::uint8_t parity[kParitySymbols])
{
    const RsTables &t = tables();
    std::uint8_t reg[kPar] = {};
    for (unsigned k = 0; k < kData; ++k) {
        const std::uint8_t fb = data[k] ^ reg[kPar - 1];
        for (unsigned j = kPar - 1; j > 0; --j)
            reg[j] = reg[j - 1] ^ gf256::mul(fb, t.gen[j]);
        reg[0] = gf256::mul(fb, t.gen[0]);
    }
    for (unsigned j = 0; j < kPar; ++j)
        parity[j] = reg[j];
}

void
RsLineEngine::encodeParityNaive(const std::uint8_t data[64],
                                std::uint8_t parity[kParitySymbols])
{
    const RsTables &t = tables();
    // Long division of d(x)·x^8 by g(x); D[p] is the coefficient of
    // x^p, data byte 0 the highest.
    std::uint8_t D[kN] = {};
    for (unsigned k = 0; k < kData; ++k)
        D[kN - 1 - k] = data[k];
    for (unsigned p = kN - 1; p >= kPar; --p) {
        const std::uint8_t q = D[p];
        if (q == 0)
            continue;
        for (unsigned i = 0; i <= kPar; ++i)
            D[p - kPar + i] ^= gf256::mulNaive(q, t.gen[i]);
    }
    for (unsigned j = 0; j < kPar; ++j)
        parity[j] = D[j];
}

LineEcc
RsLineEngine::encodeLine(const CacheLine &line) const
{
    std::uint8_t data[kData];
    std::uint8_t parity[kPar];
    lineBytes(line, data);
    encodeParity(data, parity);
    return packParity(parity);
}

LineEcc
RsLineEngine::encodeLineOracle(const CacheLine &line) const
{
    std::uint8_t data[kData];
    std::uint8_t parity[kPar];
    lineBytes(line, data);
    encodeParityNaive(data, parity);
    return packParity(parity);
}

LineDecodeResult
RsLineEngine::decodeLine(const CacheLine &line, LineEcc ecc) const
{
    LineDecodeResult out;
    out.line = line;
    out.ecc = ecc;

    // Received codeword, c[p] = coefficient of x^p.
    std::uint8_t data[kData];
    lineBytes(line, data);
    std::uint8_t c[kN];
    for (unsigned j = 0; j < kPar; ++j)
        c[j] = static_cast<std::uint8_t>(ecc >> (8 * j));
    for (unsigned k = 0; k < kData; ++k)
        c[kN - 1 - k] = data[k];

    // Horner syndromes S[j] = c(alpha^j).
    std::uint8_t S[kPar];
    bool clean = true;
    for (unsigned j = 0; j < kPar; ++j) {
        std::uint8_t acc = 0;
        for (int p = kN - 1; p >= 0; --p)
            acc = gf256::mulExp(acc, j) ^ c[p];
        S[j] = acc;
        clean = clean && acc == 0;
    }
    if (clean)
        return out;

    // Berlekamp-Massey: smallest locator Lambda with the syndrome
    // recurrence; L ends up as the claimed error count.
    std::uint8_t lambda[kPar + 1] = {1};
    std::uint8_t prev[kPar + 1] = {1};
    unsigned L = 0;
    unsigned m = 1;
    std::uint8_t b = 1;
    for (unsigned n = 0; n < kPar; ++n) {
        std::uint8_t delta = S[n];
        for (unsigned i = 1; i <= L && i <= kPar; ++i)
            delta ^= gf256::mul(lambda[i], S[n - i]);
        if (delta == 0) {
            ++m;
            continue;
        }
        std::uint8_t next[kPar + 1];
        for (unsigned i = 0; i <= kPar; ++i)
            next[i] = lambda[i];
        const std::uint8_t coef = gf256::div(delta, b);
        for (unsigned i = 0; i + m <= kPar; ++i)
            next[i + m] ^= gf256::mul(coef, prev[i]);
        if (2 * L <= n) {
            for (unsigned i = 0; i <= kPar; ++i)
                prev[i] = lambda[i];
            L = n + 1 - L;
            b = delta;
            m = 1;
        } else {
            ++m;
        }
        for (unsigned i = 0; i <= kPar; ++i)
            lambda[i] = next[i];
    }
    if (L > kT) {
        out.status = EccStatus::Uncorrectable;
        return out;
    }

    // Chien search over the live positions: Lambda(alpha^-p) == 0
    // marks an error at position p.
    unsigned errPos[kT];
    unsigned nerr = 0;
    std::uint8_t term[kPar + 1];
    for (unsigned j = 0; j <= kPar; ++j)
        term[j] = lambda[j];
    for (unsigned p = 0; p < kN; ++p) {
        std::uint8_t val = 0;
        for (unsigned j = 0; j <= L; ++j)
            val ^= term[j];
        if (val == 0) {
            if (nerr == kT) {
                out.status = EccStatus::Uncorrectable;
                return out;
            }
            errPos[nerr++] = p;
        }
        for (unsigned j = 1; j <= L; ++j)
            term[j] = gf256::mulExp(term[j], gf256::kGroupOrder - j);
    }
    if (nerr != L) {
        out.status = EccStatus::Uncorrectable;
        return out;
    }

    // Forney values: Omega(x) = S(x)·Lambda(x) mod x^8, and the error
    // magnitude at X_k = alpha^p is X_k·Omega(X_k^-1)/Lambda'(X_k^-1).
    std::uint8_t omega[kPar] = {};
    for (unsigned i = 0; i < kPar; ++i) {
        for (unsigned j = 0; j <= L && i + j < kPar; ++j)
            omega[i + j] ^= gf256::mul(S[i], lambda[j]);
    }
    bool anyData = false;
    unsigned wordMask = 0;
    unsigned parityFixed = 0;
    for (unsigned k = 0; k < nerr; ++k) {
        const unsigned p = errPos[k];
        const std::uint8_t xinv = gf256::exp(gf256::kGroupOrder - p);
        std::uint8_t num = 0;
        for (int i = kPar - 1; i >= 0; --i)
            num = gf256::mul(num, xinv) ^ omega[i];
        std::uint8_t den = 0;
        for (unsigned j = 1; j <= L; j += 2) {
            std::uint8_t pw = 1;
            for (unsigned r = 0; r + 1 < j; ++r)
                pw = gf256::mul(pw, xinv);
            den ^= gf256::mul(lambda[j], pw);
        }
        if (den == 0) {
            out.status = EccStatus::Uncorrectable;
            return out;
        }
        const std::uint8_t e =
            gf256::mulExp(gf256::div(num, den), p);
        if (e == 0) {
            out.status = EccStatus::Uncorrectable;
            return out;
        }
        c[p] ^= e;
        if (p < kPar) {
            ++parityFixed;
        } else {
            anyData = true;
            wordMask |= 1u << ((kN - 1 - p) / 8);
        }
    }

    // Fold corrections back and insist the patched codeword re-encodes
    // cleanly before trusting it.
    std::uint8_t fixedData[kData];
    std::uint8_t fixedParity[kPar];
    for (unsigned k = 0; k < kData; ++k)
        fixedData[k] = c[kN - 1 - k];
    for (unsigned j = 0; j < kPar; ++j)
        fixedParity[j] = c[j];
    std::uint8_t reenc[kPar];
    encodeParity(fixedData, reenc);
    for (unsigned j = 0; j < kPar; ++j) {
        if (reenc[j] != fixedParity[j]) {
            out.status = EccStatus::Uncorrectable;
            return out;
        }
    }

    storeLineBytes(out.line, fixedData);
    out.ecc = packParity(fixedParity);
    out.correctedWords =
        static_cast<unsigned>(__builtin_popcount(wordMask)) + parityFixed;
    out.status = anyData ? EccStatus::CorrectedData
                         : EccStatus::CorrectedCheck;
    return out;
}

} // namespace esd
