#include "ras/ras_engine.hh"

#include <algorithm>

#include "common/stat_registry.hh"
#include "persist/persistence.hh"

namespace esd
{

RasEngine::RasEngine(const RasConfig &cfg, NvmStore &store,
                     PcmDevice &device, CtrModeEngine &crypto,
                     const EccEngine &ecc, std::uint64_t seed)
    : cfg_(cfg), store_(store), device_(device), crypto_(crypto),
      ecc_(ecc), faults_(cfg, store, seed)
{
    // Spare region: the top of the device, never handed out by normal
    // allocation (LineStore bumps from 0; metadata regions sit at fixed
    // bases well below the top).
    std::uint64_t capacity = device_.config().capacityBytes;
    std::uint64_t spare_bytes = cfg_.spareRegionLines * kLineSize;
    spareBase_ = spare_bytes >= capacity ? 0 : capacity - spare_bytes;
}

Addr
RasEngine::resolve(Addr phys) const
{
    if (remap_.empty())
        return phys;
    Addr medium = lineAlign(phys);
    for (auto it = remap_.find(medium); it != remap_.end();
         it = remap_.find(medium)) {
        medium = it->second;
    }
    return medium;
}

Addr
RasEngine::allocSpare()
{
    if (sparesUsed_ >= cfg_.spareRegionLines) {
        stats_.spareExhausted.inc();
        return kInvalidAddr;
    }
    return spareBase_ + (sparesUsed_++) * kLineSize;
}

Addr
RasEngine::retire(Addr phys)
{
    Addr medium = resolve(phys);
    Addr spare = allocSpare();
    if (spare == kInvalidAddr)
        return kInvalidAddr;
    remap_[medium] = spare;
    stats_.linesRetired.inc();
    if (persist_)
        persist_->note(JournalOp::LineRetire, lineAlign(phys), spare);
    return spare;
}

void
RasEngine::noteScrubRewrite(Addr phys, bool had_old,
                            const StoredLine &old, Tick complete)
{
    if (!persist_)
        return;
    persist_->note(JournalOp::CtrBump, lineAlign(phys), kInvalidAddr,
                   crypto_.counter(phys));
    persist_->noteLineWrite(phys, had_old ? &old : nullptr, complete);
}

void
RasEngine::accountBlast(Addr phys)
{
    std::uint64_t refs = 1;
    if (hooks_.refCountOf)
        refs = std::max<std::uint64_t>(hooks_.refCountOf(phys), 1);
    stats_.blastRadiusRefs.inc(refs);
}

void
RasEngine::maybeSuspend()
{
    if (cfg_.dedupSuspendUes != 0 &&
        stats_.ueEvents.value() >= cfg_.dedupSuspendUes) {
        dedupSuspended_ = true;
    }
}

void
RasEngine::beforeRead(Addr phys)
{
    if (cfg_.enabled)
        faults_.onRead(phys);
}

bool
RasEngine::storedIntact(Addr phys)
{
    auto stored = store_.read(phys);
    if (!stored)
        return false;
    // ECC covers the plaintext; counter-mode decryption maps each
    // flipped ciphertext bit to exactly one plaintext bit, so decoding
    // after decryption sees exactly the injected faults.
    CacheLine plain = crypto_.decrypt(phys, stored->data);
    return ecc_.decodeLine(plain, stored->ecc).status !=
           EccStatus::Uncorrectable;
}

NvmAccessResult
RasEngine::storeAndWrite(Addr phys, const CacheLine &cipher, LineEcc ecc,
                         Tick arrival)
{
    store_.write(phys, cipher, ecc);
    if (!cfg_.enabled)
        return device_.access(OpType::Write, phys, arrival);

    // A fresh write gives the line defined content again.
    poisoned_.erase(lineAlign(phys));

    Addr medium = resolve(phys);
    faults_.onWrite(phys, medium, device_.wear().lineWrites(medium));
    NvmAccessResult res = device_.access(OpType::Write, medium, arrival);
    patrolTick(res.complete);
    if (cfg_.writeVerifyRetries == 0)
        return res;

    Tick t = res.complete;
    for (std::uint64_t attempt = 0;; ++attempt) {
        stats_.writeVerifyReads.inc();
        NvmAccessResult rd = device_.access(OpType::Read, medium, t);
        t = rd.complete;
        if (storedIntact(phys)) {
            res.complete = t;
            return res;
        }
        if (attempt >= cfg_.writeVerifyRetries)
            break;
        stats_.writeVerifyRetries.inc();
        t += cfg_.writeVerifyBackoffNs;
        store_.write(phys, cipher, ecc);
        faults_.onWrite(phys, medium, device_.wear().lineWrites(medium));
        NvmAccessResult wr = device_.access(OpType::Write, medium, t);
        res.issuerStall += wr.issuerStall;
        t = wr.complete;
    }

    // Persistently failing medium: retire it and rewrite on the spare
    // slot, which carries none of the old slot's stuck cells.
    stats_.writeVerifyRetirements.inc();
    Addr spare = retire(phys);
    if (spare == kInvalidAddr) {
        // No spare left — the write is lost where it stands.
        stats_.ueEvents.inc();
        accountBlast(phys);
        store_.erase(phys);
        poisoned_.insert(lineAlign(phys));
        if (hooks_.onRetire)
            hooks_.onRetire(lineAlign(phys));
        maybeSuspend();
        res.complete = t;
        return res;
    }
    store_.write(phys, cipher, ecc);
    faults_.onWrite(phys, spare, device_.wear().lineWrites(spare));
    NvmAccessResult wr = device_.access(OpType::Write, spare, t);
    res.issuerStall += wr.issuerStall;
    res.complete = wr.complete;
    return res;
}

void
RasEngine::demandScrub(Addr phys, const CacheLine &plain, LineEcc ecc,
                       Tick now)
{
    if (!cfg_.enabled || !cfg_.demandScrub)
        return;
    const StoredLine *prev = store_.peek(phys);
    bool had_old = prev != nullptr;
    StoredLine old;
    if (had_old)
        old = *prev;
    CacheLine cipher = crypto_.encrypt(phys, plain);
    store_.write(phys, cipher, ecc);
    Addr medium = resolve(phys);
    faults_.onWrite(phys, medium, device_.wear().lineWrites(medium));
    stats_.demandScrubWrites.inc();
    // Posted write-back: charges device traffic/energy, not the read.
    NvmAccessResult wr = device_.access(OpType::Write, medium, now);
    noteScrubRewrite(phys, had_old, old, wr.complete);
}

void
RasEngine::onUncorrectable(Addr phys, Tick now)
{
    (void)now;
    if (!cfg_.enabled)
        return;
    stats_.ueEvents.inc();
    accountBlast(phys);
    retire(phys);
    store_.erase(phys);
    poisoned_.insert(lineAlign(phys));
    if (hooks_.onRetire)
        hooks_.onRetire(lineAlign(phys));
    maybeSuspend();
}

void
RasEngine::scrubLine(Addr phys, Tick now)
{
    stats_.patrolLineScrubs.inc();
    faults_.onRead(phys);
    Addr medium = resolve(phys);
    NvmAccessResult rd = device_.access(OpType::Read, medium, now);

    auto stored = store_.read(phys);
    if (!stored)
        return;
    CacheLine plain = crypto_.decrypt(phys, stored->data);
    LineDecodeResult dec = ecc_.decodeLine(plain, stored->ecc);
    if (dec.status == EccStatus::Uncorrectable) {
        stats_.patrolUncorrectable.inc();
        onUncorrectable(phys, rd.complete);
        return;
    }
    if (dec.correctedWords == 0)
        return;

    stats_.patrolCorrected.inc();
    StoredLine old = *stored;
    CacheLine cipher = crypto_.encrypt(phys, dec.line);
    store_.write(phys, cipher, dec.ecc);
    faults_.onWrite(phys, medium, device_.wear().lineWrites(medium));
    NvmAccessResult wr = device_.access(OpType::Write, medium, rd.complete);
    noteScrubRewrite(phys, true, old, wr.complete);
}

void
RasEngine::patrolTick(Tick now)
{
    if (!cfg_.enabled || cfg_.patrolIntervalWrites == 0)
        return;
    if (++writesSinceSweep_ < cfg_.patrolIntervalWrites)
        return;
    writesSinceSweep_ = 0;
    stats_.patrolSweeps.inc();

    for (std::uint64_t i = 0; i < cfg_.patrolLinesPerSweep; ++i) {
        if (patrolIdx_ >= patrolQueue_.size()) {
            patrolQueue_ = store_.residentAddrs();
            patrolIdx_ = 0;
            if (patrolQueue_.empty())
                return;
        }
        Addr phys = patrolQueue_[patrolIdx_++];
        // The snapshot may be stale: skip lines that died or were
        // poisoned since.
        if (!store_.contains(phys) || isPoisoned(phys))
            continue;
        scrubLine(phys, now);
    }
}

void
RasEngine::resetStats()
{
    // Assign in place: registered stat references stay valid.
    stats_ = RasStats{};
    faults_.resetStats();
}

void
RasEngine::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".demand_scrub_writes",
                   stats_.demandScrubWrites,
                   "corrected reads written back clean");
    reg.addCounter(prefix + ".patrol_sweeps", stats_.patrolSweeps,
                   "patrol-scrub sweeps started");
    reg.addCounter(prefix + ".patrol_line_scrubs", stats_.patrolLineScrubs,
                   "lines examined by the patrol scrubber");
    reg.addCounter(prefix + ".patrol_corrected", stats_.patrolCorrected,
                   "patrol reads that needed correction");
    reg.addCounter(prefix + ".patrol_uncorrectable",
                   stats_.patrolUncorrectable,
                   "uncorrectable errors first seen by the patrol");
    reg.addCounter(prefix + ".write_verify_reads", stats_.writeVerifyReads,
                   "write-verify read-backs issued");
    reg.addCounter(prefix + ".write_verify_retries",
                   stats_.writeVerifyRetries,
                   "failed verifies that re-wrote the line");
    reg.addCounter(prefix + ".write_verify_retirements",
                   stats_.writeVerifyRetirements,
                   "write-verify retry exhaustions");
    reg.addCounter(prefix + ".ue_events", stats_.ueEvents,
                   "uncorrectable errors across all paths");
    reg.addCounter(prefix + ".lines_retired", stats_.linesRetired,
                   "lines remapped into the spare region");
    reg.addCounter(prefix + ".blast_radius_refs", stats_.blastRadiusRefs,
                   "logical lines lost to UEs, refcount-weighted");
    reg.addCounter(prefix + ".spare_exhausted", stats_.spareExhausted,
                   "retirements denied for lack of spare lines");
    reg.addGauge(prefix + ".dedup_suspended",
                 [this] { return dedupSuspended_ ? 1.0 : 0.0; },
                 "1 once dedup was suspended by the UE threshold");
    faults_.registerStats(reg, prefix + ".faults");
}

} // namespace esd
