/**
 * @file
 * The online RAS pipeline: inject -> correct -> scrub -> verify ->
 * retire.
 *
 * RasEngine sits between a scheme and the NVM content/timing pair and
 * owns everything reliability:
 *
 *   - a FaultModel corrupting stored lines on reads and writes;
 *   - demand scrubbing (corrected reads are written back clean) and a
 *     patrol scrubber sweeping resident lines on a device-write budget;
 *   - PCM write-verify: every content write is read back and retried
 *     with backoff while it fails ECC, retiring persistently failing
 *     lines to a spare region;
 *   - uncorrectable-error policy: the line is retired and poisoned,
 *     its refcount-weighted dedup *blast radius* is accounted (one
 *     corrupt unique line loses every logical line deduplicated onto
 *     it), scheme metadata is invalidated through a hook, and
 *     deduplication can be suspended once UEs cross a threshold.
 *
 * Address discipline: scheme-visible physical addresses never change.
 * Content (NvmStore) and crypto counters stay keyed by the original
 * physical address; retirement only redirects the *medium* — the slot
 * whose cells fail and whose bank services the traffic. resolve()
 * applies that redirection for timing and fault injection.
 *
 * With cfg.enabled == false every hook is a no-op and a simulation is
 * numerically identical to one without the RAS layer.
 */

#ifndef ESD_RAS_RAS_ENGINE_HH
#define ESD_RAS_RAS_ENGINE_HH

#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/ctr_mode.hh"
#include "ecc/ecc_engine.hh"
#include "ecc/line_ecc.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"
#include "ras/fault_model.hh"

namespace esd
{

class PersistenceManager;
class StatRegistry;

/** RAS pipeline accounting. */
struct RasStats
{
    Counter demandScrubWrites;     ///< corrected reads written back clean
    Counter patrolSweeps;          ///< patrol-scrub sweeps started
    Counter patrolLineScrubs;      ///< lines examined by the patrol
    Counter patrolCorrected;       ///< patrol reads needing correction
    Counter patrolUncorrectable;   ///< UEs first seen by the patrol
    Counter writeVerifyReads;      ///< verify read-backs issued
    Counter writeVerifyRetries;    ///< failed verifies that re-wrote
    Counter writeVerifyRetirements;///< retry exhaustion -> retirement
    Counter ueEvents;              ///< uncorrectable errors, all paths
    Counter linesRetired;          ///< lines remapped into the spare region
    Counter blastRadiusRefs;       ///< logical lines lost to UEs (refcounts)
    Counter spareExhausted;        ///< retirements denied for lack of spares
};

/** The pipeline. One instance per scheme (schemes own their crypto). */
class RasEngine
{
  public:
    /** Scheme callbacks, both optional. */
    struct Hooks
    {
        /** Dedup reference count of a physical line (blast radius);
         * unset or 0 means the line carries one logical line. */
        std::function<std::uint64_t(Addr)> refCountOf;

        /** Invalidate scheme metadata (fingerprint/EFIT entries)
         * naming a retired physical line. */
        std::function<void(Addr)> onRetire;
    };

    RasEngine(const RasConfig &cfg, NvmStore &store, PcmDevice &device,
              CtrModeEngine &crypto, const EccEngine &ecc,
              std::uint64_t seed);

    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /** Attach (or detach with nullptr) the crash-consistency engine:
     * retirements journal LineRetire records, and the pipeline's
     * internal content rewrites (scrubs) report their counter bumps
     * and undo state like scheme writes do. */
    void setPersistence(PersistenceManager *pm) { persist_ = pm; }

    bool enabled() const { return cfg_.enabled; }

    /** Medium slot currently backing @p phys (identity until the line
     * is retired; retired slots chain into the spare region). */
    Addr resolve(Addr phys) const;

    /** True when the content of @p phys was lost to an uncorrectable
     * error and not rewritten since. */
    bool
    isPoisoned(Addr phys) const
    {
        return !poisoned_.empty() &&
               poisoned_.count(lineAlign(phys)) != 0;
    }

    /** True once the UE count crossed cfg.dedupSuspendUes (latches). */
    bool dedupSuspended() const { return dedupSuspended_; }

    /** Latch dedup suspension from outside the engine. The sharded
     * pipeline sums UE counts across shards at epoch barriers and
     * propagates the global threshold crossing to every shard in
     * canonical order. No-op when RAS is disabled. */
    void
    forceSuspendDedup()
    {
        if (cfg_.enabled)
            dedupSuspended_ = true;
    }

    /** Read-path fault injection for @p phys (call before consuming
     * stored content). */
    void beforeRead(Addr phys);

    /**
     * The full content write pipeline: store @p cipher + @p ecc at
     * @p phys, inject write faults, issue the timed device write, and
     * run write-verify with bounded retry/backoff. Retry traffic and
     * backoff extend the returned completion time; retry exhaustion
     * retires the line to a spare slot and rewrites it there.
     */
    NvmAccessResult storeAndWrite(Addr phys, const CacheLine &cipher,
                                  LineEcc ecc, Tick arrival);

    /**
     * Demand scrub after an ECC-corrected read: re-encrypt the
     * corrected plaintext and write the clean line back (posted,
     * off the read's critical path).
     */
    void demandScrub(Addr phys, const CacheLine &plain, LineEcc ecc,
                     Tick now);

    /**
     * Uncorrectable error on a demand or compare read of @p phys: the
     * content is lost. Accounts the dedup blast radius, retires the
     * medium, poisons the line, invalidates scheme metadata, and
     * latches dedup suspension when the threshold is crossed.
     */
    void onUncorrectable(Addr phys, Tick now);

    /** Note one scheme-issued device write; runs a patrol-scrub sweep
     * whenever the configured write budget has elapsed. */
    void patrolTick(Tick now);

    FaultModel &faults() { return faults_; }

    const RasStats &stats() const { return stats_; }

    /** Zero statistics (after warm-up); retirement/poison/suspension
     * state is system state and survives. */
    void resetStats();

    /** Register all RAS counters under "<prefix>.*". */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Lines remapped into the spare region so far. */
    std::uint64_t retiredLines() const { return remap_.size(); }

  private:
    /** Allocate the next spare slot; kInvalidAddr when exhausted. */
    Addr allocSpare();

    /** Remap @p phys's medium into the spare region.
     * @return the new medium, or kInvalidAddr when no spare is left. */
    Addr retire(Addr phys);

    void accountBlast(Addr phys);
    void maybeSuspend();

    /** Journal the counter bump and undo state of an engine-internal
     * content rewrite (demand/patrol scrub). Call with the pre-write
     * stored state; no-op when persistence is detached. */
    void noteScrubRewrite(Addr phys, bool had_old, const StoredLine &old,
                          Tick complete);

    /** Decode the stored line at @p phys through decryption.
     * @return true when the content is (correctably) intact. */
    bool storedIntact(Addr phys);

    void scrubLine(Addr phys, Tick now);

    RasConfig cfg_;
    NvmStore &store_;
    PcmDevice &device_;
    CtrModeEngine &crypto_;
    const EccEngine &ecc_;
    FaultModel faults_;
    Hooks hooks_;
    PersistenceManager *persist_ = nullptr;

    /** phys -> spare medium redirections (chains permitted: a spare
     * can itself wear out and retire again). */
    FlatMap<Addr, Addr> remap_;
    FlatSet<Addr> poisoned_;

    Addr spareBase_ = 0;
    std::uint64_t sparesUsed_ = 0;

    std::uint64_t writesSinceSweep_ = 0;
    std::vector<Addr> patrolQueue_;
    std::size_t patrolIdx_ = 0;

    bool dedupSuspended_ = false;
    RasStats stats_;
};

} // namespace esd

#endif // ESD_RAS_RAS_ENGINE_HH
