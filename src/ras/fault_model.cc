#include "ras/fault_model.hh"

#include <cmath>

#include "common/stat_registry.hh"

namespace esd
{

namespace
{

/** Bits per stored codeword: 512 payload + 64 line-ECC. */
constexpr unsigned kStoredBits = 576;

} // namespace

FaultModel::FaultModel(const RasConfig &cfg, NvmStore &store,
                       std::uint64_t seed)
    : cfg_(cfg), store_(store),
      rng_(seed ^ 0x52a5f4a17ull, 0x9e3779b97f4a7c15ull),
      expNegLambdaRead_(std::exp(-(kStoredBits * cfg.readBer))),
      expNegLambdaWrite_(std::exp(-(kStoredBits * cfg.writeBer)))
{
}

void
FaultModel::appendStuck(Addr medium, StuckBit sb)
{
    StuckNode *node = stuckArena_.create<StuckNode>();
    node->sb = sb;
    StuckList &list = stuck_[lineAlign(medium)];
    if (list.tail)
        list.tail->next = node;
    else
        list.head = node;
    list.tail = node;
    ++list.count;
}

unsigned
FaultModel::poisson(double exp_neg_lambda)
{
    // Knuth's product method. For the tiny lambdas of realistic BERs
    // exp_neg_lambda is close to 1, so the common case is one uniform
    // draw and an immediate return of 0.
    unsigned k = 0;
    double p = 1.0;
    for (;;) {
        p *= rng_.uniform();
        if (p <= exp_neg_lambda)
            return k;
        ++k;
    }
}

void
FaultModel::flipRandomStoredBit(Addr phys, Counter &counter)
{
    unsigned bit = rng_.below(kStoredBits);
    if (store_.corruptBit(phys, bit))
        counter.inc();
}

void
FaultModel::onRead(Addr phys)
{
    if (!cfg_.enabled || cfg_.readBer <= 0.0)
        return;
    unsigned flips = poisson(expNegLambdaRead_);
    for (unsigned i = 0; i < flips; ++i)
        flipRandomStoredBit(phys, stats_.bitFlipsRead);
}

void
FaultModel::onWrite(Addr phys, Addr medium, std::uint64_t line_writes)
{
    if (!cfg_.enabled)
        return;

    if (cfg_.writeBer > 0.0) {
        unsigned flips = poisson(expNegLambdaWrite_);
        for (unsigned i = 0; i < flips; ++i)
            flipRandomStoredBit(phys, stats_.bitFlipsWrite);
    }

    // Wear-out: past the onset write count, each further write may
    // permanently stick one more cell of this medium slot.
    if (cfg_.stuckAtOnsetWrites != 0 && cfg_.stuckAtPerWrite > 0.0 &&
        line_writes >= cfg_.stuckAtOnsetWrites &&
        rng_.chance(cfg_.stuckAtPerWrite)) {
        StuckBit sb{rng_.below(kStoredBits), rng_.chance(0.5)};
        appendStuck(medium, sb);
        stats_.stuckBitsCreated.inc();
    }

    // Stuck cells re-assert their value over whatever was just
    // programmed — the persistent, position-stable error write-verify
    // is there to catch.
    auto it = stuck_.find(lineAlign(medium));
    if (it == stuck_.end())
        return;
    for (const StuckNode *n = it->second.head; n; n = n->next) {
        if (store_.bitAt(phys, n->sb.bit) != n->sb.value &&
            store_.setBit(phys, n->sb.bit, n->sb.value)) {
            stats_.stuckBitsAsserted.inc();
        }
    }
}

void
FaultModel::plantStuckBit(Addr medium, unsigned bit, bool value)
{
    appendStuck(medium, StuckBit{bit, value});
    stats_.stuckBitsCreated.inc();
}

std::size_t
FaultModel::stuckBits(Addr medium) const
{
    auto it = stuck_.find(lineAlign(medium));
    return it == stuck_.end() ? 0 : it->second.count;
}

void
FaultModel::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".bit_flips_read", stats_.bitFlipsRead,
                   "raw bit errors injected on line reads");
    reg.addCounter(prefix + ".bit_flips_write", stats_.bitFlipsWrite,
                   "raw bit errors injected on line writes");
    reg.addCounter(prefix + ".stuck_bits_created", stats_.stuckBitsCreated,
                   "wear-coupled stuck-at cells formed");
    reg.addCounter(prefix + ".stuck_bits_asserted", stats_.stuckBitsAsserted,
                   "stuck cell values re-asserted after writes");
}

} // namespace esd
