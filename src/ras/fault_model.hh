/**
 * @file
 * Online media-fault injection process for the NVMM content store.
 *
 * Two fault populations, both injected *during* simulation (unlike the
 * offline ErrorInjector used by the ECC validation tests):
 *
 *   - raw bit errors: every content-bearing line read/write draws a
 *     Poisson-distributed number of bit flips with rate
 *     576 bits x BER (the 512 payload + 64 ECC bits of a stored
 *     codeword), modelling retention/read-disturb and programming
 *     noise respectively;
 *
 *   - wear-coupled stuck-at cells: once a line's write count passes a
 *     configurable onset, each further write may permanently stick one
 *     cell at a fixed value — the dominant PCM end-of-life failure
 *     mode. Stuck cells re-assert their value after every write, so
 *     write-verify sees a persistent, position-stable error.
 *
 * Stuck cells are keyed by the *medium* address (post-retirement
 * slot), so remapping a worn-out line to a spare genuinely escapes its
 * faults, while the injected corruption lands in the stored content
 * wherever the NvmStore keeps it.
 *
 * All randomness flows through one Pcg32 seeded from the simulation
 * seed: identical (seed, access sequence) pairs inject identical
 * faults.
 */

#ifndef ESD_RAS_FAULT_MODEL_HH
#define ESD_RAS_FAULT_MODEL_HH

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/nvm_store.hh"

namespace esd
{

class StatRegistry;

/** Fault-injection accounting. */
struct FaultModelStats
{
    Counter bitFlipsRead;      ///< raw flips injected on line reads
    Counter bitFlipsWrite;     ///< raw flips injected on line writes
    Counter stuckBitsCreated;  ///< wear-coupled stuck-at cells formed
    Counter stuckBitsAsserted; ///< stuck values re-asserted after writes
};

/** The online fault process. */
class FaultModel
{
  public:
    FaultModel(const RasConfig &cfg, NvmStore &store, std::uint64_t seed);

    /** Inject read-path raw bit errors into the stored line at
     * @p phys. No-op when no line is resident. */
    void onRead(Addr phys);

    /**
     * Inject write-path faults into the freshly stored line at
     * @p phys: programming noise plus the stuck-at process.
     *
     * @param medium      physical medium slot (post-retirement) whose
     *                    cells wear out and stick
     * @param line_writes cumulative write count of @p medium
     */
    void onWrite(Addr phys, Addr medium, std::uint64_t line_writes);

    /** Test hook: deterministically stick bit @p bit of @p medium at
     * @p value (asserted into stored content on the next write). */
    void plantStuckBit(Addr medium, unsigned bit, bool value);

    /** Number of stuck cells on @p medium. */
    std::size_t stuckBits(Addr medium) const;

    const FaultModelStats &stats() const { return stats_; }
    void resetStats() { stats_ = FaultModelStats{}; }

    /** Register counters under "<prefix>.*". */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /** One permanently failed cell. */
    struct StuckBit
    {
        unsigned bit;
        bool value;
    };

    /** Arena node of a per-line stuck-cell list. Stuck cells are
     * append-only (a cell never un-sticks), so the list needs no
     * removal; insertion order is preserved for deterministic
     * re-assert order. */
    struct StuckNode
    {
        StuckBit sb{};
        StuckNode *next = nullptr;
    };

    /** Per-line list head/tail stored inline in the map. */
    struct StuckList
    {
        StuckNode *head = nullptr;
        StuckNode *tail = nullptr;
        std::uint32_t count = 0;
    };

    /** Append a freshly stuck cell to @p medium 's list. */
    void appendStuck(Addr medium, StuckBit sb);

    /** Poisson draw via Knuth's product method; @p exp_neg_lambda is
     * the precomputed e^-lambda (cheap for the small lambdas of
     * realistic BERs: usually a single uniform draw returning 0). */
    unsigned poisson(double exp_neg_lambda);

    void flipRandomStoredBit(Addr phys, Counter &counter);

    RasConfig cfg_;
    NvmStore &store_;
    Pcg32 rng_;
    double expNegLambdaRead_;
    double expNegLambdaWrite_;
    FlatMap<Addr, StuckList> stuck_;
    BumpArena stuckArena_;
    FaultModelStats stats_;
};

} // namespace esd

#endif // ESD_RAS_FAULT_MODEL_HH
