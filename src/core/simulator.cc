#include "core/simulator.hh"

#include <vector>

#include "common/logging.hh"
#include "dedup/dewrite.hh"
#include "dedup/dedup_sha1.hh"
#include "dedup/esd.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{

Simulator::Simulator(const SimConfig &cfg, SchemeKind kind)
    : cfg_(cfg),
      device_(cfg.pcm, cfg.channels),
      store_(cfg.pcm.capacityBytes),
      scheme_(makeScheme(kind, cfg, device_, store_))
{
    scheme_->registerStats(registry_);
    device_.registerStats(registry_);
    registry_.addLatency("scheme.read_latency", readLatency_,
                         "measured LLC-miss fill latency, ns");
    registry_.addLatency("scheme.write_latency", writeLatency_,
                         "measured write-path latency, ns");
    if (cfg_.persist.enabled) {
        persist_ = std::make_unique<PersistenceManager>(
            cfg_.persist, device_, store_, cfg_.seed);
        scheme_->setPersistence(persist_.get());
        // Registered only on persistence-enabled runs: default-off
        // stats-JSON schemas stay byte-identical.
        persist_->registerStats(registry_, "persist");
    }
}

void
Simulator::resetMeasurement()
{
    scheme_->resetStats();
    device_.resetStats();
    device_.resetWear();
    readLatency_.reset();
    writeLatency_.reset();
    sampler_.reset();
    profiler_.reset();
    metrics_.reset();
    if (persist_)
        persist_->resetStats();
}

void
Simulator::beginRun()
{
    coreTime_ = 0;
    instructions_ = 0;
    measureStartTime_ = 0;
    measureStartInstr_ = 0;
    measuredRecords_ = 0;
    measuredWrites_ = 0;
    measuring_ = false;
    sawUnmeasured_ = false;

    readLatency_.reset();
    writeLatency_.reset();
    sampler_.reset();
    profiler_.reset();
    hostStart_ = std::chrono::steady_clock::now();
}

void
Simulator::stepRecord(const TraceRecord &rec, bool measured)
{
    if (measured && !measuring_) {
        // First measured record: close the warm-up window. A run with
        // no unmeasured prefix skips the reset — everything is still
        // in its freshly-constructed state.
        if (sawUnmeasured_)
            resetMeasurement();
        measureStartTime_ = coreTime_;
        measureStartInstr_ = instructions_;
        measuring_ = true;
        hostStart_ = std::chrono::steady_clock::now();
    }
    if (!measured)
        sawUnmeasured_ = true;

    // The core retires the inter-request instructions first.
    const double ns_per_cycle = 1.0 / cfg_.core.clockGhz;
    coreTime_ += rec.icount * cfg_.core.baseCpi * ns_per_cycle;
    instructions_ += rec.icount;

    auto now = static_cast<Tick>(coreTime_);
    if (rec.op == OpType::Write) {
        if (persist_)
            persist_->onWriteBegin(now);
        AccessResult r = scheme_->write(rec.addr, rec.data, now);
        if (persist_) {
            // Journal flush / epoch commit: the barrier and append
            // costs charge to this write so journaling overhead
            // shows in the latency histograms.
            Tick extra = persist_->onWriteEnd(now + r.latency);
            r.latency += extra;
            coreTime_ += static_cast<double>(extra);
        }
        if (measuring_) {
            writeLatency_.sample(static_cast<double>(r.latency));
            sampler_.onWrite(++measuredWrites_);
            metrics_.onWrite(measuredWrites_);
        }
        // Posted write: only backpressure stalls the core.
        coreTime_ += static_cast<double>(r.issuerStall);
    } else {
        CacheLine data;
        AccessResult r = scheme_->read(rec.addr, data, now);
        if (measuring_)
            readLatency_.sample(static_cast<double>(r.latency));
        // Miss fills block the core.
        coreTime_ += static_cast<double>(r.latency + r.issuerStall);
    }
    if (measuring_)
        ++measuredRecords_;
}

RunResult
Simulator::endRun()
{
    RunResult out;
    out.schemeName = scheme_->name();

    if (!measuring_) {
        // No measured record (e.g. an empty pipeline shard): an empty
        // measurement window starting now.
        measureStartTime_ = coreTime_;
        measureStartInstr_ = instructions_;
    }

    out.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hostStart_)
            .count());
    profiler_.setRunNs(out.hostNs);
    // Final exposition snapshot: a scraper always ends up with the
    // complete end-of-run page even when interval writes are off.
    metrics_.writeSnapshot();

    out.readLatency = readLatency_;
    out.writeLatency = writeLatency_;
    out.records = measuredRecords_;
    out.instructions = instructions_ - measureStartInstr_;
    out.runtimeNs = coreTime_ - measureStartTime_;
    double cycles = out.runtimeNs * cfg_.core.clockGhz;
    out.ipc = cycles > 0 ? out.instructions / cycles : 0.0;

    const SchemeStats &ss = scheme_->stats();
    out.logicalWrites = ss.logicalWrites.value();
    out.logicalReads = ss.logicalReads.value();
    out.dedupHits = ss.dedupHits.value();
    out.nvmDataWrites = ss.nvmDataWrites.value();
    out.nvmReadsTotal = device_.stats().reads.value();
    out.nvmWritesTotal = device_.stats().writes.value();
    out.nvmWritesCoalesced = device_.stats().writesCoalesced.value();
    out.energy = EnergyBreakdown::collect(device_.stats(), ss);
    out.breakdown = ss.breakdown;
    out.metadataNvmBytes = scheme_->metadataNvmBytes();
    out.uniqueLinesStored = store_.residentLines();
    out.wear = device_.wear().stats();
    if (out.logicalWrites > 0) {
        out.dedupViaFpCacheFrac =
            static_cast<double>(ss.dedupHitsFpCache.value()) /
            out.logicalWrites;
        out.dedupViaFpNvmFrac =
            static_cast<double>(ss.dedupHitsFpNvm.value()) /
            out.logicalWrites;
    }

    if (auto *esd_s = dynamic_cast<const EsdScheme *>(scheme_.get()))
        out.fpCacheHitRate = esd_s->efit().stats().hitRate();
    else if (auto *s1 = dynamic_cast<const DedupSha1Scheme *>(scheme_.get()))
        out.fpCacheHitRate = s1->fpTable().stats().cacheHitRate();
    else if (auto *dw = dynamic_cast<const DeWriteScheme *>(scheme_.get()))
        out.fpCacheHitRate = dw->fpTable().stats().cacheHitRate();

    if (auto *m = dynamic_cast<const MappedDedupScheme *>(scheme_.get()))
        out.amtCacheHitRate = m->amt().stats().hitRate();

    return out;
}

RunResult
Simulator::run(TraceSource &trace, std::uint64_t records,
               std::uint64_t warmup)
{
    beginRun();

    // Pull in batches (TraceSource::nextBatch): streaming sources pay
    // one virtual call per buffer instead of per record, and the
    // record sequence is identical to one-at-a-time consumption.
    constexpr std::size_t kRunChunk = 1024;
    std::vector<TraceRecord> chunk(kRunChunk);
    std::uint64_t processed = 0;
    while (records == 0 || processed < records) {
        std::size_t want = kRunChunk;
        if (records != 0 && records - processed < want)
            want = static_cast<std::size_t>(records - processed);
        std::size_t got = trace.nextBatch(chunk.data(), want);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i) {
            stepRecord(chunk[i], processed >= warmup);
            ++processed;
        }
    }

    if (warmup > 0 && !measuring_)
        esd_fatal("trace shorter than the %llu-record warmup",
                  static_cast<unsigned long long>(warmup));

    return endRun();
}

RunResult
runWorkload(const SimConfig &cfg, SchemeKind kind, TraceSource &trace,
            std::uint64_t records, std::uint64_t warmup)
{
    Simulator sim(cfg, kind);
    return sim.run(trace, records, warmup);
}

} // namespace esd
