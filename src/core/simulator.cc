#include "core/simulator.hh"

#include "common/logging.hh"
#include "dedup/dewrite.hh"
#include "dedup/dedup_sha1.hh"
#include "dedup/esd.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{

Simulator::Simulator(const SimConfig &cfg, SchemeKind kind)
    : cfg_(cfg),
      device_(cfg.pcm, cfg.channels),
      store_(cfg.pcm.capacityBytes),
      scheme_(makeScheme(kind, cfg, device_, store_))
{
    scheme_->registerStats(registry_);
    device_.registerStats(registry_);
    registry_.addLatency("scheme.read_latency", readLatency_,
                         "measured LLC-miss fill latency, ns");
    registry_.addLatency("scheme.write_latency", writeLatency_,
                         "measured write-path latency, ns");
    if (cfg_.persist.enabled) {
        persist_ = std::make_unique<PersistenceManager>(
            cfg_.persist, device_, store_, cfg_.seed);
        scheme_->setPersistence(persist_.get());
        // Registered only on persistence-enabled runs: default-off
        // stats-JSON schemas stay byte-identical.
        persist_->registerStats(registry_, "persist");
    }
}

void
Simulator::resetMeasurement()
{
    scheme_->resetStats();
    device_.resetStats();
    device_.resetWear();
    readLatency_.reset();
    writeLatency_.reset();
    sampler_.reset();
    profiler_.reset();
    metrics_.reset();
    if (persist_)
        persist_->resetStats();
}

RunResult
Simulator::run(TraceSource &trace, std::uint64_t records,
               std::uint64_t warmup)
{
    RunResult out;
    out.schemeName = scheme_->name();

    const double ns_per_cycle = 1.0 / cfg_.core.clockGhz;

    double core_time = 0;       // ns
    std::uint64_t instructions = 0;
    double measure_start_time = 0;
    std::uint64_t measure_start_instr = 0;
    std::uint64_t processed = 0;
    std::uint64_t measured_writes = 0;
    bool measuring = warmup == 0;

    readLatency_.reset();
    writeLatency_.reset();
    sampler_.reset();
    profiler_.reset();
    auto host_start = std::chrono::steady_clock::now();

    TraceRecord rec;
    while ((records == 0 || processed < records) && trace.next(rec)) {
        if (!measuring && processed == warmup) {
            resetMeasurement();
            measure_start_time = core_time;
            measure_start_instr = instructions;
            measuring = true;
            host_start = std::chrono::steady_clock::now();
        }

        // The core retires the inter-request instructions first.
        core_time += rec.icount * cfg_.core.baseCpi * ns_per_cycle;
        instructions += rec.icount;

        auto now = static_cast<Tick>(core_time);
        if (rec.op == OpType::Write) {
            if (persist_)
                persist_->onWriteBegin(now);
            AccessResult r = scheme_->write(rec.addr, rec.data, now);
            if (persist_) {
                // Journal flush / epoch commit: the barrier and append
                // costs charge to this write so journaling overhead
                // shows in the latency histograms.
                Tick extra = persist_->onWriteEnd(now + r.latency);
                r.latency += extra;
                core_time += static_cast<double>(extra);
            }
            if (measuring) {
                writeLatency_.sample(static_cast<double>(r.latency));
                sampler_.onWrite(++measured_writes);
                metrics_.onWrite(measured_writes);
            }
            // Posted write: only backpressure stalls the core.
            core_time += static_cast<double>(r.issuerStall);
        } else {
            CacheLine data;
            AccessResult r = scheme_->read(rec.addr, data, now);
            if (measuring)
                readLatency_.sample(static_cast<double>(r.latency));
            // Miss fills block the core.
            core_time += static_cast<double>(r.latency + r.issuerStall);
        }
        ++processed;
    }

    if (!measuring)
        esd_fatal("trace shorter than the %llu-record warmup",
                  static_cast<unsigned long long>(warmup));

    out.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_start)
            .count());
    profiler_.setRunNs(out.hostNs);
    // Final exposition snapshot: a scraper always ends up with the
    // complete end-of-run page even when interval writes are off.
    metrics_.writeSnapshot();

    out.readLatency = readLatency_;
    out.writeLatency = writeLatency_;
    out.records = processed - warmup;
    out.instructions = instructions - measure_start_instr;
    out.runtimeNs = core_time - measure_start_time;
    double cycles = out.runtimeNs * cfg_.core.clockGhz;
    out.ipc = cycles > 0 ? out.instructions / cycles : 0.0;

    const SchemeStats &ss = scheme_->stats();
    out.logicalWrites = ss.logicalWrites.value();
    out.logicalReads = ss.logicalReads.value();
    out.dedupHits = ss.dedupHits.value();
    out.nvmDataWrites = ss.nvmDataWrites.value();
    out.nvmReadsTotal = device_.stats().reads.value();
    out.nvmWritesTotal = device_.stats().writes.value();
    out.nvmWritesCoalesced = device_.stats().writesCoalesced.value();
    out.energy = EnergyBreakdown::collect(device_.stats(), ss);
    out.breakdown = ss.breakdown;
    out.metadataNvmBytes = scheme_->metadataNvmBytes();
    out.uniqueLinesStored = store_.residentLines();
    out.wear = device_.wear().stats();
    if (out.logicalWrites > 0) {
        out.dedupViaFpCacheFrac =
            static_cast<double>(ss.dedupHitsFpCache.value()) /
            out.logicalWrites;
        out.dedupViaFpNvmFrac =
            static_cast<double>(ss.dedupHitsFpNvm.value()) /
            out.logicalWrites;
    }

    if (auto *esd_s = dynamic_cast<const EsdScheme *>(scheme_.get()))
        out.fpCacheHitRate = esd_s->efit().stats().hitRate();
    else if (auto *s1 = dynamic_cast<const DedupSha1Scheme *>(scheme_.get()))
        out.fpCacheHitRate = s1->fpTable().stats().cacheHitRate();
    else if (auto *dw = dynamic_cast<const DeWriteScheme *>(scheme_.get()))
        out.fpCacheHitRate = dw->fpTable().stats().cacheHitRate();

    if (auto *m = dynamic_cast<const MappedDedupScheme *>(scheme_.get()))
        out.amtCacheHitRate = m->amt().stats().hitRate();

    return out;
}

RunResult
runWorkload(const SimConfig &cfg, SchemeKind kind, TraceSource &trace,
            std::uint64_t records, std::uint64_t warmup)
{
    Simulator sim(cfg, kind);
    return sim.run(trace, records, warmup);
}

} // namespace esd
