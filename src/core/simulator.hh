/**
 * @file
 * Trace-driven system simulator: an in-order core model issuing the
 * memory-level request stream of a TraceSource through a scheme into
 * the banked PCM device, collecting every metric the evaluation needs
 * (latency distributions, IPC, energy, write reduction, metadata
 * footprint, cache hit rates).
 *
 * Core timing model: the core retires icount instructions at baseCpi
 * between requests; LLC miss fills (reads) block it for the observed
 * memory latency; evictions (writes) are posted and only stall the
 * core via write-queue backpressure — exactly the asymmetry that lets
 * write reduction translate into IPC (Fig. 14).
 */

#ifndef ESD_CORE_SIMULATOR_HH
#define ESD_CORE_SIMULATOR_HH

#include <chrono>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"
#include "common/write_trace.hh"
#include "dedup/scheme.hh"
#include "dedup/scheme_factory.hh"
#include "metrics/energy.hh"
#include "metrics/interval_sampler.hh"
#include "metrics/profiler.hh"
#include "metrics/prometheus.hh"
#include "metrics/span_trace.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"
#include "persist/persistence.hh"
#include "trace/trace.hh"

namespace esd
{

/** Everything measured over one simulation run. */
struct RunResult
{
    std::string schemeName;

    std::uint64_t records = 0;
    std::uint64_t instructions = 0;

    /** Simulated wall time in ns. */
    double runtimeNs = 0;

    /** Instructions per core cycle. */
    double ipc = 0;

    LatencyStat readLatency;
    LatencyStat writeLatency;

    std::uint64_t logicalWrites = 0;
    std::uint64_t logicalReads = 0;
    std::uint64_t dedupHits = 0;
    std::uint64_t nvmDataWrites = 0;
    std::uint64_t nvmReadsTotal = 0;   ///< incl. metadata traffic
    std::uint64_t nvmWritesTotal = 0;  ///< incl. metadata traffic
    std::uint64_t nvmWritesCoalesced = 0;  ///< absorbed in a channel WPQ

    EnergyBreakdown energy;
    WriteBreakdown breakdown;

    std::uint64_t metadataNvmBytes = 0;
    std::uint64_t uniqueLinesStored = 0;

    /** Scheme-dependent cache hit rates (0 when not applicable). */
    double fpCacheHitRate = 0;  ///< EFIT (ESD) / fp cache (full dedup)
    double amtCacheHitRate = 0;

    /** Fraction of logical writes deduplicated via a fingerprint
     * resident in the memory cache vs fetched from NVMM (Fig. 5). */
    double dedupViaFpCacheFrac = 0;
    double dedupViaFpNvmFrac = 0;

    /** Endurance accounting over the measured window. */
    WearStats wear;

    /** Host wall-clock of the measured window in ns. Never serialized
     * into run reports — simulated results stay machine-independent —
     * but the self-profiling benches read it for writes/s. */
    std::uint64_t hostNs = 0;

    /** dedupHits / logicalWrites. */
    double
    writeReduction() const
    {
        return logicalWrites == 0
                   ? 0.0
                   : static_cast<double>(dedupHits) / logicalWrites;
    }
};

/**
 * One simulated system instance: core model + scheme + device.
 */
class Simulator
{
  public:
    Simulator(const SimConfig &cfg, SchemeKind kind);

    /**
     * Play @p trace through the system.
     *
     * @param records total records to consume (0 = until exhausted)
     * @param warmup  leading records excluded from statistics (the
     *                paper warms the NVMM before measuring)
     */
    RunResult run(TraceSource &trace, std::uint64_t records,
                  std::uint64_t warmup = 0);

    // ------------------------------------------------------------------
    // Incremental run API.
    //
    // The sharded write pipeline (exec/pipeline.hh) drives one
    // Simulator per shard record by record instead of handing it a
    // whole TraceSource; run() above is exactly beginRun() + one
    // stepRecord() per record + endRun(), so both paths share one
    // timing model.

    /** Reset run-loop state; call once before the first stepRecord(). */
    void beginRun();

    /**
     * Advance the system by one trace record. @p measured marks
     * records inside the measurement window (the caller owns the
     * warmup policy); the first measured record after an unmeasured
     * prefix closes the warm-up window exactly like run() does.
     */
    void stepRecord(const TraceRecord &rec, bool measured);

    /** Close the run and assemble the RunResult over the measured
     * window. A run that saw no measured record yields zeros. */
    RunResult endRun();

    /** True once a measured record has been processed. */
    bool measuring() const { return measuring_; }

    DedupScheme &scheme() { return *scheme_; }
    PcmDevice &device() { return device_; }
    NvmStore &store() { return store_; }
    const SimConfig &config() const { return cfg_; }

    /** Every stat of the system, hierarchically named: "scheme.*",
     * "pcm.*" / "pcm.bankN.*", "esd.efit.*", "cache.amt.*", ... */
    const StatRegistry &statRegistry() const { return registry_; }

    /** Attach (nullptr detaches) a write-event trace sink; events are
     * recorded for measured and warm-up writes alike. */
    void setEventTrace(WriteEventTrace *trace)
    {
        scheme_->setEventTrace(trace);
    }

    /** Attach (nullptr detaches) a span-trace sink to both the write
     * pipeline and the PCM device, so pipeline spans and channel
     * service spans land in one trace. */
    void
    setSpanTrace(SpanTrace *spans)
    {
        scheme_->setSpanTrace(spans);
        device_.setSpanTrace(spans);
    }

    /** Opt the latency stats into raw-sample retention (for
     * -latency-out= style exports). Percentiles always come from the
     * exact histograms; this only re-enables the reservoir. Call
     * before run(). @p cap 0 keeps every sample. */
    void
    enableRawLatencySamples(std::size_t cap = 0)
    {
        readLatency_.enableRawSamples(cap);
        writeLatency_.enableRawSamples(cap);
    }

    /**
     * Rewrite a Prometheus text-format snapshot of the stat registry
     * to @p path every @p every_writes measured writes (0 = only the
     * final end-of-run snapshot). Call before run().
     */
    void
    enableMetricsExposition(std::string path,
                            std::uint64_t every_writes)
    {
        metrics_.configure(registry_, std::move(path), every_writes);
    }

    const MetricsExporter &metricsExporter() const { return metrics_; }

    /** Snapshot every scalar stat each @p every_writes measured
     * writes (0 disables). Call before run(). */
    void
    enableIntervalSampling(std::uint64_t every_writes)
    {
        sampler_.configure(registry_, every_writes);
    }

    const IntervalSampler &sampler() const { return sampler_; }

    /**
     * Attach the host-side phase profiler to the scheme and register
     * its gauges under "host.profile.*". Call before run(); opt-in
     * because registration widens the stats-JSON schema (unprofiled
     * reports stay byte-identical to earlier releases).
     */
    void
    enableProfiling()
    {
        if (profiling_)
            return;
        profiling_ = true;
        scheme_->setProfiler(&profiler_);
        if (persist_)
            persist_->setProfiler(&profiler_);
        profiler_.registerStats(registry_, "host.profile");
        // Registering gauges widened the registry; an already-enabled
        // sampler must re-capture its column set or its row width
        // assertion fires on the first sample.
        if (sampler_.enabled())
            sampler_.configure(registry_, sampler_.interval());
    }

    const Profiler &profiler() const { return profiler_; }
    bool profilingEnabled() const { return profiling_; }

    /** The crash-consistency engine, or nullptr when [persistence] is
     * off. Crash tooling reads the image and runs recovery off it. */
    PersistenceManager *persistence() { return persist_.get(); }
    const PersistenceManager *persistence() const
    {
        return persist_.get();
    }

  private:
    void resetMeasurement();

    // Run-loop state shared by run() and the incremental API.
    double coreTime_ = 0;  ///< simulated ns
    std::uint64_t instructions_ = 0;
    double measureStartTime_ = 0;
    std::uint64_t measureStartInstr_ = 0;
    std::uint64_t measuredRecords_ = 0;
    std::uint64_t measuredWrites_ = 0;
    bool measuring_ = false;
    bool sawUnmeasured_ = false;
    std::chrono::steady_clock::time_point hostStart_;

    SimConfig cfg_;
    PcmDevice device_;
    NvmStore store_;
    std::unique_ptr<DedupScheme> scheme_;
    std::unique_ptr<PersistenceManager> persist_;

    StatRegistry registry_;
    IntervalSampler sampler_;
    Profiler profiler_;
    MetricsExporter metrics_;
    bool profiling_ = false;

    /** Measured-window latency distributions; registered as
     * "scheme.read_latency" / "scheme.write_latency" and copied into
     * the RunResult at the end of run(). */
    LatencyStat readLatency_;
    LatencyStat writeLatency_;
};

/**
 * Convenience wrapper: construct, run, and summarise an (app profile,
 * scheme) pair — the unit of work of every figure bench.
 */
RunResult runWorkload(const SimConfig &cfg, SchemeKind kind,
                      TraceSource &trace, std::uint64_t records,
                      std::uint64_t warmup = 0);

} // namespace esd

#endif // ESD_CORE_SIMULATOR_HH
