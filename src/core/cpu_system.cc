#include "core/cpu_system.hh"

namespace esd
{

CpuSystem::CpuSystem(const SimConfig &cfg, SchemeKind kind)
    : cfg_(cfg),
      device_(cfg.pcm),
      store_(cfg.pcm.capacityBytes),
      scheme_(makeScheme(kind, cfg, device_, store_)),
      hierarchy_(cfg.cache)
{
    scheme_->registerStats(registry_);
    device_.registerStats(registry_);
    hierarchy_.registerStats(registry_);
}

CpuAccessResult
CpuSystem::access(Addr addr, bool is_write, const CacheLine &data)
{
    CpuAccessResult out;

    // A miss fill needs memory content before the hierarchy can
    // install the line; fetch it through the scheme only when the
    // hierarchy actually misses (probe first to avoid fake reads).
    CacheLine fill;
    bool will_miss = !hierarchy_.l1().probe(addr) &&
                     !hierarchy_.l2().probe(addr) &&
                     !hierarchy_.l3().probe(addr);

    double mem_ns = 0;
    if (will_miss) {
        AccessResult r = scheme_->read(lineAlign(addr), fill,
                                       static_cast<Tick>(now_));
        mem_ns += static_cast<double>(r.latency + r.issuerStall);
    }

    HierarchyResult h = hierarchy_.access(addr, is_write, data, fill);
    double cache_ns = h.cacheCycles / cfg_.core.clockGhz;

    // Dirty evictions leaving L3 go to the scheme's write path.
    for (const MemOp &op : h.memOps) {
        if (op.type != OpType::Write)
            continue;
        AccessResult r = scheme_->write(op.addr, op.data,
                                        static_cast<Tick>(now_ + cache_ns));
        // Posted: only backpressure is visible to the core.
        mem_ns += static_cast<double>(r.issuerStall);
    }

    out.latencyNs = cache_ns + mem_ns;
    out.hitLevel = h.hitLevel;
    out.data = h.data;
    now_ += out.latencyNs;
    return out;
}

CpuAccessResult
CpuSystem::store(Addr addr, const CacheLine &data)
{
    return access(addr, true, data);
}

CpuAccessResult
CpuSystem::load(Addr addr)
{
    CacheLine dummy;
    return access(addr, false, dummy);
}

} // namespace esd
