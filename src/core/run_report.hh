/**
 * @file
 * Machine-readable run reports: the full stats-JSON document emitted
 * by `esd_sim -stats-json=` — run configuration, the RunResult
 * summary, every registered stat, and the interval-sampler
 * time-series — so downstream tooling parses one schema instead of
 * scraping table output.
 */

#ifndef ESD_CORE_RUN_REPORT_HH
#define ESD_CORE_RUN_REPORT_HH

#include <ostream>

#include "core/simulator.hh"

namespace esd
{

class JsonWriter;

/** Serialize @p cfg as a nested object mirroring SimConfig. */
void writeConfigJson(JsonWriter &w, const SimConfig &cfg);

/** Serialize the per-run summary (records, IPC, energy, wear, ...).
 * @p histogram_buckets additionally embeds the exact log-histogram
 * buckets of each latency stat; off by default so existing reports
 * stay byte-identical. */
void writeRunResultJson(JsonWriter &w, const RunResult &r,
                        bool histogram_buckets = false);

/**
 * Write the complete stats report document to @p os:
 *   {"config": {...}, "result": {...}, "stats": {...},
 *    "intervals": {...}}        // intervals only when sampler != null
 *
 * @param indent spaces per JSON nesting level; 0 emits the compact
 *        one-line form the sweep merger embeds per job.
 * @param histogram_buckets embed exact histogram buckets in every
 *        latency stat (opt-in; widens the schema).
 */
void writeStatsReport(std::ostream &os, const SimConfig &cfg,
                      const RunResult &r, const StatRegistry &reg,
                      const IntervalSampler *sampler = nullptr,
                      int indent = 2,
                      bool histogram_buckets = false);

} // namespace esd

#endif // ESD_CORE_RUN_REPORT_HH
