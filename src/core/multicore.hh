/**
 * @file
 * Multi-core trace-driven simulation (Table I: an 8-core CPU in
 * front of one memory controller).
 *
 * Each core replays its own trace with the same in-order semantics as
 * the single-core Simulator — reads block *that core only* — while
 * all cores share the scheme, metadata caches, and PCM banks. With
 * several cores in flight the controller sees the aggregated request
 * pressure an 8-core machine produces, which is where read/write
 * interference (and deduplication's relief of it) grows beyond what
 * one blocking core can generate.
 *
 * Scheduling: a simple next-event loop — at each step the core with
 * the earliest next-issue time fires, so device arrival times are
 * globally non-decreasing (which the bank model requires).
 */

#ifndef ESD_CORE_MULTICORE_HH
#define ESD_CORE_MULTICORE_HH

#include <memory>
#include <vector>

#include "core/simulator.hh"

namespace esd
{

/** Per-core outcome of a multi-core run. */
struct CoreResult
{
    std::uint64_t records = 0;
    std::uint64_t instructions = 0;
    double runtimeNs = 0;
    double ipc = 0;
};

/** Whole-system outcome. */
struct MultiCoreRunResult
{
    std::string schemeName;
    std::vector<CoreResult> cores;

    std::uint64_t records = 0;
    std::uint64_t instructions = 0;

    /** Wall time = the slowest core's runtime. */
    double wallNs = 0;

    /** System throughput: total instructions per cycle of wall time. */
    double systemIpc = 0;

    LatencyStat readLatency;
    LatencyStat writeLatency;

    std::uint64_t logicalWrites = 0;
    std::uint64_t logicalReads = 0;
    std::uint64_t dedupHits = 0;
    EnergyBreakdown energy;

    double
    writeReduction() const
    {
        return logicalWrites == 0
                   ? 0.0
                   : static_cast<double>(dedupHits) / logicalWrites;
    }
};

/**
 * N cores, one scheme, one device.
 */
class MultiCoreSimulator
{
  public:
    MultiCoreSimulator(const SimConfig &cfg, SchemeKind kind);

    /**
     * Run one trace per core until every core consumed
     * @p records_per_core records (0 = its trace's length).
     *
     * @param warmup_per_core leading records per core excluded from
     *                        the shared statistics
     */
    MultiCoreRunResult run(
        std::vector<std::unique_ptr<TraceSource>> traces,
        std::uint64_t records_per_core,
        std::uint64_t warmup_per_core = 0);

    DedupScheme &scheme() { return *scheme_; }
    PcmDevice &device() { return device_; }

  private:
    SimConfig cfg_;
    PcmDevice device_;
    NvmStore store_;
    std::unique_ptr<DedupScheme> scheme_;
};

} // namespace esd

#endif // ESD_CORE_MULTICORE_HH
