#include "core/run_report.hh"

#include "common/config_io.hh"
#include "common/json.hh"

namespace esd
{

void
writeConfigJson(JsonWriter &w, const SimConfig &cfg)
{
    w.beginObject();

    w.key("pcm");
    w.beginObject();
    w.kv("capacity_bytes", cfg.pcm.capacityBytes);
    w.kv("read_latency_ns", cfg.pcm.readLatency);
    w.kv("write_latency_ns", cfg.pcm.writeLatency);
    w.kv("row_buffer_lines", cfg.pcm.rowBufferLines);
    w.kv("row_hit_read_latency_ns", cfg.pcm.rowHitReadLatency);
    w.kv("read_energy_pj", cfg.pcm.readEnergy);
    w.kv("write_energy_pj", cfg.pcm.writeEnergy);
    w.kv("channels", cfg.pcm.channels);
    w.kv("ranks_per_channel", cfg.pcm.ranksPerChannel);
    w.kv("banks_per_rank", cfg.pcm.banksPerRank);
    w.kv("write_queue_depth", cfg.pcm.writeQueueDepth);
    w.kv("read_priority", cfg.pcm.readPriority);
    w.kv("start_gap_enabled", cfg.pcm.startGapEnabled);
    w.kv("gap_move_period", cfg.pcm.gapMovePeriod);
    w.endObject();

    w.key("channels");
    w.beginObject();
    w.kv("count", static_cast<std::uint64_t>(cfg.channels.count));
    w.kv("wpq_depth", static_cast<std::uint64_t>(cfg.channels.wpqDepth));
    w.kv("wpq_coalescing", cfg.channels.wpqCoalescing);
    w.endObject();

    w.key("cache");
    w.beginObject();
    w.kv("l1_size", cfg.cache.l1Size);
    w.kv("l1_assoc", cfg.cache.l1Assoc);
    w.kv("l2_size", cfg.cache.l2Size);
    w.kv("l2_assoc", cfg.cache.l2Assoc);
    w.kv("l3_size", cfg.cache.l3Size);
    w.kv("l3_assoc", cfg.cache.l3Assoc);
    w.endObject();

    w.key("crypto");
    w.beginObject();
    w.kv("sha1_latency_ns", cfg.crypto.sha1Latency);
    w.kv("md5_latency_ns", cfg.crypto.md5Latency);
    w.kv("crc_latency_ns", cfg.crypto.crcLatency);
    w.kv("encrypt_latency_ns", cfg.crypto.encryptLatency);
    w.kv("ecc_latency_ns", cfg.crypto.eccLatency);
    w.kv("metadata_cache_latency_ns", cfg.crypto.metadataCacheLatency);
    w.kv("compare_latency_ns", cfg.crypto.compareLatency);
    w.endObject();

    w.key("metadata");
    w.beginObject();
    w.kv("efit_cache_bytes", cfg.metadata.efitCacheBytes);
    w.kv("amt_cache_bytes", cfg.metadata.amtCacheBytes);
    w.kv("efit_assoc", cfg.metadata.efitAssoc);
    w.kv("amt_assoc", cfg.metadata.amtAssoc);
    w.kv("refer_h_max", static_cast<std::uint64_t>(
                            cfg.metadata.referHMax));
    w.kv("decay_period", cfg.metadata.decayPeriod);
    w.kv("use_lrcu", cfg.metadata.useLrcu);
    w.endObject();

    w.key("ras");
    w.beginObject();
    w.kv("enabled", cfg.ras.enabled);
    w.kv("read_ber", cfg.ras.readBer);
    w.kv("write_ber", cfg.ras.writeBer);
    w.kv("stuck_at_onset_writes", cfg.ras.stuckAtOnsetWrites);
    w.kv("stuck_at_per_write", cfg.ras.stuckAtPerWrite);
    w.kv("demand_scrub", cfg.ras.demandScrub);
    w.kv("patrol_interval_writes", cfg.ras.patrolIntervalWrites);
    w.kv("patrol_lines_per_sweep", cfg.ras.patrolLinesPerSweep);
    w.kv("write_verify_retries", cfg.ras.writeVerifyRetries);
    w.kv("write_verify_backoff_ns", cfg.ras.writeVerifyBackoffNs);
    w.kv("spare_region_lines", cfg.ras.spareRegionLines);
    w.kv("dedup_suspend_ues", cfg.ras.dedupSuspendUes);
    w.endObject();

    // Emitted only off the default engine: hamming reports stay byte-
    // identical to releases that predate pluggable ECC.
    if (cfg.ecc.engine != EccEngineKind::Hamming) {
        w.key("ecc");
        w.beginObject();
        w.kv("engine", eccEngineName(cfg.ecc.engine));
        w.endObject();
    }

    // Emitted only when enabled: default-off reports stay byte-
    // identical to releases that predate the crash subsystem.
    if (cfg.persist.enabled) {
        w.key("persistence");
        w.beginObject();
        w.kv("enabled", cfg.persist.enabled);
        w.kv("domain", persistDomainName(cfg.persist.domain));
        w.kv("epoch_writes", cfg.persist.epochWrites);
        w.kv("checkpoint_epochs", cfg.persist.checkpointEpochs);
        w.kv("barrier_ns", cfg.persist.barrierNs);
        w.kv("journal_append_ns", cfg.persist.journalAppendNs);
        w.kv("metadata_buffer_records",
             cfg.persist.metadataBufferRecords);
        w.kv("counter_slack", cfg.persist.counterSlack);
        w.kv("counter_probe_max", cfg.persist.counterProbeMax);
        w.kv("crash_at_write", cfg.persist.crashAtWrite);
        w.kv("crash_phase", crashPhaseName(cfg.persist.crashPhase));
        w.endObject();
    }

    w.key("core");
    w.beginObject();
    w.kv("clock_ghz", cfg.core.clockGhz);
    w.kv("base_cpi", cfg.core.baseCpi);
    w.endObject();

    w.kv("seed", cfg.seed);
    w.endObject();
}

void
writeRunResultJson(JsonWriter &w, const RunResult &r,
                   bool histogram_buckets)
{
    w.beginObject();
    w.kv("scheme", r.schemeName);
    w.kv("records", r.records);
    w.kv("instructions", r.instructions);
    w.kv("runtime_ns", r.runtimeNs);
    w.kv("ipc", r.ipc);

    w.key("read_latency");
    writeLatencyJson(w, r.readLatency, histogram_buckets);
    w.key("write_latency");
    writeLatencyJson(w, r.writeLatency, histogram_buckets);

    w.kv("logical_writes", r.logicalWrites);
    w.kv("logical_reads", r.logicalReads);
    w.kv("dedup_hits", r.dedupHits);
    w.kv("write_reduction", r.writeReduction());
    w.kv("nvm_data_writes", r.nvmDataWrites);
    w.kv("nvm_reads_total", r.nvmReadsTotal);
    w.kv("nvm_writes_total", r.nvmWritesTotal);
    w.kv("nvm_writes_coalesced", r.nvmWritesCoalesced);

    w.key("energy_pj");
    w.beginObject();
    w.kv("device_read", r.energy.deviceRead);
    w.kv("device_write", r.energy.deviceWrite);
    w.kv("hash", r.energy.hash);
    w.kv("crypto", r.energy.crypto);
    w.kv("metadata", r.energy.metadata);
    w.kv("total", r.energy.total());
    w.endObject();

    w.key("write_breakdown_ns");
    w.beginObject();
    w.kv("fp_compute", r.breakdown.fpCompute);
    w.kv("fp_nvm_lookup", r.breakdown.fpNvmLookup);
    w.kv("read_compare", r.breakdown.readCompare);
    w.kv("line_write", r.breakdown.lineWrite);
    w.kv("encrypt", r.breakdown.encrypt);
    w.kv("metadata", r.breakdown.metadata);
    w.endObject();

    w.kv("metadata_nvm_bytes", r.metadataNvmBytes);
    w.kv("unique_lines_stored", r.uniqueLinesStored);
    w.kv("fp_cache_hit_rate", r.fpCacheHitRate);
    w.kv("amt_cache_hit_rate", r.amtCacheHitRate);
    w.kv("dedup_via_fp_cache_frac", r.dedupViaFpCacheFrac);
    w.kv("dedup_via_fp_nvm_frac", r.dedupViaFpNvmFrac);

    w.key("wear");
    w.beginObject();
    w.kv("total_writes", r.wear.totalWrites);
    w.kv("lines_touched", r.wear.linesTouched);
    w.kv("max_line_writes", r.wear.maxLineWrites);
    w.kv("mean_line_writes", r.wear.meanLineWrites());
    w.kv("imbalance", r.wear.imbalance());
    w.endObject();

    w.endObject();
}

void
writeStatsReport(std::ostream &os, const SimConfig &cfg,
                 const RunResult &r, const StatRegistry &reg,
                 const IntervalSampler *sampler, int indent,
                 bool histogram_buckets)
{
    JsonWriter w(os, indent);
    w.beginObject();
    w.key("config");
    writeConfigJson(w, cfg);
    w.key("result");
    writeRunResultJson(w, r, histogram_buckets);
    w.key("stats");
    reg.writeJson(w, histogram_buckets);
    if (sampler && sampler->enabled()) {
        w.key("intervals");
        sampler->writeJson(w);
    }
    w.endObject();
    os << "\n";
}

} // namespace esd
