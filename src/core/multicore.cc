#include "core/multicore.hh"

#include <limits>

#include "common/logging.hh"

namespace esd
{

MultiCoreSimulator::MultiCoreSimulator(const SimConfig &cfg,
                                       SchemeKind kind)
    : cfg_(cfg),
      device_(cfg.pcm, cfg.channels),
      store_(cfg.pcm.capacityBytes),
      scheme_(makeScheme(kind, cfg, device_, store_))
{
}

MultiCoreRunResult
MultiCoreSimulator::run(std::vector<std::unique_ptr<TraceSource>> traces,
                        std::uint64_t records_per_core,
                        std::uint64_t warmup_per_core)
{
    esd_assert(!traces.empty(), "need at least one core trace");
    const double ns_per_cycle = 1.0 / cfg_.core.clockGhz;
    const std::size_t n = traces.size();

    struct Core
    {
        TraceSource *trace = nullptr;
        double time = 0;           // ns, this core's clock
        double issueAt = 0;        // when the pending record fires
        TraceRecord pending;
        bool hasPending = false;
        bool done = false;
        std::uint64_t processed = 0;
        std::uint64_t instructions = 0;
        double measureStartTime = 0;
        std::uint64_t measureStartInstr = 0;
        std::uint64_t measureStartRecords = 0;
        bool measuring = false;
    };

    std::vector<Core> cores(n);
    auto fetch = [&](Core &c) {
        if (records_per_core != 0 && c.processed >= records_per_core) {
            c.done = true;
            return;
        }
        if (!c.trace->next(c.pending)) {
            c.done = true;
            return;
        }
        c.hasPending = true;
        c.issueAt = c.time + c.pending.icount * cfg_.core.baseCpi *
                                ns_per_cycle;
    };

    for (std::size_t i = 0; i < n; ++i) {
        cores[i].trace = traces[i].get();
        cores[i].measuring = warmup_per_core == 0;
        fetch(cores[i]);
    }

    MultiCoreRunResult out;
    out.schemeName = scheme_->name();

    // Whole-run stats reset happens when the *last* core leaves its
    // warm-up (shared structures can't be split per core); per-core
    // timing baselines are captured individually.
    std::size_t warm_cores = warmup_per_core == 0 ? n : 0;
    bool shared_reset_done = warmup_per_core == 0;

    for (;;) {
        // Pick the ready core with the earliest issue time.
        Core *next = nullptr;
        for (Core &c : cores) {
            if (c.done || !c.hasPending)
                continue;
            if (!next || c.issueAt < next->issueAt)
                next = &c;
        }
        if (!next)
            break;

        Core &c = *next;
        if (!c.measuring && c.processed == warmup_per_core) {
            c.measuring = true;
            c.measureStartTime = c.time;
            c.measureStartInstr = c.instructions;
            c.measureStartRecords = c.processed;
            if (++warm_cores == n && !shared_reset_done) {
                scheme_->resetStats();
                device_.resetStats();
                device_.resetWear();
                out.readLatency.reset();
                out.writeLatency.reset();
                shared_reset_done = true;
            }
        }

        c.time = c.issueAt;
        c.instructions += c.pending.icount;

        auto now = static_cast<Tick>(c.time);
        bool record_latency = c.measuring && shared_reset_done;
        if (c.pending.op == OpType::Write) {
            AccessResult r =
                scheme_->write(c.pending.addr, c.pending.data, now);
            if (record_latency)
                out.writeLatency.sample(static_cast<double>(r.latency));
            c.time += static_cast<double>(r.issuerStall);
        } else {
            CacheLine data;
            AccessResult r = scheme_->read(c.pending.addr, data, now);
            if (record_latency)
                out.readLatency.sample(static_cast<double>(r.latency));
            c.time += static_cast<double>(r.latency + r.issuerStall);
        }
        ++c.processed;
        c.hasPending = false;
        fetch(c);
    }

    for (Core &c : cores) {
        if (!c.measuring)
            esd_fatal("a core's trace was shorter than its warm-up");
        CoreResult cr;
        cr.records = c.processed - c.measureStartRecords;
        cr.instructions = c.instructions - c.measureStartInstr;
        cr.runtimeNs = c.time - c.measureStartTime;
        double cycles = cr.runtimeNs * cfg_.core.clockGhz;
        cr.ipc = cycles > 0 ? cr.instructions / cycles : 0.0;
        out.cores.push_back(cr);
        out.records += cr.records;
        out.instructions += cr.instructions;
        out.wallNs = std::max(out.wallNs, cr.runtimeNs);
    }
    double wall_cycles = out.wallNs * cfg_.core.clockGhz;
    out.systemIpc =
        wall_cycles > 0 ? out.instructions / wall_cycles : 0.0;

    const SchemeStats &ss = scheme_->stats();
    out.logicalWrites = ss.logicalWrites.value();
    out.logicalReads = ss.logicalReads.value();
    out.dedupHits = ss.dedupHits.value();
    out.energy = EnergyBreakdown::collect(device_.stats(), ss);
    return out;
}

} // namespace esd
