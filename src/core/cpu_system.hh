/**
 * @file
 * Full-stack convenience system: CPU-level loads/stores run through
 * the L1/L2/L3 hierarchy, and the resulting LLC traffic (miss fills
 * and dirty evictions) drives a scheme-managed encrypted NVMM. Used by
 * the examples and integration tests; the figure benches drive the
 * memory level directly (trace-driven, like the paper's artifact).
 */

#ifndef ESD_CORE_CPU_SYSTEM_HH
#define ESD_CORE_CPU_SYSTEM_HH

#include <memory>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/stat_registry.hh"
#include "dedup/scheme.hh"
#include "dedup/scheme_factory.hh"
#include "nvm/nvm_store.hh"
#include "nvm/pcm_device.hh"

namespace esd
{

/** Outcome of one CPU-level access. */
struct CpuAccessResult
{
    /** Total latency in ns (cache pipeline + any memory time). */
    double latencyNs = 0;

    /** Which level served it: 1..3, 4 = memory. */
    unsigned hitLevel = 1;

    /** Loaded data (loads only). */
    CacheLine data;
};

/**
 * The assembled system.
 */
class CpuSystem
{
  public:
    CpuSystem(const SimConfig &cfg, SchemeKind kind);

    /** CPU store of a full line. */
    CpuAccessResult store(Addr addr, const CacheLine &data);

    /** CPU load of a full line. */
    CpuAccessResult load(Addr addr);

    /** Advance the core clock without memory activity. */
    void tick(double ns) { now_ += ns; }

    double nowNs() const { return now_; }

    CacheHierarchy &hierarchy() { return hierarchy_; }
    DedupScheme &scheme() { return *scheme_; }
    PcmDevice &device() { return device_; }

    /** Every stat of the full stack: "cache.l1..l3.*" plus the
     * memory-level names the Simulator registry also carries. */
    const StatRegistry &statRegistry() const { return registry_; }

  private:
    CpuAccessResult access(Addr addr, bool is_write,
                           const CacheLine &data);

    SimConfig cfg_;
    PcmDevice device_;
    NvmStore store_;
    std::unique_ptr<DedupScheme> scheme_;
    CacheHierarchy hierarchy_;
    StatRegistry registry_;
    double now_ = 0;
};

} // namespace esd

#endif // ESD_CORE_CPU_SYSTEM_HH
