#include "trace/trace_capture.hh"

#include <cstring>

#include <zlib.h>

#include "common/logging.hh"
#include "trace/trace_frontend.hh"

namespace esd
{

namespace
{

constexpr char kMagic[4] = {'E', 'S', 'D', 'T'};

/** Uncompressed-side window the gzip deflater writes through. */
constexpr std::size_t kGzipOutChunk = 64 * 1024;

void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
storeLe32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

namespace detail
{

FileByteSink::FileByteSink(const std::string &path) : ByteSink(path)
{
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        esd_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
}

FileByteSink::~FileByteSink()
{
    if (f_)
        std::fclose(f_);
}

void
FileByteSink::write(const std::uint8_t *data, std::size_t n)
{
    if (std::fwrite(data, 1, n, f_) != n)
        esd_fatal("write error on trace file '%s'", path_.c_str());
}

void
FileByteSink::finish()
{
    if (std::fflush(f_) != 0)
        esd_fatal("write error on trace file '%s'", path_.c_str());
}

struct GzipByteSink::ZState
{
    z_stream strm{};
    std::uint8_t out[kGzipOutChunk];
};

GzipByteSink::GzipByteSink(std::unique_ptr<ByteSink> inner)
    : ByteSink(inner->path()), inner_(std::move(inner)),
      z_(std::make_unique<ZState>())
{
    // 15 window bits + 16 = emit a gzip wrapper (what the frontend's
    // sniffer expects).
    if (deflateInit2(&z_->strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                     15 + 16, 8, Z_DEFAULT_STRATEGY) != Z_OK)
        esd_fatal("cannot initialize gzip deflater for '%s'",
                  path_.c_str());
}

GzipByteSink::~GzipByteSink()
{
    deflateEnd(&z_->strm);
}

void
GzipByteSink::pump(bool finishing)
{
    z_stream &s = z_->strm;
    do {
        s.next_out = z_->out;
        s.avail_out = static_cast<uInt>(kGzipOutChunk);
        int rc = deflate(&s, finishing ? Z_FINISH : Z_NO_FLUSH);
        if (rc == Z_STREAM_ERROR)
            esd_panic("deflate state clobbered for '%s'",
                      path_.c_str());
        std::size_t produced = kGzipOutChunk - s.avail_out;
        if (produced > 0)
            inner_->write(z_->out, produced);
        if (finishing && rc == Z_STREAM_END)
            break;
    } while (s.avail_out == 0 || (finishing && s.avail_in > 0) ||
             finishing);
}

void
GzipByteSink::write(const std::uint8_t *data, std::size_t n)
{
    z_->strm.next_in = const_cast<std::uint8_t *>(data);
    z_->strm.avail_in = static_cast<uInt>(n);
    while (z_->strm.avail_in > 0)
        pump(false);
}

void
GzipByteSink::finish()
{
    z_->strm.next_in = nullptr;
    z_->strm.avail_in = 0;
    pump(true);
    inner_->finish();
}

} // namespace detail

TraceCaptureWriter::TraceCaptureWriter(const std::string &path,
                                       const TraceConfig &cfg)
    : cfg_(cfg)
{
    auto file = std::make_unique<detail::FileByteSink>(path);
    switch (cfg_.format) {
      case TraceFormat::Gzip:
        out_ = std::make_unique<detail::GzipByteSink>(std::move(file));
        binary_ = false;
        break;
      case TraceFormat::Binary:
        out_ = std::move(file);
        binary_ = true;
        break;
      case TraceFormat::Auto:
      case TraceFormat::Text:
        out_ = std::move(file);
        binary_ = false;
        break;
    }
    if (binary_) {
        std::uint8_t hdr[8];
        std::memcpy(hdr, kMagic, 4);
        hdr[4] = kBinaryTraceVersion;
        hdr[5] = cfg_.linePayload ? 1 : 0;
        hdr[6] = 0;
        hdr[7] = 0;
        out_->write(hdr, 8);
    } else {
        static const char banner[] =
            "# ESD text trace: <W|R> <hex addr> [<128 hex data>] "
            "<icount>\n";
        out_->write(reinterpret_cast<const std::uint8_t *>(banner),
                    sizeof(banner) - 1);
    }
}

TraceCaptureWriter::~TraceCaptureWriter()
{
    close();
}

void
TraceCaptureWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_->finish();
}

void
TraceCaptureWriter::write(const TraceRecord &rec)
{
    esd_assert(!closed_, "write after close on trace capture");
    if (binary_)
        writeBinary(rec);
    else
        writeText(rec);
    ++count_;
}

void
TraceCaptureWriter::writeText(const TraceRecord &rec)
{
    static const char *hex = "0123456789abcdef";
    char buf[kLineSize * 2 + 48];
    std::size_t n = 0;
    buf[n++] = rec.op == OpType::Write ? 'W' : 'R';
    buf[n++] = ' ';
    n += static_cast<std::size_t>(
        std::snprintf(buf + n, sizeof(buf) - n, "%llx",
                      static_cast<unsigned long long>(rec.addr)));
    buf[n++] = ' ';
    if (rec.op == OpType::Write && cfg_.linePayload) {
        for (std::size_t i = 0; i < kLineSize; ++i) {
            buf[n++] = hex[rec.data[i] >> 4];
            buf[n++] = hex[rec.data[i] & 0xf];
        }
        buf[n++] = ' ';
    }
    n += static_cast<std::size_t>(
        std::snprintf(buf + n, sizeof(buf) - n, "%u\n", rec.icount));
    out_->write(reinterpret_cast<const std::uint8_t *>(buf), n);
}

void
TraceCaptureWriter::writeBinary(const TraceRecord &rec)
{
    bool payload = rec.op == OpType::Write && cfg_.linePayload;
    std::uint8_t buf[1 + kBinaryRecordPayload];
    std::size_t len =
        payload ? kBinaryRecordPayload : kBinaryRecordNoPayload;
    buf[0] = static_cast<std::uint8_t>(len);
    buf[1] = rec.op == OpType::Write ? 1 : 0;
    storeLe64(buf + 2, rec.addr);
    storeLe32(buf + 10, rec.icount);
    if (payload)
        std::memcpy(buf + 1 + kBinaryRecordNoPayload, rec.data.data(),
                    kLineSize);
    out_->write(buf, 1 + len);
}

std::uint64_t
convertTrace(const std::string &inPath, const std::string &outPath,
             TraceFormat outFormat, bool linePayload)
{
    TraceConfig inCfg;
    TraceFrontend in(inPath, inCfg);
    TraceConfig outCfg;
    outCfg.format = outFormat;
    outCfg.linePayload = linePayload;
    TraceCaptureWriter out(outPath, outCfg);
    TraceRecord rec;
    while (in.next(rec))
        out.write(rec);
    out.close();
    return out.count();
}

} // namespace esd
