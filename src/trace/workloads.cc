#include "trace/workloads.hh"

#include "common/logging.hh"

namespace esd
{

namespace
{

using Suite = AppProfile::Suite;

/**
 * Calibration notes.
 *
 * dupRate values track the per-app bars of Fig. 1 (deepsjeng and roms
 * at 99.9% dominated by zero lines; leela the 33.1% minimum; average
 * across the 20 apps ~61%). zipfS/hotPoolLines shape the reference-
 * count distribution of Fig. 3. lbm is deliberately low-skew with a
 * large hot pool: its duplicates have modest reference counts spread
 * over many lines, which is why full dedup (DeWrite) beats selective
 * dedup there — matching the paper's Section IV-C observation.
 * writeFrac/icountMean set memory intensity; lbm and mcf are the
 * write-heavy memory-bound apps.
 */
std::vector<AppProfile>
buildApps()
{
    std::vector<AppProfile> apps;
    auto add = [&](const char *name, Suite suite, double dup, double zero,
                   double s, std::uint64_t pool, double wfrac,
                   std::uint64_t ws, std::uint32_t icount, double seq,
                   std::uint64_t seed) {
        AppProfile p;
        p.name = name;
        p.suite = suite;
        p.dupRate = dup;
        p.zeroFrac = zero;
        p.zipfS = s;
        p.hotPoolLines = pool;
        p.writeFrac = wfrac;
        p.workingSetLines = ws;
        p.icountMean = icount;
        p.seqProb = seq;
        p.seed = seed;
        apps.push_back(p);
    };

    // SPEC CPU 2017 (12).
    add("cactuBSSN", Suite::SpecCpu2017, 0.45, 0.25, 1.05, 16384, 0.45,
        1u << 16, 180, 0.83, 11);
    add("deepsjeng", Suite::SpecCpu2017, 0.999, 0.90, 1.20, 4096, 0.55,
        1u << 17, 220, 0.78, 12);
    add("gcc", Suite::SpecCpu2017, 0.60, 0.30, 1.10, 16384, 0.50,
        1u << 16, 160, 0.73, 13);
    add("imagick", Suite::SpecCpu2017, 0.40, 0.15, 0.95, 32768, 0.40,
        1u << 16, 260, 0.92, 14);
    add("lbm", Suite::SpecCpu2017, 0.82, 0.05, 0.30, 131072, 0.75,
        1u << 17, 60, 0.92, 15);
    add("leela", Suite::SpecCpu2017, 0.331, 0.10, 0.90, 32768, 0.55,
        1u << 17, 120, 0.63, 16);
    add("mcf", Suite::SpecCpu2017, 0.82, 0.20, 1.15, 8192, 0.60,
        1u << 17, 80, 0.58, 17);
    add("nab", Suite::SpecCpu2017, 0.50, 0.20, 1.00, 16384, 0.45,
        1u << 16, 200, 0.78, 18);
    add("namd", Suite::SpecCpu2017, 0.38, 0.12, 0.95, 32768, 0.35,
        1u << 16, 300, 0.88, 19);
    add("roms", Suite::SpecCpu2017, 0.999, 0.88, 1.20, 4096, 0.60,
        1u << 17, 150, 0.92, 20);
    add("wrf", Suite::SpecCpu2017, 0.65, 0.25, 1.10, 16384, 0.50,
        1u << 16, 170, 0.83, 21);
    add("xalancbmk", Suite::SpecCpu2017, 0.58, 0.28, 1.12, 12288, 0.50,
        1u << 16, 140, 0.68, 22);

    // PARSEC 2.1 (8).
    add("blackscholes", Suite::Parsec, 0.70, 0.30, 1.15, 8192, 0.45,
        1u << 17, 190, 0.78, 31);
    add("bodytrack", Suite::Parsec, 0.52, 0.22, 1.05, 16384, 0.50,
        1u << 16, 150, 0.73, 32);
    add("dedup", Suite::Parsec, 0.70, 0.25, 1.18, 8192, 0.55,
        1u << 16, 110, 0.78, 33);
    add("facesim", Suite::Parsec, 0.48, 0.18, 1.00, 24576, 0.45,
        1u << 16, 170, 0.83, 34);
    add("fluidanimate", Suite::Parsec, 0.73, 0.28, 1.12, 12288, 0.55,
        1u << 16, 130, 0.88, 35);
    add("rtview", Suite::Parsec, 0.44, 0.15, 0.95, 24576, 0.40,
        1u << 16, 210, 0.78, 36);
    add("swaptions", Suite::Parsec, 0.36, 0.12, 0.90, 32768, 0.45,
        1u << 17, 240, 0.68, 37);
    add("x264", Suite::Parsec, 0.67, 0.24, 1.10, 12288, 0.55,
        1u << 16, 120, 0.90, 38);

    return apps;
}

} // namespace

const std::vector<AppProfile> &
paperApps()
{
    static const std::vector<AppProfile> apps = buildApps();
    return apps;
}

const AppProfile *
tryFindApp(const std::string &name)
{
    for (const AppProfile &p : paperApps()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

const AppProfile &
findApp(const std::string &name)
{
    if (const AppProfile *p = tryFindApp(name))
        return *p;
    esd_fatal("unknown application profile '%s'", name.c_str());
}

SyntheticWorkload::SyntheticWorkload(const AppProfile &profile,
                                     std::uint64_t global_seed)
    : profile_(profile),
      globalSeed_(global_seed),
      rng_(profile.seed * 0x9E3779B97F4A7C15ull + global_seed,
           profile.seed | 1),
      zipf_(profile.hotPoolLines, profile.zipfS),
      nextFreshId_(profile.hotPoolLines + 1)
{
    if (profile_.workingSetLines == 0)
        esd_fatal("%s: empty working set", profile_.name.c_str());
    writtenAddrs_.reserve(1024);
    isTouched_.assign(profile_.hotPoolLines + 1, false);
}

void
SyntheticWorkload::reset()
{
    rng_ = Pcg32(profile_.seed * 0x9E3779B97F4A7C15ull + globalSeed_,
                 profile_.seed | 1);
    nextFreshId_ = profile_.hotPoolLines + 1;
    lastWriteAddr_ = 0;
    burstRemaining_ = 0;
    writtenAddrs_.clear();
    recentWrites_.clear();
    recentCursor_ = 0;
    touched_.clear();
    isTouched_.assign(profile_.hotPoolLines + 1, false);
}

CacheLine
SyntheticWorkload::lineContent(std::uint64_t id) const
{
    CacheLine line;
    if (id == 0)
        return line;  // the zero line
    Pcg32 content_rng(id * 0xD1B54A32D192ED03ull + profile_.seed,
                      globalSeed_ | 1);
    content_rng.fillLine(line);
    return line;
}

Addr
SyntheticWorkload::pickWriteAddr()
{
    Addr addr;
    if (rng_.chance(profile_.seqProb) && lastWriteAddr_ != 0) {
        addr = lastWriteAddr_ + kLineSize;
        if (lineIndex(addr) >= profile_.workingSetLines)
            addr = 0;
    } else {
        addr = static_cast<Addr>(
                   rng_.next64() % profile_.workingSetLines) *
               kLineSize;
    }
    lastWriteAddr_ = addr;
    return addr;
}

void
SyntheticWorkload::touch(std::uint64_t id)
{
    if (!isTouched_[id]) {
        isTouched_[id] = true;
        touched_.push_back(id);
    }
}

std::uint64_t
SyntheticWorkload::pickContentId()
{
    // Hot pool ids are 1..hotPoolLines; id 0 is the zero line; fresh
    // ids beyond the pool are one-shot unique contents.
    if (rng_.chance(profile_.dupRate)) {
        if (rng_.chance(profile_.zeroFrac)) {
            if (isTouched_[0])
                return 0;
            // First zero write is the unique seed.
            touch(0);
            return 0;
        }
        // A duplicate must repeat content already written: draw Zipf
        // ranks until one has been seeded, falling back to a uniform
        // touched id so the measured duplicate rate tracks dupRate.
        for (int attempt = 0; attempt < 16; ++attempt) {
            std::uint64_t id = zipf_.sample(rng_) + 1;
            if (isTouched_[id])
                return id;
        }
        if (!touched_.empty()) {
            return touched_[rng_.below(
                static_cast<std::uint32_t>(touched_.size()))];
        }
        // Nothing seeded yet: this write is necessarily unique.
    }

    // Unique write: preferentially seed an untouched hot-pool id (so
    // Zipf-hot ranks enter circulation early), else mint a fresh id.
    for (int attempt = 0; attempt < 16; ++attempt) {
        std::uint64_t id = zipf_.sample(rng_) + 1;
        if (!isTouched_[id]) {
            touch(id);
            return id;
        }
    }
    return nextFreshId_++;
}

bool
SyntheticWorkload::next(TraceRecord &rec)
{
    bool is_write =
        writtenAddrs_.empty() || rng_.chance(profile_.writeFrac);

    // Bursty arrival process: inside a burst (an eviction storm)
    // requests are nearly back-to-back; between bursts the gap is
    // stretched so the long-run mean stays near icountMean.
    if (burstRemaining_ > 0) {
        --burstRemaining_;
        rec.icount = rng_.below(profile_.icountMean / 16 + 1);
    } else if (rng_.chance(profile_.burstProb)) {
        burstRemaining_ =
            1 + rng_.below(std::max<std::uint32_t>(
                    2 * profile_.burstLen, 1));
        rec.icount = rng_.below(profile_.icountMean / 16 + 1);
    } else {
        rec.icount = profile_.icountMean +
                     rng_.below(profile_.icountMean + 1);
    }
    if (is_write) {
        rec.op = OpType::Write;
        rec.addr = pickWriteAddr();
        rec.data = lineContent(pickContentId());
        // Reservoir of written addresses for future reads (bounded).
        if (writtenAddrs_.size() < 65536) {
            writtenAddrs_.push_back(rec.addr);
        } else {
            writtenAddrs_[rng_.below(65536)] = rec.addr;
        }
        // Recency window for temporally local reads.
        if (recentWrites_.size() < 4096) {
            recentWrites_.push_back(rec.addr);
        } else {
            recentWrites_[recentCursor_] = rec.addr;
            recentCursor_ = (recentCursor_ + 1) % recentWrites_.size();
        }
    } else {
        rec.op = OpType::Read;
        // Miss fills exhibit temporal locality: mostly re-read what
        // was recently written back, with a uniform far tail.
        if (!recentWrites_.empty() &&
            rng_.chance(profile_.readRecency)) {
            rec.addr = recentWrites_[rng_.below(
                static_cast<std::uint32_t>(recentWrites_.size()))];
        } else {
            rec.addr = writtenAddrs_[rng_.below(
                static_cast<std::uint32_t>(writtenAddrs_.size()))];
        }
    }
    return true;
}

} // namespace esd
