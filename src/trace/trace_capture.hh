/**
 * @file
 * Trace capture: re-export any run's request stream to disk.
 *
 * TraceCaptureWriter encodes TraceRecords into any of the three
 * frontend formats (text, gzip-compressed text, binary v2);
 * CapturingSource tees an arbitrary TraceSource through a writer so
 * `esd_sim -capture-out=` records exactly the stream the simulator
 * consumed — replaying the file reproduces the run bit-identically
 * (tests/test_trace_frontend.cc pins stats-JSON byte identity).
 * convertTrace() is the esd_tracecvt engine: stream records from any
 * readable format into any writable one, constant memory.
 */

#ifndef ESD_TRACE_TRACE_CAPTURE_HH
#define ESD_TRACE_TRACE_CAPTURE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "common/config.hh"
#include "trace/trace.hh"

namespace esd
{

namespace detail
{

/** Push-based byte sink mirroring ByteStream. */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append @p n bytes; fatal on any write error. */
    virtual void write(const std::uint8_t *data, std::size_t n) = 0;

    /** Flush buffered state to the medium (gzip: finish the member).
     * Must be called exactly once, before destruction. */
    virtual void finish() = 0;

    const std::string &path() const { return path_; }

  protected:
    explicit ByteSink(std::string path) : path_(std::move(path)) {}

    std::string path_;
};

/** Plain file bytes. */
class FileByteSink : public ByteSink
{
  public:
    explicit FileByteSink(const std::string &path);
    ~FileByteSink() override;

    void write(const std::uint8_t *data, std::size_t n) override;
    void finish() override;

  private:
    std::FILE *f_ = nullptr;
};

/** Gzip-deflating wrapper (fixed compression window). */
class GzipByteSink : public ByteSink
{
  public:
    explicit GzipByteSink(std::unique_ptr<ByteSink> inner);
    ~GzipByteSink() override;

    void write(const std::uint8_t *data, std::size_t n) override;
    void finish() override;

  private:
    struct ZState;
    void pump(bool finishing);

    std::unique_ptr<ByteSink> inner_;
    std::unique_ptr<ZState> z_;
};

} // namespace detail

/**
 * Streaming trace encoder (`esd_sim -capture-out=`, esd_tracecvt).
 *
 * Format Auto means text. Gzip compresses the text encoding (the
 * frontend sniffs inside the inflated stream, so gzip'd binary also
 * replays — convertTrace can produce it by composing explicitly).
 * With cfg.linePayload false, write records are emitted address-only
 * and replay re-synthesizes content deterministically.
 */
class TraceCaptureWriter
{
  public:
    TraceCaptureWriter(const std::string &path, const TraceConfig &cfg);
    ~TraceCaptureWriter();

    void write(const TraceRecord &rec);

    /** Finalize the file (flush, gzip trailer). Idempotent; the
     * destructor calls it when forgotten. */
    void close();

    std::uint64_t count() const { return count_; }

  private:
    void writeText(const TraceRecord &rec);
    void writeBinary(const TraceRecord &rec);

    TraceConfig cfg_;
    std::unique_ptr<detail::ByteSink> out_;
    bool binary_ = false;
    bool closed_ = false;
    std::uint64_t count_ = 0;
};

/**
 * Tee: pulls from @p inner and mirrors every record into @p writer.
 * The pipeline demux and Simulator::run both consume through
 * nextBatch, so the tee forwards batches too — capture order is
 * exactly consumption order at any worker count.
 */
class CapturingSource : public TraceSource
{
  public:
    CapturingSource(TraceSource &inner, TraceCaptureWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    bool
    next(TraceRecord &rec) override
    {
        if (!inner_.next(rec))
            return false;
        writer_.write(rec);
        return true;
    }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t max) override
    {
        std::size_t n = inner_.nextBatch(out, max);
        for (std::size_t i = 0; i < n; ++i)
            writer_.write(out[i]);
        return n;
    }

    void reset() override { inner_.reset(); }

  private:
    TraceSource &inner_;
    TraceCaptureWriter &writer_;
};

/**
 * Stream @p inPath into @p outPath re-encoded as @p outFormat
 * (Auto = text). Constant memory at any trace length.
 * @return records converted.
 */
std::uint64_t convertTrace(const std::string &inPath,
                           const std::string &outPath,
                           TraceFormat outFormat, bool linePayload);

} // namespace esd

#endif // ESD_TRACE_TRACE_CAPTURE_HH
