/**
 * @file
 * Memory-level trace abstraction.
 *
 * A trace is the stream of requests the memory controller sees: dirty
 * LLC evictions (writes, with full 64 B payloads) and LLC miss fills
 * (reads), each annotated with the number of instructions the core
 * retired since the previous request (for the IPC model). This matches
 * the NVMain-style trace-driven evaluation of the paper's artifact.
 */

#ifndef ESD_TRACE_TRACE_HH
#define ESD_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace esd
{

/** One memory request. */
struct TraceRecord
{
    OpType op = OpType::Write;
    Addr addr = 0;

    /** Payload for writes; unused for reads. */
    CacheLine data;

    /** Instructions retired since the previous record. */
    std::uint32_t icount = 100;
};

/** Pull-based source of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false when the trace is exhausted.
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to @p max records into @p out; returns the number
     * produced (0 = exhausted). Consumers that drain whole batches —
     * the sharded-pipeline demux, Simulator::run — use this so
     * streaming sources pay one virtual call per buffer instead of per
     * record. The default forwards to next(), so batched and
     * record-at-a-time consumption see the identical record sequence.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /** Restart from the beginning when supported; default no-op. */
    virtual void reset() {}
};

/** An in-memory trace (tests, small experiments). */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;

    explicit VectorTrace(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {
    }

    void push(const TraceRecord &r) { records_.push_back(r); }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    std::size_t size() const { return records_.size(); }
    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace esd

#endif // ESD_TRACE_TRACE_HH
