#include "trace/trace_io.hh"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace esd
{

namespace
{

constexpr char kMagic[4] = {'E', 'S', 'D', 'T'};

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

TextTraceWriter::TextTraceWriter(const std::string &path) : out_(path)
{
    if (!out_)
        esd_fatal("cannot open trace file '%s' for writing", path.c_str());
    out_ << "# ESD text trace: <W|R> <hex addr> [<128 hex data>] <icount>\n";
}

void
TextTraceWriter::write(const TraceRecord &rec)
{
    static const char *hex = "0123456789abcdef";
    out_ << (rec.op == OpType::Write ? 'W' : 'R') << ' ' << std::hex
         << rec.addr << std::dec << ' ';
    if (rec.op == OpType::Write) {
        std::string h;
        h.reserve(kLineSize * 2);
        for (std::size_t i = 0; i < kLineSize; ++i) {
            h.push_back(hex[rec.data[i] >> 4]);
            h.push_back(hex[rec.data[i] & 0xf]);
        }
        out_ << h << ' ';
    }
    out_ << rec.icount << '\n';
    ++count_;
}

TextTraceReader::TextTraceReader(const std::string &path)
    : path_(path), in_(path)
{
    if (!in_)
        esd_fatal("cannot open trace file '%s'", path.c_str());
}

void
TextTraceReader::reset()
{
    in_.close();
    in_.clear();
    in_.open(path_);
    lineNo_ = 0;
}

bool
TextTraceReader::next(TraceRecord &rec)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++lineNo_;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        std::string op, addr_s;
        if (!(is >> op >> addr_s))
            esd_fatal("%s:%llu: malformed record", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_));
        if (op == "W" || op == "w") {
            rec.op = OpType::Write;
        } else if (op == "R" || op == "r") {
            rec.op = OpType::Read;
        } else {
            esd_fatal("%s:%llu: bad op '%s'", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_), op.c_str());
        }
        // std::stoull throws (uncaught -> abort) on junk; fail with a
        // diagnostic that names the file and line instead.
        try {
            std::size_t consumed = 0;
            rec.addr = std::stoull(addr_s, &consumed, 16);
            if (consumed != addr_s.size())
                throw std::invalid_argument(addr_s);
        } catch (const std::exception &) {
            esd_fatal("%s:%llu: bad hex address '%s'", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_),
                      addr_s.c_str());
        }
        if (rec.op == OpType::Write) {
            std::string data_s;
            if (!(is >> data_s) || data_s.size() != kLineSize * 2)
                esd_fatal("%s:%llu: write record needs %zu hex chars",
                          path_.c_str(),
                          static_cast<unsigned long long>(lineNo_),
                          kLineSize * 2);
            for (std::size_t i = 0; i < kLineSize; ++i) {
                int hi = hexVal(data_s[i * 2]);
                int lo = hexVal(data_s[i * 2 + 1]);
                if (hi < 0 || lo < 0)
                    esd_fatal("%s:%llu: bad hex data", path_.c_str(),
                              static_cast<unsigned long long>(lineNo_));
                rec.data[i] = static_cast<std::uint8_t>((hi << 4) | lo);
            }
        } else {
            rec.data = CacheLine{};
        }
        std::uint64_t icount = 0;
        if (!(is >> icount))
            esd_fatal("%s:%llu: missing icount", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_));
        rec.icount = static_cast<std::uint32_t>(icount);
        return true;
    }
    return false;
}

BinaryTraceWriter::BinaryTraceWriter(const std::string &path)
    : out_(path, std::ios::binary)
{
    if (!out_)
        esd_fatal("cannot open trace file '%s' for writing", path.c_str());
    out_.write(kMagic, 4);
}

void
BinaryTraceWriter::write(const TraceRecord &rec)
{
    std::uint8_t op = rec.op == OpType::Write ? 1 : 0;
    out_.write(reinterpret_cast<const char *>(&op), 1);
    out_.write(reinterpret_cast<const char *>(&rec.addr), 8);
    out_.write(reinterpret_cast<const char *>(&rec.icount), 4);
    if (rec.op == OpType::Write)
        out_.write(reinterpret_cast<const char *>(rec.data.data()),
                   kLineSize);
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        esd_fatal("cannot open trace file '%s'", path.c_str());
    readHeader();
}

void
BinaryTraceReader::readHeader()
{
    char magic[4];
    in_.read(magic, 4);
    if (in_.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0)
        esd_fatal("'%s' is not an ESD binary trace", path_.c_str());
}

void
BinaryTraceReader::reset()
{
    in_.close();
    in_.clear();
    in_.open(path_, std::ios::binary);
    readHeader();
}

bool
BinaryTraceReader::next(TraceRecord &rec)
{
    std::uint8_t op;
    if (!in_.read(reinterpret_cast<char *>(&op), 1))
        return false;
    if (!in_.read(reinterpret_cast<char *>(&rec.addr), 8) ||
        !in_.read(reinterpret_cast<char *>(&rec.icount), 4)) {
        esd_fatal("'%s': truncated record", path_.c_str());
    }
    if (op > 1)
        esd_fatal("'%s': bad op byte %u (corrupt trace?)", path_.c_str(),
                  static_cast<unsigned>(op));
    rec.op = op ? OpType::Write : OpType::Read;
    if (rec.op == OpType::Write) {
        if (!in_.read(reinterpret_cast<char *>(rec.data.data()), kLineSize))
            esd_fatal("'%s': truncated write payload", path_.c_str());
    } else {
        rec.data = CacheLine{};
    }
    return true;
}

} // namespace esd
