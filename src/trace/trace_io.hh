/**
 * @file
 * Trace (de)serialisation so users can bring their own traces, per the
 * artifact appendix ("users can generate other corresponding traces
 * ... kept in the same regulation format").
 *
 * Text format, one record per line:
 *
 *     <W|R> <hex addr> <128 hex chars of line data, writes only> <icount>
 *
 * Lines starting with '#' are comments. A compact binary format
 * (magic "ESDT", little-endian records) is also provided for bulk use.
 */

#ifndef ESD_TRACE_TRACE_IO_HH
#define ESD_TRACE_TRACE_IO_HH

#include <fstream>
#include <string>

#include "trace/trace.hh"

namespace esd
{

/** Serialises records to a text trace file. */
class TextTraceWriter
{
  public:
    explicit TextTraceWriter(const std::string &path);

    void write(const TraceRecord &rec);

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
};

/** TraceSource reading the text format. */
class TextTraceReader : public TraceSource
{
  public:
    explicit TextTraceReader(const std::string &path);

    bool next(TraceRecord &rec) override;
    void reset() override;

  private:
    std::string path_;
    std::ifstream in_;
    std::uint64_t lineNo_ = 0;
};

/** Serialises records to the binary format. */
class BinaryTraceWriter
{
  public:
    explicit BinaryTraceWriter(const std::string &path);

    void write(const TraceRecord &rec);

  private:
    std::ofstream out_;
};

/** TraceSource reading the binary format. */
class BinaryTraceReader : public TraceSource
{
  public:
    explicit BinaryTraceReader(const std::string &path);

    bool next(TraceRecord &rec) override;
    void reset() override;

  private:
    void readHeader();

    std::string path_;
    std::ifstream in_;
};

} // namespace esd

#endif // ESD_TRACE_TRACE_IO_HH
