/**
 * @file
 * Synthetic application workloads.
 *
 * The paper evaluates 12 SPEC CPU 2017 and 8 PARSEC 2.1 applications
 * whose traces are partly proprietary; this module substitutes
 * parameterised generators calibrated to the paper's published
 * workload characterisation:
 *   - per-app duplicate rate (Fig. 1: 33.1%..99.9%, average 62.9%),
 *   - zero-line domination for deepsjeng/roms,
 *   - content locality (Fig. 3: a Zipf-skewed reference distribution
 *     where a tiny fraction of unique lines covers ~42.7% of the
 *     pre-dedup volume),
 *   - read/write mix and memory intensity (instructions per request).
 *
 * Generation is fully deterministic from the profile's seed.
 */

#ifndef ESD_TRACE_WORKLOADS_HH
#define ESD_TRACE_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/trace.hh"
#include "trace/zipf.hh"

namespace esd
{

/** Tunable characteristics of one application. */
struct AppProfile
{
    std::string name;

    /** Which suite the app belongs to (reporting only). */
    enum class Suite { SpecCpu2017, Parsec } suite = Suite::SpecCpu2017;

    /** Target fraction of written lines whose content was written
     * before (Fig. 1). */
    double dupRate = 0.6;

    /** Among duplicate writes, fraction that are the all-zero line. */
    double zeroFrac = 0.2;

    /** Zipf skew of the non-zero duplicate pool: high skew = strong
     * content locality (few lines, huge reference counts). */
    double zipfS = 1.1;

    /** Number of distinct hot lines duplicates are drawn from. */
    std::uint64_t hotPoolLines = 16 * 1024;

    /** Fraction of memory requests that are writes (LLC evictions). */
    double writeFrac = 0.5;

    /** Logical working-set size in lines. */
    std::uint64_t workingSetLines = 1ull << 18;

    /** Mean instructions retired between memory requests (memory
     * intensity; low = memory bound). */
    std::uint32_t icountMean = 150;

    /** Probability that the next write continues a sequential run. */
    double seqProb = 0.5;

    /** Probability of entering a request burst (write-back storms:
     * clustered evictions with few instructions between them), the
     * main source of queueing and tail latency. */
    double burstProb = 0.25;

    /** Mean burst length in requests. */
    std::uint32_t burstLen = 64;

    /** Probability a read targets a recently written address
     * (temporal locality of miss fills). */
    double readRecency = 0.7;

    /** Generator seed (combined with the global seed). */
    std::uint64_t seed = 1;
};

/** The 20 paper applications with calibrated profiles. */
const std::vector<AppProfile> &paperApps();

/** Look up a paper app by name; fatal when unknown. */
const AppProfile &findApp(const std::string &name);

/** Look up a paper app by name; nullptr when unknown — the validating
 * form CLIs use to reject bad -apps= lists up front. */
const AppProfile *tryFindApp(const std::string &name);

/**
 * A TraceSource synthesising an endless request stream for a profile.
 */
class SyntheticWorkload : public TraceSource
{
  public:
    explicit SyntheticWorkload(const AppProfile &profile,
                               std::uint64_t global_seed = 1);

    bool next(TraceRecord &rec) override;

    void reset() override;

    /** Deterministic content of unique line @p id (id 0 = zero line). */
    CacheLine lineContent(std::uint64_t id) const;

    const AppProfile &profile() const { return profile_; }

    /** Number of distinct line ids handed out so far. */
    std::uint64_t uniqueIdsIssued() const { return nextFreshId_; }

  private:
    Addr pickWriteAddr();
    std::uint64_t pickContentId();
    void touch(std::uint64_t id);

    AppProfile profile_;
    std::uint64_t globalSeed_;
    Pcg32 rng_;
    ZipfSampler zipf_;
    std::uint64_t nextFreshId_;
    Addr lastWriteAddr_ = 0;
    std::uint32_t burstRemaining_ = 0;
    std::vector<Addr> writtenAddrs_;

    /** Circular buffer of the most recent writes (read locality). */
    std::vector<Addr> recentWrites_;
    std::size_t recentCursor_ = 0;

    /** Hot-pool ids that have been written at least once: duplicate
     * draws resolve against these so the measured duplicate rate
     * tracks the profile. */
    std::vector<std::uint64_t> touched_;
    std::vector<bool> isTouched_;
};

} // namespace esd

#endif // ESD_TRACE_WORKLOADS_HH
