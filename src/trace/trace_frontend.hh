/**
 * @file
 * Streaming real-trace frontend.
 *
 * TraceFrontend turns an on-disk memory trace into a TraceSource
 * without ever materializing the trace in RAM: bytes are pulled
 * through a bounded chunk buffer, decoded record by record, and at
 * most `[trace] read_ahead` decoded records are buffered at any time,
 * so memory stays constant at any trace length.
 *
 * Three on-disk formats are accepted, auto-detected from the first
 * bytes of the file (never from the extension):
 *
 *   - **text** — one record per line, `#` comments. Two token orders
 *     are understood: the repo's canonical
 *     `<W|R> <hex addr> [<128 hex data>] <icount>` and the
 *     Ramulator2-style `<hex addr> <W|R> [<128 hex data>] [<icount>]`
 *     (icount defaults to 100 when absent). The data token is optional
 *     for writes in both orders: address-only traces are valid.
 *   - **gzip** — a zlib/gzip stream (magic 0x1f 0x8b) inflated on the
 *     fly through a fixed 64 KB window; the inflated content is
 *     sniffed again, so both gzip'd text and gzip'd binary work.
 *   - **binary** — `ESDT` magic. Version 2 carries a versioned header
 *     (version byte, flags byte with the line-payload bit, reserved
 *     u16) and length-prefixed records
 *     `[u8 len][u8 op][u64 addr][u32 icount][64 B payload?]`; the
 *     legacy headerless v1 record stream written by BinaryTraceWriter
 *     is still decoded (its first post-magic byte is an op, 0/1, which
 *     no v2 version byte can be).
 *
 * Write records that carry no payload get deterministic synthesized
 * content — a splitmix64 stream keyed by (address, global write
 * index) — so address-only traces replay reproducibly as an
 * adversarial low-duplication stream.
 *
 * Every malformed input dies through esd_fatal with the file (and for
 * text, the line) named: truncation, bad magic, version skew,
 * oversized length prefixes, non-hex payloads, over-long lines, and
 * mid-stream gzip corruption are all clean exits, never crashes
 * (tests/test_trace_fuzz.cc holds that wall up).
 */

#ifndef ESD_TRACE_TRACE_FRONTEND_HH
#define ESD_TRACE_TRACE_FRONTEND_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "trace/trace.hh"

namespace esd
{

/** Longest accepted text-trace line (op + addr + payload + icount
 * with slack); longer lines are a format error, not a buffer grower. */
constexpr std::size_t kMaxTraceLine = 512;

/** Binary format limits (v2). */
constexpr std::uint8_t kBinaryTraceVersion = 2;
constexpr std::size_t kBinaryRecordNoPayload = 13;  ///< op+addr+icount
constexpr std::size_t kBinaryRecordPayload =
    kBinaryRecordNoPayload + kLineSize;

/** Sniff a file's format from its first bytes (never Auto); fatal
 * when the file cannot be opened. TraceFormat itself lives in
 * common/config.hh; its name helpers in common/config_io.hh. */
TraceFormat detectTraceFormat(const std::string &path);

/**
 * Deterministic line content for a payload-less write record: word w
 * is splitmix64(addr, windex, w). Pure function — replays of the same
 * trace synthesize the same bytes at any worker count.
 */
CacheLine synthesizeLineContent(Addr addr, std::uint64_t windex);

namespace detail
{

/** Bounded pull-based byte source with a small pushback buffer (the
 * format sniffer peeks, then ungets). */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /** Read up to @p n bytes; returns bytes produced (0 = clean EOF).
     * Corrupt underlying streams die via esd_fatal. */
    std::size_t read(std::uint8_t *out, std::size_t n);

    /** Read exactly @p n bytes or nothing: returns false on clean EOF
     * at a record boundary; a partial tail is a fatal truncation named
     * @p what. */
    bool readExact(std::uint8_t *out, std::size_t n, const char *what);

    /** Push @p n bytes back; the next read returns them first. */
    void unread(const std::uint8_t *data, std::size_t n);

    const std::string &path() const { return path_; }

  protected:
    explicit ByteStream(std::string path) : path_(std::move(path)) {}

    /** Produce up to @p n fresh bytes from the underlying medium. */
    virtual std::size_t fill(std::uint8_t *out, std::size_t n) = 0;

    std::string path_;

  private:
    std::vector<std::uint8_t> pushback_;
};

/** Plain file bytes. */
class FileByteStream : public ByteStream
{
  public:
    explicit FileByteStream(const std::string &path);
    ~FileByteStream() override;

  protected:
    std::size_t fill(std::uint8_t *out, std::size_t n) override;

  private:
    std::FILE *f_ = nullptr;
};

/** Gzip-inflating wrapper: fixed 64 KB compressed-side window, fatal
 * on any zlib error or a stream that ends mid-member. */
class GzipByteStream : public ByteStream
{
  public:
    explicit GzipByteStream(std::unique_ptr<ByteStream> inner);
    ~GzipByteStream() override;

  protected:
    std::size_t fill(std::uint8_t *out, std::size_t n) override;

  private:
    struct ZState;
    std::unique_ptr<ByteStream> inner_;
    std::unique_ptr<ZState> z_;
};

} // namespace detail

/**
 * The streaming trace frontend (`esd_sim -trace-in=`).
 *
 * Decodes records lazily through a bounded read-ahead buffer;
 * TraceSource::nextBatch is overridden to hand the pipeline demux a
 * whole buffered batch per virtual call.
 */
class TraceFrontend : public TraceSource
{
  public:
    /**
     * Open @p path, sniff its format, and validate the header.
     * @param cfg read_ahead bounds the decoded-record buffer;
     *            line_payload is ignored on input (the stream itself
     *            says whether payloads are present).
     */
    TraceFrontend(const std::string &path, const TraceConfig &cfg);
    ~TraceFrontend() override;

    bool next(TraceRecord &rec) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t max) override;
    void reset() override;

    /** The sniffed on-disk format. */
    TraceFormat format() const { return format_; }

    /** Records decoded so far (monotonic; survives reset()). */
    std::uint64_t recordsDecoded() const { return decoded_; }

    /** High-water mark of the decoded-record buffer — the constant-
     * memory claim, observable: never exceeds [trace] read_ahead. */
    std::size_t peakBufferedRecords() const { return peakBuffered_; }

  private:
    void open();
    void refill();
    bool decodeOne(TraceRecord &rec);
    bool decodeText(TraceRecord &rec);
    bool decodeBinary(TraceRecord &rec);
    bool readLine(std::string &line);

    std::string path_;
    TraceConfig cfg_;
    TraceFormat format_ = TraceFormat::Text;
    std::unique_ptr<detail::ByteStream> in_;

    /** True when the (possibly inflated) record stream is binary. */
    bool binary_ = false;

    /** Binary sub-state: v2 header fields (v1 has none). */
    std::uint8_t binVersion_ = 0;
    bool binPayloads_ = true;

    /** Bounded decoded-record buffer (FIFO). */
    std::vector<TraceRecord> buffer_;
    std::size_t bufPos_ = 0;
    std::size_t peakBuffered_ = 0;

    std::uint64_t lineNo_ = 0;    ///< text diagnostics
    std::uint64_t decoded_ = 0;
    std::uint64_t writesSeen_ = 0;  ///< synthesized-content key
    bool eof_ = false;
};

} // namespace esd

#endif // ESD_TRACE_TRACE_FRONTEND_HH
