#include "trace/trace_frontend.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include <zlib.h>

#include "common/logging.hh"

namespace esd
{

namespace
{

constexpr char kMagic[4] = {'E', 'S', 'D', 'T'};

/** Compressed-side window the gzip inflater reads through. */
constexpr std::size_t kGzipChunk = 64 * 1024;

/** Raw-byte window the text line scanner reads through. */
constexpr std::size_t kTextChunk = 16 * 1024;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint32_t
loadLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

bool
isOpToken(const std::string &tok)
{
    return tok.size() == 1 &&
           (tok[0] == 'W' || tok[0] == 'w' || tok[0] == 'R' ||
            tok[0] == 'r');
}

} // namespace

TraceFormat
detectTraceFormat(const std::string &path)
{
    detail::FileByteStream in(path);
    std::uint8_t head[4];
    std::size_t got = in.read(head, 4);
    if (got >= 2 && head[0] == 0x1f && head[1] == 0x8b)
        return TraceFormat::Gzip;
    if (got == 4 && std::memcmp(head, kMagic, 4) == 0)
        return TraceFormat::Binary;
    return TraceFormat::Text;
}

CacheLine
synthesizeLineContent(Addr addr, std::uint64_t windex)
{
    CacheLine line;
    std::uint64_t state = splitmix64(splitmix64(addr) ^ windex);
    for (std::size_t w = 0; w < kWordsPerLine; ++w) {
        state = splitmix64(state);
        line.setWord(w, state);
    }
    return line;
}

namespace detail
{

std::size_t
ByteStream::read(std::uint8_t *out, std::size_t n)
{
    std::size_t served = 0;
    if (!pushback_.empty()) {
        served = std::min(n, pushback_.size());
        std::memcpy(out, pushback_.data(), served);
        pushback_.erase(pushback_.begin(),
                        pushback_.begin() + static_cast<long>(served));
    }
    while (served < n) {
        std::size_t got = fill(out + served, n - served);
        if (got == 0)
            break;
        served += got;
    }
    return served;
}

bool
ByteStream::readExact(std::uint8_t *out, std::size_t n, const char *what)
{
    std::size_t got = read(out, n);
    if (got == 0)
        return false;
    if (got < n)
        esd_fatal("'%s': truncated %s (wanted %zu bytes, got %zu)",
                  path_.c_str(), what, n, got);
    return true;
}

void
ByteStream::unread(const std::uint8_t *data, std::size_t n)
{
    pushback_.insert(pushback_.begin(), data, data + n);
}

FileByteStream::FileByteStream(const std::string &path) : ByteStream(path)
{
    f_ = std::fopen(path.c_str(), "rb");
    if (!f_)
        esd_fatal("cannot open trace file '%s'", path.c_str());
}

FileByteStream::~FileByteStream()
{
    if (f_)
        std::fclose(f_);
}

std::size_t
FileByteStream::fill(std::uint8_t *out, std::size_t n)
{
    std::size_t got = std::fread(out, 1, n, f_);
    if (got < n && std::ferror(f_))
        esd_fatal("read error on trace file '%s'", path_.c_str());
    return got;
}

struct GzipByteStream::ZState
{
    z_stream strm{};
    std::uint8_t in[kGzipChunk];
    bool innerEof = false;
    bool finished = false;
};

GzipByteStream::GzipByteStream(std::unique_ptr<ByteStream> inner)
    : ByteStream(inner->path()), inner_(std::move(inner)),
      z_(std::make_unique<ZState>())
{
    // 15 window bits + 16 = gzip wrapper only (the sniffer saw the
    // 0x1f 0x8b gzip magic before routing here).
    if (inflateInit2(&z_->strm, 15 + 16) != Z_OK)
        esd_fatal("cannot initialize gzip inflater for '%s'",
                  path_.c_str());
}

GzipByteStream::~GzipByteStream()
{
    inflateEnd(&z_->strm);
}

std::size_t
GzipByteStream::fill(std::uint8_t *out, std::size_t n)
{
    if (z_->finished)
        return 0;
    z_stream &s = z_->strm;
    s.next_out = out;
    s.avail_out = static_cast<uInt>(n);
    while (s.avail_out > 0) {
        if (s.avail_in == 0 && !z_->innerEof) {
            std::size_t got = inner_->read(z_->in, kGzipChunk);
            s.next_in = z_->in;
            s.avail_in = static_cast<uInt>(got);
            if (got == 0)
                z_->innerEof = true;
        }
        uInt before = s.avail_out;
        int rc = inflate(&s, Z_NO_FLUSH);
        if (rc == Z_STREAM_END) {
            // A concatenated member would start here; single-member
            // streams are what the capture side writes. Trailing
            // garbage after the member is a corruption signal.
            if (s.avail_in > 0 || inner_->read(z_->in, 1) > 0)
                esd_fatal("'%s': trailing bytes after gzip stream",
                          path_.c_str());
            z_->finished = true;
            break;
        }
        if (rc != Z_OK && rc != Z_BUF_ERROR)
            esd_fatal("'%s': corrupt gzip stream (%s)", path_.c_str(),
                      s.msg ? s.msg : zError(rc));
        if (s.avail_out == before && z_->innerEof)
            esd_fatal("'%s': gzip stream ends mid-member (truncated?)",
                      path_.c_str());
    }
    return n - s.avail_out;
}

} // namespace detail

TraceFrontend::TraceFrontend(const std::string &path,
                             const TraceConfig &cfg)
    : path_(path), cfg_(cfg)
{
    if (cfg_.readAhead == 0)
        cfg_.readAhead = 1;
    open();
}

TraceFrontend::~TraceFrontend() = default;

void
TraceFrontend::open()
{
    in_ = std::make_unique<detail::FileByteStream>(path_);
    format_ = TraceFormat::Text;

    std::uint8_t head[2];
    std::size_t got = in_->read(head, 2);
    if (got == 2 && head[0] == 0x1f && head[1] == 0x8b) {
        in_->unread(head, 2);
        in_ = std::make_unique<detail::GzipByteStream>(std::move(in_));
        format_ = TraceFormat::Gzip;
    } else {
        in_->unread(head, got);
    }

    // Sniff the (possibly inflated) record stream for the binary magic.
    std::uint8_t magic[4];
    got = in_->read(magic, 4);
    binary_ = got == 4 && std::memcmp(magic, kMagic, 4) == 0;
    if (!binary_) {
        in_->unread(magic, got);
        if (format_ == TraceFormat::Text)
            format_ = TraceFormat::Text;
        return;
    }
    if (format_ != TraceFormat::Gzip)
        format_ = TraceFormat::Binary;

    // Version byte. Legacy v1 streams have no header: the byte after
    // the magic is the first record's op (0 or 1), which no versioned
    // header ever uses as its version.
    std::uint8_t ver;
    got = in_->read(&ver, 1);
    if (got == 0) {
        binVersion_ = 1;  // empty legacy trace: magic then EOF
        return;
    }
    if (ver <= 1) {
        in_->unread(&ver, 1);
        binVersion_ = 1;
        return;
    }
    if (ver > kBinaryTraceVersion)
        esd_fatal("'%s': unsupported trace version %u (this build reads "
                  "<= %u)", path_.c_str(), static_cast<unsigned>(ver),
                  static_cast<unsigned>(kBinaryTraceVersion));
    binVersion_ = ver;
    std::uint8_t rest[3];  // flags u8 + reserved u16
    if (!in_->readExact(rest, 3, "binary trace header"))
        esd_fatal("'%s': truncated binary trace header", path_.c_str());
    if (rest[0] & ~1u)
        esd_fatal("'%s': unknown trace flags 0x%02x", path_.c_str(),
                  static_cast<unsigned>(rest[0]));
    if (rest[1] != 0 || rest[2] != 0)
        esd_fatal("'%s': corrupt binary trace header (reserved bytes "
                  "set)", path_.c_str());
    binPayloads_ = rest[0] & 1;
}

bool
TraceFrontend::readLine(std::string &line)
{
    line.clear();
    std::uint8_t c;
    while (true) {
        if (in_->read(&c, 1) == 0)
            return !line.empty();
        if (c == '\n')
            return true;
        line.push_back(static_cast<char>(c));
        if (line.size() > kMaxTraceLine)
            esd_fatal("%s:%llu: line exceeds %zu bytes", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_ + 1),
                      kMaxTraceLine);
    }
}

bool
TraceFrontend::decodeText(TraceRecord &rec)
{
    std::string line;
    while (readLine(line)) {
        ++lineNo_;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

        // Comments and blanks: decided before tokenization so a long
        // banner comment is never mistaken for an over-long record.
        std::size_t first = 0;
        while (first < line.size() &&
               (line[first] == ' ' || line[first] == '\t'))
            ++first;
        if (first >= line.size() || line[first] == '#')
            continue;

        // Tokenize on whitespace; at most four fields are legal.
        std::string toks[5];
        std::size_t ntok = 0;
        std::size_t i = first;
        while (i < line.size()) {
            while (i < line.size() &&
                   (line[i] == ' ' || line[i] == '\t'))
                ++i;
            if (i >= line.size())
                break;
            std::size_t start = i;
            while (i < line.size() && line[i] != ' ' && line[i] != '\t')
                ++i;
            if (ntok == 5)
                esd_fatal("%s:%llu: trailing junk on record",
                          path_.c_str(),
                          static_cast<unsigned long long>(lineNo_));
            toks[ntok++] = line.substr(start, i - start);
        }
        if (ntok > 4)
            esd_fatal("%s:%llu: trailing junk on record", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_));

        // Two token orders: canonical `<op> <addr> ...` and
        // Ramulator-style `<addr> <op> ...`.
        std::string opTok, addrTok;
        if (isOpToken(toks[0])) {
            if (ntok < 2)
                esd_fatal("%s:%llu: malformed record", path_.c_str(),
                          static_cast<unsigned long long>(lineNo_));
            opTok = toks[0];
            addrTok = toks[1];
        } else {
            if (ntok < 2)
                esd_fatal("%s:%llu: malformed record", path_.c_str(),
                          static_cast<unsigned long long>(lineNo_));
            if (!isOpToken(toks[1]))
                esd_fatal("%s:%llu: bad op '%s'", path_.c_str(),
                          static_cast<unsigned long long>(lineNo_),
                          toks[1].c_str());
            addrTok = toks[0];
            opTok = toks[1];
        }
        rec.op = (opTok[0] == 'W' || opTok[0] == 'w') ? OpType::Write
                                                      : OpType::Read;
        try {
            std::size_t consumed = 0;
            rec.addr = std::stoull(addrTok, &consumed, 16);
            if (consumed != addrTok.size())
                throw std::invalid_argument(addrTok);
        } catch (const std::exception &) {
            esd_fatal("%s:%llu: bad hex address '%s'", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_),
                      addrTok.c_str());
        }

        // Remaining tokens: optional 128-hex-char payload, then an
        // optional decimal icount. A long token that is not exactly a
        // full line of hex is a malformed payload, not an icount.
        std::size_t r = 2;
        bool havePayload = false;
        if (r < ntok && toks[r].size() > 16) {
            const std::string &d = toks[r];
            if (d.size() != kLineSize * 2)
                esd_fatal("%s:%llu: write payload must be %zu hex chars "
                          "(got %zu)", path_.c_str(),
                          static_cast<unsigned long long>(lineNo_),
                          kLineSize * 2, d.size());
            for (std::size_t b = 0; b < kLineSize; ++b) {
                int hi = hexVal(d[b * 2]);
                int lo = hexVal(d[b * 2 + 1]);
                if (hi < 0 || lo < 0)
                    esd_fatal("%s:%llu: bad hex data", path_.c_str(),
                              static_cast<unsigned long long>(lineNo_));
                rec.data[b] =
                    static_cast<std::uint8_t>((hi << 4) | lo);
            }
            havePayload = true;
            ++r;
        }
        rec.icount = 100;
        if (r < ntok) {
            const std::string &ic = toks[r];
            std::uint64_t v = 0;
            try {
                std::size_t consumed = 0;
                v = std::stoull(ic, &consumed, 10);
                if (consumed != ic.size() || v > 0xffffffffull)
                    throw std::invalid_argument(ic);
            } catch (const std::exception &) {
                esd_fatal("%s:%llu: bad icount '%s'", path_.c_str(),
                          static_cast<unsigned long long>(lineNo_),
                          ic.c_str());
            }
            rec.icount = static_cast<std::uint32_t>(v);
            ++r;
        }
        if (r < ntok)
            esd_fatal("%s:%llu: trailing junk on record", path_.c_str(),
                      static_cast<unsigned long long>(lineNo_));

        if (rec.op == OpType::Write) {
            if (!havePayload)
                rec.data = synthesizeLineContent(rec.addr, writesSeen_);
            ++writesSeen_;
        } else {
            rec.data = CacheLine{};
        }
        return true;
    }
    return false;
}

bool
TraceFrontend::decodeBinary(TraceRecord &rec)
{
    if (binVersion_ <= 1) {
        // Legacy headerless stream: raw BinaryTraceWriter records.
        std::uint8_t op;
        if (!in_->readExact(&op, 1, "record"))
            return false;
        if (op > 1)
            esd_fatal("'%s': bad op byte %u (corrupt trace?)",
                      path_.c_str(), static_cast<unsigned>(op));
        std::uint8_t fixed[12];
        if (!in_->readExact(fixed, 12, "record"))
            esd_fatal("'%s': truncated record", path_.c_str());
        rec.op = op ? OpType::Write : OpType::Read;
        rec.addr = loadLe64(fixed);
        rec.icount = loadLe32(fixed + 8);
        if (rec.op == OpType::Write) {
            if (!in_->readExact(rec.data.data(), kLineSize,
                                "write payload"))
                esd_fatal("'%s': truncated write payload",
                          path_.c_str());
            ++writesSeen_;
        } else {
            rec.data = CacheLine{};
        }
        return true;
    }

    // v2: length-prefixed records.
    std::uint8_t len;
    if (!in_->readExact(&len, 1, "record"))
        return false;
    if (len != kBinaryRecordNoPayload && len != kBinaryRecordPayload)
        esd_fatal("'%s': bad record length %u (expected %zu or %zu)",
                  path_.c_str(), static_cast<unsigned>(len),
                  kBinaryRecordNoPayload, kBinaryRecordPayload);
    std::uint8_t body[kBinaryRecordPayload];
    if (!in_->readExact(body, len, "record"))
        esd_fatal("'%s': truncated record", path_.c_str());
    if (body[0] > 1)
        esd_fatal("'%s': bad op byte %u (corrupt trace?)", path_.c_str(),
                  static_cast<unsigned>(body[0]));
    rec.op = body[0] ? OpType::Write : OpType::Read;
    rec.addr = loadLe64(body + 1);
    rec.icount = loadLe32(body + 9);
    if (rec.op == OpType::Write) {
        if (len == kBinaryRecordPayload) {
            rec.data = CacheLine(body + kBinaryRecordNoPayload);
        } else {
            rec.data = synthesizeLineContent(rec.addr, writesSeen_);
        }
        ++writesSeen_;
    } else {
        rec.data = CacheLine{};
    }
    return true;
}

bool
TraceFrontend::decodeOne(TraceRecord &rec)
{
    return binary_ ? decodeBinary(rec) : decodeText(rec);
}

void
TraceFrontend::refill()
{
    buffer_.clear();
    bufPos_ = 0;
    if (eof_)
        return;
    TraceRecord rec;
    while (buffer_.size() < cfg_.readAhead && decodeOne(rec))
        buffer_.push_back(rec);
    if (buffer_.size() < cfg_.readAhead)
        eof_ = true;
    decoded_ += buffer_.size();
    peakBuffered_ = std::max(peakBuffered_, buffer_.size());
}

bool
TraceFrontend::next(TraceRecord &rec)
{
    if (bufPos_ >= buffer_.size()) {
        refill();
        if (buffer_.empty())
            return false;
    }
    rec = buffer_[bufPos_++];
    return true;
}

std::size_t
TraceFrontend::nextBatch(TraceRecord *out, std::size_t max)
{
    if (bufPos_ >= buffer_.size()) {
        refill();
        if (buffer_.empty())
            return 0;
    }
    std::size_t n = std::min(max, buffer_.size() - bufPos_);
    std::copy(buffer_.begin() + static_cast<long>(bufPos_),
              buffer_.begin() + static_cast<long>(bufPos_ + n), out);
    bufPos_ += n;
    return n;
}

void
TraceFrontend::reset()
{
    buffer_.clear();
    bufPos_ = 0;
    lineNo_ = 0;
    writesSeen_ = 0;
    eof_ = false;
    binary_ = false;
    binVersion_ = 0;
    binPayloads_ = true;
    open();
}

} // namespace esd
