/**
 * @file
 * Zipf-distributed sampling over a finite population — the engine
 * behind the content locality of the synthetic workloads (Fig. 3:
 * a tiny fraction of unique lines receives most of the references).
 *
 * Uses an exact inverse-CDF over a precomputed cumulative table, so
 * the distribution is textbook Zipf(s) rather than an approximation.
 */

#ifndef ESD_TRACE_ZIPF_HH
#define ESD_TRACE_ZIPF_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace esd
{

/** Draws ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s. */
class ZipfSampler
{
  public:
    /**
     * @param n population size
     * @param s skew exponent; s = 0 degenerates to uniform
     */
    ZipfSampler(std::uint64_t n, double s)
    {
        esd_assert(n > 0, "zipf population must be positive");
        cdf_.reserve(n);
        double acc = 0;
        for (std::uint64_t k = 0; k < n; ++k) {
            acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
            cdf_.push_back(acc);
        }
        total_ = acc;
    }

    /** Draw one rank using @p rng. */
    std::uint64_t
    sample(Pcg32 &rng) const
    {
        double u = rng.uniform() * total_;
        // Binary search for the first cdf entry >= u.
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Exact probability of rank @p k. */
    double
    probability(std::uint64_t k) const
    {
        double prev = (k == 0) ? 0.0 : cdf_[k - 1];
        return (cdf_[k] - prev) / total_;
    }

    std::uint64_t population() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
    double total_ = 0;
};

} // namespace esd

#endif // ESD_TRACE_ZIPF_HH
