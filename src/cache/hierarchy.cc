#include "cache/hierarchy.hh"

namespace esd
{

void
CacheHierarchy::registerStats(StatRegistry &reg) const
{
    l1_.registerStats(reg, "cache.l1");
    l2_.registerStats(reg, "cache.l2");
    l3_.registerStats(reg, "cache.l3");
}

CacheHierarchy::CacheHierarchy(const CacheConfig &cfg)
    : cfg_(cfg),
      l1_("L1", cfg.l1Size, cfg.l1Assoc),
      l2_("L2", cfg.l2Size, cfg.l2Assoc),
      l3_("L3", cfg.l3Size, cfg.l3Assoc)
{
}

void
CacheHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
}

HierarchyResult
CacheHierarchy::access(Addr addr, bool is_write, const CacheLine &data,
                       const CacheLine &fill)
{
    addr = lineAlign(addr);
    HierarchyResult res;
    res.cacheCycles = cfg_.l1Latency;

    // L1.
    if (l1_.access(addr, is_write, data, &res.data)) {
        res.hitLevel = 1;
        return res;
    }

    // L2.
    res.cacheCycles += cfg_.l2Latency;
    CacheLine line;
    bool from_l2 = l2_.access(addr, false, line, &line);
    if (!from_l2) {
        // L3.
        res.cacheCycles += cfg_.l3Latency;
        bool from_l3 = l3_.access(addr, false, line, &line);
        if (!from_l3) {
            // Memory fill.
            res.hitLevel = 4;
            line = fill;
            res.memOps.push_back({OpType::Read, addr, CacheLine{}});
            CacheVictim v3 = l3_.fill(addr, line, false);
            if (v3.valid && v3.dirty)
                res.memOps.push_back({OpType::Write, v3.addr, v3.data});
        } else {
            res.hitLevel = 3;
        }
        // Fill into L2; displaced dirty L2 victim sinks into L3.
        CacheVictim v2 = l2_.fill(addr, line, false);
        if (v2.valid && v2.dirty) {
            CacheVictim v3 = l3_.fill(v2.addr, v2.data, true);
            if (v3.valid && v3.dirty)
                res.memOps.push_back({OpType::Write, v3.addr, v3.data});
        }
    } else {
        res.hitLevel = 2;
    }

    // Fill into L1 and apply the access.
    CacheVictim v1 = l1_.fill(addr, line, false);
    if (v1.valid && v1.dirty) {
        CacheVictim v2 = l2_.fill(v1.addr, v1.data, true);
        if (v2.valid && v2.dirty) {
            CacheVictim v3 = l3_.fill(v2.addr, v2.data, true);
            if (v3.valid && v3.dirty)
                res.memOps.push_back({OpType::Write, v3.addr, v3.data});
        }
    }
    l1_.access(addr, is_write, data, &res.data);
    if (!is_write)
        res.data = line;
    return res;
}

} // namespace esd
