#include "cache/set_assoc_cache.hh"

#include "common/logging.hh"
#include "common/stat_registry.hh"

namespace esd
{

void
SetAssocCache::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    auto n = [&](const char *leaf) { return prefix + "." + leaf; };

    reg.addCounter(n("hits"), stats_.hits);
    reg.addCounter(n("misses"), stats_.misses);
    reg.addCounter(n("evictions"), stats_.evictions);
    reg.addCounter(n("dirty_evictions"), stats_.dirtyEvictions);
    reg.addGauge(n("hit_rate"), [this] { return stats_.hitRate(); });
}

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    if (assoc == 0)
        esd_fatal("%s: associativity must be positive", name_.c_str());
    std::uint64_t lines = size_bytes / kLineSize;
    if (lines == 0 || lines % assoc != 0)
        esd_fatal("%s: size %llu is not a multiple of assoc * line size",
                  name_.c_str(),
                  static_cast<unsigned long long>(size_bytes));
    sets_ = lines / assoc;
    ways_.resize(lines);
}

std::uint64_t
SetAssocCache::setOf(Addr addr) const
{
    return lineIndex(addr) % sets_;
}

SetAssocCache::Way *
SetAssocCache::findWay(Addr addr)
{
    std::uint64_t base = setOf(addr) * assoc_;
    Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return &way;
    }
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::findWay(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findWay(addr);
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findWay(addr) != nullptr;
}

bool
SetAssocCache::access(Addr addr, bool is_write, const CacheLine &data,
                      CacheLine *out)
{
    Way *way = findWay(addr);
    if (!way) {
        stats_.misses.inc();
        return false;
    }
    stats_.hits.inc();
    way->lastUse = ++useClock_;
    if (is_write) {
        way->data = data;
        way->dirty = true;
    } else if (out) {
        *out = way->data;
    }
    return true;
}

CacheVictim
SetAssocCache::fill(Addr addr, const CacheLine &data, bool dirty)
{
    CacheVictim victim;
    Way *way = findWay(addr);
    if (!way) {
        // Pick an invalid way or the LRU way of the set.
        std::uint64_t base = setOf(addr) * assoc_;
        Way *lru = &ways_[base];
        for (unsigned w = 0; w < assoc_; ++w) {
            Way &cand = ways_[base + w];
            if (!cand.valid) {
                lru = &cand;
                break;
            }
            if (cand.lastUse < lru->lastUse)
                lru = &cand;
        }
        if (lru->valid) {
            stats_.evictions.inc();
            if (lru->dirty)
                stats_.dirtyEvictions.inc();
            victim.valid = true;
            victim.dirty = lru->dirty;
            victim.addr = lru->tag * kLineSize;
            victim.data = lru->data;
        }
        way = lru;
        way->valid = true;
        way->tag = tagOf(addr);
        way->dirty = false;
    }
    way->lastUse = ++useClock_;
    way->data = data;
    way->dirty = way->dirty || dirty;
    return victim;
}

CacheVictim
SetAssocCache::invalidate(Addr addr)
{
    CacheVictim victim;
    Way *way = findWay(addr);
    if (!way)
        return victim;
    victim.valid = true;
    victim.dirty = way->dirty;
    victim.addr = way->tag * kLineSize;
    victim.data = way->data;
    way->valid = false;
    way->dirty = false;
    return victim;
}

} // namespace esd
