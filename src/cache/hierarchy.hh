/**
 * @file
 * Three-level write-back cache hierarchy (Table I: 32 KB L1 / 256 KB
 * L2 / 16 MB shared L3). CPU-level loads and stores enter at L1;
 * everything that leaves L3 — dirty evictions and miss fills — is the
 * memory traffic the ESD memory controller sees.
 *
 * The hierarchy is mostly-inclusive and keeps full payloads so the
 * eviction stream carries true line contents for deduplication.
 */

#ifndef ESD_CACHE_HIERARCHY_HH
#define ESD_CACHE_HIERARCHY_HH

#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace esd
{

/** A memory-level operation emitted by the hierarchy. */
struct MemOp
{
    OpType type = OpType::Read;
    Addr addr = kInvalidAddr;

    /** For writes: the evicted dirty line content. */
    CacheLine data;
};

/** Outcome of one CPU access through the hierarchy. */
struct HierarchyResult
{
    /** Level that hit: 1..3, or 4 for memory. */
    unsigned hitLevel = 1;

    /** Cache-pipeline cycles spent (excluding memory time, which the
     * simulator obtains from the controller for the Read memOps). */
    Cycles cacheCycles = 0;

    /** Memory traffic triggered: at most one Read (the miss fill) and
     * any number of dirty write-backs. */
    std::vector<MemOp> memOps;

    /** For loads: the returned data. */
    CacheLine data;
};

/**
 * L1/L2/L3 stack.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheConfig &cfg);

    /**
     * Perform a CPU load or store.
     *
     * On a full miss the returned memOps start with the L3 miss-fill
     * Read; the caller must supply that line's content via
     * completeFill() before the access result's data field is
     * meaningful. For simplicity callers pass a fill payload up front.
     *
     * @param addr     byte address
     * @param is_write true for a store
     * @param data     store payload (writes) — full-line granularity
     * @param fill     content memory would return on a miss
     */
    HierarchyResult access(Addr addr, bool is_write, const CacheLine &data,
                           const CacheLine &fill);

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &l2() const { return l2_; }
    const SetAssocCache &l3() const { return l3_; }

    /** Register all three levels under "cache.l1.*" .. "cache.l3.*". */
    void registerStats(StatRegistry &reg) const;

    void resetStats();

  private:
    CacheConfig cfg_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    SetAssocCache l3_;
};

} // namespace esd

#endif // ESD_CACHE_HIERARCHY_HH
