/**
 * @file
 * A generic set-associative, write-back, write-allocate data cache with
 * LRU replacement — the building block of the L1/L2/L3 hierarchy that
 * produces the LLC eviction stream ESD deduplicates.
 */

#ifndef ESD_CACHE_SET_ASSOC_CACHE_HH
#define ESD_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace esd
{

class StatRegistry;

/** A victim pushed out of the cache by an allocation. */
struct CacheVictim
{
    bool valid = false;
    bool dirty = false;
    Addr addr = kInvalidAddr;
    CacheLine data;
};

/** Per-cache hit/miss statistics. */
struct CacheStats
{
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter dirtyEvictions;

    double
    hitRate() const
    {
        std::uint64_t total = hits.value() + misses.value();
        return total == 0 ? 0.0
                          : static_cast<double>(hits.value()) / total;
    }
};

/**
 * Set-associative cache storing full line payloads.
 */
class SetAssocCache
{
  public:
    /**
     * @param name       label used in error messages
     * @param size_bytes total capacity; must be a multiple of
     *                   assoc * kLineSize
     * @param assoc      ways per set
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes,
                  unsigned assoc);

    /** True when @p addr is resident (no LRU update, no stats). */
    bool probe(Addr addr) const;

    /**
     * Look up @p addr; on a hit refresh LRU and, for writes, install
     * @p data and set dirty.
     *
     * @param addr     line-aligned (or alignable) address
     * @param is_write true for a store / incoming dirty line
     * @param data     payload for writes (ignored for reads)
     * @param out      on a read hit receives the line content
     * @return true on hit
     */
    bool access(Addr addr, bool is_write, const CacheLine &data,
                CacheLine *out);

    /**
     * Allocate @p addr with @p data (e.g. a miss fill or an eviction
     * arriving from the level above).
     *
     * @return the victim displaced, valid+dirty when a write-back to
     *         the next level is required
     */
    CacheVictim fill(Addr addr, const CacheLine &data, bool dirty);

    /** Remove @p addr if present; returns the line as a victim. */
    CacheVictim invalidate(Addr addr);

    std::uint64_t numSets() const { return sets_; }
    unsigned assoc() const { return assoc_; }
    std::uint64_t sizeBytes() const { return sets_ * assoc_ * kLineSize; }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /** Register hit/miss/eviction counters and the hit rate under
     * "<prefix>.*". */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        CacheLine data;
    };

    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const { return lineIndex(addr); }

    Way *findWay(Addr addr);
    const Way *findWay(Addr addr) const;

    std::string name_;
    std::uint64_t sets_;
    unsigned assoc_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_;
    CacheStats stats_;
};

} // namespace esd

#endif // ESD_CACHE_SET_ASSOC_CACHE_HH
