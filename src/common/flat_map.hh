/**
 * @file
 * Cache-friendly hash containers for the per-write metadata hot path.
 *
 * `std::unordered_map` spends every lookup chasing a bucket pointer to
 * a separately allocated node — two dependent cache misses for a
 * 12-byte payload. The simulator's per-write path walks 3-6 such maps
 * (AMT, fingerprint index, refcounts, content store, wear counters,
 * encryption counters), so the node-based layout dominates host time
 * once the compute kernels are vectorised.
 *
 * `FlatMap` replaces them with open addressing + robin-hood probing:
 *
 *   - one contiguous entry array (`std::pair<Key, Value>`) plus a
 *     byte-per-slot probe-distance array — a lookup touches one or two
 *     adjacent cache lines and never dereferences a node pointer;
 *   - power-of-two capacity: the bucket index is a mask, not a modulo;
 *   - robin-hood insertion keeps probe sequences short and bounded
 *     (the variance of probe lengths is minimised, so the worst-case
 *     lookup stays a handful of adjacent slots);
 *   - erase uses backward-shift deletion instead of tombstones, so
 *     deletes never degrade the table and no rehash-on-erase exists.
 *
 * Iteration order is a pure function of the operation sequence and the
 * hash function — identical across platforms and standard libraries
 * (unlike `std::unordered_map`), which the deterministic-replay
 * machinery relies on.
 *
 * `BumpArena` is an optional payload allocator for maps whose values
 * are small variable-length lists (e.g. the RAS stuck-at sets): nodes
 * are bump-allocated from chunks, never individually freed, and stay
 * clustered in allocation order.
 */

#ifndef ESD_COMMON_FLAT_MAP_HH
#define ESD_COMMON_FLAT_MAP_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace esd
{

/** Final mixing step of splitmix64 — enough avalanche to index a
 * power-of-two table with line-aligned addresses (low bits zero). */
inline std::uint64_t
flatHashMix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Default hash for integer keys (Addr, line indices, fingerprints). */
template <typename K>
struct FlatHash
{
    std::uint64_t
    operator()(const K &k) const
    {
        return flatHashMix(static_cast<std::uint64_t>(k));
    }
};

/** Smallest power of two >= @p n (and >= 8). */
std::uint64_t flatMapCapacityFor(std::uint64_t n);

/**
 * Open-addressing robin-hood hash map with backward-shift deletion.
 *
 * Requirements: Key is an integral-like type with operator==; Value is
 * default-constructible and move-assignable. Pointers and iterators
 * into the table are invalidated by insert (rehash) and erase
 * (backward shift) — the same contract the simulator already honoured
 * for `std::unordered_map` rehashes, tightened to cover erase.
 */
template <typename Key, typename Value, typename Hash = FlatHash<Key>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, Value>;

    FlatMap() = default;

    explicit FlatMap(std::uint64_t expected_entries)
    {
        reserve(expected_entries);
    }

    FlatMap(FlatMap &&) = default;
    FlatMap &operator=(FlatMap &&) = default;

    /** Deep copy — slot layout (and therefore iteration order) is
     * preserved exactly, keeping copies replay-deterministic. */
    FlatMap(const FlatMap &o) { *this = o; }

    FlatMap &
    operator=(const FlatMap &o)
    {
        if (this == &o)
            return *this;
        if (o.capacity_ == 0) {
            entries_.reset();
            dist_.reset();
        } else {
            entries_ = std::make_unique<value_type[]>(o.capacity_);
            dist_ = std::make_unique<std::uint8_t[]>(o.capacity_);
            std::memcpy(dist_.get(), o.dist_.get(), o.capacity_);
            for (std::uint64_t i = 0; i < o.capacity_; ++i) {
                if (o.dist_[i])
                    entries_[i] = o.entries_[i];
            }
        }
        capacity_ = o.capacity_;
        size_ = o.size_;
        return *this;
    }

    /** Iterator over occupied slots, in slot order. */
    template <typename MapT, typename ValueT>
    class Iter
    {
      public:
        Iter(MapT *m, std::uint64_t i) : map_(m), idx_(i) { skip(); }

        ValueT &operator*() const { return map_->entries_[idx_]; }
        ValueT *operator->() const { return &map_->entries_[idx_]; }

        Iter &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool operator==(const Iter &o) const { return idx_ == o.idx_; }
        bool operator!=(const Iter &o) const { return idx_ != o.idx_; }

        std::uint64_t slot() const { return idx_; }

      private:
        void
        skip()
        {
            while (idx_ < map_->capacity_ && map_->dist_[idx_] == 0)
                ++idx_;
        }

        MapT *map_;
        std::uint64_t idx_;
    };

    using iterator = Iter<FlatMap, value_type>;
    using const_iterator = Iter<const FlatMap, const value_type>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, capacity_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, capacity_); }

    std::uint64_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::uint64_t capacity() const { return capacity_; }

    void
    clear()
    {
        for (std::uint64_t i = 0; i < capacity_; ++i) {
            if (dist_[i]) {
                entries_[i] = value_type{};
                dist_[i] = 0;
            }
        }
        size_ = 0;
    }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::uint64_t n)
    {
        std::uint64_t cap = flatMapCapacityFor(n + n / 2 + 1);
        if (cap > capacity_)
            rehash(cap);
    }

    iterator
    find(const Key &key)
    {
        return iterator(this, findSlot(key));
    }

    const_iterator
    find(const Key &key) const
    {
        return const_iterator(this, findSlot(key));
    }

    bool contains(const Key &key) const
    {
        return findSlot(key) != capacity_;
    }

    std::uint64_t count(const Key &key) const
    {
        return contains(key) ? 1 : 0;
    }

    /** Value of @p key, default-inserting when absent. */
    Value &
    operator[](const Key &key)
    {
        return insertSlot(key)->second;
    }

    /** Insert (key, value) unless the key exists.
     * @return (iterator to the entry, true when newly inserted) */
    std::pair<iterator, bool>
    emplace(const Key &key, Value value)
    {
        std::uint64_t before = size_;
        value_type *e = insertSlot(key);
        bool fresh = size_ != before;
        if (fresh)
            e->second = std::move(value);
        return {iterator(this, static_cast<std::uint64_t>(e - entries_.get())),
                fresh};
    }

    std::pair<iterator, bool>
    insert(const value_type &kv)
    {
        return emplace(kv.first, kv.second);
    }

    /** Insert or overwrite. */
    void
    assign(const Key &key, Value value)
    {
        insertSlot(key)->second = std::move(value);
    }

    /**
     * Remove @p key via backward shift: every entry of the following
     * contiguous run moves one slot left (its probe distance drops by
     * one), so the table looks as if the key was never inserted.
     * @return 1 when the key was present.
     */
    std::uint64_t
    erase(const Key &key)
    {
        std::uint64_t i = findSlot(key);
        if (i == capacity_)
            return 0;
        eraseSlot(i);
        return 1;
    }

    /** Erase the entry @p it points at (backward shift). The iterator
     * is invalidated; the following entries move. */
    void
    erase(const iterator &it)
    {
        eraseSlot(it.slot());
    }

  private:
    std::uint64_t
    homeOf(const Key &key) const
    {
        return Hash{}(key) & (capacity_ - 1);
    }

    /** Slot of @p key, or capacity_ when absent. Robin-hood invariant:
     * stop as soon as the resident's probe distance is shorter than
     * ours — the key cannot be further on. */
    std::uint64_t
    findSlot(const Key &key) const
    {
        if (size_ == 0)
            return capacity_;
        std::uint64_t mask = capacity_ - 1;
        std::uint64_t i = homeOf(key);
        std::uint8_t d = 1;
        while (true) {
            std::uint8_t resident = dist_[i];
            if (resident < d)
                return capacity_;
            if (resident == d && entries_[i].first == key)
                return i;
            i = (i + 1) & mask;
            ++d;
        }
    }

    /** Find-or-insert @p key (robin hood: a richer incumbent is
     * displaced and re-seated further on). Returns the entry. */
    value_type *
    insertSlot(const Key &key)
    {
        if (capacity_ == 0 || (size_ + 1) * 4 > capacity_ * 3)
            rehash(capacity_ ? capacity_ * 2 : 8);

        std::uint64_t mask = capacity_ - 1;
        std::uint64_t i = homeOf(key);
        std::uint8_t d = 1;
        while (true) {
            if (dist_[i] == 0) {
                entries_[i].first = key;
                entries_[i].second = Value{};
                dist_[i] = d;
                ++size_;
                return &entries_[i];
            }
            if (dist_[i] == d && entries_[i].first == key)
                return &entries_[i];
            if (dist_[i] < d) {
                // Rob the rich: seat the new key here, rehome the
                // displaced entry further along the probe chain.
                value_type displaced = std::move(entries_[i]);
                std::uint8_t displaced_d = dist_[i];
                entries_[i].first = key;
                entries_[i].second = Value{};
                dist_[i] = d;
                ++size_;
                // reseat never moves slots left of its start, so the
                // freshly seated entry stays put — unless reseat's
                // pathological-clustering branch rehashed the whole
                // table, which invalidates every slot.
                if (reseat(std::move(displaced), displaced_d,
                           (i + 1) & mask))
                    return &entries_[findSlot(key)];
                return &entries_[i];
            }
            i = (i + 1) & mask;
            ++d;
            if (d == kMaxDist) {
                rehash(capacity_ * 2);
                return insertSlot(key);
            }
        }
    }

    /** Continue the robin-hood shuffle for an already-displaced entry
     * starting at @p i with distance @p d + 1.
     * @return true when the table was rehashed (all slots moved). */
    bool
    reseat(value_type entry, std::uint8_t d, std::uint64_t i)
    {
        std::uint64_t mask = capacity_ - 1;
        ++d;
        while (true) {
            if (dist_[i] == 0) {
                entries_[i] = std::move(entry);
                dist_[i] = d;
                return false;
            }
            if (dist_[i] < d) {
                std::swap(entries_[i], entry);
                std::swap(dist_[i], d);
            }
            i = (i + 1) & mask;
            ++d;
            if (d == kMaxDist) {
                // Pathological clustering: grow and re-insert the
                // orphan through the normal path.
                Key k = entry.first;
                Value v = std::move(entry.second);
                rehash(capacity_ * 2);
                insertSlot(k)->second = std::move(v);
                return true;
            }
        }
    }

    void
    eraseSlot(std::uint64_t i)
    {
        std::uint64_t mask = capacity_ - 1;
        std::uint64_t next = (i + 1) & mask;
        while (dist_[next] > 1) {
            entries_[i] = std::move(entries_[next]);
            dist_[i] = static_cast<std::uint8_t>(dist_[next] - 1);
            i = next;
            next = (next + 1) & mask;
        }
        entries_[i] = value_type{};
        dist_[i] = 0;
        --size_;
    }

    void
    rehash(std::uint64_t new_cap)
    {
        new_cap = flatMapCapacityFor(new_cap);
        auto old_entries = std::move(entries_);
        auto old_dist = std::move(dist_);
        std::uint64_t old_cap = capacity_;

        entries_ = std::make_unique<value_type[]>(new_cap);
        dist_ = std::make_unique<std::uint8_t[]>(new_cap);
        std::memset(dist_.get(), 0, new_cap);
        capacity_ = new_cap;
        size_ = 0;

        for (std::uint64_t i = 0; i < old_cap; ++i) {
            if (old_dist[i]) {
                insertSlot(old_entries[i].first)->second =
                    std::move(old_entries[i].second);
            }
        }
    }

    /** Probe distances are bytes; hitting 255 forces a grow (load
     * factor 0.75 keeps real chains far below this). */
    static constexpr std::uint8_t kMaxDist = 255;

    std::unique_ptr<value_type[]> entries_;
    std::unique_ptr<std::uint8_t[]> dist_;
    std::uint64_t capacity_ = 0;
    std::uint64_t size_ = 0;
};

/** Hash set over FlatMap (the value collapses to an empty struct). */
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet
{
  public:
    std::uint64_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }
    void reserve(std::uint64_t n) { map_.reserve(n); }

    bool contains(const Key &key) const { return map_.contains(key); }
    std::uint64_t count(const Key &key) const { return map_.count(key); }

    /** @return true when @p key was newly inserted. */
    bool
    insert(const Key &key)
    {
        return map_.emplace(key, Empty{}).second;
    }

    std::uint64_t erase(const Key &key) { return map_.erase(key); }

  private:
    struct Empty
    {
    };
    using MapT = FlatMap<Key, Empty, Hash>;

  public:
    /** Key iterator over occupied slots, in slot order. */
    class const_iterator
    {
      public:
        explicit const_iterator(typename MapT::const_iterator it)
            : it_(it)
        {
        }

        const Key &operator*() const { return it_->first; }

        const_iterator &
        operator++()
        {
            ++it_;
            return *this;
        }

        bool operator==(const const_iterator &o) const
        {
            return it_ == o.it_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return it_ != o.it_;
        }

      private:
        typename MapT::const_iterator it_;
    };

    const_iterator begin() const { return const_iterator(map_.begin()); }
    const_iterator end() const { return const_iterator(map_.end()); }

  private:
    MapT map_;
};

/**
 * Chunked bump allocator for small per-key payload nodes.
 *
 * allocate<T>() carves objects out of geometrically growing chunks;
 * nothing is individually freed (release() drops everything at once).
 * Callers that need per-key lists keep arena node pointers as FlatMap
 * values — the nodes stay packed in allocation order instead of being
 * scattered by the general-purpose heap.
 */
class BumpArena
{
  public:
    BumpArena() = default;
    BumpArena(const BumpArena &) = delete;
    BumpArena &operator=(const BumpArena &) = delete;

    /** Allocate uninitialised, suitably aligned storage for one T and
     * default-construct it. T must be trivially destructible. */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena never runs destructors");
        void *p = allocate(sizeof(T), alignof(T));
        return new (p) T{std::forward<Args>(args)...};
    }

    /** Raw aligned allocation. */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Bytes handed out so far (footprint accounting). */
    std::uint64_t bytesAllocated() const { return allocated_; }

    /** Drop every chunk; all outstanding pointers become invalid. */
    void release();

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t used = 0;
        std::size_t cap = 0;
    };

    std::vector<Chunk> chunks_;
    std::uint64_t allocated_ = 0;
};

} // namespace esd

#endif // ESD_COMMON_FLAT_MAP_HH
