/**
 * @file
 * Fundamental value types shared by every ESD module.
 *
 * The unit conventions used throughout the library are:
 *   - time is measured in nanoseconds (`Tick`, a 64-bit unsigned count),
 *   - energy is measured in picojoules (`Energy`, a double),
 *   - addresses are byte addresses (`Addr`), always cache-line aligned
 *     when they name a line.
 */

#ifndef ESD_COMMON_TYPES_HH
#define ESD_COMMON_TYPES_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace esd
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Byte address in the physical or logical address space. */
using Addr = std::uint64_t;

/** Energy in picojoules. */
using Energy = double;

/** Cycle count of the modelled core. */
using Cycles = std::uint64_t;

/** Size of the cache line moved between LLC and NVMM (fixed by Table I). */
constexpr std::size_t kLineSize = 64;

/** Number of 8-byte words in a cache line. */
constexpr std::size_t kWordsPerLine = kLineSize / 8;

/** An invalid / not-present address sentinel. */
constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/**
 * A 64-byte cache line payload.
 *
 * This is the unit of deduplication: the memory controller sees whole
 * lines evicted from the LLC and whole lines filled on a miss. The class
 * is a thin value wrapper over a fixed byte array with word-granular
 * accessors (the ECC codec operates on 8-byte words).
 */
class CacheLine
{
  public:
    /** Construct an all-zero line (the most common duplicate). */
    CacheLine() { bytes_.fill(0); }

    /** Construct a line from raw bytes; @p data must hold kLineSize bytes. */
    explicit CacheLine(const std::uint8_t *data)
    {
        std::memcpy(bytes_.data(), data, kLineSize);
    }

    /** Read the @p i -th 64-bit word (little-endian, i in [0, 8)). */
    std::uint64_t
    word(std::size_t i) const
    {
        std::uint64_t w;
        std::memcpy(&w, bytes_.data() + i * 8, 8);
        return w;
    }

    /** Overwrite the @p i -th 64-bit word. */
    void
    setWord(std::size_t i, std::uint64_t w)
    {
        std::memcpy(bytes_.data() + i * 8, &w, 8);
    }

    /** Raw byte access. */
    const std::uint8_t *data() const { return bytes_.data(); }
    std::uint8_t *data() { return bytes_.data(); }

    std::uint8_t operator[](std::size_t i) const { return bytes_[i]; }
    std::uint8_t &operator[](std::size_t i) { return bytes_[i]; }

    /** True when every byte is zero (zero lines dominate some apps). */
    bool
    isZero() const
    {
        for (std::size_t i = 0; i < kWordsPerLine; ++i) {
            if (word(i) != 0)
                return false;
        }
        return true;
    }

    /** Byte-by-byte equality — the dedup ground truth comparison. */
    bool
    operator==(const CacheLine &other) const
    {
        return std::memcmp(bytes_.data(), other.bytes_.data(),
                           kLineSize) == 0;
    }

    bool operator!=(const CacheLine &other) const { return !(*this == other); }

    /** Stable 64-bit content hash for host-side indexing (not a scheme
     * fingerprint — schemes use ECC/SHA-1/CRC from src/ecc and
     * src/crypto). FNV-1a over the 64 bytes. */
    std::uint64_t
    contentHash() const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (std::uint8_t b : bytes_) {
            h ^= b;
            h *= 0x100000001b3ull;
        }
        return h;
    }

  private:
    std::array<std::uint8_t, kLineSize> bytes_;
};

/** Memory operation kind as seen by the memory controller. */
enum class OpType : std::uint8_t
{
    Read = 0,   ///< LLC miss fill from NVMM
    Write = 1,  ///< dirty LLC eviction to NVMM
};

/** Human-readable name of an OpType. */
inline const char *
toString(OpType t)
{
    return t == OpType::Read ? "read" : "write";
}

/**
 * Early-exit word-granular line equality — the dedup verify-path
 * compare kernel. Walks the eight 64-bit words and bails on the first
 * mismatch, so fingerprint collisions (which typically differ in an
 * early word) cost one load-compare instead of a full 64-byte
 * memcmp. CacheLine::operator== (memcmp) is the reference oracle.
 */
inline bool
linesEqualFast(const CacheLine &a, const CacheLine &b)
{
    for (std::size_t i = 0; i < kWordsPerLine; ++i) {
        if (a.word(i) != b.word(i))
            return false;
    }
    return true;
}

/** Align @p a down to the containing cache-line address. */
inline Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineSize - 1);
}

/** Line index of a byte address. */
inline std::uint64_t
lineIndex(Addr a)
{
    return a / kLineSize;
}

} // namespace esd

namespace std
{

/** Hash support so CacheLine can key unordered containers in tests and
 * host-side indexes. */
template <>
struct hash<esd::CacheLine>
{
    size_t
    operator()(const esd::CacheLine &l) const noexcept
    {
        return static_cast<size_t>(l.contentHash());
    }
};

} // namespace std

#endif // ESD_COMMON_TYPES_HH
