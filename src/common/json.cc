#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace esd
{

// ---------------------------------------------------------------- writer

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (stack_.back().members++ > 0)
        os_ << ',';
    newline();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Scope{false, 0});
}

void
JsonWriter::endObject()
{
    esd_assert(!stack_.empty() && !stack_.back().array,
               "endObject outside object");
    bool empty = stack_.back().members == 0;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Scope{true, 0});
}

void
JsonWriter::endArray()
{
    esd_assert(!stack_.empty() && stack_.back().array,
               "endArray outside array");
    bool empty = stack_.back().members == 0;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    esd_assert(!stack_.empty() && !stack_.back().array,
               "key outside object");
    esd_assert(!pendingKey_, "two keys in a row");
    if (stack_.back().members++ > 0)
        os_ << ',';
    newline();
    os_ << '"' << escape(k) << "\":";
    if (indent_ > 0)
        os_ << ' ';
    pendingKey_ = true;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        os_ << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::nullValue()
{
    beforeValue();
    os_ << "null";
}

void
JsonWriter::rawValue(const std::string &json)
{
    beforeValue();
    os_ << json;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------- parser

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (err_)
            *err_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null") || fail("bad literal");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string k;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !parseString(k))
                return fail("expected object key");
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(k), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(), nullptr,
                                 16));
                pos_ += 4;
                // Basic-multilingual-plane only: encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected value");
        out.type = JsonValue::Type::Number;
        out.number = v;
        pos_ += static_cast<std::size_t>(end - begin);
        return true;
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &kv : object)
        if (kv.first == k)
            return &kv.second;
    return nullptr;
}

bool
tryParseJson(const std::string &text, JsonValue &out, std::string *err)
{
    Parser p(text, err);
    out = JsonValue{};
    return p.parse(out);
}

JsonValue
parseJson(const std::string &text)
{
    JsonValue v;
    std::string err;
    if (!tryParseJson(text, v, &err))
        esd_fatal("malformed JSON: %s", err.c_str());
    return v;
}

} // namespace esd
