/**
 * @file
 * Per-write structured event tracing.
 *
 * Every scheme write path can emit one WriteEvent describing *why*
 * the write ended the way it did: the fingerprint probed, whether the
 * EFIT / fingerprint index hit, the byte-compare verdict, the final
 * outcome (unique / dedup / collision / saturated rewrite), and where
 * the resulting device access landed (bank, bank-queue wait) plus the
 * encryption time and total latency.
 *
 * Events land in a fixed-capacity ring buffer so multi-million-write
 * runs keep the most recent window; the whole buffer dumps to JSONL
 * (`esd_sim -trace-out=`). When no trace is attached the write path
 * pays a single null-pointer test.
 */

#ifndef ESD_COMMON_WRITE_TRACE_HH
#define ESD_COMMON_WRITE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace esd
{

/** How a traced write concluded. */
enum class WriteOutcome : std::uint8_t
{
    Unique = 0,           ///< no duplicate found: encrypted + written
    Dedup = 1,            ///< duplicate confirmed, data write eliminated
    Collision = 2,        ///< fingerprint hit but bytes differed
    SaturatedRewrite = 3, ///< referH saturated: rewritten as new line
};

/** Result of the fingerprint-structure probe (EFIT or fp index). */
enum class FpProbe : std::uint8_t
{
    None = 0, ///< scheme has no fingerprint structure (Baseline)
    Miss = 1,
    Hit = 2,
};

/** Byte-compare verdict of the candidate line. */
enum class CompareVerdict : std::uint8_t
{
    None = 0, ///< no comparison performed
    Equal = 1,
    Mismatch = 2,
};

/** One structured write-path record. */
struct WriteEvent
{
    Tick tick = 0;                 ///< issue time (ns)
    Addr addr = 0;                 ///< logical line address
    std::uint64_t fingerprint = 0; ///< ECC / hash / CRC fingerprint
    WriteOutcome outcome = WriteOutcome::Unique;
    FpProbe probe = FpProbe::None;
    CompareVerdict compare = CompareVerdict::None;
    std::uint16_t bank = 0;    ///< bank of the decisive device access
    std::uint16_t channel = 0; ///< memory channel of that access
    Tick queueWaitNs = 0;      ///< bank-queue wait of that access
    Tick encryptNs = 0;     ///< encryption time on the critical path
    Tick latencyNs = 0;     ///< total observed write latency
};

const char *writeOutcomeName(WriteOutcome o);
const char *fpProbeName(FpProbe p);
const char *compareVerdictName(CompareVerdict v);

/**
 * The ring buffer of write events.
 */
class WriteEventTrace
{
  public:
    /** @param capacity max retained events (most recent win). */
    explicit WriteEventTrace(std::size_t capacity);

    /** Append @p e, overwriting the oldest record when full. */
    void
    record(const WriteEvent &e)
    {
        ring_[head_] = e;
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
        ++total_;
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Events currently retained. */
    std::size_t size() const { return size_; }

    /** Events ever recorded (retained + overwritten). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const { return total_ - size_; }

    /** Retained event @p i, oldest first. */
    const WriteEvent &at(std::size_t i) const;

    void clear();

    /** Dump the retained window as JSONL, oldest first: one compact
     * JSON object per line (schema documented in README.md). */
    void writeJsonl(std::ostream &os) const;

  private:
    std::vector<WriteEvent> ring_;
    std::size_t head_ = 0;  ///< next slot to write
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace esd

#endif // ESD_COMMON_WRITE_TRACE_HH
