#include "common/stat_registry.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/logging.hh"

namespace esd
{

StatRegistry::Entry &
StatRegistry::add(const std::string &name, Kind kind,
                  const std::string &desc)
{
    esd_assert(!name.empty(), "stat name must be non-empty");
    if (index_.count(name))
        esd_panic("duplicate stat registration: '%s'", name.c_str());
    index_[name] = entries_.size();
    entries_.push_back(Entry{});
    Entry &e = entries_.back();
    e.name = name;
    e.desc = desc;
    e.kind = kind;
    return e;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c,
                         const std::string &desc)
{
    add(name, Kind::Counter, desc).counter = &c;
}

void
StatRegistry::addGauge(const std::string &name, GaugeFn fn,
                       const std::string &desc)
{
    esd_assert(fn != nullptr, "gauge needs a callback");
    add(name, Kind::Gauge, desc).gauge = std::move(fn);
}

void
StatRegistry::addLatency(const std::string &name, const LatencyStat &s,
                         const std::string &desc)
{
    add(name, Kind::Latency, desc).latency = &s;
}

bool
StatRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

const StatRegistry::Entry *
StatRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

double
StatRegistry::scalar(const std::string &name) const
{
    const Entry *e = find(name);
    if (!e)
        esd_panic("unknown stat '%s'", name.c_str());
    switch (e->kind) {
      case Kind::Counter:
        return static_cast<double>(e->counter->value());
      case Kind::Gauge:
        return e->gauge();
      case Kind::Latency:
        esd_panic("stat '%s' is a latency distribution", name.c_str());
    }
    return 0; // unreachable
}

std::vector<std::string>
StatRegistry::scalarNames() const
{
    std::vector<std::string> out;
    for (const Entry &e : entries_)
        if (e.kind != Kind::Latency)
            out.push_back(e.name);
    return out;
}

std::vector<double>
StatRegistry::scalarValues() const
{
    std::vector<double> out;
    for (const Entry &e : entries_) {
        if (e.kind == Kind::Counter)
            out.push_back(static_cast<double>(e.counter->value()));
        else if (e.kind == Kind::Gauge)
            out.push_back(e.gauge());
    }
    return out;
}

void
writeLatencyJson(JsonWriter &w, const LatencyStat &s, bool buckets)
{
    w.beginObject();
    w.kv("count", s.count());
    w.kv("mean", s.mean());
    w.kv("min", s.min());
    w.kv("max", s.max());
    w.kv("p50", s.percentile(50));
    w.kv("p90", s.percentile(90));
    w.kv("p99", s.percentile(99));
    if (buckets) {
        w.key("buckets");
        w.beginArray();
        s.histogram().forEachBucket(
            [&w](std::uint64_t lo, std::uint64_t width,
                 std::uint64_t count) {
                w.beginArray();
                w.value(lo);
                w.value(width);
                w.value(count);
                w.endArray();
            });
        w.endArray();
    }
    w.endObject();
}

void
StatRegistry::writeJson(JsonWriter &w, bool histogram_buckets) const
{
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const Entry &e : entries_)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->name < b->name;
              });

    w.beginObject();
    for (const Entry *e : sorted) {
        w.key(e->name);
        switch (e->kind) {
          case Kind::Counter:
            w.value(e->counter->value());
            break;
          case Kind::Gauge:
            w.value(e->gauge());
            break;
          case Kind::Latency:
            writeLatencyJson(w, *e->latency, histogram_buckets);
            break;
        }
    }
    w.endObject();
}

} // namespace esd
