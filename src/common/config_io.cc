#include "common/config_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace esd
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

std::uint64_t
asU64(const std::string &key, const std::string &v)
{
    // std::stoull silently wraps negative inputs; reject them first.
    if (!v.empty() && v[0] == '-')
        esd_fatal("config key '%s': '%s' is negative (expected an "
                  "unsigned integer)",
                  key.c_str(), v.c_str());
    try {
        std::size_t consumed = 0;
        std::uint64_t out = std::stoull(v, &consumed, 0);
        if (consumed != v.size())
            esd_fatal("config key '%s': trailing garbage in '%s'",
                      key.c_str(), v.c_str());
        return out;
    } catch (const std::out_of_range &) {
        esd_fatal("config key '%s': '%s' does not fit in 64 bits",
                  key.c_str(), v.c_str());
    } catch (...) {
        esd_fatal("config key '%s': '%s' is not an integer", key.c_str(),
                  v.c_str());
    }
}

double
asDouble(const std::string &key, const std::string &v)
{
    try {
        std::size_t consumed = 0;
        double out = std::stod(v, &consumed);
        if (consumed != v.size())
            esd_fatal("config key '%s': trailing garbage in '%s'",
                      key.c_str(), v.c_str());
        return out;
    } catch (const std::out_of_range &) {
        esd_fatal("config key '%s': '%s' is out of double range",
                  key.c_str(), v.c_str());
    } catch (...) {
        esd_fatal("config key '%s': '%s' is not a number", key.c_str(),
                  v.c_str());
    }
}

/** A probability: a double constrained to [0, 1]. */
double
asProb(const std::string &key, const std::string &v)
{
    double p = asDouble(key, v);
    if (p < 0.0 || p > 1.0)
        esd_fatal("config key '%s': %s is out of range (probability "
                  "must be in [0, 1])",
                  key.c_str(), v.c_str());
    return p;
}

/** An unsigned integer constrained to [lo, hi]. */
std::uint64_t
asU64In(const std::string &key, const std::string &v, std::uint64_t lo,
        std::uint64_t hi)
{
    std::uint64_t u = asU64(key, v);
    if (u < lo || u > hi)
        esd_fatal("config key '%s': %s is out of range [%llu, %llu]",
                  key.c_str(), v.c_str(),
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    return u;
}

bool
asBool(const std::string &key, const std::string &v)
{
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    esd_fatal("config key '%s': '%s' is not a boolean", key.c_str(),
              v.c_str());
}

} // namespace

const char *
eccEngineName(EccEngineKind k)
{
    switch (k) {
      case EccEngineKind::Hamming: return "hamming";
      case EccEngineKind::Bch: return "bch";
      case EccEngineKind::Rs: return "rs";
    }
    esd_panic("unreachable ecc engine %d", static_cast<int>(k));
}

EccEngineKind
parseEccEngine(const std::string &key, const std::string &v)
{
    if (v == "hamming")
        return EccEngineKind::Hamming;
    if (v == "bch")
        return EccEngineKind::Bch;
    if (v == "rs")
        return EccEngineKind::Rs;
    esd_fatal("config key '%s': '%s' is not an ecc engine "
              "(expected hamming, bch, or rs)",
              key.c_str(), v.c_str());
}

const char *
persistDomainName(PersistDomain d)
{
    switch (d) {
      case PersistDomain::Adr: return "adr";
      case PersistDomain::Eadr: return "eadr";
    }
    esd_panic("unreachable persistence domain %d", static_cast<int>(d));
}

const char *
crashPhaseName(CrashPhase p)
{
    switch (p) {
      case CrashPhase::PreBarrier: return "pre_barrier";
      case CrashPhase::MidJournal: return "mid_journal";
      case CrashPhase::PostData: return "post_data";
    }
    esd_panic("unreachable crash phase %d", static_cast<int>(p));
}

PersistDomain
parsePersistDomain(const std::string &key, const std::string &v)
{
    if (v == "adr")
        return PersistDomain::Adr;
    if (v == "eadr")
        return PersistDomain::Eadr;
    esd_fatal("config key '%s': '%s' is not a persistence domain "
              "(expected adr or eadr)",
              key.c_str(), v.c_str());
}

CrashPhase
parseCrashPhase(const std::string &key, const std::string &v)
{
    if (v == "pre_barrier")
        return CrashPhase::PreBarrier;
    if (v == "mid_journal")
        return CrashPhase::MidJournal;
    if (v == "post_data")
        return CrashPhase::PostData;
    esd_fatal("config key '%s': '%s' is not a crash phase (expected "
              "pre_barrier, mid_journal, or post_data)",
              key.c_str(), v.c_str());
}

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
      case TraceFormat::Auto: return "auto";
      case TraceFormat::Text: return "text";
      case TraceFormat::Gzip: return "gzip";
      case TraceFormat::Binary: return "binary";
    }
    esd_panic("unreachable trace format %d", static_cast<int>(f));
}

TraceFormat
parseTraceFormat(const std::string &key, const std::string &v)
{
    if (v == "auto")
        return TraceFormat::Auto;
    if (v == "text")
        return TraceFormat::Text;
    if (v == "gzip")
        return TraceFormat::Gzip;
    if (v == "binary")
        return TraceFormat::Binary;
    esd_fatal("config key '%s': '%s' is not a trace format (expected "
              "auto, text, gzip, or binary)",
              key.c_str(), v.c_str());
}

bool
applyConfigKey(SimConfig &cfg, const std::string &key,
               const std::string &value)
{
    const std::string &k = key;
    const std::string &v = value;

    // PCM.
    if (k == "pcm.capacity_gb") {
        cfg.pcm.capacityBytes = asU64In(k, v, 1, 1u << 20) << 30;
    } else if (k == "pcm.read_latency") {
        cfg.pcm.readLatency = asU64(k, v);
    } else if (k == "pcm.write_latency") {
        cfg.pcm.writeLatency = asU64(k, v);
    } else if (k == "pcm.read_energy_pj") {
        cfg.pcm.readEnergy = asDouble(k, v);
    } else if (k == "pcm.write_energy_pj") {
        cfg.pcm.writeEnergy = asDouble(k, v);
    } else if (k == "pcm.channels") {
        cfg.pcm.channels = static_cast<unsigned>(asU64In(k, v, 1, 64));
    } else if (k == "pcm.ranks") {
        cfg.pcm.ranksPerChannel =
            static_cast<unsigned>(asU64In(k, v, 1, 64));
    } else if (k == "pcm.banks") {
        cfg.pcm.banksPerRank =
            static_cast<unsigned>(asU64In(k, v, 1, 1024));
    } else if (k == "pcm.write_queue_depth") {
        cfg.pcm.writeQueueDepth =
            static_cast<unsigned>(asU64In(k, v, 1, 1u << 20));
    } else if (k == "pcm.row_buffer_lines") {
        cfg.pcm.rowBufferLines = asU64In(k, v, 0, 1u << 20);
    } else if (k == "pcm.row_hit_read_latency") {
        cfg.pcm.rowHitReadLatency = asU64(k, v);
    } else if (k == "pcm.read_priority") {
        cfg.pcm.readPriority = asBool(k, v);
    } else if (k == "pcm.start_gap") {
        cfg.pcm.startGapEnabled = asBool(k, v);
    } else if (k == "pcm.gap_move_period") {
        cfg.pcm.gapMovePeriod = asU64In(k, v, 1, 1ull << 40);
    } else if (k == "pcm.start_gap_region_lines") {
        cfg.pcm.startGapRegionLines = asU64In(k, v, 1, 1ull << 30);
    }
    // Memory channels.
    else if (k == "channels.count") {
        cfg.channels.count = static_cast<unsigned>(asU64In(k, v, 1, 64));
    } else if (k == "channels.wpq_depth") {
        cfg.channels.wpqDepth =
            static_cast<unsigned>(asU64In(k, v, 0, 1u << 16));
    } else if (k == "channels.wpq_coalescing") {
        cfg.channels.wpqCoalescing = asBool(k, v);
    }
    // Cache hierarchy.
    else if (k == "cache.l1_kb") {
        cfg.cache.l1Size = asU64(k, v) << 10;
    } else if (k == "cache.l2_kb") {
        cfg.cache.l2Size = asU64(k, v) << 10;
    } else if (k == "cache.l3_kb") {
        cfg.cache.l3Size = asU64(k, v) << 10;
    } else if (k == "cache.l1_assoc") {
        cfg.cache.l1Assoc = static_cast<unsigned>(asU64(k, v));
    } else if (k == "cache.l2_assoc") {
        cfg.cache.l2Assoc = static_cast<unsigned>(asU64(k, v));
    } else if (k == "cache.l3_assoc") {
        cfg.cache.l3Assoc = static_cast<unsigned>(asU64(k, v));
    }
    // Crypto cost model.
    else if (k == "crypto.sha1_latency") {
        cfg.crypto.sha1Latency = asU64(k, v);
    } else if (k == "crypto.md5_latency") {
        cfg.crypto.md5Latency = asU64(k, v);
    } else if (k == "crypto.crc_latency") {
        cfg.crypto.crcLatency = asU64(k, v);
    } else if (k == "crypto.encrypt_latency") {
        cfg.crypto.encryptLatency = asU64(k, v);
    } else if (k == "crypto.compare_latency") {
        cfg.crypto.compareLatency = asU64(k, v);
    }
    // Metadata.
    else if (k == "metadata.efit_kb") {
        cfg.metadata.efitCacheBytes = asU64(k, v) << 10;
    } else if (k == "metadata.amt_kb") {
        cfg.metadata.amtCacheBytes = asU64(k, v) << 10;
    } else if (k == "metadata.refer_h_max") {
        cfg.metadata.referHMax = static_cast<std::uint32_t>(asU64(k, v));
    } else if (k == "metadata.decay_period") {
        cfg.metadata.decayPeriod = asU64(k, v);
    } else if (k == "metadata.decay_delta") {
        cfg.metadata.decayDelta = static_cast<std::uint32_t>(asU64(k, v));
    } else if (k == "metadata.use_lrcu") {
        cfg.metadata.useLrcu = asBool(k, v);
    }
    // RAS.
    else if (k == "ras.enabled") {
        cfg.ras.enabled = asBool(k, v);
    } else if (k == "ras.read_ber") {
        cfg.ras.readBer = asProb(k, v);
    } else if (k == "ras.write_ber") {
        cfg.ras.writeBer = asProb(k, v);
    } else if (k == "ras.stuck_at_onset_writes") {
        cfg.ras.stuckAtOnsetWrites = asU64(k, v);
    } else if (k == "ras.stuck_at_per_write") {
        cfg.ras.stuckAtPerWrite = asProb(k, v);
    } else if (k == "ras.demand_scrub") {
        cfg.ras.demandScrub = asBool(k, v);
    } else if (k == "ras.patrol_interval_writes") {
        cfg.ras.patrolIntervalWrites = asU64(k, v);
    } else if (k == "ras.patrol_lines_per_sweep") {
        cfg.ras.patrolLinesPerSweep = asU64In(k, v, 1, 1u << 20);
    } else if (k == "ras.write_verify_retries") {
        cfg.ras.writeVerifyRetries = asU64In(k, v, 0, 64);
    } else if (k == "ras.write_verify_backoff_ns") {
        cfg.ras.writeVerifyBackoffNs = asU64(k, v);
    } else if (k == "ras.spare_region_lines") {
        cfg.ras.spareRegionLines = asU64In(k, v, 1, 1ull << 30);
    } else if (k == "ras.dedup_suspend_ues") {
        cfg.ras.dedupSuspendUes = asU64(k, v);
    }
    // Telemetry.
    else if (k == "telemetry.trace_ring_capacity") {
        cfg.telemetry.traceRingCapacity = asU64In(k, v, 1, 1u << 24);
    } else if (k == "telemetry.span_sample_every") {
        cfg.telemetry.spanSampleEvery = asU64In(k, v, 1, 1u << 30);
    } else if (k == "telemetry.span_buffer_cap") {
        cfg.telemetry.spanBufferCap = asU64In(k, v, 1, 1u << 26);
    } else if (k == "telemetry.metrics_every_writes") {
        cfg.telemetry.metricsEveryWrites = asU64In(k, v, 0, 1ull << 40);
    } else if (k == "telemetry.histogram_buckets") {
        cfg.telemetry.histogramBuckets = asBool(k, v);
    }
    // ECC engine.
    else if (k == "ecc.engine") {
        cfg.ecc.engine = parseEccEngine(k, v);
    }
    // Persistence.
    else if (k == "persistence.enabled") {
        cfg.persist.enabled = asBool(k, v);
    } else if (k == "persistence.domain") {
        cfg.persist.domain = parsePersistDomain(k, v);
    } else if (k == "persistence.epoch_writes") {
        cfg.persist.epochWrites = asU64In(k, v, 1, 1u << 20);
    } else if (k == "persistence.checkpoint_epochs") {
        cfg.persist.checkpointEpochs = asU64In(k, v, 1, 1u << 20);
    } else if (k == "persistence.barrier_ns") {
        cfg.persist.barrierNs = asU64In(k, v, 0, 1u << 20);
    } else if (k == "persistence.journal_append_ns") {
        cfg.persist.journalAppendNs = asU64In(k, v, 0, 1u << 20);
    } else if (k == "persistence.metadata_buffer_records") {
        cfg.persist.metadataBufferRecords = asU64In(k, v, 1, 1u << 24);
    } else if (k == "persistence.counter_slack") {
        cfg.persist.counterSlack = asU64In(k, v, 0, 1u << 24);
    } else if (k == "persistence.counter_probe_max") {
        cfg.persist.counterProbeMax = asU64In(k, v, 0, 1u << 16);
    } else if (k == "persistence.crash_at_write") {
        cfg.persist.crashAtWrite = asU64In(k, v, 0, 1ull << 40);
    } else if (k == "persistence.crash_phase") {
        cfg.persist.crashPhase = parseCrashPhase(k, v);
    }
    // Trace frontend / capture.
    else if (k == "trace.format") {
        cfg.trace.format = parseTraceFormat(k, v);
    } else if (k == "trace.line_payload") {
        cfg.trace.linePayload = asBool(k, v);
    } else if (k == "trace.read_ahead") {
        cfg.trace.readAhead = asU64In(k, v, 1, 1u << 20);
    }
    // Sharded write pipeline.
    else if (k == "pipeline.epoch_records") {
        cfg.pipeline.epochRecords = asU64In(k, v, 1, 1u << 20);
    } else if (k == "pipeline.queue_epochs") {
        cfg.pipeline.queueEpochs = asU64In(k, v, 1, 1024);
    } else if (k == "pipeline.sample_epochs") {
        cfg.pipeline.sampleEpochs = asU64In(k, v, 0, 1u << 20);
    }
    // Core.
    else if (k == "core.clock_ghz") {
        cfg.core.clockGhz = asDouble(k, v);
    } else if (k == "core.base_cpi") {
        cfg.core.baseCpi = asDouble(k, v);
    } else if (k == "seed") {
        cfg.seed = asU64(k, v);
    } else {
        return false;
    }
    return true;
}

void
loadConfigFile(SimConfig &cfg, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        esd_fatal("cannot open config file '%s'", path.c_str());
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos)
            esd_fatal("%s:%llu: expected 'key = value'", path.c_str(),
                      static_cast<unsigned long long>(line_no));
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (!applyConfigKey(cfg, key, value))
            esd_warn("%s:%llu: unknown config key '%s' ignored",
                     path.c_str(),
                     static_cast<unsigned long long>(line_no),
                     key.c_str());
    }
}

std::string
renderConfig(const SimConfig &cfg)
{
    std::ostringstream os;
    os << "# ESD simulator configuration\n"
       << "pcm.capacity_gb = " << (cfg.pcm.capacityBytes >> 30) << "\n"
       << "pcm.read_latency = " << cfg.pcm.readLatency << "\n"
       << "pcm.write_latency = " << cfg.pcm.writeLatency << "\n"
       << "pcm.read_energy_pj = " << cfg.pcm.readEnergy << "\n"
       << "pcm.write_energy_pj = " << cfg.pcm.writeEnergy << "\n"
       << "pcm.channels = " << cfg.pcm.channels << "\n"
       << "pcm.ranks = " << cfg.pcm.ranksPerChannel << "\n"
       << "pcm.banks = " << cfg.pcm.banksPerRank << "\n"
       << "pcm.write_queue_depth = " << cfg.pcm.writeQueueDepth << "\n"
       << "pcm.row_buffer_lines = " << cfg.pcm.rowBufferLines << "\n"
       << "pcm.row_hit_read_latency = " << cfg.pcm.rowHitReadLatency
       << "\n"
       << "pcm.read_priority = "
       << (cfg.pcm.readPriority ? "true" : "false") << "\n"
       << "pcm.start_gap = "
       << (cfg.pcm.startGapEnabled ? "true" : "false") << "\n"
       << "pcm.gap_move_period = " << cfg.pcm.gapMovePeriod << "\n"
       << "pcm.start_gap_region_lines = " << cfg.pcm.startGapRegionLines
       << "\n"
       << "channels.count = " << cfg.channels.count << "\n"
       << "channels.wpq_depth = " << cfg.channels.wpqDepth << "\n"
       << "channels.wpq_coalescing = "
       << (cfg.channels.wpqCoalescing ? "true" : "false") << "\n"
       << "cache.l1_kb = " << (cfg.cache.l1Size >> 10) << "\n"
       << "cache.l2_kb = " << (cfg.cache.l2Size >> 10) << "\n"
       << "cache.l3_kb = " << (cfg.cache.l3Size >> 10) << "\n"
       << "cache.l1_assoc = " << cfg.cache.l1Assoc << "\n"
       << "cache.l2_assoc = " << cfg.cache.l2Assoc << "\n"
       << "cache.l3_assoc = " << cfg.cache.l3Assoc << "\n"
       << "crypto.sha1_latency = " << cfg.crypto.sha1Latency << "\n"
       << "crypto.md5_latency = " << cfg.crypto.md5Latency << "\n"
       << "crypto.crc_latency = " << cfg.crypto.crcLatency << "\n"
       << "crypto.encrypt_latency = " << cfg.crypto.encryptLatency << "\n"
       << "crypto.compare_latency = " << cfg.crypto.compareLatency << "\n"
       << "metadata.efit_kb = " << (cfg.metadata.efitCacheBytes >> 10)
       << "\n"
       << "metadata.amt_kb = " << (cfg.metadata.amtCacheBytes >> 10)
       << "\n"
       << "metadata.refer_h_max = " << cfg.metadata.referHMax << "\n"
       << "metadata.decay_period = " << cfg.metadata.decayPeriod << "\n"
       << "metadata.decay_delta = " << cfg.metadata.decayDelta << "\n"
       << "metadata.use_lrcu = "
       << (cfg.metadata.useLrcu ? "true" : "false") << "\n"
       << "ras.enabled = " << (cfg.ras.enabled ? "true" : "false") << "\n"
       << "ras.read_ber = " << cfg.ras.readBer << "\n"
       << "ras.write_ber = " << cfg.ras.writeBer << "\n"
       << "ras.stuck_at_onset_writes = " << cfg.ras.stuckAtOnsetWrites
       << "\n"
       << "ras.stuck_at_per_write = " << cfg.ras.stuckAtPerWrite << "\n"
       << "ras.demand_scrub = "
       << (cfg.ras.demandScrub ? "true" : "false") << "\n"
       << "ras.patrol_interval_writes = " << cfg.ras.patrolIntervalWrites
       << "\n"
       << "ras.patrol_lines_per_sweep = " << cfg.ras.patrolLinesPerSweep
       << "\n"
       << "ras.write_verify_retries = " << cfg.ras.writeVerifyRetries
       << "\n"
       << "ras.write_verify_backoff_ns = " << cfg.ras.writeVerifyBackoffNs
       << "\n"
       << "ras.spare_region_lines = " << cfg.ras.spareRegionLines << "\n"
       << "ras.dedup_suspend_ues = " << cfg.ras.dedupSuspendUes << "\n"
       << "telemetry.trace_ring_capacity = "
       << cfg.telemetry.traceRingCapacity << "\n"
       << "telemetry.span_sample_every = "
       << cfg.telemetry.spanSampleEvery << "\n"
       << "telemetry.span_buffer_cap = " << cfg.telemetry.spanBufferCap
       << "\n"
       << "telemetry.metrics_every_writes = "
       << cfg.telemetry.metricsEveryWrites << "\n"
       << "telemetry.histogram_buckets = "
       << (cfg.telemetry.histogramBuckets ? "true" : "false") << "\n"
       << "ecc.engine = " << eccEngineName(cfg.ecc.engine) << "\n"
       << "persistence.enabled = "
       << (cfg.persist.enabled ? "true" : "false") << "\n"
       << "persistence.domain = " << persistDomainName(cfg.persist.domain)
       << "\n"
       << "persistence.epoch_writes = " << cfg.persist.epochWrites << "\n"
       << "persistence.checkpoint_epochs = "
       << cfg.persist.checkpointEpochs << "\n"
       << "persistence.barrier_ns = " << cfg.persist.barrierNs << "\n"
       << "persistence.journal_append_ns = "
       << cfg.persist.journalAppendNs << "\n"
       << "persistence.metadata_buffer_records = "
       << cfg.persist.metadataBufferRecords << "\n"
       << "persistence.counter_slack = " << cfg.persist.counterSlack
       << "\n"
       << "persistence.counter_probe_max = "
       << cfg.persist.counterProbeMax << "\n"
       << "persistence.crash_at_write = " << cfg.persist.crashAtWrite
       << "\n"
       << "persistence.crash_phase = "
       << crashPhaseName(cfg.persist.crashPhase) << "\n"
       << "trace.format = " << traceFormatName(cfg.trace.format) << "\n"
       << "trace.line_payload = "
       << (cfg.trace.linePayload ? "true" : "false") << "\n"
       << "trace.read_ahead = " << cfg.trace.readAhead << "\n"
       << "pipeline.epoch_records = " << cfg.pipeline.epochRecords
       << "\n"
       << "pipeline.queue_epochs = " << cfg.pipeline.queueEpochs << "\n"
       << "pipeline.sample_epochs = " << cfg.pipeline.sampleEpochs
       << "\n"
       << "core.clock_ghz = " << cfg.core.clockGhz << "\n"
       << "core.base_cpi = " << cfg.core.baseCpi << "\n"
       << "seed = " << cfg.seed << "\n";
    return os.str();
}

} // namespace esd
