/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload synthesis, error
 * injection, adversarial corpora) flows through Pcg32 so that every
 * experiment is exactly reproducible from its seed. PCG-XSH-RR 64/32
 * (O'Neill 2014): small state, good statistical quality, fast.
 */

#ifndef ESD_COMMON_RANDOM_HH
#define ESD_COMMON_RANDOM_HH

#include <cstdint>

#include "common/types.hh"

namespace esd
{

/** A 32-bit-output PCG generator with 64-bit state. */
class Pcg32
{
  public:
    /** Seed with a state and an odd stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                   std::uint64_t stream = 0xda3e39cb94b95bdbull)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Next 64-bit value (two draws). */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform integer in [0, bound) with Lemire rejection (unbiased). */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fill a cache line with pseudo-random bytes. */
    void
    fillLine(CacheLine &line)
    {
        for (std::size_t i = 0; i < kWordsPerLine; ++i)
            line.setWord(i, next64());
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace esd

#endif // ESD_COMMON_RANDOM_HH
