#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <exception>

namespace esd
{

namespace
{

std::atomic<std::uint64_t> warn_count{0};
std::atomic<bool> quiet{false};

} // namespace

std::uint64_t
warnCount()
{
    return warn_count.load();
}

void
setQuiet(bool q)
{
    quiet.store(q);
}

namespace detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warn_count.fetch_add(1);
    if (!quiet.load())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet.load())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace esd
