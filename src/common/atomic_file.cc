#include "common/atomic_file.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace esd
{

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // The temp file must live in the same directory as the target:
    // rename() is only atomic within one filesystem.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out) {
            esd_warn("cannot open '%s' for writing", tmp.c_str());
            return false;
        }
        out << contents;
        out.flush();
        if (!out) {
            esd_warn("short write to '%s'", tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        esd_warn("cannot rename '%s' over '%s'", tmp.c_str(),
                 path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace esd
