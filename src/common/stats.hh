/**
 * @file
 * Statistics primitives: scalar counters, distributions, and a latency
 * recorder able to report averages, percentiles, and full CDFs.
 *
 * These mirror what gem5's stats package provides at the granularity the
 * ESD evaluation needs (Figs. 11-17 are all built from these).
 */

#ifndef ESD_COMMON_STATS_HH
#define ESD_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace esd
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A reservoir of latency samples.
 *
 * Stores every sample (the simulated request counts are small enough to
 * keep exact distributions), reporting mean, min/max, arbitrary
 * percentiles, and an evenly-spaced CDF for Fig. 15-style plots.
 */
class LatencyStat
{
  public:
    /** Record one sample (nanoseconds). */
    void
    sample(double v)
    {
        samples_.push_back(v);
        sum_ += v;
        sorted_ = false;
    }

    std::uint64_t count() const { return samples_.size(); }
    double sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    double
    min() const
    {
        double m = std::numeric_limits<double>::infinity();
        for (double v : samples_)
            m = std::min(m, v);
        return samples_.empty() ? 0.0 : m;
    }

    double
    max() const
    {
        double m = -std::numeric_limits<double>::infinity();
        for (double v : samples_)
            m = std::max(m, v);
        return samples_.empty() ? 0.0 : m;
    }

    /**
     * Value at percentile @p p in [0, 100], nearest-rank.
     * Sorts lazily; repeated queries are cheap.
     */
    double percentile(double p) const;

    /**
     * The empirical CDF sampled at @p points evenly spaced quantiles.
     * @return vector of (latency, cumulative fraction) pairs.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    /** All raw samples (for tests). */
    const std::vector<double> &samples() const { return samples_; }

    void
    reset()
    {
        samples_.clear();
        sum_ = 0;
        sorted_ = false;
    }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    double sum_ = 0;
    mutable bool sorted_ = false;
    mutable std::vector<double> sortedSamples_;
};

/**
 * A histogram over power-of-ten style reference-count buckets used by the
 * Fig. 3 content-locality analysis: num1, num10, num100, num1000,
 * num1000+ (bucket upper bounds 1, 10, 100, 1000, +inf).
 */
class RefCountBuckets
{
  public:
    static constexpr std::size_t kNumBuckets = 5;

    /** Record a unique line whose reference count is @p refs. */
    void
    add(std::uint64_t refs)
    {
        std::size_t b = bucketOf(refs);
        lines_[b] += 1;
        volume_[b] += refs;
    }

    /** Bucket index for a reference count. */
    static std::size_t
    bucketOf(std::uint64_t refs)
    {
        if (refs <= 1)
            return 0;
        if (refs <= 10)
            return 1;
        if (refs <= 100)
            return 2;
        if (refs <= 1000)
            return 3;
        return 4;
    }

    static const char *
    bucketName(std::size_t b)
    {
        static const char *names[kNumBuckets] = {
            "num1", "num10", "num100", "num1000", "num1000+"};
        return names[b];
    }

    /** Count of unique lines in bucket @p b. */
    std::uint64_t lines(std::size_t b) const { return lines_[b]; }

    /** Total pre-dedup write volume (line count) from bucket @p b. */
    std::uint64_t volume(std::size_t b) const { return volume_[b]; }

    std::uint64_t
    totalLines() const
    {
        std::uint64_t t = 0;
        for (auto v : lines_)
            t += v;
        return t;
    }

    std::uint64_t
    totalVolume() const
    {
        std::uint64_t t = 0;
        for (auto v : volume_)
            t += v;
        return t;
    }

  private:
    std::uint64_t lines_[kNumBuckets] = {0, 0, 0, 0, 0};
    std::uint64_t volume_[kNumBuckets] = {0, 0, 0, 0, 0};
};

} // namespace esd

#endif // ESD_COMMON_STATS_HH
