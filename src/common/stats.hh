/**
 * @file
 * Statistics primitives: scalar counters, distributions, and a latency
 * recorder able to report averages, percentiles, and full CDFs.
 *
 * These mirror what gem5's stats package provides at the granularity the
 * ESD evaluation needs (Figs. 11-17 are all built from these).
 */

#ifndef ESD_COMMON_STATS_HH
#define ESD_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hh"

namespace esd
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A reservoir of latency samples.
 *
 * By default every sample is stored exactly (the simulated request
 * counts are small enough to keep full distributions), reporting
 * mean, min/max, arbitrary percentiles, and an evenly-spaced CDF for
 * Fig. 15-style plots. For multi-billion-write runs a reservoir cap
 * can be set: the stat then keeps a uniform random subsample of that
 * size (Vitter's Algorithm R, deterministic PCG stream) on which
 * percentiles/CDF are computed, while count, sum, mean, min, and max
 * stay exact.
 */
class LatencyStat
{
  public:
    LatencyStat() = default;

    /** @param reservoir_cap max stored samples; 0 = unbounded. */
    explicit LatencyStat(std::size_t reservoir_cap) : cap_(reservoir_cap)
    {
    }

    /**
     * Cap the stored-sample reservoir at @p cap (0 = unbounded). Must
     * be set before the first sample so the reservoir stays a uniform
     * subsample.
     */
    void setReservoirCapacity(std::size_t cap);

    std::size_t reservoirCapacity() const { return cap_; }

    /** Record one sample (nanoseconds). */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        if (cap_ == 0 || samples_.size() < cap_) {
            samples_.push_back(v);
        } else {
            // Algorithm R: replace a random slot with probability
            // cap/count, keeping the reservoir a uniform subsample.
            std::uint64_t j = rng_.next64() % count_;
            if (j >= cap_)
                return;
            samples_[static_cast<std::size_t>(j)] = v;
        }
        sorted_ = false;
    }

    /** Total samples observed (exact, even when capped). */
    std::uint64_t count() const { return count_; }

    double sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. Exact even when capped. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / count_;
    }

    /** Running minimum — O(1), exact even when capped. */
    double
    min() const
    {
        return count_ == 0 ? 0.0 : min_;
    }

    /** Running maximum — O(1), exact even when capped. */
    double
    max() const
    {
        return count_ == 0 ? 0.0 : max_;
    }

    /**
     * Value at percentile @p p in [0, 100], nearest-rank.
     * Sorts lazily; repeated queries are cheap.
     */
    double percentile(double p) const;

    /**
     * The empirical CDF sampled at @p points evenly spaced quantiles.
     * @return vector of (latency, cumulative fraction) pairs.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    /** The stored samples — everything observed when unbounded, the
     * uniform reservoir when capped. */
    const std::vector<double> &samples() const { return samples_; }

    void
    reset()
    {
        samples_.clear();
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        sorted_ = false;
    }

  private:
    void ensureSorted() const;

    std::size_t cap_ = 0;
    std::vector<double> samples_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    Pcg32 rng_{0x6c61746e63797374ull};  // fixed stream: reproducible
    mutable bool sorted_ = false;
    mutable std::vector<double> sortedSamples_;
};

/**
 * A histogram over power-of-ten style reference-count buckets used by the
 * Fig. 3 content-locality analysis: num1, num10, num100, num1000,
 * num1000+ (bucket upper bounds 1, 10, 100, 1000, +inf).
 */
class RefCountBuckets
{
  public:
    static constexpr std::size_t kNumBuckets = 5;

    /** Record a unique line whose reference count is @p refs. */
    void
    add(std::uint64_t refs)
    {
        std::size_t b = bucketOf(refs);
        lines_[b] += 1;
        volume_[b] += refs;
    }

    /** Bucket index for a reference count. */
    static std::size_t
    bucketOf(std::uint64_t refs)
    {
        if (refs <= 1)
            return 0;
        if (refs <= 10)
            return 1;
        if (refs <= 100)
            return 2;
        if (refs <= 1000)
            return 3;
        return 4;
    }

    static const char *
    bucketName(std::size_t b)
    {
        static const char *names[kNumBuckets] = {
            "num1", "num10", "num100", "num1000", "num1000+"};
        return names[b];
    }

    /** Count of unique lines in bucket @p b. */
    std::uint64_t lines(std::size_t b) const { return lines_[b]; }

    /** Total pre-dedup write volume (line count) from bucket @p b. */
    std::uint64_t volume(std::size_t b) const { return volume_[b]; }

    std::uint64_t
    totalLines() const
    {
        std::uint64_t t = 0;
        for (auto v : lines_)
            t += v;
        return t;
    }

    std::uint64_t
    totalVolume() const
    {
        std::uint64_t t = 0;
        for (auto v : volume_)
            t += v;
        return t;
    }

  private:
    std::uint64_t lines_[kNumBuckets] = {0, 0, 0, 0, 0};
    std::uint64_t volume_[kNumBuckets] = {0, 0, 0, 0, 0};
};

} // namespace esd

#endif // ESD_COMMON_STATS_HH
