/**
 * @file
 * Statistics primitives: scalar counters, distributions, and a latency
 * recorder able to report averages, percentiles, and full CDFs.
 *
 * These mirror what gem5's stats package provides at the granularity the
 * ESD evaluation needs (Figs. 11-17 are all built from these).
 */

#ifndef ESD_COMMON_STATS_HH
#define ESD_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hh"

namespace esd
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * HdrHistogram-style exact counting histogram over unsigned values.
 *
 * Layout: values below kSubBucketCount (4096) land in unit-width
 * buckets — i.e. they are recorded *exactly*; larger values fall into
 * log2 buckets of kSubBucketHalfCount linear sub-buckets each, so the
 * relative quantization error is bounded by 2^-11 everywhere. Simulated
 * latencies are integral nanoseconds and, for the paper's workloads,
 * far below 4096 ns, so in practice every recorded value is exact.
 *
 * record() is O(1); percentiles are exact-count (nearest-rank over the
 * bucket counters, reporting each bucket's lowest contained value);
 * merge() is element-wise counter addition, hence associative and
 * commutative — the property the sweep engine relies on to make
 * `-jobs=N` reports byte-identical to `-jobs=1`.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBucketBits = 12;
    static constexpr std::uint64_t kSubBucketCount = 1ull
                                                     << kSubBucketBits;
    static constexpr std::uint64_t kSubBucketHalfCount =
        kSubBucketCount / 2;

    /** Values above this are clamped into the top bucket range. */
    static constexpr std::uint64_t kMaxTrackable = 1ull << 62;

    /** Counter-array index covering value @p v. */
    static std::size_t
    indexFor(std::uint64_t v)
    {
        if (v < kSubBucketCount)
            return static_cast<std::size_t>(v);
        if (v > kMaxTrackable)
            v = kMaxTrackable;
        // Bit length beyond the sub-bucket range picks the log2
        // bucket; the top kSubBucketBits-1 bits below the leading one
        // pick the linear sub-bucket.
        unsigned k = 63u - static_cast<unsigned>(__builtin_clzll(v));
        unsigned bucket = k - (kSubBucketBits - 1);
        std::uint64_t sub = v >> bucket;
        return static_cast<std::size_t>((bucket + 1) *
                                            kSubBucketHalfCount +
                                        (sub - kSubBucketHalfCount));
    }

    /** Lowest value mapping to counter index @p i (the reported
     * representative of the bucket). */
    static std::uint64_t
    valueAt(std::size_t i)
    {
        if (i < kSubBucketCount)
            return i;
        std::size_t bucket = i / kSubBucketHalfCount - 1;
        std::uint64_t sub = i % kSubBucketHalfCount + kSubBucketHalfCount;
        return sub << bucket;
    }

    /** Width of bucket @p i: valueAt(i) .. valueAt(i)+width-1 share
     * the counter. */
    static std::uint64_t
    widthAt(std::size_t i)
    {
        if (i < kSubBucketCount)
            return 1;
        return 1ull << (i / kSubBucketHalfCount - 1);
    }

    /** Count @p n occurrences of value @p v — O(1). */
    void
    record(std::uint64_t v, std::uint64_t n = 1)
    {
        std::size_t i = indexFor(v);
        if (i >= counts_.size())
            counts_.resize(i + 1, 0);
        counts_[i] += n;
        total_ += n;
    }

    std::uint64_t totalCount() const { return total_; }
    bool empty() const { return total_ == 0; }

    /** Allocated counter slots (highest used bucket + 1). */
    std::size_t size() const { return counts_.size(); }

    std::uint64_t countAt(std::size_t i) const { return counts_[i]; }

    /**
     * Value of the @p rank-th smallest recorded sample (1-indexed,
     * clamped to [1, totalCount]); 0 when empty.
     */
    std::uint64_t valueAtRank(std::uint64_t rank) const;

    /** Nearest-rank percentile, @p p in [0, 100]; 0 when empty. */
    double percentile(double p) const;

    /** Element-wise counter addition — associative and commutative. */
    void merge(const LogHistogram &o);

    /** Visit every non-empty bucket as fn(lo, width, count), ascending
     * by value. */
    template <typename Fn>
    void
    forEachBucket(Fn &&fn) const
    {
        for (std::size_t i = 0; i < counts_.size(); ++i)
            if (counts_[i] != 0)
                fn(valueAt(i), widthAt(i), counts_[i]);
    }

    void
    reset()
    {
        counts_.clear();
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A latency distribution recorder.
 *
 * Every sample lands in an exact LogHistogram (O(1), deterministic,
 * mergeable), which backs percentile() and cdf(); count, sum, mean,
 * min, and max are tracked exactly on the side. Samples are quantized
 * to integral nanoseconds for the histogram — exact for the simulated
 * timing model, which produces integral ns.
 *
 * Raw per-sample storage is opt-in (enableRawSamples() or the capacity
 * constructor): when enabled, samples() keeps either every observation
 * (cap 0) or a uniform random subsample of the given size (Vitter's
 * Algorithm R, deterministic PCG stream) for external export — it no
 * longer feeds percentiles, so reported quantiles are reproducible
 * across worker counts and merge order.
 */
class LatencyStat
{
  public:
    LatencyStat() = default;

    /** Opt into raw-sample storage.
     * @param reservoir_cap max stored samples; 0 = unbounded. */
    explicit LatencyStat(std::size_t reservoir_cap)
        : cap_(reservoir_cap), keepRaw_(true)
    {
    }

    /**
     * Opt into raw-sample storage with reservoir cap @p cap (0 =
     * unbounded). Must be called before the first sample so the
     * reservoir stays a uniform subsample.
     */
    void setReservoirCapacity(std::size_t cap);

    /** Alias of setReservoirCapacity — the raw-export opt-in. */
    void enableRawSamples(std::size_t cap = 0)
    {
        setReservoirCapacity(cap);
    }

    std::size_t reservoirCapacity() const { return cap_; }
    bool rawSamplesEnabled() const { return keepRaw_; }

    /** Record one sample (nanoseconds). */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        hist_.record(quantize(v));
        if (!keepRaw_)
            return;
        if (cap_ == 0 || samples_.size() < cap_) {
            samples_.push_back(v);
        } else {
            // Algorithm R: replace a random slot with probability
            // cap/count, keeping the reservoir a uniform subsample.
            std::uint64_t j = rng_.next64() % count_;
            if (j < cap_)
                samples_[static_cast<std::size_t>(j)] = v;
        }
    }

    /** Total samples observed (exact). */
    std::uint64_t count() const { return count_; }

    double sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / count_;
    }

    /** Running minimum — O(1), exact. */
    double
    min() const
    {
        return count_ == 0 ? 0.0 : min_;
    }

    /** Running maximum — O(1), exact. */
    double
    max() const
    {
        return count_ == 0 ? 0.0 : max_;
    }

    /**
     * Value at percentile @p p in [0, 100]: exact-count nearest-rank
     * over the histogram, independent of sample arrival order.
     */
    double percentile(double p) const;

    /**
     * The empirical CDF sampled at @p points evenly spaced quantiles.
     * @return vector of (latency, cumulative fraction) pairs.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    /** The exact value histogram (serialization / analyzers). */
    const LogHistogram &histogram() const { return hist_; }

    /**
     * Raw stored samples — empty unless raw storage was opted into;
     * then everything observed (cap 0) or the uniform reservoir.
     */
    const std::vector<double> &samples() const { return samples_; }

    /**
     * Fold another stat into this one: counters add, extrema combine,
     * histograms merge bucket-wise. Deterministic in any merge order.
     * Raw reservoirs are not merged (samples() keeps only this stat's
     * own observations).
     */
    void merge(const LatencyStat &o);

    /** Drop all observations; the raw-storage opt-in is retained. */
    void
    reset()
    {
        samples_.clear();
        hist_.reset();
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    /** Histogram domain: non-negative integral ns (floor). */
    static std::uint64_t
    quantize(double v)
    {
        if (!(v > 0.0))
            return 0;
        if (v >= static_cast<double>(LogHistogram::kMaxTrackable))
            return LogHistogram::kMaxTrackable;
        return static_cast<std::uint64_t>(v);
    }

    std::size_t cap_ = 0;
    bool keepRaw_ = false;
    std::vector<double> samples_;
    LogHistogram hist_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    Pcg32 rng_{0x6c61746e63797374ull};  // fixed stream: reproducible
};

/**
 * A histogram over power-of-ten style reference-count buckets used by the
 * Fig. 3 content-locality analysis: num1, num10, num100, num1000,
 * num1000+ (bucket upper bounds 1, 10, 100, 1000, +inf).
 */
class RefCountBuckets
{
  public:
    static constexpr std::size_t kNumBuckets = 5;

    /** Record a unique line whose reference count is @p refs. */
    void
    add(std::uint64_t refs)
    {
        std::size_t b = bucketOf(refs);
        lines_[b] += 1;
        volume_[b] += refs;
    }

    /** Bucket index for a reference count. */
    static std::size_t
    bucketOf(std::uint64_t refs)
    {
        if (refs <= 1)
            return 0;
        if (refs <= 10)
            return 1;
        if (refs <= 100)
            return 2;
        if (refs <= 1000)
            return 3;
        return 4;
    }

    static const char *
    bucketName(std::size_t b)
    {
        static const char *names[kNumBuckets] = {
            "num1", "num10", "num100", "num1000", "num1000+"};
        return names[b];
    }

    /** Count of unique lines in bucket @p b. */
    std::uint64_t lines(std::size_t b) const { return lines_[b]; }

    /** Total pre-dedup write volume (line count) from bucket @p b. */
    std::uint64_t volume(std::size_t b) const { return volume_[b]; }

    std::uint64_t
    totalLines() const
    {
        std::uint64_t t = 0;
        for (auto v : lines_)
            t += v;
        return t;
    }

    std::uint64_t
    totalVolume() const
    {
        std::uint64_t t = 0;
        for (auto v : volume_)
            t += v;
        return t;
    }

  private:
    std::uint64_t lines_[kNumBuckets] = {0, 0, 0, 0, 0};
    std::uint64_t volume_[kNumBuckets] = {0, 0, 0, 0, 0};
};

} // namespace esd

#endif // ESD_COMMON_STATS_HH
