#include "common/write_trace.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace esd
{

const char *
writeOutcomeName(WriteOutcome o)
{
    switch (o) {
      case WriteOutcome::Unique: return "unique";
      case WriteOutcome::Dedup: return "dedup";
      case WriteOutcome::Collision: return "collision";
      case WriteOutcome::SaturatedRewrite: return "saturated_rewrite";
    }
    return "?";
}

const char *
fpProbeName(FpProbe p)
{
    switch (p) {
      case FpProbe::None: return "none";
      case FpProbe::Miss: return "miss";
      case FpProbe::Hit: return "hit";
    }
    return "?";
}

const char *
compareVerdictName(CompareVerdict v)
{
    switch (v) {
      case CompareVerdict::None: return "none";
      case CompareVerdict::Equal: return "equal";
      case CompareVerdict::Mismatch: return "mismatch";
    }
    return "?";
}

WriteEventTrace::WriteEventTrace(std::size_t capacity)
{
    esd_assert(capacity > 0, "trace capacity must be positive");
    ring_.resize(capacity);
}

const WriteEvent &
WriteEventTrace::at(std::size_t i) const
{
    esd_assert(i < size_, "trace index out of range");
    // Oldest record sits at head_ once the ring has wrapped.
    std::size_t base = size_ == ring_.size() ? head_ : 0;
    return ring_[(base + i) % ring_.size()];
}

void
WriteEventTrace::clear()
{
    head_ = 0;
    size_ = 0;
    total_ = 0;
}

void
WriteEventTrace::writeJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        const WriteEvent &e = at(i);
        JsonWriter w(os, /*indent=*/0);
        w.beginObject();
        w.kv("tick", static_cast<std::uint64_t>(e.tick));
        w.kv("addr", static_cast<std::uint64_t>(e.addr));
        w.kv("fp", e.fingerprint);
        w.kv("efit", fpProbeName(e.probe));
        w.kv("compare", compareVerdictName(e.compare));
        w.kv("outcome", writeOutcomeName(e.outcome));
        w.kv("bank", static_cast<std::uint64_t>(e.bank));
        w.kv("channel", static_cast<std::uint64_t>(e.channel));
        w.kv("queue_ns", static_cast<std::uint64_t>(e.queueWaitNs));
        w.kv("encrypt_ns", static_cast<std::uint64_t>(e.encryptNs));
        w.kv("latency_ns", static_cast<std::uint64_t>(e.latencyNs));
        w.endObject();
        os << '\n';
    }
}

} // namespace esd
