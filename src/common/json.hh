/**
 * @file
 * Minimal JSON support for the observability layer: a streaming
 * writer (stats reports, JSONL trace records) and a small
 * recursive-descent parser (round-trip tests, tooling that consumes
 * the machine-readable run reports).
 *
 * Deliberately tiny rather than a third-party dependency: the repo's
 * JSON needs are flat objects of numbers/strings plus arrays thereof.
 */

#ifndef ESD_COMMON_JSON_HH
#define ESD_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace esd
{

/**
 * Streaming JSON writer with automatic comma/indent management.
 *
 * Usage:
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("answer"); w.value(42);
 *   w.endObject();
 *
 * Non-finite doubles serialize as null (JSON has no inf/nan).
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line. */
    explicit JsonWriter(std::ostream &os, int indent = 2)
        : os_(os), indent_(indent)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(const std::string &k);

    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void nullValue();

    /** Emit @p json — an already-serialized JSON value — verbatim in
     * value position (comma/indent management still applies). Lets the
     * sweep-report merger splice per-job documents that were serialized
     * independently by worker threads without re-parsing them. */
    void rawValue(const std::string &json);

    /** Convenience: key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** JSON string escaping (exposed for ad-hoc writers like the
     * trace JSONL emitter). */
    static std::string escape(const std::string &s);

  private:
    struct Scope
    {
        bool array = false;
        int members = 0;
    };

    void beforeValue();
    void newline();

    std::ostream &os_;
    int indent_;
    bool pendingKey_ = false;
    std::vector<Scope> stack_;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup on an object; nullptr when absent / not an
     * object. */
    const JsonValue *find(const std::string &k) const;
};

/**
 * Parse @p text into @p out.
 * @return true on success; on failure @p err (if non-null) receives a
 *         position-annotated message.
 */
bool tryParseJson(const std::string &text, JsonValue &out,
                  std::string *err = nullptr);

/** Parse @p text; fatal on malformed input (tests use tryParseJson). */
JsonValue parseJson(const std::string &text);

} // namespace esd

#endif // ESD_COMMON_JSON_HH
