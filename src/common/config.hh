/**
 * @file
 * Central configuration for the simulated system.
 *
 * Defaults reproduce Table I of the ESD paper plus the latency/energy
 * constants quoted in the text (Section II-B, III-C, IV-E):
 *   - PCM read/write latency 75 ns / 150 ns, energy 1.49 nJ / 6.75 nJ,
 *   - SHA-1 321 ns, MD5 312 ns per cache line,
 *   - EFIT and AMT metadata caches of 512 KB each,
 *   - 64 B cache lines, 16 GB PCM capacity.
 */

#ifndef ESD_COMMON_CONFIG_HH
#define ESD_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace esd
{

/** Timing and energy parameters of the PCM main memory (Table I). */
struct PcmConfig
{
    /** Total device capacity in bytes (Table I: 16 GB). */
    std::uint64_t capacityBytes = 16ull << 30;

    /** Array read latency per line in nanoseconds. */
    Tick readLatency = 75;

    /** Array write latency per line in nanoseconds (2x read: PCM
     * asymmetry the selective-dedup tradeoff relies on). */
    Tick writeLatency = 150;

    /** Row-buffer geometry: consecutive lines per row (64 lines =
     * 4 KB). 0 disables row-buffer modelling (every access pays the
     * full array latency). */
    std::uint64_t rowBufferLines = 64;

    /** Read latency when the target row is already open. Writes
     * always pay the full PCM array write. */
    Tick rowHitReadLatency = 15;

    /** Per-line read energy in picojoules (1.49 nJ). */
    Energy readEnergy = 1490.0;

    /** Per-line write energy in picojoules (6.75 nJ). */
    Energy writeEnergy = 6750.0;

    /** Bank parallelism: channels x ranks x banks service queues. */
    unsigned channels = 2;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;

    /** Depth of the per-controller write queue before backpressure
     * stalls the core model. */
    unsigned writeQueueDepth = 64;

    /** When true, reads bypass *queued* writes at a bank (they wait
     * for at most the write currently in service). When false the
     * bank services requests strictly in arrival order, so reads
     * queue behind write bursts — the read/write interference the
     * deduplication evaluation exercises. */
    bool readPriority = false;

    /** Enable Start-Gap wear leveling (Qureshi MICRO'09): hot lines
     * rotate across physical slots, bounding per-cell wear at the
     * cost of one internal line copy per gapMovePeriod writes. */
    bool startGapEnabled = false;

    /** Writes between gap movements (original paper: 100). */
    std::uint64_t gapMovePeriod = 100;

    /** Lines per Start-Gap rotation region. */
    std::uint64_t startGapRegionLines = 16384;

    unsigned totalBanks() const { return channels * ranksPerChannel *
                                         banksPerRank; }
};

/**
 * Memory-channel layer on top of the banked PCM device ([channels]
 * section).
 *
 * Each channel owns a full copy of the PcmConfig bank geometry and its
 * own write-pending queue (WPQ); lines interleave across channels with
 * channelOf(addr) = lineIndex(addr) % count. The defaults (one channel,
 * coalescing off, inherited queue depth) make the device bit-identical
 * to the single-channel model that predates this layer.
 */
struct ChannelConfig
{
    /** Number of address-interleaved memory channels. */
    unsigned count = 1;

    /** Per-channel WPQ depth; 0 inherits pcm.write_queue_depth. */
    unsigned wpqDepth = 0;

    /** In-queue write coalescing: a write to a line that already has a
     * pending WPQ entry updates that entry in place instead of issuing
     * a second device write. */
    bool wpqCoalescing = false;
};

/** CPU-side cache hierarchy parameters (Table I). */
struct CacheConfig
{
    std::uint64_t l1Size = 32 * 1024;
    unsigned l1Assoc = 8;
    Cycles l1Latency = 2;

    std::uint64_t l2Size = 256 * 1024;
    unsigned l2Assoc = 8;
    Cycles l2Latency = 8;

    std::uint64_t l3Size = 16ull * 1024 * 1024;
    unsigned l3Assoc = 8;
    Cycles l3Latency = 25;
};

/** Latency/energy cost model for fingerprint and encryption engines.
 * Latencies from Section III-C / DeWrite; energies follow the SHA-3
 * round-2 power comparison study [56] scaled to a 64 B block. */
struct CryptoCostConfig
{
    /** SHA-1 fingerprint of one cache line (Section III-C: 321 ns). */
    Tick sha1Latency = 321;
    Energy sha1Energy = 2900.0;  // pJ per line

    /** MD5 fingerprint of one line (312 ns). */
    Tick md5Latency = 312;
    Energy md5Energy = 2700.0;

    /** Lightweight CRC used by DeWrite. */
    Tick crcLatency = 40;
    Energy crcEnergy = 350.0;

    /** AES-128 counter-mode encryption of one line. CME precomputes the
     * pad off the critical path; the XOR apply cost is what is seen. */
    Tick encryptLatency = 24;
    Energy encryptEnergy = 900.0;

    /** Obtaining the already-computed ECC from the controller is free
     * (Section III-C: "the overhead of obtaining ECC is negligible"). */
    Tick eccLatency = 0;
    Energy eccEnergy = 0.0;

    /** Metadata (EFIT/AMT) on-chip cache access. */
    Tick metadataCacheLatency = 2;
    Energy metadataCacheEnergy = 15.0;

    /** Byte-by-byte comparison of a fetched candidate line in the
     * controller (wide comparators, a few cycles). */
    Tick compareLatency = 4;
    Energy compareEnergy = 40.0;
};

/** Sizes of the two on-chip metadata caches (Table I: 512 KB each). */
struct MetadataConfig
{
    std::uint64_t efitCacheBytes = 512 * 1024;
    std::uint64_t amtCacheBytes = 512 * 1024;

    /** Associativity of the on-chip metadata caches. */
    unsigned efitAssoc = 8;
    unsigned amtAssoc = 8;

    /** EFIT entry size: ECC fp (8 B) + Addr_base (4 B) + Addr_offsets
     * (1 B) + referH (1 B) = 14 B, padded to 16 B (Section III-B). */
    std::uint64_t efitEntryBytes = 16;

    /** AMT entry: initAddr tag (5 B) + Addr_base (4 B) + Addr_offsets
     * (1 B) = 10 B, padded to 12 B. */
    std::uint64_t amtEntryBytes = 12;

    /** referH saturation: counts beyond this treat the line as new
     * (Section III-B: 1 byte is enough; >99.9% of refs are < 1000). */
    std::uint32_t referHMax = 255;

    /** LRCU decay: every this many EFIT insertions, subtract
     * decayDelta from every cached reference count. */
    std::uint64_t decayPeriod = 4096;
    std::uint32_t decayDelta = 1;

    /** Use LRCU replacement (paper default); false falls back to LRU
     * for the Fig. 18 "w/o LRCU" ablation. */
    bool useLrcu = true;
};

/**
 * RAS (reliability/availability/serviceability) pipeline parameters.
 *
 * Default-disabled: with `enabled = false` every hook is a no-op and
 * the simulation is numerically identical to a build without the RAS
 * subsystem. With faults on, the pipeline is: inject (raw bit errors
 * plus wear-coupled stuck-at cells) -> correct (per-word SEC-DED on
 * every content read) -> scrub (demand + patrol) -> verify (PCM
 * write-verify with bounded retry) -> retire (remap to a spare region,
 * poison lost lines, account the dedup blast radius).
 */
struct RasConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** Raw bit-error probability per stored bit per line *read*
     * (transient/retention faults surfacing on access). */
    double readBer = 0.0;

    /** Raw bit-error probability per stored bit per line *write*
     * (programming noise). */
    double writeBer = 0.0;

    /** Line write count beyond which wear-coupled stuck-at faults can
     * form (0 disables the wear process). */
    std::uint64_t stuckAtOnsetWrites = 0;

    /** Probability per post-onset write that one more cell of the
     * line sticks at a fixed value. */
    double stuckAtPerWrite = 0.0;

    /** Write the corrected line + ECC back on every ECC-corrected
     * read (demand scrubbing). */
    bool demandScrub = true;

    /** Device writes between patrol-scrub sweeps (0 disables the
     * patrol scrubber). */
    std::uint64_t patrolIntervalWrites = 0;

    /** Resident lines scrubbed per patrol sweep. */
    std::uint64_t patrolLinesPerSweep = 8;

    /** Write-verify: read back every content write and rewrite up to
     * this many times while the stored line fails ECC (0 disables
     * write-verify). Persistent failures retire the line. */
    std::uint64_t writeVerifyRetries = 0;

    /** Extra nanoseconds of backoff charged per write-verify retry. */
    Tick writeVerifyBackoffNs = 0;

    /** Capacity of the spare region (in lines) that retired lines
     * remap into. */
    std::uint64_t spareRegionLines = 4096;

    /** Suspend deduplication once this many uncorrectable errors have
     * been seen (0 = never suspend). */
    std::uint64_t dedupSuspendUes = 0;
};

/**
 * Telemetry layer parameters ([telemetry] section).
 *
 * Everything here is host-side observability plumbing: it shapes what
 * gets exported, never the simulated timing, and is therefore not
 * serialized into run reports (reports pin simulated behaviour only).
 * Defaults keep every exporter off / at the pre-telemetry-v2 shape.
 */
struct TelemetryConfig
{
    /** Per-write event-trace ring capacity (`esd_sim -trace-out=`). */
    std::uint64_t traceRingCapacity = 65536;

    /** Record every Nth write's spans (1 = full-rate tracing). */
    std::uint64_t spanSampleEvery = 1;

    /** Max retained span events; later spans count as dropped. */
    std::uint64_t spanBufferCap = 1u << 20;

    /** Rewrite the Prometheus snapshot every N measured writes
     * (0 = one final snapshot when the run ends). */
    std::uint64_t metricsEveryWrites = 0;

    /** Serialize exact histogram buckets into latency summaries in
     * stats JSON. Off by default: golden reports stay byte-identical. */
    bool histogramBuckets = false;
};

/** What survives a power failure ([persistence] domain key). */
enum class PersistDomain
{
    /** ADR: only data that reached the PCM array persists; WPQ
     * entries and any buffered metadata-journal records are lost. */
    Adr,

    /** eADR: the write-pending queues are flushed on the power-fail
     * rail, so queued writes and the metadata write-back buffer
     * survive too. */
    Eadr,
};

/** Where inside a write an injected crash strikes
 * ([persistence] crash_phase key). */
enum class CrashPhase
{
    /** Before the write's first persist barrier: none of the write's
     * effects — data or journal — are durable. */
    PreBarrier,

    /** While the write's journal-record group is being flushed: a
     * PCG-chosen prefix of the group reaches the durable journal. */
    MidJournal,

    /** After the data line is written but before the metadata journal
     * group commits — the classic data/metadata torn window. */
    PostData,
};

/**
 * Crash-consistency layer parameters ([persistence] section).
 *
 * Default-disabled: with `enabled = false` no journal records are
 * emitted, no barrier latency is charged, and the simulation is
 * numerically identical to a build without the persistence subsystem.
 */
struct PersistenceConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** Persistence domain the platform guarantees. */
    PersistDomain domain = PersistDomain::Adr;

    /** Writes per group-commit epoch: journal records buffer and
     * commit (one persist barrier) every this many writes. */
    std::uint64_t epochWrites = 64;

    /** Committed epochs between checkpoint flushes; each checkpoint
     * folds the journal into the durable table images and truncates
     * the committed prefix. */
    std::uint64_t checkpointEpochs = 64;

    /** Nanoseconds one persist barrier (pcommit/fence+drain) costs. */
    Tick barrierNs = 30;

    /** Nanoseconds appending one journal record costs. */
    Tick journalAppendNs = 5;

    /** eADR metadata write-back buffer capacity in records; an epoch
     * whose record group would overflow it commits early. */
    std::uint64_t metadataBufferRecords = 256;

    /** Counter-recovery slack added on top of the probed/journaled
     * counter so un-journaled bumps can never cause pad reuse.
     * 0 = auto (ADR: epoch_writes, eADR: 1). */
    std::uint64_t counterSlack = 0;

    /** Max candidate counters probed per line during Osiris-style
     * counter recovery (decrypt + ECC check). */
    std::uint64_t counterProbeMax = 128;

    /** Inject a crash at this 1-based write index (0 = no injection). */
    std::uint64_t crashAtWrite = 0;

    /** Phase within the chosen write at which the crash strikes. */
    CrashPhase crashPhase = CrashPhase::PostData;
};

/**
 * Sharded write pipeline (exec/pipeline.hh): barrier cadence and queue
 * sizing for `esd_sim -workers=N`. Execution knobs only — none of
 * these change simulated results except epoch_records/sample_epochs,
 * which set where cross-shard barrier effects (dedup-suspension
 * propagation, merged interval rows) land in the trace; the worker
 * count itself never does.
 */
struct PipelineConfig
{
    /** Trace records per epoch (barrier cadence). */
    std::uint64_t epochRecords = 4096;

    /** Bounded per-shard queue window, in epochs: how far the trace
     * demux may run ahead of the slowest shard. */
    std::uint64_t queueEpochs = 4;

    /** Record one merged interval row every this many epochs
     * (0 = off). */
    std::uint64_t sampleEpochs = 0;
};

/** On-disk trace format ([trace] format key). `Auto` sniffs the input
 * file's first bytes (0x1f 0x8b = gzip, "ESDT" = binary, else text)
 * and means text on the capture side. */
enum class TraceFormat
{
    Auto,
    Text,
    Gzip,
    Binary,
};

/**
 * Trace frontend / capture parameters ([trace] section).
 *
 * Host-side ingest plumbing only: like [telemetry] and [pipeline],
 * nothing here changes simulated results (a trace replays identically
 * at any read_ahead), so the section is rendered by -dump-config but
 * never serialized into run reports.
 */
struct TraceConfig
{
    /** Capture-side format; input always sniffs the file content. */
    TraceFormat format = TraceFormat::Auto;

    /** Capture 64 B write payloads (true) or address-only records
     * whose content is re-synthesized deterministically on replay. */
    bool linePayload = true;

    /** Decoded-record read-ahead bound: the streaming frontend never
     * buffers more than this many records ([1, 1M]). */
    std::uint64_t readAhead = 4096;
};

/** Which line ECC codec the memory controller runs ([ecc] engine
 * key). Every engine packs its check data into the same 64-bit LineEcc
 * word, so stored-line and EFIT layouts never change with the code. */
enum class EccEngineKind
{
    /** Per-word Hamming(72,64) SEC-DED — the paper's baseline and the
     * default; bit-identical to the pre-pluggable codec. */
    Hamming,

    /** Four interleaved binary BCH(144,128) codewords, t=2 bit errors
     * each (two data words per codeword, 16 check bits). */
    Bch,

    /** Reed-Solomon RS(72,64) over GF(2^8): one codeword per line,
     * t=4 byte-symbol errors, 8 parity bytes. */
    Rs,
};

/**
 * ECC engine selection ([ecc] section).
 *
 * Default Hamming keeps every golden report byte-identical: the
 * section is only serialized into run reports when a non-default
 * engine is selected.
 */
struct EccConfig
{
    EccEngineKind engine = EccEngineKind::Hamming;
};

/** Core timing model: in-order, 1 IPC peak, stalling on LLC misses and
 * on memory-controller write-queue backpressure. */
struct CoreConfig
{
    /** Core clock in GHz (Table I: 2 GHz) — converts cycles to ns. */
    double clockGhz = 2.0;

    /** Base cycles per instruction when not stalled on memory. */
    double baseCpi = 1.0;
};

/** Top-level system configuration. */
struct SimConfig
{
    PcmConfig pcm;
    ChannelConfig channels;
    CacheConfig cache;
    CryptoCostConfig crypto;
    MetadataConfig metadata;
    RasConfig ras;
    EccConfig ecc;
    PersistenceConfig persist;
    PipelineConfig pipeline;
    CoreConfig core;
    TelemetryConfig telemetry;
    TraceConfig trace;

    /** Master random seed for any stochastic machinery. */
    std::uint64_t seed = 1;

    /** Render the Table I style configuration summary. */
    std::string summary() const;
};

} // namespace esd

#endif // ESD_COMMON_CONFIG_HH
