/**
 * @file
 * Central statistics registry — the ramulator2-style "register every
 * stat in one place" layer.
 *
 * Components keep owning their counters (so hot paths stay a bare
 * member increment) and register *references* under hierarchical
 * dot-separated names ("esd.efit.hits", "pcm.bank3.reads",
 * "scheme.write_latency"). The registry is then the single surface
 * the JSON report writer, the interval sampler, and any future
 * tooling read — no more per-bench ad-hoc field plumbing.
 *
 * Three stat kinds:
 *   - counter: a live reference to a Counter (monotonic u64);
 *   - gauge:   a callback returning the current value (occupancies,
 *              accumulated energies, hit rates);
 *   - latency: a live reference to a LatencyStat (serialized as a
 *              summary object, excluded from interval sampling).
 */

#ifndef ESD_COMMON_STAT_REGISTRY_HH
#define ESD_COMMON_STAT_REGISTRY_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

namespace esd
{

class JsonWriter;

/** The registry. Registration order is preserved; JSON output is
 * name-sorted so reports diff cleanly across code motion. */
class StatRegistry
{
  public:
    using GaugeFn = std::function<double()>;

    enum class Kind
    {
        Counter,
        Gauge,
        Latency
    };

    /** One registered statistic. */
    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::Counter;
        const Counter *counter = nullptr;
        GaugeFn gauge;
        const LatencyStat *latency = nullptr;
    };

    /**
     * Register a counter under @p name. The referenced Counter must
     * outlive the registry (components register members whose address
     * is stable across resetStats()). Duplicate names are a bug and
     * panic.
     */
    void addCounter(const std::string &name, const Counter &c,
                    const std::string &desc = "");

    /** Register a polled gauge. */
    void addGauge(const std::string &name, GaugeFn fn,
                  const std::string &desc = "");

    /** Register a latency distribution. */
    void addLatency(const std::string &name, const LatencyStat &s,
                    const std::string &desc = "");

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** All entries in registration order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Entry by name; nullptr when absent. */
    const Entry *find(const std::string &name) const;

    /**
     * Current numeric value of counter/gauge @p name.
     * Panics on unknown names and on latency stats (which have no
     * single scalar value).
     */
    double scalar(const std::string &name) const;

    /** Names of all scalar (counter + gauge) stats, registration
     * order — the interval sampler's column set. */
    std::vector<std::string> scalarNames() const;

    /** Current values aligned with scalarNames(). */
    std::vector<double> scalarValues() const;

    /**
     * Serialize every stat as one flat name-sorted JSON object:
     * counters/gauges as numbers, latency stats as summary objects
     * {count, mean, min, max, p50, p90, p99}. With
     * @p histogram_buckets the latency summaries additionally carry
     * the exact histogram as "buckets": [[lo, width, count], ...] —
     * off by default so reports stay byte-identical to pre-histogram
     * releases.
     */
    void writeJson(JsonWriter &w, bool histogram_buckets = false) const;

  private:
    Entry &add(const std::string &name, Kind kind,
               const std::string &desc);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

/** Serialize one latency stat as the registry's summary object; with
 * @p buckets the exact histogram rides along as
 * "buckets": [[lo, width, count], ...]. */
void writeLatencyJson(JsonWriter &w, const LatencyStat &s,
                      bool buckets = false);

} // namespace esd

#endif // ESD_COMMON_STAT_REGISTRY_HH
