/**
 * @file
 * gem5-style status and error reporting.
 *
 * Following the gem5 discipline:
 *   - panic():  an internal invariant was violated — a bug in this
 *               library. Aborts (core dump friendly).
 *   - fatal():  the simulation cannot continue because of a user error
 *               (bad configuration, malformed trace). Exits with code 1.
 *   - warn():   something works but not as well as it should.
 *   - inform(): normal operating status.
 */

#ifndef ESD_COMMON_LOGGING_HH
#define ESD_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace esd
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Number of warnings emitted so far (exposed for tests). */
std::uint64_t warnCount();

/** Suppress or re-enable inform()/warn() console output (benchmarks). */
void setQuiet(bool quiet);

} // namespace esd

#define esd_panic(...) \
    ::esd::detail::panicImpl(__FILE__, __LINE__, \
                             ::esd::detail::format(__VA_ARGS__))

#define esd_fatal(...) \
    ::esd::detail::fatalImpl(__FILE__, __LINE__, \
                             ::esd::detail::format(__VA_ARGS__))

#define esd_warn(...) \
    ::esd::detail::warnImpl(::esd::detail::format(__VA_ARGS__))

#define esd_inform(...) \
    ::esd::detail::informImpl(::esd::detail::format(__VA_ARGS__))

/** Invariant check that survives NDEBUG: used on internal consistency
 * conditions whose violation means a library bug. */
#define esd_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            esd_panic("assertion failed: %s", #cond); \
        } \
    } while (0)

#endif // ESD_COMMON_LOGGING_HH
