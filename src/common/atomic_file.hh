/**
 * @file
 * Crash-safe file publication: write the whole payload to a sibling
 * temporary file, flush it, and atomically rename() it over the
 * destination. A reader (Prometheus scraper, CI validator, esd_trace)
 * therefore sees either the previous complete snapshot or the new
 * complete snapshot — never a torn half-written file, even when the
 * writing process is killed mid-export.
 */

#ifndef ESD_COMMON_ATOMIC_FILE_HH
#define ESD_COMMON_ATOMIC_FILE_HH

#include <string>

namespace esd
{

/**
 * Atomically replace the file at @p path with @p contents.
 * @return true on success; false (with a counted warning) when the
 *         temp file cannot be written or the rename fails.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents);

} // namespace esd

#endif // ESD_COMMON_ATOMIC_FILE_HH
