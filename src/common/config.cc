#include "common/config.hh"

#include <sstream>

namespace esd
{

std::string
SimConfig::summary() const
{
    std::ostringstream os;
    os << "Processor and Cache\n"
       << "  CPU:            in-order, " << core.clockGhz << " GHz, base CPI "
       << core.baseCpi << "\n"
       << "  L1 cache:       " << cache.l1Size / 1024 << " KB, "
       << cache.l1Assoc << "-way, " << cache.l1Latency << "-cycle\n"
       << "  L2 cache:       " << cache.l2Size / 1024 << " KB, "
       << cache.l2Assoc << "-way, " << cache.l2Latency << "-cycle\n"
       << "  L3 cache:       " << cache.l3Size / (1024 * 1024) << " MB, "
       << cache.l3Assoc << "-way, " << cache.l3Latency << "-cycle\n"
       << "  Cache line:     " << kLineSize << " B\n"
       << "Main Memory (PCM)\n"
       << "  Capacity:       " << (pcm.capacityBytes >> 30) << " GB\n"
       << "  Latency R/W:    " << pcm.readLatency << " ns / "
       << pcm.writeLatency << " ns\n"
       << "  Energy R/W:     " << pcm.readEnergy / 1000.0 << " nJ / "
       << pcm.writeEnergy / 1000.0 << " nJ\n"
       << "  Banks:          " << pcm.totalBanks() << " (" << pcm.channels
       << " ch x " << pcm.ranksPerChannel << " rk x " << pcm.banksPerRank
       << " bk)\n"
       << "  Mem channels:   " << channels.count << ", WPQ depth "
       << (channels.wpqDepth ? channels.wpqDepth : pcm.writeQueueDepth)
       << "/ch, coalescing "
       << (channels.wpqCoalescing ? "on" : "off") << "\n"
       << "Metadata Cache\n"
       << "  EFIT:           " << metadata.efitCacheBytes / 1024 << " KB ("
       << (metadata.useLrcu ? "LRCU" : "LRU") << ")\n"
       << "  AMT:            " << metadata.amtCacheBytes / 1024 << " KB\n";
    return os.str();
}

} // namespace esd
