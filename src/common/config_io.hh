/**
 * @file
 * Configuration file support, mirroring the artifact's
 * `-ConfigFile=` workflow: a simple `key = value` format (one per
 * line, `#` comments) that overrides the Table I defaults.
 *
 * Recognised keys (dotted sections):
 *
 *   pcm.capacity_gb, pcm.read_latency, pcm.write_latency,
 *   pcm.read_energy_pj, pcm.write_energy_pj, pcm.channels,
 *   pcm.ranks, pcm.banks, pcm.write_queue_depth,
 *   pcm.row_buffer_lines, pcm.row_hit_read_latency, pcm.read_priority
 *   cache.l1_kb, cache.l2_kb, cache.l3_kb,
 *   cache.l1_assoc, cache.l2_assoc, cache.l3_assoc
 *   crypto.sha1_latency, crypto.md5_latency, crypto.crc_latency,
 *   crypto.encrypt_latency, crypto.compare_latency
 *   metadata.efit_kb, metadata.amt_kb, metadata.refer_h_max,
 *   metadata.decay_period, metadata.decay_delta, metadata.use_lrcu
 *   core.clock_ghz, core.base_cpi
 *   seed
 */

#ifndef ESD_COMMON_CONFIG_IO_HH
#define ESD_COMMON_CONFIG_IO_HH

#include <string>

#include "common/config.hh"

namespace esd
{

/** Apply one `key = value` assignment to @p cfg.
 *  @return false (with no change) when the key is unknown. */
bool applyConfigKey(SimConfig &cfg, const std::string &key,
                    const std::string &value);

/** Parse @p path over the defaults in @p cfg; fatal on I/O or syntax
 * errors, warns on unknown keys. */
void loadConfigFile(SimConfig &cfg, const std::string &path);

/** Render @p cfg in the same key=value format (round-trippable). */
std::string renderConfig(const SimConfig &cfg);

/** Config-file spelling of an ECC engine ("hamming"/"bch"/"rs"). */
const char *eccEngineName(EccEngineKind k);

/** Parse an ECC engine name; fatal on anything else. */
EccEngineKind parseEccEngine(const std::string &key, const std::string &v);

/** Config-file spelling of a persistence domain ("adr"/"eadr"). */
const char *persistDomainName(PersistDomain d);

/** Config-file spelling of a crash phase ("pre_barrier"/...). */
const char *crashPhaseName(CrashPhase p);

/** Parse a persistence domain name; fatal on anything else. */
PersistDomain parsePersistDomain(const std::string &key,
                                 const std::string &v);

/** Parse a crash-phase name; fatal on anything else. */
CrashPhase parseCrashPhase(const std::string &key, const std::string &v);

/** Config-file spelling of a trace format ("auto"/"text"/...). */
const char *traceFormatName(TraceFormat f);

/** Parse a trace-format name; fatal on anything else. */
TraceFormat parseTraceFormat(const std::string &key,
                             const std::string &v);

} // namespace esd

#endif // ESD_COMMON_CONFIG_IO_HH
