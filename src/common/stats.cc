#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace esd
{

void
LatencyStat::setReservoirCapacity(std::size_t cap)
{
    esd_assert(count_ == 0,
               "reservoir capacity must be set before sampling");
    cap_ = cap;
    if (cap_ > 0)
        samples_.reserve(cap_);
}

void
LatencyStat::ensureSorted() const
{
    if (sorted_)
        return;
    sortedSamples_ = samples_;
    std::sort(sortedSamples_.begin(), sortedSamples_.end());
    sorted_ = true;
}

double
LatencyStat::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    esd_assert(p >= 0.0 && p <= 100.0, "percentile out of range");
    ensureSorted();
    if (p <= 0.0)
        return sortedSamples_.front();
    // Nearest-rank: ceil(p/100 * N), 1-indexed.
    auto n = static_cast<std::size_t>(
        std::ceil(p / 100.0 * sortedSamples_.size()));
    n = std::min(std::max<std::size_t>(n, 1), sortedSamples_.size());
    return sortedSamples_[n - 1];
}

std::vector<std::pair<double, double>>
LatencyStat::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    for (std::size_t i = 1; i <= points; ++i) {
        double frac = static_cast<double>(i) / points;
        auto idx = static_cast<std::size_t>(
            std::ceil(frac * sortedSamples_.size()));
        idx = std::min(std::max<std::size_t>(idx, 1), sortedSamples_.size());
        out.emplace_back(sortedSamples_[idx - 1], frac);
    }
    return out;
}

} // namespace esd
