#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace esd
{

std::uint64_t
LogHistogram::valueAtRank(std::uint64_t rank) const
{
    if (total_ == 0)
        return 0;
    if (rank < 1)
        rank = 1;
    if (rank > total_)
        rank = total_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return valueAt(i);
    }
    // Unreachable: cum == total_ >= rank after the loop.
    return valueAt(counts_.size() - 1);
}

double
LogHistogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    esd_assert(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::uint64_t rank =
        p <= 0.0 ? 1
                 : static_cast<std::uint64_t>(
                       std::ceil(p / 100.0 * static_cast<double>(total_)));
    return static_cast<double>(valueAtRank(rank));
}

void
LogHistogram::merge(const LogHistogram &o)
{
    if (o.counts_.size() > counts_.size())
        counts_.resize(o.counts_.size(), 0);
    for (std::size_t i = 0; i < o.counts_.size(); ++i)
        counts_[i] += o.counts_[i];
    total_ += o.total_;
}

void
LatencyStat::setReservoirCapacity(std::size_t cap)
{
    esd_assert(count_ == 0,
               "reservoir capacity must be set before sampling");
    cap_ = cap;
    keepRaw_ = true;
    if (cap_ > 0)
        samples_.reserve(cap_);
}

double
LatencyStat::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    esd_assert(p >= 0.0 && p <= 100.0, "percentile out of range");
    return hist_.percentile(p);
}

std::vector<std::pair<double, double>>
LatencyStat::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (count_ == 0 || points == 0)
        return out;
    out.reserve(points);
    for (std::size_t i = 1; i <= points; ++i) {
        double frac = static_cast<double>(i) / points;
        auto rank = static_cast<std::uint64_t>(
            std::ceil(frac * static_cast<double>(count_)));
        out.emplace_back(
            static_cast<double>(hist_.valueAtRank(rank)), frac);
    }
    return out;
}

void
LatencyStat::merge(const LatencyStat &o)
{
    if (o.count_ == 0)
        return;
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_)
        min_ = o.min_;
    if (o.max_ > max_)
        max_ = o.max_;
    hist_.merge(o.hist_);
}

} // namespace esd
