#include "common/flat_map.hh"

#include "common/logging.hh"

namespace esd
{

std::uint64_t
flatMapCapacityFor(std::uint64_t n)
{
    std::uint64_t cap = 8;
    while (cap < n) {
        cap <<= 1;
        esd_assert(cap != 0, "flat map capacity overflow");
    }
    return cap;
}

void *
BumpArena::allocate(std::size_t bytes, std::size_t align)
{
    esd_assert(bytes > 0 && (align & (align - 1)) == 0,
               "bad arena allocation request");
    Chunk *c = chunks_.empty() ? nullptr : &chunks_.back();
    std::size_t aligned = c ? (c->used + align - 1) & ~(align - 1) : 0;
    if (!c || aligned + bytes > c->cap) {
        // Geometric growth, starting small: most arenas (per-line
        // stuck-at sets) stay tiny for realistic fault rates.
        std::size_t cap = chunks_.empty() ? 4096 : chunks_.back().cap * 2;
        while (cap < bytes + align)
            cap *= 2;
        Chunk fresh;
        fresh.data = std::make_unique<std::uint8_t[]>(cap);
        fresh.cap = cap;
        chunks_.push_back(std::move(fresh));
        c = &chunks_.back();
        aligned = 0;
        auto base = reinterpret_cast<std::uintptr_t>(c->data.get());
        aligned = ((base + align - 1) & ~(align - 1)) - base;
    }
    void *out = c->data.get() + aligned;
    c->used = aligned + bytes;
    allocated_ += bytes;
    return out;
}

void
BumpArena::release()
{
    chunks_.clear();
    allocated_ = 0;
}

} // namespace esd
