/**
 * @file
 * Fig. 14 — IPC normalised to Baseline (paper: ESD up to 2.4x vs
 * Baseline; Dedup_SHA1 decreases IPC on most apps).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    bench::parseBenchArgs(argc, argv);
    bench::warmRunCache(bench::appNames(), allSchemeKinds());
    bench::printHeader("Figure 14", "Relative IPC (scheme / Baseline)");

    TablePrinter table({"app", "base-IPC", "Dedup_SHA1", "DeWrite",
                        "ESD"});
    std::vector<double> rel[3];
    const SchemeKind kinds[3] = {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                                 SchemeKind::Esd};

    for (const std::string &app : bench::appNames()) {
        double base = bench::cachedRun(app, SchemeKind::Baseline).ipc;
        std::vector<std::string> row{app, TablePrinter::num(base, 3)};
        for (int i = 0; i < 3; ++i) {
            double mine = bench::cachedRun(app, kinds[i]).ipc;
            double s = base > 0 ? mine / base : 0;
            rel[i].push_back(s);
            row.push_back(TablePrinter::num(s, 2) + "x");
        }
        table.addRow(row);
    }
    table.addRow({"geomean", "-",
                  TablePrinter::num(bench::geomean(rel[0]), 2) + "x",
                  TablePrinter::num(bench::geomean(rel[1]), 2) + "x",
                  TablePrinter::num(bench::geomean(rel[2]), 2) + "x"});
    table.print();
    std::cout << "\npaper shape: ESD improves IPC on all apps (up to "
                 "2.4x); Dedup_SHA1 hurts IPC on most apps\n";
    return 0;
}
