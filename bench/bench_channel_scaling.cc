/**
 * @file
 * Channel scaling — scheme x channel-count sweep on the write-heavy,
 * memory-bound lbm profile. More channels spread the write stream over
 * independent WPQs and bank arrays, so mean write completion time
 * drops and IPC recovers; WPQ coalescing on top absorbs re-writes to
 * still-queued lines. Baseline gains the most (it writes every line);
 * the dedup schemes start from less write pressure.
 *
 * ESD_BENCH_JSON writes the scheme x channels result grid as one
 * machine-readable report.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "core/run_report.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Channel scaling",
                       "write latency and IPC vs memory channels (lbm)");

    const unsigned kChannels[] = {1, 2, 4, 8};
    const SchemeKind kKinds[] = {SchemeKind::Baseline, SchemeKind::DedupSha1,
                                 SchemeKind::DeWrite, SchemeKind::Esd,
                                 SchemeKind::EsdFull, SchemeKind::EsdPlus};

    struct Cell
    {
        SchemeKind kind;
        unsigned channels;
        RunResult result;
    };
    std::vector<Cell> grid;

    const AppProfile &app = findApp("lbm");
    for (SchemeKind kind : kKinds) {
        for (unsigned ch : kChannels) {
            SimConfig cfg = bench::benchConfig();
            cfg.channels.count = ch;
            cfg.channels.wpqCoalescing = true;
            SyntheticWorkload trace(app, cfg.seed);
            grid.push_back(Cell{kind, ch,
                                runWorkload(cfg, kind, trace,
                                            bench::benchRecords(),
                                            bench::benchWarmup())});
        }
    }

    TablePrinter table({"scheme", "ch", "write mean ns", "write p99 ns",
                        "coalesced", "IPC"});
    for (const Cell &c : grid) {
        table.addRow({c.result.schemeName, std::to_string(c.channels),
                      TablePrinter::num(c.result.writeLatency.mean(), 1),
                      TablePrinter::num(
                          c.result.writeLatency.percentile(99), 0),
                      std::to_string(c.result.nvmWritesCoalesced),
                      TablePrinter::num(c.result.ipc, 3)});
    }
    table.print();

    // Headline: how much the channel spread alone buys each scheme.
    std::cout << "\nwrite-latency speedup, 1 -> 4 channels:\n";
    for (SchemeKind kind : kKinds) {
        double one = 0, four = 0;
        for (const Cell &c : grid) {
            if (c.kind != kind)
                continue;
            if (c.channels == 1)
                one = c.result.writeLatency.mean();
            if (c.channels == 4)
                four = c.result.writeLatency.mean();
        }
        std::cout << "  " << schemeName(kind) << ": "
                  << TablePrinter::num(four > 0 ? one / four : 0, 2)
                  << "x\n";
    }

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "bench: cannot open ESD_BENCH_JSON path '"
                      << path << "'\n";
            return 1;
        }
        JsonWriter w(out);
        w.beginObject();
        w.kv("records_per_run", bench::benchRecords());
        w.kv("warmup", bench::benchWarmup());
        w.kv("app", std::string("lbm"));
        w.key("runs");
        w.beginArray();
        for (const Cell &c : grid) {
            w.beginObject();
            w.kv("scheme_kind", static_cast<int>(c.kind));
            w.kv("channels", static_cast<std::uint64_t>(c.channels));
            w.key("result");
            writeRunResultJson(w, c.result);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
        std::cerr << "bench: wrote " << grid.size() << " runs to " << path
                  << "\n";
    }
    return 0;
}
