/**
 * @file
 * Fig. 16 — energy consumption normalised to Baseline, with the
 * component decomposition (device read/write, fingerprint hashing,
 * encryption, metadata).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    bench::parseBenchArgs(argc, argv);
    bench::warmRunCache(bench::appNames(), allSchemeKinds());
    bench::printHeader("Figure 16",
                       "Energy normalised to Baseline (< 1 is better)");

    TablePrinter table({"app", "base(uJ)", "Dedup_SHA1", "DeWrite",
                        "ESD"});
    double sum[3] = {0, 0, 0};
    const SchemeKind kinds[3] = {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                                 SchemeKind::Esd};

    for (const std::string &app : bench::appNames()) {
        double base =
            bench::cachedRun(app, SchemeKind::Baseline).energy.total();
        std::vector<std::string> row{
            app, TablePrinter::num(base / 1e6, 1)};
        for (int i = 0; i < 3; ++i) {
            double mine = bench::cachedRun(app, kinds[i]).energy.total();
            double s = base > 0 ? mine / base : 0;
            sum[i] += s;
            row.push_back(TablePrinter::num(s, 3));
        }
        table.addRow(row);
    }
    std::size_t n = bench::appNames().size();
    table.addRow({"average", "-", TablePrinter::num(sum[0] / n, 3),
                  TablePrinter::num(sum[1] / n, 3),
                  TablePrinter::num(sum[2] / n, 3)});
    table.print();

    // Component decomposition, aggregated over the suite.
    std::cout << "\nAggregate energy decomposition (uJ):\n";
    TablePrinter comp({"scheme", "dev-read", "dev-write", "hash",
                       "crypto", "metadata", "total"});
    for (SchemeKind k : allSchemeKinds()) {
        EnergyBreakdown e;
        for (const std::string &app : bench::appNames()) {
            const EnergyBreakdown &a = bench::cachedRun(app, k).energy;
            e.deviceRead += a.deviceRead;
            e.deviceWrite += a.deviceWrite;
            e.hash += a.hash;
            e.crypto += a.crypto;
            e.metadata += a.metadata;
        }
        comp.addRow({schemeName(k), TablePrinter::num(e.deviceRead / 1e6, 1),
                     TablePrinter::num(e.deviceWrite / 1e6, 1),
                     TablePrinter::num(e.hash / 1e6, 1),
                     TablePrinter::num(e.crypto / 1e6, 1),
                     TablePrinter::num(e.metadata / 1e6, 1),
                     TablePrinter::num(e.total() / 1e6, 1)});
    }
    comp.print();
    std::cout << "\npaper shape: ESD lowest (no hash energy, no fp "
                 "NVMM traffic); Dedup_SHA1 pays heavy hash energy\n";
    return 0;
}
