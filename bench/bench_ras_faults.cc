/**
 * @file
 * RAS extension: reliability behaviour of every scheme under an online
 * media-fault campaign. For each (scheme, raw BER) point one workload
 * runs with fault injection, demand + patrol scrubbing, and
 * write-verify enabled; the table reports how many faults the RAS
 * pipeline corrected, how many lines it retired, what slipped through
 * as silent data corruption, and the refcount-weighted dedup blast
 * radius of the uncorrectable errors — the reliability cost unique to
 * deduplicated memory, where one corrupt unique line loses every
 * logical line mapped onto it.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

struct RasPoint
{
    RunResult result;
    std::uint64_t corrected = 0;
    std::uint64_t ue = 0;
    std::uint64_t retired = 0;
    std::uint64_t sdc = 0;
    std::uint64_t blast = 0;
    std::uint64_t injected = 0;
};

RasPoint
run(const std::string &app, SchemeKind kind, double ber)
{
    SimConfig cfg = bench::benchConfig();
    cfg.ras.enabled = true;
    cfg.ras.readBer = ber;
    cfg.ras.writeBer = ber / 10;
    cfg.ras.demandScrub = true;
    cfg.ras.patrolIntervalWrites = 512;
    cfg.ras.patrolLinesPerSweep = 8;
    cfg.ras.writeVerifyRetries = 2;
    cfg.ras.writeVerifyBackoffNs = 100;

    SyntheticWorkload trace(findApp(app), 1);
    Simulator sim(cfg, kind);
    RasPoint p;
    p.result = sim.run(trace, bench::benchRecords(), bench::benchWarmup());

    const SchemeStats &ss = sim.scheme().stats();
    const RasStats &rs = sim.scheme().ras().stats();
    const FaultModelStats &fs = sim.scheme().ras().faults().stats();
    p.corrected =
        ss.eccCorrectedReads.value() + rs.patrolCorrected.value();
    p.ue = rs.ueEvents.value();
    p.retired = rs.linesRetired.value();
    p.sdc = ss.sdcEvents.value();
    p.blast = rs.blastRadiusRefs.value();
    p.injected = fs.bitFlipsRead.value() + fs.bitFlipsWrite.value();
    return p;
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader(
        "RAS fault campaign",
        "per-scheme fault tolerance vs raw BER (gcc workload): "
        "injected/corrected faults, retired lines, UEs, silent data "
        "corruptions, and the dedup blast radius");

    const double bers[] = {0.0, 1e-6, 1e-5, 1e-4};

    TablePrinter table({"scheme", "read-BER", "injected", "corrected",
                        "retired", "UE", "SDC", "blast-radius",
                        "dedup-rate"});
    for (SchemeKind k : allSchemeKinds()) {
        for (double ber : bers) {
            RasPoint p = run("gcc", k, ber);
            table.addRow({schemeName(k), TablePrinter::num(ber, 6),
                          std::to_string(p.injected),
                          std::to_string(p.corrected),
                          std::to_string(p.retired),
                          std::to_string(p.ue), std::to_string(p.sdc),
                          std::to_string(p.blast),
                          TablePrinter::pct(
                              p.result.writeReduction())});
        }
    }
    table.print();
    std::cout
        << "\nexpected: at BER 0 every RAS column is zero and each "
           "scheme reproduces its fault-free dedup rate. As BER grows, "
           "corrected counts track injected faults (scrubbing keeps "
           "single faults from accumulating into double faults), SDC "
           "stays far below the injected count, and the blast-radius "
           "column exceeds the UE column only for dedup schemes — "
           "refcounts amplify each lost unique line.\n";
    return 0;
}
