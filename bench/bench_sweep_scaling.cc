/**
 * @file
 * Sweep-engine scaling: wall-clock of one fixed 24-point grid
 * (4 apps x 6 schemes) at -jobs in {1, 2, 4, 8}, with per-job
 * simulator throughput and a byte-identity cross-check of the merged
 * reports — the "every future figure regenerates in 1/N the time"
 * claim, measured.
 *
 * Usage: bench_sweep_scaling [-jobs=N]   (N caps the sweep points)
 * ESD_BENCH_JSON emits the {jobs, wall_s, speedup, writes_per_s} grid.
 */

#include <chrono>
#include <sstream>
#include <thread>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/json.hh"
#include "exec/sweep_runner.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    using namespace esd::exec;

    bench::parseBenchArgs(argc, argv);
    bench::printHeader("Sweep scaling",
                       "Parallel sweep wall-clock, 4 apps x 6 schemes "
                       "= 24 jobs, jobs in {1,2,4,8}");

    const std::vector<std::string> apps = {"mcf", "lbm", "gcc",
                                           "deepsjeng"};
    std::vector<SweepJob> grid;
    for (const std::string &app : apps) {
        for (SchemeKind k : allSchemeKindsExtended()) {
            SweepJob job;
            job.app = app;
            job.scheme = k;
            job.cfg = bench::benchConfig();
            job.cfg.seed = deriveJobSeed(1, grid.size());
            job.records = bench::benchRecords();
            job.warmup = bench::benchWarmup();
            grid.push_back(std::move(job));
        }
    }

    std::vector<unsigned> levels = {1, 2, 4, 8};
    if (bench::benchJobs() > 1)
        levels = {1, bench::benchJobs()};

    TablePrinter table({"jobs", "wall_s", "speedup", "agg_writes/s",
                        "mean_job_writes/s"});
    double base_wall = 0;
    std::string base_report;
    struct Row
    {
        unsigned jobs;
        double wall, speedup, aggWps, meanWps;
    };
    std::vector<Row> rows;

    for (unsigned jobs : levels) {
        SweepRunner runner(jobs);
        auto t0 = std::chrono::steady_clock::now();
        std::vector<SweepOutcome> outcomes = runner.run(grid);
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (base_wall == 0)
            base_wall = wall;

        double total_writes = 0, mean_wps = 0;
        for (const SweepOutcome &o : outcomes) {
            total_writes += static_cast<double>(o.result.logicalWrites);
            if (o.hostSeconds > 0)
                mean_wps += static_cast<double>(o.result.logicalWrites) /
                            o.hostSeconds;
        }
        mean_wps /= outcomes.empty() ? 1 : outcomes.size();

        std::ostringstream doc;
        writeSweepReport(doc, outcomes);
        if (base_report.empty()) {
            base_report = doc.str();
        } else if (doc.str() != base_report) {
            std::cout << "DETERMINISM VIOLATION at jobs=" << jobs
                      << ": "
                      << firstJsonDivergence(base_report, doc.str())
                      << "\n";
            return 1;
        }

        Row row{jobs, wall, base_wall / wall,
                wall > 0 ? total_writes / wall : 0, mean_wps};
        rows.push_back(row);
        table.addRow({std::to_string(jobs), TablePrinter::num(wall, 2),
                      TablePrinter::num(row.speedup, 2),
                      TablePrinter::num(row.aggWps, 0),
                      TablePrinter::num(row.meanWps, 0)});
    }
    table.print();
    std::cout << "\nmerged reports byte-identical across all job "
                 "counts; speedup is host-parallelism bound "
                 "(hardware threads: "
              << std::thread::hardware_concurrency() << ")\n";

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            JsonWriter w(out);
            w.beginObject();
            w.kv("records_per_run", bench::benchRecords());
            w.kv("warmup", bench::benchWarmup());
            w.kv("grid_jobs",
                 static_cast<std::uint64_t>(grid.size()));
            w.key("scaling");
            w.beginArray();
            for (const Row &r : rows) {
                w.beginObject();
                w.kv("jobs", static_cast<std::uint64_t>(r.jobs));
                w.kv("wall_s", r.wall);
                w.kv("speedup", r.speedup);
                w.kv("agg_writes_per_s", r.aggWps);
                w.kv("mean_job_writes_per_s", r.meanWps);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            out << "\n";
            std::cerr << "bench: wrote scaling grid to " << path
                      << "\n";
        }
    }
    return 0;
}
