/**
 * @file
 * Table I — the system configuration used by every experiment.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Table I", "System configuration parameters");
    std::cout << bench::benchConfig().summary() << "\n";
    std::cout << "Crypto cost model\n"
              << "  SHA-1:          "
              << bench::benchConfig().crypto.sha1Latency << " ns / line\n"
              << "  MD5:            "
              << bench::benchConfig().crypto.md5Latency << " ns / line\n"
              << "  CRC (DeWrite):  "
              << bench::benchConfig().crypto.crcLatency << " ns / line\n"
              << "  CME apply:      "
              << bench::benchConfig().crypto.encryptLatency
              << " ns / line\n"
              << "  ECC intercept:  "
              << bench::benchConfig().crypto.eccLatency << " ns / line\n";
    return 0;
}
