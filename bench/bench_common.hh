/**
 * @file
 * Shared machinery for the figure benches: one simulated run per
 * (application, scheme) pair, memoised within the binary, with record
 * counts overridable through the environment:
 *
 *   ESD_BENCH_RECORDS  total trace records per run (default 60000)
 *   ESD_BENCH_WARMUP   leading records excluded from stats (default 12000)
 *   ESD_BENCH_JSON     path: at exit, dump every run this bench
 *                      performed as one machine-readable JSON report
 *   ESD_BENCH_JOBS     worker threads for warmRunCache() grids
 *                      (default 1; the -jobs=N flag overrides)
 *
 * Every bench prints the same rows/series as the corresponding paper
 * figure; EXPERIMENTS.md records the paper-vs-measured comparison.
 */

#ifndef ESD_BENCH_BENCH_COMMON_HH
#define ESD_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/workloads.hh"

namespace esd::bench
{

/** The evaluation configuration used by all figure benches. */
SimConfig benchConfig();

/** Records per run (env-overridable). */
std::uint64_t benchRecords();

/** Warm-up records per run (env-overridable). */
std::uint64_t benchWarmup();

/** Run (or fetch the memoised run of) @p app under @p kind. */
const RunResult &cachedRun(const std::string &app, SchemeKind kind);

/** Worker threads for warmRunCache (ESD_BENCH_JOBS / -jobs=N). */
unsigned benchJobs();

/** Parse bench CLI flags (-jobs=N); fatal on anything else. */
void parseBenchArgs(int argc, char **argv);

/**
 * Pre-populate the run cache for the @p apps x @p kinds grid on a
 * benchJobs()-wide thread pool. Each grid point runs exactly the
 * simulation cachedRun would have run serially (same config, seed,
 * records), so later cachedRun calls hit the cache with bit-identical
 * results — the table the bench prints does not depend on -jobs.
 */
void warmRunCache(const std::vector<std::string> &apps,
                  const std::vector<SchemeKind> &kinds);

/** Names of all 20 paper applications, SPEC first. */
std::vector<std::string> appNames();

/** Geometric mean helper (speedup summaries). */
double geomean(const std::vector<double> &values);

/** Print the standard bench header. */
void printHeader(const std::string &title, const std::string &what);

} // namespace esd::bench

#endif // ESD_BENCH_BENCH_COMMON_HH
