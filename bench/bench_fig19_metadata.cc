/**
 * @file
 * Fig. 19 — NVMM metadata space overhead normalised to Dedup_SHA1
 * (paper: ESD cuts metadata by 81.2% vs Dedup_SHA1 and 60.9% vs
 * DeWrite; ESD stores no fingerprints in NVMM at all).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 19",
                       "Metadata NVMM footprint normalised to "
                       "Dedup_SHA1");

    double sum_bytes[4] = {0, 0, 0, 0};
    std::uint64_t sum_data = 0;
    TablePrinter table({"app", "Dedup_SHA1(KB)", "DeWrite(KB)",
                        "ESD(KB)", "ESD/SHA1"});
    for (const std::string &app : bench::appNames()) {
        double b[4];
        for (int i = 0; i < 4; ++i) {
            SchemeKind k = allSchemeKinds()[i];
            b[i] = static_cast<double>(
                bench::cachedRun(app, k).metadataNvmBytes);
            sum_bytes[i] += b[i];
        }
        sum_data +=
            bench::cachedRun(app, SchemeKind::Esd).uniqueLinesStored *
            kLineSize;
        table.addRow({app, TablePrinter::num(b[1] / 1024, 1),
                      TablePrinter::num(b[2] / 1024, 1),
                      TablePrinter::num(b[3] / 1024, 1),
                      TablePrinter::num(b[1] > 0 ? b[3] / b[1] : 0, 3)});
    }
    table.addRow({"total", TablePrinter::num(sum_bytes[1] / 1024, 1),
                  TablePrinter::num(sum_bytes[2] / 1024, 1),
                  TablePrinter::num(sum_bytes[3] / 1024, 1),
                  TablePrinter::num(sum_bytes[3] / sum_bytes[1], 3)});
    table.print();

    std::cout << "\nNormalised to Dedup_SHA1: DeWrite="
              << TablePrinter::num(sum_bytes[2] / sum_bytes[1], 3)
              << " ESD="
              << TablePrinter::num(sum_bytes[3] / sum_bytes[1], 3)
              << " (reductions: ESD vs SHA1 "
              << TablePrinter::pct(1 - sum_bytes[3] / sum_bytes[1])
              << ", ESD vs DeWrite "
              << TablePrinter::pct(1 - sum_bytes[3] / sum_bytes[2])
              << ")\n";
    std::cout << "metadata vs stored data (ESD): "
              << TablePrinter::pct(sum_bytes[3] /
                                   static_cast<double>(sum_data))
              << "\npaper: ESD reduces metadata by 81.2% vs Dedup_SHA1 "
                 "and 60.9% vs DeWrite\n";
    return 0;
}
