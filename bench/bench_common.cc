#include "bench_common.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/run_report.hh"
#include "exec/sweep_runner.hh"

namespace esd::bench
{

SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.ranksPerChannel = 1;
    cfg.pcm.banksPerRank = 4;
    cfg.pcm.writeQueueDepth = 64;
    return cfg;
}

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(v, &end, 10);
    return (end && *end == '\0' && parsed > 0) ? parsed : fallback;
}

} // namespace

std::uint64_t
benchRecords()
{
    static const std::uint64_t v = envOr("ESD_BENCH_RECORDS", 250000);
    return v;
}

std::uint64_t
benchWarmup()
{
    static const std::uint64_t v =
        std::min(envOr("ESD_BENCH_WARMUP", 50000), benchRecords() / 2);
    return v;
}

namespace
{

/** Every run this bench binary performed, in execution order, for the
 * ESD_BENCH_JSON report: {"app": ..., "result": {...}}. */
std::map<std::pair<std::string, int>, RunResult> &
runCache()
{
    static std::map<std::pair<std::string, int>, RunResult> cache;
    return cache;
}

/** Keys the bench actually consumed through cachedRun(). The JSON
 * dump is restricted to these so pre-warming extra (app, scheme)
 * pairs never changes the ESD_BENCH_JSON artifact. */
std::set<std::pair<std::string, int>> &
usedKeys()
{
    static std::set<std::pair<std::string, int>> used;
    return used;
}

void
dumpBenchJson()
{
    const char *path = std::getenv("ESD_BENCH_JSON");
    if (!path || !*path)
        return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot open ESD_BENCH_JSON path '" << path
                  << "'\n";
        return;
    }
    JsonWriter w(out);
    w.beginObject();
    w.kv("records_per_run", benchRecords());
    w.kv("warmup", benchWarmup());
    w.key("config");
    writeConfigJson(w, benchConfig());
    w.key("runs");
    w.beginArray();
    std::size_t dumped = 0;
    for (const auto &[key, r] : runCache()) {
        if (!usedKeys().count(key))
            continue;
        ++dumped;
        w.beginObject();
        w.kv("app", key.first);
        w.kv("scheme_kind", key.second);
        w.key("result");
        writeRunResultJson(w, r);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    std::cerr << "bench: wrote " << dumped << " runs to " << path
              << "\n";
}

} // namespace

namespace
{

void
ensureDumpRegistered()
{
    static const bool registered = []
    {
        // Construct the cache first: exit-time teardown is LIFO, so
        // the dump handler then runs while the cache is still alive.
        runCache();
        usedKeys();
        std::atexit(dumpBenchJson);
        return true;
    }();
    (void)registered;
}

unsigned benchJobsOverride = 0;  // set by -jobs=N

} // namespace

const RunResult &
cachedRun(const std::string &app, SchemeKind kind)
{
    ensureDumpRegistered();

    auto key = std::make_pair(app, static_cast<int>(kind));
    usedKeys().insert(key);
    auto it = runCache().find(key);
    if (it != runCache().end())
        return it->second;
    SyntheticWorkload trace(findApp(app), /*global_seed=*/1);
    RunResult r = runWorkload(benchConfig(), kind, trace, benchRecords(),
                              benchWarmup());
    return runCache().emplace(key, std::move(r)).first->second;
}

unsigned
benchJobs()
{
    if (benchJobsOverride > 0)
        return benchJobsOverride;
    static const auto v =
        static_cast<unsigned>(envOr("ESD_BENCH_JOBS", 1));
    return v;
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-jobs=", 0) == 0) {
            benchJobsOverride =
                static_cast<unsigned>(std::stoul(arg.substr(6)));
        } else {
            esd_fatal("unknown bench argument '%s' (supported: "
                      "-jobs=N)", arg.c_str());
        }
    }
}

void
warmRunCache(const std::vector<std::string> &apps,
             const std::vector<SchemeKind> &kinds)
{
    ensureDumpRegistered();

    std::vector<exec::SweepJob> jobs;
    for (const std::string &app : apps) {
        for (SchemeKind k : kinds) {
            if (runCache().count({app, static_cast<int>(k)}))
                continue;
            exec::SweepJob job;
            job.app = app;
            job.scheme = k;
            job.cfg = benchConfig();
            // Matches cachedRun's serial path exactly: global seed 1.
            job.cfg.seed = 1;
            job.records = benchRecords();
            job.warmup = benchWarmup();
            jobs.push_back(std::move(job));
        }
    }
    if (jobs.size() < 2 || benchJobs() <= 1)
        return;  // the lazy cachedRun path handles these fine

    exec::SweepRunner runner(benchJobs());
    std::vector<exec::SweepOutcome> outcomes = runner.run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        runCache().emplace(
            std::make_pair(jobs[i].app,
                           static_cast<int>(jobs[i].scheme)),
            std::move(outcomes[i].result));
    }
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const AppProfile &p : paperApps())
        names.push_back(p.name);
    return names;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0;
    for (double v : values)
        acc += std::log(std::max(v, 1e-12));
    return std::exp(acc / values.size());
}

void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "==== " << title << " ====\n"
              << what << "\n"
              << "records/run=" << benchRecords()
              << " warmup=" << benchWarmup() << "\n\n";
}

} // namespace esd::bench
