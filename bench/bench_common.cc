#include "bench_common.hh"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>

namespace esd::bench
{

SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.ranksPerChannel = 1;
    cfg.pcm.banksPerRank = 4;
    cfg.pcm.writeQueueDepth = 64;
    return cfg;
}

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(v, &end, 10);
    return (end && *end == '\0' && parsed > 0) ? parsed : fallback;
}

} // namespace

std::uint64_t
benchRecords()
{
    static const std::uint64_t v = envOr("ESD_BENCH_RECORDS", 250000);
    return v;
}

std::uint64_t
benchWarmup()
{
    static const std::uint64_t v =
        std::min(envOr("ESD_BENCH_WARMUP", 50000), benchRecords() / 2);
    return v;
}

const RunResult &
cachedRun(const std::string &app, SchemeKind kind)
{
    static std::map<std::pair<std::string, int>, RunResult> cache;
    auto key = std::make_pair(app, static_cast<int>(kind));
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    SyntheticWorkload trace(findApp(app), /*global_seed=*/1);
    RunResult r = runWorkload(benchConfig(), kind, trace, benchRecords(),
                              benchWarmup());
    return cache.emplace(key, std::move(r)).first->second;
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const AppProfile &p : paperApps())
        names.push_back(p.name);
    return names;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0;
    for (double v : values)
        acc += std::log(std::max(v, 1e-12));
    return std::exp(acc / values.size());
}

void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "==== " << title << " ====\n"
              << what << "\n"
              << "records/run=" << benchRecords()
              << " warmup=" << benchWarmup() << "\n\n";
}

} // namespace esd::bench
