#include "bench_common.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>

#include "common/json.hh"
#include "core/run_report.hh"

namespace esd::bench
{

SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.ranksPerChannel = 1;
    cfg.pcm.banksPerRank = 4;
    cfg.pcm.writeQueueDepth = 64;
    return cfg;
}

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(v, &end, 10);
    return (end && *end == '\0' && parsed > 0) ? parsed : fallback;
}

} // namespace

std::uint64_t
benchRecords()
{
    static const std::uint64_t v = envOr("ESD_BENCH_RECORDS", 250000);
    return v;
}

std::uint64_t
benchWarmup()
{
    static const std::uint64_t v =
        std::min(envOr("ESD_BENCH_WARMUP", 50000), benchRecords() / 2);
    return v;
}

namespace
{

/** Every run this bench binary performed, in execution order, for the
 * ESD_BENCH_JSON report: {"app": ..., "result": {...}}. */
std::map<std::pair<std::string, int>, RunResult> &
runCache()
{
    static std::map<std::pair<std::string, int>, RunResult> cache;
    return cache;
}

void
dumpBenchJson()
{
    const char *path = std::getenv("ESD_BENCH_JSON");
    if (!path || !*path)
        return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot open ESD_BENCH_JSON path '" << path
                  << "'\n";
        return;
    }
    JsonWriter w(out);
    w.beginObject();
    w.kv("records_per_run", benchRecords());
    w.kv("warmup", benchWarmup());
    w.key("config");
    writeConfigJson(w, benchConfig());
    w.key("runs");
    w.beginArray();
    for (const auto &[key, r] : runCache()) {
        w.beginObject();
        w.kv("app", key.first);
        w.kv("scheme_kind", key.second);
        w.key("result");
        writeRunResultJson(w, r);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    std::cerr << "bench: wrote " << runCache().size() << " runs to "
              << path << "\n";
}

} // namespace

const RunResult &
cachedRun(const std::string &app, SchemeKind kind)
{
    static const bool registered = []
    {
        // Construct the cache first: exit-time teardown is LIFO, so
        // the dump handler then runs while the cache is still alive.
        runCache();
        std::atexit(dumpBenchJson);
        return true;
    }();
    (void)registered;

    auto key = std::make_pair(app, static_cast<int>(kind));
    auto it = runCache().find(key);
    if (it != runCache().end())
        return it->second;
    SyntheticWorkload trace(findApp(app), /*global_seed=*/1);
    RunResult r = runWorkload(benchConfig(), kind, trace, benchRecords(),
                              benchWarmup());
    return runCache().emplace(key, std::move(r)).first->second;
}

std::vector<std::string>
appNames()
{
    std::vector<std::string> names;
    for (const AppProfile &p : paperApps())
        names.push_back(p.name);
    return names;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0;
    for (double v : values)
        acc += std::log(std::max(v, 1e-12));
    return std::exp(acc / values.size());
}

void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "==== " << title << " ====\n"
              << what << "\n"
              << "records/run=" << benchRecords()
              << " warmup=" << benchWarmup() << "\n\n";
}

} // namespace esd::bench
