/**
 * @file
 * Crash-consistency extension: what metadata journaling costs each
 * scheme. For every scheme the gcc workload runs three times — no
 * persistence, ADR, and eADR — and the table reports the simulated
 * write-latency delta plus the journal's own work (records appended,
 * epoch commits, persist-barrier and WPQ-drain time). ADR pays the
 * drain-before-commit ordering rule; eADR's durable flush buffer
 * makes the barrier nearly free, so the two rows bound the cost of
 * the persistence guarantee on real platforms.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/config_io.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

struct PersistPoint
{
    RunResult result;
    std::uint64_t records = 0;
    std::uint64_t commits = 0;
    std::uint64_t barrierNs = 0;
    std::uint64_t drainNs = 0;
};

PersistPoint
run(const std::string &app, SchemeKind kind, const char *domain)
{
    SimConfig cfg = bench::benchConfig();
    if (domain) {
        cfg.persist.enabled = true;
        cfg.persist.domain = parsePersistDomain("domain", domain);
    }

    SyntheticWorkload trace(findApp(app), 1);
    Simulator sim(cfg, kind);
    PersistPoint p;
    p.result =
        sim.run(trace, bench::benchRecords(), bench::benchWarmup());
    if (const PersistenceManager *pm = sim.persistence()) {
        p.records = pm->stats().journalRecords.value();
        p.commits = pm->stats().epochCommits.value();
        p.barrierNs = pm->stats().barrierNs.value();
        p.drainNs = pm->stats().drainWaitNs.value();
    }
    return p;
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader(
        "Metadata-journaling overhead",
        "per-scheme write-latency cost of crash consistency (gcc "
        "workload): off vs ADR vs eADR persistence domains");

    const char *domains[] = {nullptr, "adr", "eadr"};

    TablePrinter table({"scheme", "persist", "write mean", "write p99",
                        "mean vs off", "journal recs", "commits",
                        "barrier ns", "drain ns"});
    for (SchemeKind k : allSchemeKindsExtended()) {
        double off_mean = 0;
        for (const char *domain : domains) {
            PersistPoint p = run("gcc", k, domain);
            double mean = p.result.writeLatency.mean();
            if (!domain)
                off_mean = mean;
            double rel = off_mean > 0 ? mean / off_mean : 1.0;
            table.addRow(
                {schemeName(k), domain ? domain : "off",
                 TablePrinter::num(mean, 1),
                 TablePrinter::num(p.result.writeLatency.percentile(99),
                                   0),
                 TablePrinter::num(rel, 3),
                 std::to_string(p.records), std::to_string(p.commits),
                 std::to_string(p.barrierNs),
                 std::to_string(p.drainNs)});
        }
    }
    table.print();
    std::cout
        << "\nexpected: the off row reproduces each scheme's baseline "
           "latency exactly (persistence is numerically inert when "
           "disabled). ADR adds the epoch barrier plus the WPQ "
           "drain-before-commit wait; eADR keeps the journal work but "
           "drops the drain, so its mean-vs-off ratio stays close "
           "to 1. Journal records scale with scheme metadata traffic "
           "— dedup schemes append refcount and mapping records the "
           "write-through schemes never emit.\n";
    return 0;
}
