/**
 * @file
 * Fig. 1 — duplicate rate of cache lines per application (exact
 * content-hash dedup over the write stream; paper: 33.1%..99.9%,
 * average 62.9%).
 */

#include <iostream>

#include "bench_common.hh"
#include "dedup/analyzer.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 1",
                       "Duplicate rate of cache lines per application");

    TablePrinter table({"app", "writes", "unique", "zero-writes",
                        "dup-rate"});
    double sum = 0;
    for (const std::string &app : bench::appNames()) {
        SyntheticWorkload w(findApp(app), 1);
        DedupAnalyzer an;
        TraceRecord rec;
        std::uint64_t writes = 0;
        while (writes < bench::benchRecords()) {
            if (!w.next(rec))
                break;
            if (rec.op != OpType::Write)
                continue;
            an.addWrite(rec.data);
            ++writes;
        }
        sum += an.duplicateRate();
        table.addRow({app, std::to_string(an.totalWrites()),
                      std::to_string(an.uniqueLines()),
                      std::to_string(an.zeroWrites()),
                      TablePrinter::pct(an.duplicateRate())});
    }
    table.addRow({"average", "-", "-", "-",
                  TablePrinter::pct(sum / bench::appNames().size())});
    table.print();
    std::cout << "\npaper: 33.1%..99.9%, average 62.9%\n";
    return 0;
}
