/**
 * @file
 * Host-side hot-path throughput: simulated writes per host second for
 * every scheme over the fig11 workload mix (all 20 paper apps). This
 * is the one bench about the *simulator's* speed, not the simulated
 * hardware's — it is the before/after yardstick for hot-path work
 * (flat-map metadata, kernel tuning) and the input to the CI perf
 * gate (scripts/check_perf.py vs bench/baselines/).
 *
 * Usage: bench_hotpath [-jobs=N]        (-jobs accepted, unused)
 *   ESD_BENCH_RECORDS / ESD_BENCH_WARMUP  per-run trace sizing
 *   ESD_BENCH_REPS   timing repetitions; best rep is reported
 *                    (default 3 — host noise only ever slows a run)
 *   ESD_BENCH_JSON   path: machine-readable {schemes, aggregate} dump
 *
 * Simulated results are ignored here except as a sanity anchor: the
 * same runs' reported stats are checked for cross-rep identity, so a
 * "faster" hot path that changes simulation output fails loudly.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

std::uint64_t
benchReps()
{
    if (const char *env = std::getenv("ESD_BENCH_REPS"); env && *env) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return v;
    }
    return 3;
}

/** Order-stable digest of the simulated (host-independent) results. */
std::string
resultDigest(const RunResult &r)
{
    std::ostringstream os;
    os << r.schemeName << ':' << r.records << ':' << r.logicalWrites
       << ':' << r.dedupHits << ':' << r.nvmDataWrites << ':'
       << r.nvmWritesTotal << ':' << r.nvmReadsTotal << ':'
       << r.runtimeNs;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace esd;

    bench::parseBenchArgs(argc, argv);
    bench::printHeader("Hot-path throughput",
                       "Simulated writes per host second, per scheme, "
                       "fig11 workload mix (20 apps)");

    const std::vector<std::string> apps = bench::appNames();
    const std::uint64_t records = bench::benchRecords();
    const std::uint64_t warmup = bench::benchWarmup();
    const std::uint64_t reps = benchReps();

    struct Row
    {
        std::string scheme;
        std::uint64_t writes = 0;
        double hostS = 0;  ///< best (minimum) across reps
        double wps = 0;
    };
    std::vector<Row> rows;
    double agg_writes = 0, agg_host = 0;

    for (SchemeKind kind : allSchemeKindsExtended()) {
        Row row;
        row.scheme = schemeName(kind);
        std::string digest;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            std::uint64_t writes = 0, host_ns = 0;
            std::ostringstream rep_digest;
            for (const std::string &app : apps) {
                SimConfig cfg = bench::benchConfig();
                cfg.seed = 1;
                Simulator sim(cfg, kind);
                SyntheticWorkload trace(findApp(app), cfg.seed);
                RunResult r = sim.run(trace, records, warmup);
                writes += r.logicalWrites;
                host_ns += r.hostNs;
                rep_digest << resultDigest(r) << '\n';
            }
            if (digest.empty()) {
                digest = rep_digest.str();
            } else if (rep_digest.str() != digest) {
                std::cout << "DETERMINISM VIOLATION: " << row.scheme
                          << " rep " << rep
                          << " changed simulated results\n";
                return 1;
            }
            double host_s = host_ns / 1e9;
            if (row.hostS == 0 || host_s < row.hostS) {
                row.hostS = host_s;
                row.writes = writes;
            }
        }
        row.wps = row.hostS > 0 ? row.writes / row.hostS : 0;
        agg_writes += static_cast<double>(row.writes);
        agg_host += row.hostS;
        rows.push_back(row);
    }

    TablePrinter table({"scheme", "writes", "host_s", "writes/s"});
    for (const Row &r : rows)
        table.addRow({r.scheme, std::to_string(r.writes),
                      TablePrinter::num(r.hostS, 3),
                      TablePrinter::num(r.wps, 0)});
    double agg_wps = agg_host > 0 ? agg_writes / agg_host : 0;
    table.addRow({"aggregate",
                  std::to_string(static_cast<std::uint64_t>(agg_writes)),
                  TablePrinter::num(agg_host, 3),
                  TablePrinter::num(agg_wps, 0)});
    table.print();
    std::cout << "\nbest of " << reps
              << " reps per scheme; simulated results cross-checked "
                 "identical across reps\n";

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            JsonWriter w(out);
            w.beginObject();
            w.kv("records_per_run", records);
            w.kv("warmup", warmup);
            w.kv("reps", reps);
            w.kv("apps", static_cast<std::uint64_t>(apps.size()));
            w.key("schemes");
            w.beginArray();
            for (const Row &r : rows) {
                w.beginObject();
                w.kv("scheme", r.scheme);
                w.kv("writes", r.writes);
                w.kv("host_s", r.hostS);
                w.kv("writes_per_s", r.wps);
                w.endObject();
            }
            w.endArray();
            w.kv("aggregate_writes_per_s", agg_wps);
            w.endObject();
            out << "\n";
            std::cerr << "bench: wrote hot-path throughput to " << path
                      << "\n";
        }
    }
    return 0;
}
