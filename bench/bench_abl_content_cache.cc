/**
 * @file
 * Extension experiment: ESD+ (hot-content cache on the compare path)
 * vs plain ESD. Measures how many byte comparisons are answered on
 * chip, the compare-read traffic removed, and the resulting
 * write-latency gain — largest for zero-line-dominated apps where one
 * candidate absorbs nearly all comparisons.
 */

#include <iostream>

#include "bench_common.hh"
#include "dedup/esd_plus.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Extension: ESD+ content cache",
                       "Byte comparisons served on chip vs from NVMM "
                       "(4 KB content cache, hot threshold referH>=2)");

    TablePrinter table({"app", "red(ESD)", "red(ESD+)", "cmp-reads(ESD)",
                        "cmp-reads(ESD+)", "on-chip-cmp", "wlat(ESD)",
                        "wlat(ESD+)"});
    double w0 = 0, w1 = 0;
    for (const std::string &app : bench::appNames()) {
        SyntheticWorkload t0(findApp(app), 1);
        Simulator esd_sim(bench::benchConfig(), SchemeKind::Esd);
        RunResult esd = esd_sim.run(t0, bench::benchRecords(),
                                    bench::benchWarmup());
        std::uint64_t esd_cmp =
            esd_sim.scheme().stats().compareReads.value();

        SyntheticWorkload t1(findApp(app), 1);
        Simulator plus_sim(bench::benchConfig(), SchemeKind::EsdPlus);
        RunResult plus = plus_sim.run(t1, bench::benchRecords(),
                                      bench::benchWarmup());
        std::uint64_t plus_cmp =
            plus_sim.scheme().stats().compareReads.value();
        auto &plus_scheme =
            dynamic_cast<EsdPlusScheme &>(plus_sim.scheme());

        w0 += esd.writeLatency.mean();
        w1 += plus.writeLatency.mean();
        table.addRow({app, TablePrinter::pct(esd.writeReduction()),
                      TablePrinter::pct(plus.writeReduction()),
                      std::to_string(esd_cmp), std::to_string(plus_cmp),
                      std::to_string(plus_scheme.contentCacheHits()),
                      TablePrinter::num(esd.writeLatency.mean(), 1),
                      TablePrinter::num(plus.writeLatency.mean(), 1)});
    }
    table.print();
    std::size_t n = bench::appNames().size();
    std::cout << "\nmean write latency: ESD="
              << TablePrinter::num(w0 / n, 1)
              << "ns  ESD+=" << TablePrinter::num(w1 / n, 1)
              << "ns\nexpected: identical write reduction; most "
                 "comparisons move on chip (all of them for zero-line "
                 "apps), trimming the dup-path latency and read "
                 "traffic\n";
    return 0;
}
