/**
 * @file
 * Fig. 13 — read speedup: Baseline mean read latency divided by each
 * scheme's (paper: ESD up to 5.3x; Dedup_SHA1 degrades reads on most
 * apps).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 13",
                       "Read speedup (Baseline mean read latency / "
                       "scheme mean read latency)");

    TablePrinter table({"app", "base(ns)", "Dedup_SHA1", "DeWrite",
                        "ESD"});
    std::vector<double> sp[3];
    const SchemeKind kinds[3] = {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                                 SchemeKind::Esd};

    for (const std::string &app : bench::appNames()) {
        double base =
            bench::cachedRun(app, SchemeKind::Baseline).readLatency.mean();
        std::vector<std::string> row{app, TablePrinter::num(base, 1)};
        for (int i = 0; i < 3; ++i) {
            double mine =
                bench::cachedRun(app, kinds[i]).readLatency.mean();
            double s = mine > 0 ? base / mine : 0;
            sp[i].push_back(s);
            row.push_back(TablePrinter::num(s, 2) + "x");
        }
        table.addRow(row);
    }
    table.addRow({"geomean", "-",
                  TablePrinter::num(bench::geomean(sp[0]), 2) + "x",
                  TablePrinter::num(bench::geomean(sp[1]), 2) + "x",
                  TablePrinter::num(bench::geomean(sp[2]), 2) + "x"});
    table.print();
    std::cout << "\npaper shape: ESD speeds reads on all apps (up to "
                 "5.3x); Dedup_SHA1 degrades reads on most apps\n";
    return 0;
}
