/**
 * @file
 * Trace-frontend ingest throughput: decoded records per host second
 * for each on-disk format (text, gzip, binary). Like bench_hotpath
 * this measures the *simulator's* speed — it is the before/after
 * yardstick for decoder work and an input to the CI perf gate
 * (scripts/check_perf.py vs bench/baselines/trace_ingest.json).
 *
 * Usage: bench_trace_ingest [-jobs=N]     (-jobs accepted, unused)
 *   ESD_BENCH_RECORDS  trace length in records (default 60000)
 *   ESD_BENCH_REPS     timing repetitions; best rep is reported
 *                      (default 3 — host noise only ever slows a run)
 *   ESD_BENCH_JSON     path: machine-readable {formats} dump
 *
 * The decoded stream is digested (record count + an order-sensitive
 * checksum) and cross-checked across reps and formats: a "faster"
 * decoder that drops or reorders records fails loudly.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "metrics/report.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_frontend.hh"

namespace
{

using namespace esd;

std::uint64_t
benchReps()
{
    if (const char *env = std::getenv("ESD_BENCH_REPS"); env && *env) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return v;
    }
    return 3;
}

/** Order-sensitive digest of a decoded stream (FNV-1a over fields). */
struct StreamDigest
{
    std::uint64_t records = 0;
    std::uint64_t hash = 1469598103934665603ull;

    void
    add(const TraceRecord &rec)
    {
        ++records;
        mix(static_cast<std::uint64_t>(rec.op));
        mix(rec.addr);
        mix(rec.icount);
        if (rec.op == OpType::Write)
            for (std::size_t w = 0; w < kLineSize / 8; ++w)
                mix(rec.data.word(w));
    }

    void
    mix(std::uint64_t v)
    {
        hash = (hash ^ v) * 1099511628211ull;
    }

    bool
    operator==(const StreamDigest &o) const
    {
        return records == o.records && hash == o.hash;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace esd;

    bench::parseBenchArgs(argc, argv);
    bench::printHeader("Trace ingest throughput",
                       "Decoded records per host second, per on-disk "
                       "format");

    const std::uint64_t records = bench::benchRecords();
    const std::uint64_t reps = benchReps();

    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("esd_ingest_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);

    // One captured trace re-encoded into each format: every decoder
    // reads the identical record stream.
    struct Fmt
    {
        TraceFormat format;
        const char *name;
        std::string path;
        double bytes = 0;
        double bestS = 0;
        double rps = 0;
    };
    std::vector<Fmt> fmts = {{TraceFormat::Text, "text", {}},
                             {TraceFormat::Gzip, "gzip", {}},
                             {TraceFormat::Binary, "binary", {}}};
    {
        TraceConfig tc;
        std::string base = (dir / "base.trace").string();
        TraceCaptureWriter writer(base, tc);
        SyntheticWorkload synth(findApp("mcf"), 1);
        TraceRecord rec;
        for (std::uint64_t i = 0; i < records; ++i) {
            synth.next(rec);
            writer.write(rec);
        }
        writer.close();
        for (Fmt &f : fmts) {
            f.path = (dir / ("ingest." + std::string(f.name))).string();
            convertTrace(base, f.path, f.format, true);
            f.bytes = static_cast<double>(
                std::filesystem::file_size(f.path));
        }
    }

    StreamDigest want;
    for (Fmt &f : fmts) {
        StreamDigest digest;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            StreamDigest d;
            TraceConfig tc;
            TraceFrontend frontend(f.path, tc);
            TraceRecord rec;
            auto t0 = std::chrono::steady_clock::now();
            while (frontend.next(rec))
                d.add(rec);
            double host_s =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (rep == 0) {
                digest = d;
            } else if (!(d == digest)) {
                std::cout << "DETERMINISM VIOLATION: " << f.name
                          << " rep " << rep
                          << " decoded a different stream\n";
                return 1;
            }
            if (f.bestS == 0 || host_s < f.bestS)
                f.bestS = host_s;
        }
        if (digest.records != records) {
            std::cout << "RECORD LOSS: " << f.name << " decoded "
                      << digest.records << " of " << records << "\n";
            return 1;
        }
        // Formats must agree with each other, not just across reps.
        if (want.records == 0) {
            want = digest;
        } else if (!(digest == want)) {
            std::cout << "FORMAT DIVERGENCE: " << f.name
                      << " decoded a different stream than "
                      << fmts[0].name << "\n";
            return 1;
        }
        f.rps = f.bestS > 0 ? static_cast<double>(records) / f.bestS
                            : 0;
    }

    TablePrinter table({"format", "bytes", "best_s", "records/s"});
    for (const Fmt &f : fmts)
        table.addRow({f.name,
                      std::to_string(static_cast<std::uint64_t>(
                          f.bytes)),
                      TablePrinter::num(f.bestS, 4),
                      TablePrinter::num(f.rps, 0)});
    table.print();
    std::cout << "\nbest of " << reps << " reps per format; decoded "
              << "streams cross-checked identical across reps and "
              << "formats\n";

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            JsonWriter w(out);
            w.beginObject();
            w.kv("records", records);
            w.kv("reps", reps);
            w.key("formats");
            w.beginArray();
            for (const Fmt &f : fmts) {
                w.beginObject();
                w.kv("format", f.name);
                w.kv("bytes", f.bytes);
                w.kv("host_s", f.bestS);
                w.kv("records_per_s", f.rps);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            out << "\n";
            std::cerr << "bench: wrote ingest throughput to " << path
                      << "\n";
        }
    }

    std::filesystem::remove_all(dir);
    return 0;
}
