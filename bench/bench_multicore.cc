/**
 * @file
 * Extension experiment: scheme behaviour under multi-core pressure
 * (Table I's CPU is 8-core). Sweeps 1/2/4/8 cores, each replaying a
 * different application, and reports system throughput and shared
 * memory latencies per scheme. With more cores in flight the
 * controller sees deeper queues, so deduplication's interference
 * relief grows with core count — ESD's advantage over Baseline is
 * larger at 8 cores than at 1.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/multicore.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

/** A mixed bag of apps so cores don't run in lockstep. */
const char *kMix[8] = {"gcc", "lbm",  "x264",    "mcf",
                       "wrf", "dedup", "facesim", "bodytrack"};

MultiCoreRunResult
run(SchemeKind kind, unsigned cores, std::uint64_t records)
{
    MultiCoreSimulator sim(bench::benchConfig(), kind);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (unsigned i = 0; i < cores; ++i)
        traces.push_back(std::make_unique<SyntheticWorkload>(
            findApp(kMix[i % 8]), 100 + i));
    return sim.run(std::move(traces), records, records / 5);
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("Extension: multi-core scaling",
                       "1/2/4/8 cores sharing one controller; mixed "
                       "application per core");

    std::uint64_t records = bench::benchRecords() / 8;

    TablePrinter table({"cores", "scheme", "sys-IPC", "wlat(ns)",
                        "rlat(ns)", "write-red", "vs-Baseline-IPC"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double base_ipc = 0;
        for (SchemeKind k : allSchemeKinds()) {
            MultiCoreRunResult r = run(k, cores, records);
            if (k == SchemeKind::Baseline)
                base_ipc = r.systemIpc;
            table.addRow(
                {std::to_string(cores), schemeName(k),
                 TablePrinter::num(r.systemIpc, 3),
                 TablePrinter::num(r.writeLatency.mean(), 1),
                 TablePrinter::num(r.readLatency.mean(), 1),
                 TablePrinter::pct(r.writeReduction()),
                 TablePrinter::num(
                     base_ipc > 0 ? r.systemIpc / base_ipc : 1.0, 2) +
                     "x"});
        }
    }
    table.print();
    std::cout << "\nexpected: every scheme's latencies grow with core "
                 "count; ESD holds a solid IPC lead through 4 cores, "
                 "while hash/full-dedup schemes fall further behind. "
                 "At full channel saturation (8 cores, 1 channel) "
                 "even ESD's compare reads compete with demand "
                 "traffic - the regime where the ESD+ content cache "
                 "(bench_abl_content_cache) pays off most\n";
    return 0;
}
