/**
 * @file
 * Fig. 8 — fingerprint collision probability comparison, normalised to
 * the CRC-based method. We measure empirical collision rates of
 * CRC32C, the 64-bit line ECC, a 64-bit SHA-1 prefix, and full SHA-1,
 * over two corpora:
 *   - random lines (independent contents),
 *   - "similar" lines (single-word perturbations of a base line, the
 *     adversarial case for linear codes like CRC/ECC).
 */

#include <iostream>
#include <unordered_set>

#include "bench_common.hh"
#include "common/random.hh"
#include "crypto/crc.hh"
#include "crypto/sha1.hh"
#include "ecc/line_ecc.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

struct CollisionCounts
{
    std::uint64_t crc32 = 0;
    std::uint64_t ecc64 = 0;
    std::uint64_t sha1_64 = 0;
    std::uint64_t sha1_full = 0;
    std::uint64_t lines = 0;
};

/** Count fingerprint collisions among distinct lines in @p corpus. */
CollisionCounts
countCollisions(const std::vector<CacheLine> &corpus)
{
    CollisionCounts c;
    std::unordered_set<std::uint64_t> content_seen;
    std::unordered_set<std::uint32_t> crc_seen;
    std::unordered_set<std::uint64_t> ecc_seen;
    std::unordered_set<std::uint64_t> sha_seen;
    std::unordered_set<std::string> sha_full_seen;

    for (const CacheLine &l : corpus) {
        if (!content_seen.insert(l.contentHash()).second)
            continue;  // identical content is not a collision
        ++c.lines;
        c.crc32 += !crc_seen.insert(Crc32c::line(l)).second;
        c.ecc64 += !ecc_seen.insert(LineEccCodec::encode(l)).second;
        c.sha1_64 += !sha_seen.insert(Sha1::fingerprint64(l)).second;
        c.sha1_full +=
            !sha_full_seen.insert(Sha1::toHex(Sha1::digestLine(l))).second;
    }
    return c;
}

std::string
rate(std::uint64_t collisions, std::uint64_t lines)
{
    if (collisions == 0)
        return "0";
    return TablePrinter::num(
        static_cast<double>(collisions) / static_cast<double>(lines), 8);
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 8",
                       "Fingerprint collision rates (lower is better; "
                       "normalised view: CRC is the reference)");

    Pcg32 rng(2024);

    // Corpus A: independent random lines.
    std::vector<CacheLine> random_corpus(400000);
    for (CacheLine &l : random_corpus)
        rng.fillLine(l);

    // Corpus B: similar lines — one random word of a shared base is
    // re-rolled per line (stresses narrow/linear fingerprints).
    std::vector<CacheLine> similar_corpus(400000);
    CacheLine base;
    rng.fillLine(base);
    for (CacheLine &l : similar_corpus) {
        l = base;
        l.setWord(rng.below(kWordsPerLine), rng.next64());
    }

    TablePrinter table({"fingerprint", "bits", "random-collide",
                        "similar-collide", "vs-CRC(random)"});
    CollisionCounts ra = countCollisions(random_corpus);
    CollisionCounts sa = countCollisions(similar_corpus);

    auto ratio = [&](std::uint64_t v) {
        if (ra.crc32 == 0)
            return std::string("-");
        return TablePrinter::num(static_cast<double>(v) / ra.crc32, 4);
    };

    table.addRow({"CRC32C (DeWrite)", "32", rate(ra.crc32, ra.lines),
                  rate(sa.crc32, sa.lines), "1.0000"});
    table.addRow({"ECC (ESD)", "64", rate(ra.ecc64, ra.lines),
                  rate(sa.ecc64, sa.lines), ratio(ra.ecc64)});
    table.addRow({"SHA-1/64", "64", rate(ra.sha1_64, ra.lines),
                  rate(sa.sha1_64, sa.lines), ratio(ra.sha1_64)});
    table.addRow({"SHA-1 full", "160", rate(ra.sha1_full, ra.lines),
                  rate(sa.sha1_full, sa.lines), ratio(ra.sha1_full)});
    table.print();

    std::cout << "\nlines: random=" << ra.lines
              << " similar=" << sa.lines
              << "\npaper shape: on independent contents the 64-bit ECC "
                 "collides orders of magnitude less than 32-bit CRC; "
                 "cryptographic hashes never collide at this scale.\n"
                 "Note the similar-corpus column: per-word ECC is "
                 "linear, so lines differing in a single word exercise "
                 "only that word's 8 check bits and collide heavily — "
                 "this is exactly why ESD always verifies candidates "
                 "with a byte-by-byte comparison (harmless there, but "
                 "fatal for any hash-trusting scheme with a weak "
                 "fingerprint).\n";
    return 0;
}
