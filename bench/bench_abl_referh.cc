/**
 * @file
 * Ablation: referH width (Section III-B sets 1 byte, arguing >99.9%
 * of reference counts stay below 1000). Sweeping the saturation cap
 * shows the cost of narrower counters: every saturation forces a
 * "treat as new line" rewrite.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Ablation: referH saturation cap",
                       "ESD with different reference-counter widths "
                       "(suite totals)");

    TablePrinter table({"referH-max", "bits", "write-reduction",
                        "saturation-rewrites", "mean-wlat(ns)"});
    for (std::uint32_t cap : {3u, 15u, 255u, 65535u}) {
        SimConfig cfg = bench::benchConfig();
        cfg.metadata.referHMax = cap;
        double red = 0, wlat = 0;
        std::uint64_t rewrites = 0;
        auto apps = bench::appNames();
        for (const std::string &app : apps) {
            SyntheticWorkload trace(findApp(app), 1);
            Simulator sim(cfg, SchemeKind::Esd);
            RunResult r = sim.run(trace, bench::benchRecords(),
                                  bench::benchWarmup());
            red += r.writeReduction();
            wlat += r.writeLatency.mean();
            rewrites +=
                sim.scheme().stats().refHOverflowRewrites.value();
        }
        int bits = 0;
        for (std::uint32_t v = cap; v; v >>= 1)
            ++bits;
        table.addRow({std::to_string(cap), std::to_string(bits),
                      TablePrinter::pct(red / apps.size(), 2),
                      std::to_string(rewrites),
                      TablePrinter::num(wlat / apps.size(), 1)});
    }
    table.print();
    std::cout << "\nexpected: 8-bit referH (cap 255) already captures "
                 "nearly all reuse; tiny counters rewrite hot lines "
                 "often, wider ones buy almost nothing\n";
    return 0;
}
