/**
 * @file
 * ECC codec comparison — encode/decode throughput and fingerprint
 * collision rates for every pluggable engine (hamming, bch, rs).
 *
 * Companion to bench_fig08_collision: where Fig. 8 compares the ECC
 * fingerprint against CRC/SHA-1, this bench compares the ECC engines
 * against each other, over the same two corpora:
 *   - random lines (independent contents),
 *   - "similar" lines (single-word perturbations of a shared base,
 *     the adversarial case for linear codes).
 *
 * Env contract (CI perf gate):
 *   ESD_BENCH_RECORDS  corpus size per kind (default 400000)
 *   ESD_BENCH_SEED     corpus PRNG seed (default 2024; the nightly
 *                      collision campaign reseeds from the run id)
 *   ESD_BENCH_JSON     path: machine-readable {codecs} dump consumed
 *                      by scripts/check_perf.py against
 *                      bench/baselines/ecc_codecs.json
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "ecc/ecc_engine.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

constexpr EccEngineKind kKinds[] = {EccEngineKind::Hamming,
                                    EccEngineKind::Bch,
                                    EccEngineKind::Rs};

struct CodecResult
{
    const char *name = "";
    double encodeLinesPerS = 0.0;
    double decodeLinesPerS = 0.0;
    std::uint64_t randomCollisions = 0;
    std::uint64_t similarCollisions = 0;
    std::uint64_t lines = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

constexpr int kReps = 3;  ///< best-of, to shrug off scheduler jitter

/** Encode every line; returns lines/s (sink defeats dead-code elim). */
double
timeEncode(const EccEngine &ecc, const std::vector<CacheLine> &corpus)
{
    LineEcc sink = 0;
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (const CacheLine &l : corpus)
            sink ^= ecc.encodeLine(l);
        best = std::min(best, secondsSince(t0));
    }
    if (sink == 0x5a5a5a5a5a5a5a5aULL)
        std::cerr << "";  // keep the accumulator observable
    return static_cast<double>(corpus.size()) / best;
}

/** Decode every (clean) line — the scrub/verify fast path. */
double
timeDecode(const EccEngine &ecc, const std::vector<CacheLine> &corpus,
           const std::vector<LineEcc> &codes)
{
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        std::uint64_t ok = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            LineDecodeResult r = ecc.decodeLine(corpus[i], codes[i]);
            ok += r.status == EccStatus::Ok;
        }
        best = std::min(best, secondsSince(t0));
        if (ok != corpus.size())
            std::cerr << "bench: WARNING: " << corpus.size() - ok
                      << " clean lines did not decode Ok\n";
    }
    return static_cast<double>(corpus.size()) / best;
}

/** Count fingerprint collisions among distinct lines in @p corpus. */
std::pair<std::uint64_t, std::uint64_t>
countCollisions(const EccEngine &ecc,
                const std::vector<CacheLine> &corpus)
{
    std::uint64_t collisions = 0;
    std::uint64_t lines = 0;
    std::unordered_set<std::uint64_t> content_seen;
    std::unordered_set<std::uint64_t> fp_seen;
    for (const CacheLine &l : corpus) {
        if (!content_seen.insert(l.contentHash()).second)
            continue;  // identical content is not a collision
        ++lines;
        collisions += !fp_seen.insert(ecc.fingerprint(l)).second;
    }
    return {collisions, lines};
}

std::string
rate(std::uint64_t collisions, std::uint64_t lines)
{
    if (collisions == 0)
        return "0";
    return TablePrinter::num(
        static_cast<double>(collisions) / static_cast<double>(lines), 8);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *env = std::getenv(name); env && *env) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return v;
    }
    return fallback;
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("ECC codecs",
                       "Per-engine encode/decode throughput and "
                       "64-bit fingerprint collision rates");

    std::uint64_t n = envU64("ESD_BENCH_RECORDS", 400000);
    std::uint64_t seed = envU64("ESD_BENCH_SEED", 2024);
    Pcg32 rng(seed);

    // Corpus A: independent random lines.
    std::vector<CacheLine> random_corpus(n);
    for (CacheLine &l : random_corpus)
        rng.fillLine(l);

    // Corpus B: similar lines — one random word of a shared base is
    // re-rolled per line (stresses narrow/linear fingerprints).
    std::vector<CacheLine> similar_corpus(n);
    CacheLine base;
    rng.fillLine(base);
    for (CacheLine &l : similar_corpus) {
        l = base;
        l.setWord(rng.below(kWordsPerLine), rng.next64());
    }

    std::vector<CodecResult> results;
    for (EccEngineKind kind : kKinds) {
        const EccEngine &ecc = eccEngine(kind);
        CodecResult r;
        r.name = ecc.name();
        r.encodeLinesPerS = timeEncode(ecc, random_corpus);
        std::vector<LineEcc> codes(random_corpus.size());
        for (std::size_t i = 0; i < random_corpus.size(); ++i)
            codes[i] = ecc.encodeLine(random_corpus[i]);
        r.decodeLinesPerS = timeDecode(ecc, random_corpus, codes);
        auto [rc, rl] = countCollisions(ecc, random_corpus);
        auto [sc, sl] = countCollisions(ecc, similar_corpus);
        r.randomCollisions = rc;
        r.similarCollisions = sc;
        r.lines = rl;
        (void)sl;
        results.push_back(r);
    }

    TablePrinter table({"codec", "encode-lines/s", "decode-lines/s",
                        "random-collide", "similar-collide"});
    for (const CodecResult &r : results)
        table.addRow({r.name, TablePrinter::num(r.encodeLinesPerS, 0),
                      TablePrinter::num(r.decodeLinesPerS, 0),
                      rate(r.randomCollisions, r.lines),
                      rate(r.similarCollisions, r.lines)});
    table.print();

    std::cout
        << "\nlines per corpus: " << n << "  corpus seed: " << seed
        << "\nshape: hamming (per-word SEC-DED) is linear per 64-bit "
           "word, so single-word deltas can only reach ~2^11 distinct "
           "fingerprints and the corpus saturates them (rate near 1); "
           "BCH mixes 128 data bits per codeword (~2^18 reachable, "
           "birthday-level collisions); RS(72,64) has minimum "
           "distance 9 symbols, so lines differing in at most 8 "
           "bytes can NEVER collide — its similar-corpus column must "
           "be exactly 0.\n";

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            JsonWriter w(out);
            w.beginObject();
            w.kv("lines", n);
            w.kv("seed", seed);
            w.key("codecs");
            w.beginArray();
            for (const CodecResult &r : results) {
                w.beginObject();
                w.kv("codec", r.name);
                w.kv("encode_lines_per_s", r.encodeLinesPerS);
                w.kv("decode_lines_per_s", r.decodeLinesPerS);
                w.kv("random_collisions", r.randomCollisions);
                w.kv("similar_collisions", r.similarCollisions);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            out << "\n";
            std::cerr << "bench: wrote codec metrics to " << path
                      << "\n";
        }
    }
    return 0;
}
