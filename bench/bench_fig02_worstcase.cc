/**
 * @file
 * Fig. 2 — performance of inline deduplication in the worst case:
 * leela (low duplicate rate, hash wasted on unique lines) and lbm
 * (write-heavy, fingerprint NVMM_lookup bound), normalised to the
 * Baseline without deduplication.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 2",
                       "Worst-case normalised performance (relative "
                       "IPC and write speedup vs Baseline)");

    for (const char *app : {"leela", "lbm"}) {
        std::cout << app << ":\n";
        const RunResult &base =
            bench::cachedRun(app, SchemeKind::Baseline);
        TablePrinter table({"scheme", "rel-IPC", "write-speedup",
                            "read-speedup", "write-reduction"});
        for (SchemeKind k :
             {SchemeKind::DedupSha1, SchemeKind::DeWrite, SchemeKind::Esd}) {
            const RunResult &r = bench::cachedRun(app, k);
            table.addRow(
                {schemeName(k),
                 TablePrinter::num(r.ipc / base.ipc, 2) + "x",
                 TablePrinter::num(base.writeLatency.mean() /
                                       r.writeLatency.mean(),
                                   2) +
                     "x",
                 TablePrinter::num(base.readLatency.mean() /
                                       r.readLatency.mean(),
                                   2) +
                     "x",
                 TablePrinter::pct(r.writeReduction())});
        }
        table.print();
        std::cout << "\n";
    }
    std::cout << "paper shape: on leela, straightforward dedup "
                 "(Dedup_SHA1) falls well below Baseline; ESD stays "
                 ">= Baseline on both\n";
    return 0;
}
