/**
 * @file
 * Fig. 15 — CDF of write latency for the eight highlighted apps (gcc,
 * leela, bodytrack, dedup, facesim, fluidanimate, wrf, x264): tail
 * percentiles and a 10-point CDF per scheme.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 15",
                       "Write-latency CDF and tail percentiles (ns)");

    const char *apps[8] = {"gcc",     "leela",        "bodytrack",
                           "dedup",   "facesim",      "fluidanimate",
                           "wrf",     "x264"};

    for (const char *app : apps) {
        std::cout << app << ":\n";
        TablePrinter table({"scheme", "p50", "p90", "p99", "p99.9",
                            "max"});
        for (SchemeKind k :
             {SchemeKind::DedupSha1, SchemeKind::DeWrite, SchemeKind::Esd}) {
            const LatencyStat &w = bench::cachedRun(app, k).writeLatency;
            table.addRow({schemeName(k),
                          TablePrinter::num(w.percentile(50), 0),
                          TablePrinter::num(w.percentile(90), 0),
                          TablePrinter::num(w.percentile(99), 0),
                          TablePrinter::num(w.percentile(99.9), 0),
                          TablePrinter::num(w.max(), 0)});
        }
        table.print();

        // 10-point CDF series (latency at each decile) — the plotted
        // curves of the figure.
        for (SchemeKind k :
             {SchemeKind::DedupSha1, SchemeKind::DeWrite, SchemeKind::Esd}) {
            const LatencyStat &w = bench::cachedRun(app, k).writeLatency;
            std::cout << "  cdf " << schemeName(k) << ":";
            for (const auto &[lat, frac] : w.cdf(10))
                std::cout << " (" << TablePrinter::num(lat, 0) << ","
                          << TablePrinter::num(frac, 1) << ")";
            std::cout << "\n";
        }
        std::cout << "\n";
    }
    std::cout << "paper shape: ESD's CDF rises earliest (shortest "
                 "tails); Dedup_SHA1 is shifted right by the hash "
                 "latency on every write\n";
    return 0;
}
