/**
 * @file
 * Ablation: selective vs full deduplication with identical ECC
 * fingerprints. ESD_Full keeps a complete fingerprint index in NVMM
 * (like Dedup_SHA1/DeWrite) while ESD keeps fingerprints only on
 * chip. This isolates what the *selective* half of the design buys:
 * no fingerprint NVMM lookups/stores and less metadata, at the cost
 * of some missed duplicates.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Ablation: selective vs full dedup",
                       "ESD (cache-only EFIT) vs ESD_Full (same ECC "
                       "fingerprints, full NVMM index)");

    TablePrinter table({"app", "red(ESD)", "red(Full)", "wlat(ESD)",
                        "wlat(Full)", "fpNVMM-lookups", "meta(ESD)KB",
                        "meta(Full)KB"});
    double w_esd = 0, w_full = 0;
    for (const std::string &app : bench::appNames()) {
        SyntheticWorkload t1(findApp(app), 1);
        RunResult esd = runWorkload(bench::benchConfig(), SchemeKind::Esd,
                                    t1, bench::benchRecords(),
                                    bench::benchWarmup());
        SyntheticWorkload t2(findApp(app), 1);
        RunResult full =
            runWorkload(bench::benchConfig(), SchemeKind::EsdFull, t2,
                        bench::benchRecords(), bench::benchWarmup());
        w_esd += esd.writeLatency.mean();
        w_full += full.writeLatency.mean();
        // fp NVMM lookups happen only in the full variant; derive the
        // count from its breakdown-backed counter via nvmReads delta.
        table.addRow(
            {app, TablePrinter::pct(esd.writeReduction()),
             TablePrinter::pct(full.writeReduction()),
             TablePrinter::num(esd.writeLatency.mean(), 1),
             TablePrinter::num(full.writeLatency.mean(), 1),
             std::to_string(full.nvmReadsTotal - esd.nvmReadsTotal),
             TablePrinter::num(esd.metadataNvmBytes / 1024.0, 1),
             TablePrinter::num(full.metadataNvmBytes / 1024.0, 1)});
    }
    table.print();
    std::size_t n = bench::appNames().size();
    std::cout << "\nmean write latency: ESD="
              << TablePrinter::num(w_esd / n, 1)
              << "ns  ESD_Full=" << TablePrinter::num(w_full / n, 1)
              << "ns\nexpected: ESD_Full removes slightly more "
                 "duplicates but pays fingerprint NVMM lookups/stores "
                 "and a larger metadata footprint\n";
    return 0;
}
