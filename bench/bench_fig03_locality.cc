/**
 * @file
 * Fig. 3 — content locality: (a) unique-line distribution by reference
 * count and (b) pre-dedup write volume by reference-count bucket,
 * per app and aggregated over the 20 applications. Paper headline:
 * lines with >1000 refs are ~0.08% of uniques but ~42.7% of the
 * pre-dedup volume.
 */

#include <iostream>

#include "bench_common.hh"
#include "dedup/analyzer.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    constexpr std::size_t kN = RefCountBuckets::kNumBuckets;
    bench::printHeader("Figure 3",
                       "Reference-count distribution (a: unique lines, "
                       "b: occupied pre-dedup volume)");

    std::uint64_t agg_lines[kN] = {};
    std::uint64_t agg_volume[kN] = {};

    TablePrinter per_app({"app", "num1", "num10", "num100", "num1000",
                          "num1000+", "vol1000+%"});

    for (const std::string &app : bench::appNames()) {
        SyntheticWorkload w(findApp(app), 1);
        DedupAnalyzer an;
        TraceRecord rec;
        std::uint64_t writes = 0;
        while (writes < bench::benchRecords()) {
            if (!w.next(rec))
                break;
            if (rec.op != OpType::Write)
                continue;
            an.addWrite(rec.data);
            ++writes;
        }
        RefCountBuckets b = an.buckets();
        for (std::size_t i = 0; i < kN; ++i) {
            agg_lines[i] += b.lines(i);
            agg_volume[i] += b.volume(i);
        }
        per_app.addRow(
            {app, std::to_string(b.lines(0)), std::to_string(b.lines(1)),
             std::to_string(b.lines(2)), std::to_string(b.lines(3)),
             std::to_string(b.lines(4)),
             TablePrinter::pct(
                 static_cast<double>(b.volume(4)) /
                 std::max<std::uint64_t>(b.totalVolume(), 1))});
    }
    per_app.print();

    std::uint64_t total_lines = 0, total_volume = 0;
    for (std::size_t i = 0; i < kN; ++i) {
        total_lines += agg_lines[i];
        total_volume += agg_volume[i];
    }

    std::cout << "\nAggregate across the 20 applications:\n";
    TablePrinter aggt(
        {"bucket", "unique-lines", "lines-frac", "volume-frac"});
    for (std::size_t i = 0; i < kN; ++i) {
        aggt.addRow({RefCountBuckets::bucketName(i),
                     std::to_string(agg_lines[i]),
                     TablePrinter::pct(
                         static_cast<double>(agg_lines[i]) / total_lines,
                         3),
                     TablePrinter::pct(static_cast<double>(agg_volume[i]) /
                                       total_volume)});
    }
    aggt.print();
    std::cout << "\npaper: num1000+ is ~0.08% of unique lines and "
                 "~42.7% of pre-dedup volume\n";
    return 0;
}
