/**
 * @file
 * Endurance extension (Section IV-B's motivation carried further):
 * per-scheme NVMM write totals, per-line wear concentration, and the
 * projected lifetime improvement — with and without Start-Gap wear
 * leveling layered under the dedup scheme.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

RunResult
run(const std::string &app, SchemeKind kind, bool start_gap)
{
    SimConfig cfg = bench::benchConfig();
    cfg.pcm.startGapEnabled = start_gap;
    // Accelerated leveling so a full region rotation fits in a bench
    // run: production Start-Gap (period 100, 16 K-line regions) needs
    // ~1.6 M writes per region to rotate once.
    cfg.pcm.gapMovePeriod = 2;
    cfg.pcm.startGapRegionLines = 64;
    SyntheticWorkload trace(findApp(app), 1);
    return runWorkload(cfg, kind, trace, bench::benchRecords(),
                       bench::benchWarmup());
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("Endurance",
                       "NVMM write totals, wear concentration "
                       "(max/mean line writes), and relative lifetime "
                       "(suite aggregate)");

    constexpr double kCellEndurance = 1e7;  // PCM, Section I

    TablePrinter table({"scheme", "start-gap", "NVMM-writes",
                        "max-line-wear", "imbalance", "rel-lifetime"});

    double base_life = 0;
    for (SchemeKind k : allSchemeKinds()) {
        for (bool sg : {false, true}) {
            std::uint64_t writes = 0, max_wear = 0;
            double imbalance = 0;
            auto apps = bench::appNames();
            for (const std::string &app : apps) {
                RunResult r = run(app, k, sg);
                writes += r.nvmWritesTotal;
                max_wear = std::max(max_wear, r.wear.maxLineWrites);
                imbalance += r.wear.imbalance();
            }
            imbalance /= apps.size();
            double life =
                max_wear ? kCellEndurance / max_wear : 0;
            if (k == SchemeKind::Baseline && !sg)
                base_life = life;
            table.addRow(
                {schemeName(k), sg ? "on" : "off",
                 std::to_string(writes), std::to_string(max_wear),
                 TablePrinter::num(imbalance, 1),
                 TablePrinter::num(base_life ? life / base_life : 1.0,
                                   2) +
                     "x"});
        }
    }
    table.print();
    std::cout << "\nexpected: dedup cuts total writes (endurance via "
                 "volume), but full-dedup schemes shift the wear "
                 "hotspot to their fingerprint/AMT metadata lines — "
                 "their max-line wear exceeds Baseline's. Start-Gap "
                 "shaves that hotspot (at the cost of internal "
                 "copies); ESD, with no fingerprint region at all, "
                 "keeps the flattest wear profile.\n";
    return 0;
}
