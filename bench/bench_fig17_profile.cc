/**
 * @file
 * Fig. 17 — write-latency decomposition per scheme, aggregated over
 * the 20 apps: fingerprint computation / fingerprint NVMM_lookup /
 * reading similar lines for comparison / writing unique lines (plus
 * the encryption and on-chip metadata components this implementation
 * also tracks).
 *
 * Paper: Dedup_SHA1 ~80% fingerprint compute; DeWrite ~10% compute +
 * ~23% NVMM lookups; ESD spends everything on the data reads/writes.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 17",
                       "Write-latency profile (share of accumulated "
                       "write-path time)");

    TablePrinter table({"scheme", "fp-compute", "fp-NVMM-lookup",
                        "read-compare", "line-write", "encrypt",
                        "metadata"});
    for (SchemeKind k :
         {SchemeKind::DedupSha1, SchemeKind::DeWrite, SchemeKind::Esd}) {
        WriteBreakdown sum;
        for (const std::string &app : bench::appNames())
            sum.add(bench::cachedRun(app, k).breakdown);
        double t = sum.total();
        auto share = [&](double v) {
            return TablePrinter::pct(t > 0 ? v / t : 0);
        };
        table.addRow({schemeName(k), share(sum.fpCompute),
                      share(sum.fpNvmLookup), share(sum.readCompare),
                      share(sum.lineWrite), share(sum.encrypt),
                      share(sum.metadata)});
    }
    table.print();
    std::cout << "\npaper shape: SHA-1 ~80% fingerprint compute; "
                 "DeWrite ~10% compute + ~23% fp NVMM lookups; ESD has "
                 "zero in both fingerprint columns\n";
    return 0;
}
