/**
 * @file
 * Fig. 5 — in a full-deduplication system, how many duplicates are
 * filtered by fingerprints resident in the memory cache vs fetched
 * from NVMM, and how much of the write latency the fingerprint
 * NVMM_lookup costs (paper: cache filters 51.0%, NVMM adds only 13.7%
 * more, but the lookups cost up to 90.7% / avg ~49% of write latency).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 5",
                       "Duplicates filtered via cached vs NVMM "
                       "fingerprints (Dedup_SHA1, full dedup) and the "
                       "fp NVMM_lookup share of non-hash write latency");

    TablePrinter table({"app", "dup-via-cache", "dup-via-NVMM",
                        "fp-lookup-lat-share"});
    double s_cache = 0, s_nvm = 0, s_share = 0;

    for (const std::string &app : bench::appNames()) {
        const RunResult &r = bench::cachedRun(app, SchemeKind::DedupSha1);
        // Latency share excludes the (scheme-specific) hash compute so
        // the lookup overhead is visible the way the paper frames it.
        double non_hash =
            r.breakdown.total() - r.breakdown.fpCompute;
        double share =
            non_hash > 0 ? r.breakdown.fpNvmLookup / non_hash : 0;
        s_cache += r.dedupViaFpCacheFrac;
        s_nvm += r.dedupViaFpNvmFrac;
        s_share += share;
        table.addRow({app, TablePrinter::pct(r.dedupViaFpCacheFrac),
                      TablePrinter::pct(r.dedupViaFpNvmFrac),
                      TablePrinter::pct(share)});
    }
    std::size_t n = bench::appNames().size();
    table.addRow({"average", TablePrinter::pct(s_cache / n),
                  TablePrinter::pct(s_nvm / n),
                  TablePrinter::pct(s_share / n)});
    table.print();
    std::cout << "\npaper: avg 51.0% filtered via cache, 13.7% via "
                 "NVMM; the NVMM lookups cost ~49% of write latency — "
                 "the inefficiency selective dedup removes\n";
    return 0;
}
