/**
 * @file
 * Ablation: the LRCU replacement policy (Section III-D) vs plain LRU
 * in the EFIT, under cache pressure. LRCU preferentially evicts
 * referH==1 entries so fingerprints with proven reuse survive; the
 * decay keeps stale hot entries from squatting.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

struct Point
{
    double efitHit = 0;
    double reduction = 0;
    double wlat = 0;
};

Point
run(std::uint64_t efit_bytes, bool lrcu, std::uint64_t decay_period)
{
    SimConfig cfg = bench::benchConfig();
    cfg.metadata.efitCacheBytes = efit_bytes;
    cfg.metadata.useLrcu = lrcu;
    cfg.metadata.decayPeriod = decay_period;

    Point p;
    auto apps = bench::appNames();
    for (const std::string &app : apps) {
        SyntheticWorkload trace(findApp(app), 1);
        RunResult r = runWorkload(cfg, SchemeKind::Esd, trace,
                                  bench::benchRecords(),
                                  bench::benchWarmup());
        p.efitHit += r.fpCacheHitRate;
        p.reduction += r.writeReduction();
        p.wlat += r.writeLatency.mean();
    }
    p.efitHit /= apps.size();
    p.reduction /= apps.size();
    p.wlat /= apps.size();
    return p;
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("Ablation: LRCU vs LRU vs decay",
                       "EFIT policy under cache pressure (suite "
                       "averages, ESD scheme)");

    TablePrinter table({"EFIT-size", "policy", "hit-rate",
                        "write-reduction", "mean-wlat(ns)"});
    for (std::uint64_t kb : {32, 64, 128, 512}) {
        std::uint64_t bytes = kb << 10;
        Point lrcu = run(bytes, true, 4096);
        Point lru = run(bytes, false, 0);
        Point nodecay = run(bytes, true, 0);
        table.addRow({std::to_string(kb) + "KB", "LRCU+decay",
                      TablePrinter::pct(lrcu.efitHit, 2),
                      TablePrinter::pct(lrcu.reduction, 2),
                      TablePrinter::num(lrcu.wlat, 1)});
        table.addRow({std::to_string(kb) + "KB", "LRCU,no-decay",
                      TablePrinter::pct(nodecay.efitHit, 2),
                      TablePrinter::pct(nodecay.reduction, 2),
                      TablePrinter::num(nodecay.wlat, 1)});
        table.addRow({std::to_string(kb) + "KB", "LRU",
                      TablePrinter::pct(lru.efitHit, 2),
                      TablePrinter::pct(lru.reduction, 2),
                      TablePrinter::num(lru.wlat, 1)});
    }
    table.print();
    std::cout << "\nexpected: LRCU >= LRU at every size, with the gap "
                 "widening as pressure grows (smaller caches)\n";
    return 0;
}
