/**
 * @file
 * Sharded-pipeline scaling: wall-clock of one simulation split across
 * -workers in {1, 2, 4, 8} on the 8-channel evaluation config, for
 * all 6 schemes, with a cross-level byte-identity check of every
 * report — the "one huge trace finally uses the whole host" claim,
 * measured, without ever trading determinism for it.
 *
 * Usage: bench_pipeline_scaling [-jobs=N]  (N replaces the level list
 *        with {1, N})
 * ESD_BENCH_JSON emits the {workers, wall_s, speedup, writes_per_s}
 * grid (check_perf.py understands the shape).
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "exec/pipeline.hh"
#include "exec/sweep_runner.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    using namespace esd::exec;

    bench::parseBenchArgs(argc, argv);
    bench::printHeader("Pipeline scaling",
                       "One 8-channel simulation sharded across "
                       "workers in {1,2,4,8}, all 6 schemes");

    SimConfig cfg = bench::benchConfig();
    cfg.channels.count = 8;
    cfg.channels.wpqCoalescing = true;

    std::vector<unsigned> levels = {1, 2, 4, 8};
    if (bench::benchJobs() > 1)
        levels = {1, bench::benchJobs()};

    const std::vector<SchemeKind> kinds = allSchemeKindsExtended();

    TablePrinter table({"workers", "wall_s", "speedup",
                        "agg_writes/s"});
    struct Row
    {
        unsigned workers;
        double wall, speedup, aggWps;
    };
    std::vector<Row> rows;
    double base_wall = 0;
    std::vector<std::string> base_reports;

    for (unsigned workers : levels) {
        auto t0 = std::chrono::steady_clock::now();
        double total_writes = 0;
        std::vector<std::string> reports;
        for (SchemeKind kind : kinds) {
            SyntheticWorkload trace(findApp("gcc"), cfg.seed);
            ShardedPipeline pipe(cfg, kind, workers);
            const RunResult &r = pipe.run(trace, bench::benchRecords(),
                                          bench::benchWarmup());
            total_writes += static_cast<double>(r.logicalWrites);
            std::ostringstream doc;
            pipe.writeReport(doc, /*indent=*/0);
            reports.push_back(doc.str());
        }
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (base_wall == 0)
            base_wall = wall;

        // Cross-level byte identity: the report of every scheme must
        // match the workers=1 bytes exactly. A divergence is a
        // determinism bug, and the bench is the wrong place to shrug
        // it off.
        if (base_reports.empty()) {
            base_reports = reports;
        } else {
            for (std::size_t k = 0; k < kinds.size(); ++k) {
                if (reports[k] != base_reports[k]) {
                    std::cout << "DETERMINISM VIOLATION: "
                              << schemeName(kinds[k]) << " at workers="
                              << workers << ": "
                              << firstJsonDivergence(base_reports[k],
                                                     reports[k])
                              << "\n";
                    return 1;
                }
            }
        }

        Row row{workers, wall, base_wall / wall,
                wall > 0 ? total_writes / wall : 0};
        rows.push_back(row);
        table.addRow({std::to_string(workers),
                      TablePrinter::num(wall, 2),
                      TablePrinter::num(row.speedup, 2),
                      TablePrinter::num(row.aggWps, 0)});
    }
    table.print();
    std::cout << "\nall " << kinds.size()
              << " scheme reports byte-identical across every worker "
                 "count; speedup is host-parallelism bound (hardware "
                 "threads: "
              << std::thread::hardware_concurrency() << ")\n";

    if (const char *path = std::getenv("ESD_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            JsonWriter w(out);
            w.beginObject();
            w.kv("records_per_run", bench::benchRecords());
            w.kv("warmup", bench::benchWarmup());
            w.kv("channels",
                 static_cast<std::uint64_t>(cfg.channels.count));
            w.kv("schemes_per_level",
                 static_cast<std::uint64_t>(kinds.size()));
            w.key("scaling");
            w.beginArray();
            for (const Row &r : rows) {
                w.beginObject();
                w.kv("workers", static_cast<std::uint64_t>(r.workers));
                w.kv("wall_s", r.wall);
                w.kv("speedup", r.speedup);
                w.kv("writes_per_s", r.aggWps);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            out << "\n";
            std::cerr << "bench: wrote scaling grid to " << path
                      << "\n";
        }
    }
    return 0;
}
