/**
 * @file
 * Fig. 11 — NVMM data-write reduction per scheme, normalised to the
 * Baseline (paper: ESD removes 47.8% of writes on average, up to
 * 99.9% on deepsjeng/roms; full dedup removes ~18% more than ESD).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    bench::parseBenchArgs(argc, argv);
    bench::warmRunCache(bench::appNames(),
                        {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                         SchemeKind::Esd});
    bench::printHeader("Figure 11",
                       "Cache-line write reduction vs Baseline "
                       "(fraction of logical writes eliminated)");

    TablePrinter table({"app", "Dedup_SHA1", "DeWrite", "ESD"});
    double sum[3] = {0, 0, 0};
    const SchemeKind kinds[3] = {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                                 SchemeKind::Esd};

    for (const std::string &app : bench::appNames()) {
        std::vector<std::string> row{app};
        for (int i = 0; i < 3; ++i) {
            const RunResult &r = bench::cachedRun(app, kinds[i]);
            double red = r.writeReduction();
            sum[i] += red;
            row.push_back(TablePrinter::pct(red));
        }
        table.addRow(row);
    }
    std::size_t n = bench::appNames().size();
    table.addRow({"average", TablePrinter::pct(sum[0] / n),
                  TablePrinter::pct(sum[1] / n),
                  TablePrinter::pct(sum[2] / n)});
    table.print();
    std::cout << "\npaper: ESD 47.8% avg (up to 99.9%); full-dedup "
                 "schemes remove ~18.3% more than ESD\n";
    return 0;
}
