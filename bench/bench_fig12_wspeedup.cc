/**
 * @file
 * Fig. 12 — write speedup: Baseline mean write latency divided by each
 * scheme's (paper: ESD up to 3.4x vs Baseline; Dedup_SHA1 slower than
 * Baseline on most apps; DeWrite beats ESD on lbm).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    bench::parseBenchArgs(argc, argv);
    bench::warmRunCache(bench::appNames(), allSchemeKinds());
    bench::printHeader("Figure 12",
                       "Write speedup (Baseline mean write latency / "
                       "scheme mean write latency)");

    TablePrinter table({"app", "base(ns)", "Dedup_SHA1", "DeWrite",
                        "ESD"});
    std::vector<double> sp[3];
    const SchemeKind kinds[3] = {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                                 SchemeKind::Esd};

    for (const std::string &app : bench::appNames()) {
        double base = bench::cachedRun(app, SchemeKind::Baseline)
                          .writeLatency.mean();
        std::vector<std::string> row{app, TablePrinter::num(base, 1)};
        for (int i = 0; i < 3; ++i) {
            double mine =
                bench::cachedRun(app, kinds[i]).writeLatency.mean();
            double s = mine > 0 ? base / mine : 0;
            sp[i].push_back(s);
            row.push_back(TablePrinter::num(s, 2) + "x");
        }
        table.addRow(row);
    }
    table.addRow({"geomean", "-",
                  TablePrinter::num(bench::geomean(sp[0]), 2) + "x",
                  TablePrinter::num(bench::geomean(sp[1]), 2) + "x",
                  TablePrinter::num(bench::geomean(sp[2]), 2) + "x"});
    table.print();
    std::cout << "\npaper shape: ESD >= 1x everywhere (up to 3.4x); "
                 "Dedup_SHA1 < 1x on most apps; DeWrite > ESD on lbm\n";
    return 0;
}
