/**
 * @file
 * Fig. 18 — sensitivity of the EFIT (with and without LRCU) and AMT
 * cache hit rates to the cache size (64 KB .. 2 MB); the paper's
 * saturation point around 512 KB motivates the default sizing.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

/** Average EFIT/AMT hit rates over the suite for one configuration. */
struct SweepPoint
{
    double efit = 0;
    double amt = 0;
};

SweepPoint
sweep(std::uint64_t efit_bytes, std::uint64_t amt_bytes, bool lrcu)
{
    SimConfig cfg = bench::benchConfig();
    cfg.metadata.efitCacheBytes = efit_bytes;
    cfg.metadata.amtCacheBytes = amt_bytes;
    cfg.metadata.useLrcu = lrcu;

    SweepPoint p;
    auto apps = bench::appNames();
    for (const std::string &app : apps) {
        SyntheticWorkload trace(findApp(app), 1);
        RunResult r = runWorkload(cfg, SchemeKind::Esd, trace,
                                  bench::benchRecords(),
                                  bench::benchWarmup());
        p.efit += r.fpCacheHitRate;
        p.amt += r.amtCacheHitRate;
    }
    p.efit /= apps.size();
    p.amt /= apps.size();
    return p;
}

} // namespace

int
main()
{
    using namespace esd;
    bench::printHeader("Figure 18",
                       "EFIT (w/ and w/o LRCU) and AMT cache hit rates "
                       "vs cache size, averaged over the suite");

    const std::uint64_t sizes[] = {64 << 10, 128 << 10, 256 << 10,
                                   512 << 10, 1024 << 10, 2048 << 10};

    TablePrinter table({"cache-size", "EFIT+LRCU", "EFIT(LRU)", "AMT"});
    for (std::uint64_t s : sizes) {
        SweepPoint with_lrcu = sweep(s, s, true);
        SweepPoint without = sweep(s, s, false);
        table.addRow({std::to_string(s >> 10) + "KB",
                      TablePrinter::pct(with_lrcu.efit, 2),
                      TablePrinter::pct(without.efit, 2),
                      TablePrinter::pct(with_lrcu.amt, 2)});
    }
    table.print();
    std::cout << "\npaper shape: hit rates saturate near 512KB; LRCU "
                 "beats plain LRU at every size\n";
    return 0;
}
