/**
 * @file
 * Microbenchmarks (google-benchmark) of the fingerprint and crypto
 * primitives on 64 B cache lines — the host-side cost of each engine
 * this library implements functionally (the *modelled* latencies are
 * in CryptoCostConfig; these numbers document the simulator itself).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "crypto/aes.hh"
#include "crypto/crc.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"
#include "ecc/line_ecc.hh"

namespace
{

using namespace esd;

CacheLine
makeLine(std::uint64_t seed)
{
    Pcg32 rng(seed);
    CacheLine l;
    rng.fillLine(l);
    return l;
}

void
BM_Sha1Line(benchmark::State &state)
{
    CacheLine l = makeLine(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha1::fingerprint64(l));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kLineSize);
}
BENCHMARK(BM_Sha1Line);

void
BM_Md5Line(benchmark::State &state)
{
    CacheLine l = makeLine(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(Md5::fingerprint64(l));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kLineSize);
}
BENCHMARK(BM_Md5Line);

void
BM_Crc32cLine(benchmark::State &state)
{
    CacheLine l = makeLine(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(Crc32c::line(l));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kLineSize);
}
BENCHMARK(BM_Crc32cLine);

void
BM_EccFingerprint(benchmark::State &state)
{
    CacheLine l = makeLine(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(LineEccCodec::encode(l));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kLineSize);
}
BENCHMARK(BM_EccFingerprint);

void
BM_EccDecodeClean(benchmark::State &state)
{
    CacheLine l = makeLine(5);
    LineEcc ecc = LineEccCodec::encode(l);
    for (auto _ : state)
        benchmark::DoNotOptimize(LineEccCodec::decode(l, ecc));
}
BENCHMARK(BM_EccDecodeClean);

void
BM_AesCtrEncryptLine(benchmark::State &state)
{
    AesKey key{};
    key.fill(0x42);
    CtrModeEngine eng(key);
    CacheLine l = makeLine(6);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(eng.encrypt(addr, l));
        addr += kLineSize;
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kLineSize);
}
BENCHMARK(BM_AesCtrEncryptLine);

void
BM_ByteCompare(benchmark::State &state)
{
    CacheLine a = makeLine(7);
    CacheLine b = a;
    for (auto _ : state)
        benchmark::DoNotOptimize(a == b);
}
BENCHMARK(BM_ByteCompare);

} // namespace

BENCHMARK_MAIN();
