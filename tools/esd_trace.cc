/**
 * @file
 * Offline telemetry analyzer: loads the artifacts the simulator
 * exports — JSONL write-event traces (`esd_sim -trace-out=`) and
 * Chrome trace-event span files (`esd_sim -spans-out=`) — and prints
 * the summary tables a latency investigation starts from, without
 * opening a trace viewer:
 *
 *   esd_trace -writes=trace.jsonl   per-outcome and per-channel
 *                                   latency breakdowns plus an exact
 *                                   histogram percentile summary
 *   esd_trace -spans=spans.json     per-track, per-phase duration
 *                                   rollups of the span tree
 *
 * Both may be given at once. All statistics are recomputed from the
 * artifact with the same exact log-histogram the simulator uses, so
 * the percentiles printed here agree with the run report.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "metrics/report.hh"

namespace
{

using namespace esd;

struct Options
{
    std::string writesFile;
    std::string spansFile;
};

void
usage()
{
    std::cerr << "usage: esd_trace [-writes=trace.jsonl] "
                 "[-spans=spans.json]\n"
                 "  -writes=  JSONL write-event trace from esd_sim "
                 "-trace-out=\n"
                 "  -spans=   Chrome trace-event JSON from esd_sim "
                 "-spans-out=\n";
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-writes=", 0) == 0) {
            opt.writesFile = arg.substr(8);
        } else if (arg.rfind("-spans=", 0) == 0) {
            opt.spansFile = arg.substr(7);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else {
            usage();
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (opt.writesFile.empty() && opt.spansFile.empty()) {
        usage();
        esd_fatal("need -writes= and/or -spans=");
    }
    return opt;
}

/** Latency rollup for one grouping key (outcome, channel, phase). */
struct Group
{
    std::uint64_t count = 0;
    double sum = 0;
    LogHistogram hist;

    void
    add(double v)
    {
        ++count;
        sum += v;
        hist.record(v > 0 ? static_cast<std::uint64_t>(v) : 0);
    }

    double mean() const { return count ? sum / count : 0.0; }
};

/** LogHistogram percentiles are bucket lower bounds — always whole
 * nanoseconds — so print them without a fractional part. */
std::string
ns(double v)
{
    return std::to_string(static_cast<std::uint64_t>(v));
}

double
numberOf(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->isNumber() ? v->number : 0.0;
}

std::string
stringOf(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->isString() ? v->str : std::string("?");
}

void
printGroups(const std::string &title, const char *key_header,
            const std::map<std::string, Group> &groups)
{
    std::cout << title << ":\n";
    TablePrinter t({key_header, "count", "mean ns", "p50", "p95",
                    "p99", "max"});
    for (const auto &[key, g] : groups) {
        t.addRow({key, std::to_string(g.count),
                  TablePrinter::num(g.mean(), 1),
                  ns(g.hist.percentile(50)), ns(g.hist.percentile(95)),
                  ns(g.hist.percentile(99)),
                  std::to_string(g.hist.valueAtRank(g.count))});
    }
    t.print();
}

void
analyzeWrites(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        esd_fatal("cannot open '%s'", path.c_str());

    std::map<std::string, Group> byOutcome;
    std::map<std::string, Group> byChannel;
    Group all;
    Group queueWait;
    std::uint64_t lines = 0;
    std::uint64_t bad = 0;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        JsonValue rec;
        std::string err;
        if (!tryParseJson(line, rec, &err) || !rec.isObject()) {
            ++bad;
            continue;
        }
        double latency = numberOf(rec, "latency_ns");
        all.add(latency);
        queueWait.add(numberOf(rec, "queue_ns"));
        byOutcome[stringOf(rec, "outcome")].add(latency);
        byChannel["ch" + std::to_string(static_cast<std::uint64_t>(
                      numberOf(rec, "channel")))]
            .add(latency);
    }
    if (bad)
        esd_warn("%llu of %llu lines were not valid JSON objects",
                 static_cast<unsigned long long>(bad),
                 static_cast<unsigned long long>(lines));
    if (all.count == 0) {
        std::cout << path << ": no write events\n";
        return;
    }

    std::cout << path << ": " << all.count << " write events\n";
    printGroups("write latency by outcome", "outcome", byOutcome);
    printGroups("write latency by channel", "channel", byChannel);

    std::cout << "overall:\n";
    TablePrinter t({"metric", "value"});
    t.addRow({"writes", std::to_string(all.count)});
    t.addRow({"latency mean", TablePrinter::num(all.mean(), 1) + " ns"});
    t.addRow({"latency p50/p95/p99",
              ns(all.hist.percentile(50)) + " / " +
                  ns(all.hist.percentile(95)) + " / " +
                  ns(all.hist.percentile(99)) + " ns"});
    t.addRow({"wpq wait mean/p99",
              TablePrinter::num(queueWait.mean(), 1) + " / " +
                  ns(queueWait.hist.percentile(99)) + " ns"});
    t.print();
}

/**
 * Salvage complete event objects from a torn span file: scan from the
 * traceEvents marker, extract every balanced `{...}` object, and parse
 * each independently. A truncated trailing object is dropped with a
 * count instead of poisoning the whole file.
 */
std::vector<JsonValue>
salvageSpanEvents(const std::string &buf, std::uint64_t &torn)
{
    std::vector<JsonValue> out;
    std::size_t pos = buf.find("\"traceEvents\"");
    if (pos == std::string::npos)
        return out;
    while ((pos = buf.find('{', pos)) != std::string::npos) {
        // Balanced-brace scan, honouring strings and escapes.
        int depth = 0;
        bool in_str = false, esc = false;
        std::size_t end = std::string::npos;
        for (std::size_t i = pos; i < buf.size(); ++i) {
            char c = buf[i];
            if (esc) {
                esc = false;
            } else if (in_str) {
                if (c == '\\')
                    esc = true;
                else if (c == '"')
                    in_str = false;
            } else if (c == '"') {
                in_str = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}' && --depth == 0) {
                end = i;
                break;
            }
        }
        if (end == std::string::npos) {
            ++torn;  // runs off the end of the file: the torn tail
            break;
        }
        JsonValue e;
        std::string err;
        if (tryParseJson(buf.substr(pos, end - pos + 1), e, &err) &&
            e.isObject())
            out.push_back(std::move(e));
        else
            ++torn;
        pos = end + 1;
    }
    return out;
}

void
analyzeSpans(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        esd_fatal("cannot open '%s'", path.c_str());
    std::ostringstream raw;
    raw << in.rdbuf();
    std::string buf = raw.str();

    JsonValue doc;
    std::vector<JsonValue> salvaged;
    const std::vector<JsonValue> *eventList = nullptr;
    std::uint64_t torn = 0;
    std::string err;
    if (tryParseJson(buf, doc, &err)) {
        const JsonValue *events = doc.find("traceEvents");
        if (events && events->isArray()) {
            eventList = &events->array;
        } else {
            esd_warn("'%s' has no traceEvents array", path.c_str());
            std::cout << path << ": 0 spans, 0 instants\n";
            return;
        }
    } else {
        // Torn or corrupt (e.g. the writer was killed mid-export):
        // salvage whole event objects instead of aborting.
        esd_warn("'%s' is not valid JSON (%s); salvaging records",
                 path.c_str(), err.c_str());
        salvaged = salvageSpanEvents(buf, torn);
        eventList = &salvaged;
        esd_warn("salvaged %llu complete records, dropped %llu torn",
                 static_cast<unsigned long long>(salvaged.size()),
                 static_cast<unsigned long long>(torn));
    }

    // Track tid -> display name from the thread_name metadata.
    std::map<std::uint64_t, std::string> trackNames;
    for (const JsonValue &e : *eventList) {
        if (stringOf(e, "ph") == "M" &&
            stringOf(e, "name") == "thread_name") {
            const JsonValue *args = e.find("args");
            if (args)
                trackNames[static_cast<std::uint64_t>(
                    numberOf(e, "tid"))] = stringOf(*args, "name");
        }
    }

    // Rollup key "track/name"; durations back in ns (ts/dur are us).
    std::map<std::string, Group> byPhase;
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    for (const JsonValue &e : *eventList) {
        std::string ph = stringOf(e, "ph");
        if (ph != "X" && ph != "i")
            continue;
        auto tid = static_cast<std::uint64_t>(numberOf(e, "tid"));
        auto it = trackNames.find(tid);
        std::string track = it != trackNames.end()
                                ? it->second
                                : "tid" + std::to_string(tid);
        if (ph == "i") {
            ++instants;
            byPhase[track + "/" + stringOf(e, "name")].add(0);
            continue;
        }
        ++spans;
        byPhase[track + "/" + stringOf(e, "name")].add(
            numberOf(e, "dur") * 1000.0);
    }

    std::cout << path << ": " << spans << " spans, " << instants
              << " instants";
    if (const JsonValue *other = doc.find("otherData")) {
        std::cout << " (recorded "
                  << static_cast<std::uint64_t>(
                         numberOf(*other, "spans_recorded"))
                  << ", dropped "
                  << static_cast<std::uint64_t>(
                         numberOf(*other, "spans_dropped"))
                  << ", sampling 1/"
                  << static_cast<std::uint64_t>(
                         numberOf(*other, "sample_every"))
                  << ")";
    }
    std::cout << "\n";
    printGroups("span durations by track/phase", "track/phase",
                byPhase);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (!opt.writesFile.empty())
        analyzeWrites(opt.writesFile);
    if (!opt.spansFile.empty())
        analyzeSpans(opt.spansFile);
    return 0;
}
