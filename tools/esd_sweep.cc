/**
 * @file
 * Parallel config-grid sweep CLI: expand a sweep spec into independent
 * (app x scheme x config) jobs, run them on a thread pool, and merge
 * the per-job stats reports into one deterministic sweep document.
 *
 *   esd_sweep [-sweep scheme=0..5,channels=1,2,8] [-jobs=N]
 *             [-records=N] [-warmup=N] [-seed=N]
 *             [-ConfigFile=path] [-out=sweep.json]
 *
 * The merged report is byte-identical for any -jobs value (enforced by
 * test_sweep_determinism): job seeds derive from (seed, job index),
 * every job owns its whole simulated world, and results merge in grid
 * order regardless of completion order.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config_io.hh"
#include "common/logging.hh"
#include "exec/sweep_grid.hh"
#include "exec/sweep_runner.hh"

int
main(int argc, char **argv)
{
    using namespace esd;
    using namespace esd::exec;

    std::uint64_t records = 50000;
    std::uint64_t warmup = 10000;
    std::uint64_t base_seed = 0;
    bool seed_set = false;
    unsigned jobs = 1;
    std::string out_path = "sweep.json";
    std::string config_file;
    SweepGrid grid;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-records=", 0) == 0) {
            records = std::stoull(arg.substr(9));
        } else if (arg.rfind("-warmup=", 0) == 0) {
            warmup = std::stoull(arg.substr(8));
        } else if (arg.rfind("-jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(std::stoul(arg.substr(6)));
        } else if (arg.rfind("-seed=", 0) == 0) {
            base_seed = std::stoull(arg.substr(6));
            seed_set = true;
        } else if (arg.rfind("-out=", 0) == 0) {
            out_path = arg.substr(5);
        } else if (arg.rfind("-ConfigFile=", 0) == 0) {
            config_file = arg.substr(12);
        } else if (arg == "-sweep" && i + 1 < argc) {
            std::string err;
            if (!parseSweepSpec(argv[++i], grid, &err))
                esd_fatal("bad -sweep spec: %s", err.c_str());
        } else if (arg.rfind("-sweep=", 0) == 0) {
            std::string err;
            if (!parseSweepSpec(arg.substr(7), grid, &err))
                esd_fatal("bad -sweep spec: %s", err.c_str());
        } else {
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }

    SimConfig cfg;
    if (!config_file.empty())
        loadConfigFile(cfg, config_file);
    if (!seed_set)
        base_seed = cfg.seed;

    std::vector<SweepJob> grid_jobs =
        expandGrid(grid, cfg, records, warmup, base_seed);
    std::cout << "sweep: " << grid_jobs.size() << " jobs, -jobs="
              << jobs << ", base seed " << base_seed << "\n";

    auto t0 = std::chrono::steady_clock::now();
    SweepRunner runner(jobs);
    std::vector<SweepOutcome> outcomes = runner.run(
        grid_jobs,
        [](std::size_t index, const SweepJob &job, const RunResult &r) {
            std::cout << "  [" << index << "] " << job.app << " / "
                      << r.schemeName << " ch="
                      << job.cfg.channels.count << " done\n";
        });
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::uint64_t failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok)
            continue;
        ++failed;
        esd_warn("job [%zu] %s/%s failed: %s", i,
                 grid_jobs[i].app.c_str(),
                 schemeName(grid_jobs[i].scheme),
                 outcomes[i].error.c_str());
    }

    std::ostringstream doc;
    writeSweepReport(doc, outcomes);
    if (out_path == "-") {
        std::cout << doc.str();
    } else {
        std::ofstream out(out_path);
        if (!out)
            esd_fatal("cannot open '%s'", out_path.c_str());
        out << doc.str();
        std::cout << "wrote " << out_path << " ("
                  << outcomes.size() << " jobs, " << wall
                  << " s wall)\n";
    }
    if (failed) {
        std::cerr << failed << " of " << outcomes.size()
                  << " jobs failed\n";
        return 1;
    }
    return 0;
}
