/**
 * @file
 * Trace generator CLI: materialise any of the 20 calibrated
 * application profiles into a trace file (text or binary) that
 * `esd_sim -InputFile=` — or any external tool — can replay.
 *
 *   esd_tracegen -app=<name> -out=<path> [-records=N] [-seed=N]
 *                [-binary]
 */

#include <iostream>
#include <string>

#include "common/logging.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

using namespace esd;

void
usage()
{
    std::cerr << "usage: esd_tracegen -app=<name> -out=<path> "
                 "[-records=N] [-seed=N] [-binary]\napps: ";
    for (const AppProfile &p : paperApps())
        std::cerr << p.name << " ";
    std::cerr << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app, out;
    std::uint64_t records = 100000;
    std::uint64_t seed = 1;
    bool binary = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-app=", 0) == 0) {
            app = arg.substr(5);
        } else if (arg.rfind("-out=", 0) == 0) {
            out = arg.substr(5);
        } else if (arg.rfind("-records=", 0) == 0) {
            records = std::stoull(arg.substr(9));
        } else if (arg.rfind("-seed=", 0) == 0) {
            seed = std::stoull(arg.substr(6));
        } else if (arg == "-binary") {
            binary = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            usage();
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (app.empty() || out.empty()) {
        usage();
        esd_fatal("need -app and -out");
    }

    SyntheticWorkload w(findApp(app), seed);
    TraceRecord rec;
    if (binary) {
        BinaryTraceWriter writer(out);
        for (std::uint64_t i = 0; i < records; ++i) {
            w.next(rec);
            writer.write(rec);
        }
    } else {
        TextTraceWriter writer(out);
        for (std::uint64_t i = 0; i < records; ++i) {
            w.next(rec);
            writer.write(rec);
        }
    }
    std::cout << "wrote " << records << " records of '" << app
              << "' (seed " << seed << ") to " << out
              << (binary ? " [binary]" : " [text]") << "\n";
    return 0;
}
