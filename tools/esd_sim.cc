/**
 * @file
 * The simulator command-line front end, mirroring the artifact's
 * `nvmain.fast` interface:
 *
 *   esd_sim -scheme=<0..5|name> [-ConfigFile=<path>]
 *           (-InputFile=<trace> | -app=<name>)
 *           [-records=N] [-warmup=N] [-seed=N]
 *           [-latency-out=<path>] [-dump-config]
 *           [-stats-json=<path>] [-stats-interval=N]
 *           [-trace-out=<path>] [-trace-cap=N]
 *
 * Scheme selector follows the artifact: 0 Baseline, 1 Dedup_SHA1,
 * 2 DeWrite, 3 ESD (4/5 add the ESD_Full and ESD+ extensions).
 * `-InputFile`
 * accepts both the text and binary trace formats (by extension:
 * `.bin` is binary). `-latency-out` writes the raw write-latency
 * samples, one per line, for external CDF plotting (Fig. 15).
 *
 * Observability outputs:
 *   `-stats-json` writes the machine-readable run report (config +
 *   result + every registered stat + interval snapshots every
 *   `-stats-interval` measured writes);
 *   `-trace-out` dumps the first `-trace-ring` per-write events as
 *   JSONL (one record per line; `-trace-cap` is a legacy alias, and
 *   the default capacity comes from [telemetry] trace_ring_capacity);
 *   `-spans-out` writes a Chrome trace-event / Perfetto JSON span
 *   trace of the write pipeline and per-channel device service,
 *   admitting every `-span-every`-th write (default [telemetry]
 *   span_sample_every);
 *   `-metrics-out` rewrites a Prometheus text-format snapshot of the
 *   stat registry every `-metrics-every` measured writes plus once at
 *   end of run (0 = final snapshot only);
 *   `-hist-buckets` embeds the exact latency histogram buckets in the
 *   `-stats-json` report (opt-in: widens the schema);
 *   `-profile` attributes host wall-clock to the write-path phases
 *   (fingerprint/lookup/compare/encrypt/device) and prints the table
 *   after the run — the `host.profile.*` gauges also land in
 *   `-stats-json` output when both flags are given.
 *
 * RAS fault campaign (any of these enables the RAS pipeline; see
 * `[ras]` config keys for the full parameter set):
 *   `-ras-read-ber=P` / `-ras-write-ber=P` raw bit-error probability
 *   per stored bit per line read / write;
 *   `-ras-patrol-interval=N` patrol-scrub sweep every N device writes;
 *   `-ras-write-verify=N` verify every content write with up to N
 *   retries.
 *
 * Memory-channel model (layers over `[channels]` config keys):
 *   `-channels=N` address-interleaved channels, each replicating the
 *   `[pcm]` bank geometry with its own write-pending queue;
 *   `-wpq-depth=N` per-channel WPQ depth (0 inherits
 *   pcm.write_queue_depth);
 *   `-wpq-coalescing=B` absorb re-writes to a still-queued line in
 *   place instead of issuing a second array write.
 *
 * Crash-consistency subsystem (any of these enables the `[persistence]`
 * pipeline; see the config section for the full parameter set):
 *   `-persist=B` master switch; `-persist-domain=adr|eadr` what a power
 *   cut preserves; `-persist-epoch-writes=N` group-commit epoch;
 *   `-persist-checkpoint-epochs=N` journal-truncation cadence;
 *   `-persist-counter-slack=N` counter-recovery probe window (0 auto);
 *   `-persist-crash-at=N` inject a crash on the Nth write (warmup
 *   counts), `-persist-crash-phase=pre_barrier|mid_journal|post_data`
 *   where in the write it strikes; `-recovery-json=path` writes the
 *   machine-readable crash + recovery + pad-safety report.
 *
 * Sharded write pipeline:
 *   `-workers=N` runs the simulation through the intra-simulation
 *   sharded pipeline (exec/pipeline.hh): one shard simulator per
 *   memory channel, driven by N worker threads joining at `[pipeline]`
 *   epoch barriers. The stats report is byte-identical at any N
 *   (including N=1), so -workers only buys wall-clock time. Per-write
 *   observability exports (-trace-out, -spans-out, -metrics-out,
 *   -latency-out, -profile, -recovery-json) are single-simulator
 *   features and are rejected in pipeline mode.
 *
 * Trace frontend / capture (see `[trace]` config keys):
 *   `-trace-in=path` streams an on-disk trace (text, gzip, or binary;
 *   format sniffed from content) through the streaming frontend —
 *   constant memory at any trace length. Exclusive with -app= and
 *   -InputFile=; composes with -workers=N and crash injection. The
 *   whole file replays unless -records caps it; -warmup applies only
 *   when given (file input defaults to 0/0);
 *   `-capture-out=path` tees the consumed record stream to a trace
 *   file (format from -trace-format / [trace] format; address-only
 *   records with -trace-payload=0) so the run replays bit-identically
 *   via -trace-in. Requires a synthetic workload (-app=);
 *   `-trace-format=auto|text|gzip|binary` capture format (auto=text);
 *   `-trace-payload=B` capture 64 B write payloads (default 1);
 *   `-trace-read-ahead=N` frontend record buffer bound.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"
#include "common/config_io.hh"
#include "common/logging.hh"
#include "common/write_trace.hh"
#include "core/run_report.hh"
#include "core/simulator.hh"
#include "exec/pipeline.hh"
#include "metrics/report.hh"
#include "persist/recovery.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_frontend.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

using namespace esd;

struct Options
{
    SchemeKind scheme = SchemeKind::Esd;
    std::string configFile;
    std::string inputFile;
    std::string app;
    std::string traceIn;
    std::string captureOut;
    std::string traceFormat;
    std::uint64_t traceReadAhead = ~0ull;  ///< not given: [trace] value
    int tracePayload = -1;  // -1 not given, else 0/1
    std::string latencyOut;
    std::string statsJson;
    std::string traceOut;
    std::string spansOut;
    std::string metricsOut;
    std::uint64_t traceCap = ~0ull;    ///< not given: [telemetry] value
    std::uint64_t spanEvery = ~0ull;   ///< not given: [telemetry] value
    std::uint64_t metricsEvery = ~0ull;
    std::uint64_t statsInterval = 10000;
    std::uint64_t records = 200000;
    std::uint64_t warmup = 40000;
    bool recordsGiven = false;  ///< file input defaults differ
    bool warmupGiven = false;
    std::uint64_t seed = 1;
    std::uint64_t workers = ~0ull;  ///< given at all = pipeline mode
    bool dumpConfig = false;
    bool profile = false;
    bool histBuckets = false;

    /** ECC engine override; empty means the [ecc] config value. */
    std::string eccEngine;

    // RAS overrides; negative / max mean "not given" (config-file
    // values, applied earlier, then stand).
    double rasReadBer = -1.0;
    double rasWriteBer = -1.0;
    std::uint64_t rasPatrolInterval = ~0ull;
    std::uint64_t rasWriteVerify = ~0ull;

    // Channel overrides, same "max means not given" convention.
    std::uint64_t channels = ~0ull;
    std::uint64_t wpqDepth = ~0ull;
    int wpqCoalescing = -1;  // -1 not given, else 0/1

    // Persistence overrides, same conventions.
    int persist = -1;  // -1 not given, else 0/1
    std::string persistDomain;
    std::string persistCrashPhase;
    std::uint64_t persistEpochWrites = ~0ull;
    std::uint64_t persistCheckpointEpochs = ~0ull;
    std::uint64_t persistCounterSlack = ~0ull;
    std::uint64_t persistCrashAt = ~0ull;
    std::string recoveryJson;

    bool
    rasRequested() const
    {
        return rasReadBer >= 0.0 || rasWriteBer >= 0.0 ||
               rasPatrolInterval != ~0ull || rasWriteVerify != ~0ull;
    }

    bool
    persistRequested() const
    {
        return persist == 1 || !persistDomain.empty() ||
               !persistCrashPhase.empty() ||
               persistEpochWrites != ~0ull ||
               persistCheckpointEpochs != ~0ull ||
               persistCounterSlack != ~0ull || persistCrashAt != ~0ull;
    }
};

/** Strict u64 parse: the whole flag value must be a number. */
std::uint64_t
parseU64(const std::string &flag, const std::string &v)
{
    try {
        std::size_t consumed = 0;
        if (v.empty() || v[0] == '-')
            throw std::invalid_argument(v);
        std::uint64_t out = std::stoull(v, &consumed);
        if (consumed != v.size())
            throw std::invalid_argument(v);
        return out;
    } catch (const std::exception &) {
        esd_fatal("%s: '%s' is not an unsigned integer", flag.c_str(),
                  v.c_str());
    }
}

/** Strict bool parse: 0/1/true/false/on/off. */
bool
parseBool(const std::string &flag, const std::string &v)
{
    if (v == "1" || v == "true" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "off")
        return false;
    esd_fatal("%s: '%s' is not a boolean (use 0/1/true/false/on/off)",
              flag.c_str(), v.c_str());
}

/** Strict probability parse: a double in [0, 1]. */
double
parseProb(const std::string &flag, const std::string &v)
{
    try {
        std::size_t consumed = 0;
        double out = std::stod(v, &consumed);
        if (consumed != v.size())
            throw std::invalid_argument(v);
        if (out < 0.0 || out > 1.0)
            esd_fatal("%s: %s out of range [0, 1]", flag.c_str(),
                      v.c_str());
        return out;
    } catch (const std::exception &) {
        esd_fatal("%s: '%s' is not a probability", flag.c_str(),
                  v.c_str());
    }
}

void
usage()
{
    std::cerr
        << "usage: esd_sim -scheme=<0..5|name> [-ConfigFile=path]\n"
           "               (-InputFile=trace | -app=name | "
           "-trace-in=trace)\n"
           "               [-records=N] [-warmup=N] [-seed=N] "
           "[-workers=N]\n"
           "               [-capture-out=path] "
           "[-trace-format=auto|text|gzip|binary]\n"
           "               [-trace-payload=B] [-trace-read-ahead=N]\n"
           "               [-latency-out=path] [-dump-config]\n"
           "               [-stats-json=path] [-stats-interval=N]\n"
           "               [-trace-out=path] [-trace-ring=N]\n"
           "               [-spans-out=path] [-span-every=N]\n"
           "               [-metrics-out=path] [-metrics-every=N]\n"
           "               [-hist-buckets]\n"
           "               [-ras-read-ber=P] [-ras-write-ber=P]\n"
           "               [-ras-patrol-interval=N] "
           "[-ras-write-verify=N]\n"
           "               [-channels=N] [-wpq-depth=N] "
           "[-wpq-coalescing=B]\n"
           "               [-ecc=hamming|bch|rs]\n"
           "               [-persist=B] [-persist-domain=adr|eadr]\n"
           "               [-persist-epoch-writes=N] "
           "[-persist-checkpoint-epochs=N]\n"
           "               [-persist-counter-slack=N] "
           "[-persist-crash-at=N]\n"
           "               [-persist-crash-phase=NAME] "
           "[-recovery-json=path]\n"
           "               [-profile]\n"
           "schemes: 0 Baseline, 1 Dedup_SHA1, 2 DeWrite, 3 ESD, "
           "4 ESD_Full, 5 ESD+\napps: ";
    for (const AppProfile &p : paperApps())
        std::cerr << p.name << " ";
    std::cerr << "\n";
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("-scheme=", 0) == 0) {
            opt.scheme = parseSchemeKind(value("-scheme="));
        } else if (arg.rfind("-ConfigFile=", 0) == 0) {
            opt.configFile = value("-ConfigFile=");
        } else if (arg.rfind("-InputFile=", 0) == 0) {
            opt.inputFile = value("-InputFile=");
        } else if (arg.rfind("-app=", 0) == 0) {
            opt.app = value("-app=");
        } else if (arg.rfind("-trace-in=", 0) == 0) {
            opt.traceIn = value("-trace-in=");
        } else if (arg.rfind("-capture-out=", 0) == 0) {
            opt.captureOut = value("-capture-out=");
        } else if (arg.rfind("-trace-format=", 0) == 0) {
            opt.traceFormat = value("-trace-format=");
            parseTraceFormat("-trace-format", opt.traceFormat);
        } else if (arg.rfind("-trace-payload=", 0) == 0) {
            opt.tracePayload = parseBool("-trace-payload",
                                         value("-trace-payload="))
                                   ? 1
                                   : 0;
        } else if (arg.rfind("-trace-read-ahead=", 0) == 0) {
            opt.traceReadAhead = parseU64("-trace-read-ahead",
                                          value("-trace-read-ahead="));
            if (opt.traceReadAhead < 1 ||
                opt.traceReadAhead > (1u << 20))
                esd_fatal("-trace-read-ahead: %llu out of range [1, %u]",
                          static_cast<unsigned long long>(
                              opt.traceReadAhead),
                          1u << 20);
        } else if (arg.rfind("-records=", 0) == 0) {
            opt.records = parseU64("-records", value("-records="));
            opt.recordsGiven = true;
        } else if (arg.rfind("-warmup=", 0) == 0) {
            opt.warmup = parseU64("-warmup", value("-warmup="));
            opt.warmupGiven = true;
        } else if (arg.rfind("-seed=", 0) == 0) {
            opt.seed = parseU64("-seed", value("-seed="));
        } else if (arg.rfind("-workers=", 0) == 0) {
            opt.workers = parseU64("-workers", value("-workers="));
            if (opt.workers < 1 || opt.workers > 256)
                esd_fatal("-workers: %llu out of range [1, 256]",
                          static_cast<unsigned long long>(opt.workers));
        } else if (arg.rfind("-latency-out=", 0) == 0) {
            opt.latencyOut = value("-latency-out=");
        } else if (arg.rfind("-stats-json=", 0) == 0) {
            opt.statsJson = value("-stats-json=");
        } else if (arg.rfind("-stats-interval=", 0) == 0) {
            opt.statsInterval =
                parseU64("-stats-interval", value("-stats-interval="));
        } else if (arg.rfind("-trace-out=", 0) == 0) {
            opt.traceOut = value("-trace-out=");
        } else if (arg.rfind("-trace-ring=", 0) == 0) {
            opt.traceCap = parseU64("-trace-ring", value("-trace-ring="));
            if (opt.traceCap < 1 || opt.traceCap > (1u << 24))
                esd_fatal("-trace-ring: %llu out of range [1, %u]",
                          static_cast<unsigned long long>(opt.traceCap),
                          1u << 24);
        } else if (arg.rfind("-trace-cap=", 0) == 0) {
            // Legacy alias of -trace-ring= (0 still caught below).
            opt.traceCap = parseU64("-trace-cap", value("-trace-cap="));
        } else if (arg.rfind("-spans-out=", 0) == 0) {
            opt.spansOut = value("-spans-out=");
        } else if (arg.rfind("-span-every=", 0) == 0) {
            opt.spanEvery =
                parseU64("-span-every", value("-span-every="));
            if (opt.spanEvery < 1 || opt.spanEvery > (1u << 30))
                esd_fatal("-span-every: %llu out of range [1, %u]",
                          static_cast<unsigned long long>(opt.spanEvery),
                          1u << 30);
        } else if (arg.rfind("-metrics-out=", 0) == 0) {
            opt.metricsOut = value("-metrics-out=");
        } else if (arg.rfind("-metrics-every=", 0) == 0) {
            opt.metricsEvery =
                parseU64("-metrics-every", value("-metrics-every="));
        } else if (arg == "-hist-buckets") {
            opt.histBuckets = true;
        } else if (arg.rfind("-ras-read-ber=", 0) == 0) {
            opt.rasReadBer =
                parseProb("-ras-read-ber", value("-ras-read-ber="));
        } else if (arg.rfind("-ras-write-ber=", 0) == 0) {
            opt.rasWriteBer =
                parseProb("-ras-write-ber", value("-ras-write-ber="));
        } else if (arg.rfind("-ras-patrol-interval=", 0) == 0) {
            opt.rasPatrolInterval = parseU64(
                "-ras-patrol-interval", value("-ras-patrol-interval="));
        } else if (arg.rfind("-ras-write-verify=", 0) == 0) {
            opt.rasWriteVerify =
                parseU64("-ras-write-verify", value("-ras-write-verify="));
        } else if (arg.rfind("-channels=", 0) == 0) {
            opt.channels = parseU64("-channels", value("-channels="));
            if (opt.channels < 1 || opt.channels > 64)
                esd_fatal("-channels: %llu out of range [1, 64]",
                          static_cast<unsigned long long>(opt.channels));
        } else if (arg.rfind("-wpq-depth=", 0) == 0) {
            opt.wpqDepth = parseU64("-wpq-depth", value("-wpq-depth="));
            if (opt.wpqDepth > (1u << 16))
                esd_fatal("-wpq-depth: %llu out of range [0, 65536]",
                          static_cast<unsigned long long>(opt.wpqDepth));
        } else if (arg.rfind("-wpq-coalescing=", 0) == 0) {
            opt.wpqCoalescing = parseBool("-wpq-coalescing",
                                          value("-wpq-coalescing="))
                                    ? 1
                                    : 0;
        } else if (arg.rfind("-ecc=", 0) == 0) {
            opt.eccEngine = value("-ecc=");
            parseEccEngine("-ecc", opt.eccEngine);  // fail fast
        } else if (arg.rfind("-persist=", 0) == 0) {
            opt.persist =
                parseBool("-persist", value("-persist=")) ? 1 : 0;
        } else if (arg.rfind("-persist-domain=", 0) == 0) {
            opt.persistDomain = value("-persist-domain=");
            parsePersistDomain("-persist-domain", opt.persistDomain);
        } else if (arg.rfind("-persist-epoch-writes=", 0) == 0) {
            opt.persistEpochWrites = parseU64(
                "-persist-epoch-writes", value("-persist-epoch-writes="));
            if (opt.persistEpochWrites < 1 ||
                opt.persistEpochWrites > (1u << 20))
                esd_fatal("-persist-epoch-writes: %llu out of range "
                          "[1, %u]",
                          static_cast<unsigned long long>(
                              opt.persistEpochWrites),
                          1u << 20);
        } else if (arg.rfind("-persist-checkpoint-epochs=", 0) == 0) {
            opt.persistCheckpointEpochs =
                parseU64("-persist-checkpoint-epochs",
                         value("-persist-checkpoint-epochs="));
            if (opt.persistCheckpointEpochs < 1 ||
                opt.persistCheckpointEpochs > (1u << 20))
                esd_fatal("-persist-checkpoint-epochs: %llu out of range "
                          "[1, %u]",
                          static_cast<unsigned long long>(
                              opt.persistCheckpointEpochs),
                          1u << 20);
        } else if (arg.rfind("-persist-counter-slack=", 0) == 0) {
            opt.persistCounterSlack =
                parseU64("-persist-counter-slack",
                         value("-persist-counter-slack="));
            if (opt.persistCounterSlack > (1u << 20))
                esd_fatal("-persist-counter-slack: %llu out of range "
                          "[0, %u]",
                          static_cast<unsigned long long>(
                              opt.persistCounterSlack),
                          1u << 20);
        } else if (arg.rfind("-persist-crash-at=", 0) == 0) {
            opt.persistCrashAt = parseU64("-persist-crash-at",
                                          value("-persist-crash-at="));
        } else if (arg.rfind("-persist-crash-phase=", 0) == 0) {
            opt.persistCrashPhase = value("-persist-crash-phase=");
            parseCrashPhase("-persist-crash-phase",
                            opt.persistCrashPhase);
        } else if (arg.rfind("-recovery-json=", 0) == 0) {
            opt.recoveryJson = value("-recovery-json=");
        } else if (arg == "-profile") {
            opt.profile = true;
        } else if (arg == "-dump-config") {
            opt.dumpConfig = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else {
            usage();
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

/**
 * Pipeline-mode run: shard simulators + worker threads in place of the
 * single Simulator, console summary from the merged result, stats-JSON
 * via the pipeline report (per-shard fragments, worker-count-free).
 */
int
runPipeline(const Options &opt, const SimConfig &cfg,
            TraceSource &trace, std::uint64_t records,
            std::uint64_t warmup)
{
    exec::ShardedPipeline pipe(cfg, opt.scheme,
                               static_cast<unsigned>(opt.workers));
    const RunResult &r = pipe.run(trace, records, warmup);

    std::cout << "scheme: " << r.schemeName << "\n"
              << "records: " << r.records << " (" << r.logicalWrites
              << " writes, " << r.logicalReads << " reads)\n"
              << "pipeline: shards=" << pipe.shardCount()
              << " workers=" << pipe.workers()
              << " epochs=" << pipe.epochsRun()
              << " epoch_records=" << cfg.pipeline.epochRecords
              << (pipe.dedupSuspendedGlobally()
                      ? " dedup_suspended@" +
                            std::to_string(pipe.suspendEpoch())
                      : "")
              << "\n";

    TablePrinter t({"metric", "value"});
    t.addRow({"write reduction", TablePrinter::pct(r.writeReduction())});
    t.addRow({"NVMM writes (data/total)",
              std::to_string(r.nvmDataWrites) + " / " +
                  std::to_string(r.nvmWritesTotal)});
    if (cfg.channels.count > 1 || cfg.channels.wpqCoalescing)
        t.addRow({"channels (issued+coalesced)",
                  std::to_string(cfg.channels.count) + " ch, " +
                      std::to_string(r.nvmWritesTotal) + " + " +
                      std::to_string(r.nvmWritesCoalesced) + " writes"});
    t.addRow({"NVMM reads (total)", std::to_string(r.nvmReadsTotal)});
    t.addRow({"write latency mean/p99",
              TablePrinter::num(r.writeLatency.mean(), 1) + " / " +
                  TablePrinter::num(r.writeLatency.percentile(99), 0) +
                  " ns"});
    t.addRow({"read latency mean/p99",
              TablePrinter::num(r.readLatency.mean(), 1) + " / " +
                  TablePrinter::num(r.readLatency.percentile(99), 0) +
                  " ns"});
    t.addRow({"IPC", TablePrinter::num(r.ipc, 3)});
    t.addRow({"energy", TablePrinter::num(r.energy.total() / 1e6, 2) +
                            " uJ"});
    t.addRow({"metadata in NVMM",
              TablePrinter::num(r.metadataNvmBytes / 1024.0, 1) + " KB"});
    t.print();

    if (cfg.ras.enabled) {
        std::uint64_t corrected = 0, ues = 0, retired = 0, sdc = 0;
        std::uint64_t blast = 0;
        for (unsigned s = 0; s < pipe.shardCount(); ++s) {
            const SchemeStats &ss = pipe.shard(s).scheme().stats();
            const RasStats &rs = pipe.shard(s).scheme().ras().stats();
            corrected += ss.eccCorrectedReads.value();
            ues += rs.ueEvents.value();
            retired += rs.linesRetired.value();
            sdc += ss.sdcEvents.value();
            blast += rs.blastRadiusRefs.value();
        }
        std::cout << "ras: corrected=" << corrected
                  << " uncorrectable=" << ues << " retired=" << retired
                  << " sdc=" << sdc << " blast_radius=" << blast
                  << (pipe.dedupSuspendedGlobally() ? " dedup_suspended"
                                                    : "")
                  << "\n";
    }

    if (cfg.persist.enabled) {
        std::uint64_t jrecords = 0, commits = 0, checkpoints = 0;
        std::uint64_t barrier_ns = 0;
        for (unsigned s = 0; s < pipe.shardCount(); ++s) {
            const PersistStats &ps =
                pipe.shard(s).persistence()->stats();
            jrecords += ps.journalRecords.value();
            commits += ps.epochCommits.value();
            checkpoints += ps.checkpoints.value();
            barrier_ns += ps.barrierNs.value();
        }
        std::cout << "persist: domain="
                  << persistDomainName(cfg.persist.domain)
                  << " records=" << jrecords << " commits=" << commits
                  << " checkpoints=" << checkpoints
                  << " barrier_ns=" << barrier_ns << "\n";

        int cs = pipe.crashedShard();
        if (cs >= 0) {
            Simulator &sim = pipe.shard(static_cast<unsigned>(cs));
            const PersistenceManager &pm = *sim.persistence();
            const CrashImage &img = pm.image();
            RecoveredState rec = recoverFromImage(
                img, pm.config(), sim.scheme().crypto(),
                sim.scheme().ecc());
            PadSafetyReport audit = auditPadSafety(rec, img);
            std::cout << "crash: shard=" << cs
                      << " write=" << img.crashWriteIndex
                      << " phase=" << crashPhaseName(img.phase)
                      << " surviving_lines=" << img.content.size()
                      << " durable_records=" << img.records.size()
                      << " torn=" << img.tornRecords << "\n"
                      << "recovery: replayed="
                      << rec.summary.recordsReplayed
                      << " counters_repaired="
                      << rec.summary.countersRepaired
                      << " unresolved="
                      << rec.summary.countersUnresolved
                      << " mappings_invalidated="
                      << rec.summary.mappingsInvalidated
                      << " pad_violations=" << audit.violations
                      << (rec.summary.ok ? " ok" : " NOT-OK") << "\n";
        } else if (cfg.persist.crashAtWrite != 0) {
            esd_fatal("the run ended before the injected crash point "
                      "(crash_at_write=%llu)",
                      static_cast<unsigned long long>(
                          cfg.persist.crashAtWrite));
        }
    }

    if (!opt.statsJson.empty()) {
        std::ostringstream out;
        pipe.writeReport(out, /*indent=*/2,
                         opt.histBuckets ||
                             cfg.telemetry.histogramBuckets);
        if (!writeFileAtomic(opt.statsJson, out.str()))
            esd_fatal("cannot write '%s'", opt.statsJson.c_str());
        std::cout << "wrote pipeline stats report ("
                  << pipe.shardCount() << " shards) to " << opt.statsJson
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    SimConfig cfg;
    cfg.seed = opt.seed;
    if (!opt.configFile.empty())
        loadConfigFile(cfg, opt.configFile);

    // RAS flags layer over (and enable) whatever the config file set.
    if (opt.rasRequested())
        cfg.ras.enabled = true;
    if (opt.rasReadBer >= 0.0)
        cfg.ras.readBer = opt.rasReadBer;
    if (opt.rasWriteBer >= 0.0)
        cfg.ras.writeBer = opt.rasWriteBer;
    if (opt.rasPatrolInterval != ~0ull)
        cfg.ras.patrolIntervalWrites = opt.rasPatrolInterval;
    if (opt.rasWriteVerify != ~0ull)
        cfg.ras.writeVerifyRetries = opt.rasWriteVerify;

    // Channel flags layer over the [channels] config section.
    if (opt.channels != ~0ull)
        cfg.channels.count = static_cast<unsigned>(opt.channels);
    if (opt.wpqDepth != ~0ull)
        cfg.channels.wpqDepth = static_cast<unsigned>(opt.wpqDepth);
    if (opt.wpqCoalescing >= 0)
        cfg.channels.wpqCoalescing = opt.wpqCoalescing != 0;

    // The ECC engine flag layers over the [ecc] config section.
    if (!opt.eccEngine.empty())
        cfg.ecc.engine = parseEccEngine("-ecc", opt.eccEngine);

    // Persistence flags layer over (and enable) the [persistence]
    // section; -persist=0 force-disables whatever the file set.
    if (opt.persistRequested())
        cfg.persist.enabled = true;
    if (opt.persist == 0)
        cfg.persist.enabled = false;
    if (!opt.persistDomain.empty())
        cfg.persist.domain =
            parsePersistDomain("-persist-domain", opt.persistDomain);
    if (opt.persistEpochWrites != ~0ull)
        cfg.persist.epochWrites = opt.persistEpochWrites;
    if (opt.persistCheckpointEpochs != ~0ull)
        cfg.persist.checkpointEpochs = opt.persistCheckpointEpochs;
    if (opt.persistCounterSlack != ~0ull)
        cfg.persist.counterSlack = opt.persistCounterSlack;
    if (opt.persistCrashAt != ~0ull)
        cfg.persist.crashAtWrite = opt.persistCrashAt;
    if (!opt.persistCrashPhase.empty())
        cfg.persist.crashPhase =
            parseCrashPhase("-persist-crash-phase", opt.persistCrashPhase);
    if (!opt.recoveryJson.empty() &&
        (!cfg.persist.enabled || cfg.persist.crashAtWrite == 0))
        esd_fatal("-recovery-json requires an injected crash "
                  "(-persist-crash-at=N)");

    // Trace flags layer over the [trace] config section.
    if (!opt.traceFormat.empty())
        cfg.trace.format =
            parseTraceFormat("-trace-format", opt.traceFormat);
    if (opt.tracePayload >= 0)
        cfg.trace.linePayload = opt.tracePayload != 0;
    if (opt.traceReadAhead != ~0ull)
        cfg.trace.readAhead = opt.traceReadAhead;

    if (opt.dumpConfig) {
        std::cout << renderConfig(cfg);
        return 0;
    }

    // Exactly one workload source: reject ambiguous combinations up
    // front instead of silently preferring one.
    if (!opt.traceIn.empty() && !opt.app.empty())
        esd_fatal("-trace-in is incompatible with -app= (the trace is "
                  "the workload)");
    if (!opt.traceIn.empty() && !opt.inputFile.empty())
        esd_fatal("-trace-in is incompatible with -InputFile=");
    if (!opt.inputFile.empty() && !opt.app.empty())
        esd_fatal("-InputFile is incompatible with -app= (pick one "
                  "workload source)");
    if (opt.traceIn.empty() && opt.inputFile.empty() &&
        opt.app.empty()) {
        usage();
        esd_fatal("need -InputFile, -app, or -trace-in");
    }
    // Capture re-exports a synthetic run; capturing a replayed file
    // would only copy it.
    if (!opt.captureOut.empty() && opt.app.empty())
        esd_fatal("-capture-out requires a synthetic workload (-app=)");

    std::unique_ptr<TraceSource> trace;
    if (!opt.traceIn.empty()) {
        trace = std::make_unique<TraceFrontend>(opt.traceIn, cfg.trace);
    } else if (!opt.inputFile.empty()) {
        bool binary = opt.inputFile.size() > 4 &&
                      opt.inputFile.substr(opt.inputFile.size() - 4) ==
                          ".bin";
        if (binary)
            trace = std::make_unique<BinaryTraceReader>(opt.inputFile);
        else
            trace = std::make_unique<TextTraceReader>(opt.inputFile);
    } else {
        trace =
            std::make_unique<SyntheticWorkload>(findApp(opt.app), opt.seed);
    }

    // Trace files replay to exhaustion with no warmup unless -records /
    // -warmup are given explicitly (replaying a captured run passes the
    // original -warmup to reproduce its stats byte-for-byte).
    bool file_input = !opt.traceIn.empty() || !opt.inputFile.empty();
    std::uint64_t records =
        !file_input || opt.recordsGiven ? opt.records : 0;
    std::uint64_t warmup =
        !file_input || opt.warmupGiven ? opt.warmup : 0;

    // Capture tee: the pipeline demux and Simulator::run are each the
    // sole consumer of the source, so the captured order is exactly
    // the consumed order in both modes.
    std::unique_ptr<TraceCaptureWriter> capture;
    std::unique_ptr<TraceSource> captured_inner;
    if (!opt.captureOut.empty()) {
        capture = std::make_unique<TraceCaptureWriter>(opt.captureOut,
                                                       cfg.trace);
        captured_inner = std::move(trace);
        trace = std::make_unique<CapturingSource>(*captured_inner,
                                                  *capture);
    }

    if (opt.workers != ~0ull) {
        // Per-write observability exports attach to one Simulator's
        // sinks; they have no deterministic merged form across shards.
        if (!opt.traceOut.empty())
            esd_fatal("-workers is incompatible with -trace-out=");
        if (!opt.spansOut.empty())
            esd_fatal("-workers is incompatible with -spans-out=");
        if (!opt.metricsOut.empty())
            esd_fatal("-workers is incompatible with -metrics-out=");
        if (!opt.latencyOut.empty())
            esd_fatal("-workers is incompatible with -latency-out=");
        if (opt.profile)
            esd_fatal("-workers is incompatible with -profile");
        if (!opt.recoveryJson.empty())
            esd_fatal("-workers is incompatible with -recovery-json=");
        int rc = runPipeline(opt, cfg, *trace, records, warmup);
        if (capture) {
            capture->close();
            std::cout << "captured " << capture->count()
                      << " records to " << opt.captureOut << "\n";
        }
        return rc;
    }

    Simulator sim(cfg, opt.scheme);

    // Flags layer over the [telemetry] config section.
    std::uint64_t trace_cap = opt.traceCap != ~0ull
                                  ? opt.traceCap
                                  : cfg.telemetry.traceRingCapacity;
    if (!opt.traceOut.empty() && trace_cap == 0)
        esd_fatal("-trace-ring must be > 0 when -trace-out= is set");
    WriteEventTrace events(std::max<std::size_t>(trace_cap, 1));
    if (!opt.traceOut.empty())
        sim.setEventTrace(&events);

    SpanTrace spans(cfg.telemetry.spanBufferCap,
                    opt.spanEvery != ~0ull
                        ? opt.spanEvery
                        : cfg.telemetry.spanSampleEvery);
    if (!opt.spansOut.empty())
        sim.setSpanTrace(&spans);

    if (!opt.metricsOut.empty())
        sim.enableMetricsExposition(
            opt.metricsOut, opt.metricsEvery != ~0ull
                                ? opt.metricsEvery
                                : cfg.telemetry.metricsEveryWrites);

    if (!opt.latencyOut.empty())
        sim.enableRawLatencySamples();
    if (!opt.statsJson.empty())
        sim.enableIntervalSampling(opt.statsInterval);
    if (opt.profile)
        sim.enableProfiling();

    RunResult r = sim.run(*trace, records, warmup);

    if (capture) {
        capture->close();
        std::cout << "captured " << capture->count() << " records to "
                  << opt.captureOut << "\n";
    }

    std::cout << "scheme: " << r.schemeName << "\n"
              << "records: " << r.records << " (" << r.logicalWrites
              << " writes, " << r.logicalReads << " reads)\n";
    TablePrinter t({"metric", "value"});
    t.addRow({"write reduction", TablePrinter::pct(r.writeReduction())});
    t.addRow({"NVMM writes (data/total)",
              std::to_string(r.nvmDataWrites) + " / " +
                  std::to_string(r.nvmWritesTotal)});
    if (sim.device().channelCount() > 1 || sim.device().coalescingEnabled())
        t.addRow({"channels (issued+coalesced)",
                  std::to_string(sim.device().channelCount()) + " ch, " +
                      std::to_string(r.nvmWritesTotal) + " + " +
                      std::to_string(r.nvmWritesCoalesced) + " writes"});
    t.addRow({"NVMM reads (total)", std::to_string(r.nvmReadsTotal)});
    t.addRow({"write latency mean/p99",
              TablePrinter::num(r.writeLatency.mean(), 1) + " / " +
                  TablePrinter::num(r.writeLatency.percentile(99), 0) +
                  " ns"});
    t.addRow({"read latency mean/p99",
              TablePrinter::num(r.readLatency.mean(), 1) + " / " +
                  TablePrinter::num(r.readLatency.percentile(99), 0) +
                  " ns"});
    t.addRow({"IPC", TablePrinter::num(r.ipc, 3)});
    t.addRow({"energy", TablePrinter::num(r.energy.total() / 1e6, 2) +
                            " uJ"});
    t.addRow({"metadata in NVMM",
              TablePrinter::num(r.metadataNvmBytes / 1024.0, 1) + " KB"});
    t.print();

    if (opt.profile) {
        const Profiler &prof = sim.profiler();
        double run_ns = static_cast<double>(prof.runNs());
        std::uint64_t writes = std::max<std::uint64_t>(r.logicalWrites, 1);
        std::cout << "host profile (measured window):\n";
        TablePrinter pt({"phase", "calls", "total ms", "ns/write",
                         "% of run"});
        for (unsigned p = 0; p < Profiler::kPhaseCount; ++p) {
            const Profiler::PhaseTotals &tp = prof.phase(p);
            pt.addRow({Profiler::phaseName(p),
                       std::to_string(tp.calls),
                       TablePrinter::num(tp.ns / 1e6, 2),
                       TablePrinter::num(static_cast<double>(tp.ns) /
                                             writes, 0),
                       run_ns > 0
                           ? TablePrinter::pct(tp.ns / run_ns)
                           : "-"});
        }
        std::uint64_t other = prof.runNs() - std::min(prof.profiledNs(),
                                                      prof.runNs());
        pt.addRow({"(unattributed)", "-",
                   TablePrinter::num(other / 1e6, 2),
                   TablePrinter::num(static_cast<double>(other) / writes,
                                     0),
                   run_ns > 0 ? TablePrinter::pct(other / run_ns) : "-"});
        pt.print();
        double secs = run_ns / 1e9;
        std::cout << "host run: " << TablePrinter::num(run_ns / 1e6, 1)
                  << " ms, "
                  << TablePrinter::num(
                         secs > 0 ? r.logicalWrites / secs : 0, 0)
                  << " writes/s\n";
    }

    if (cfg.ras.enabled) {
        const SchemeStats &ss = sim.scheme().stats();
        const RasStats &rs = sim.scheme().ras().stats();
        std::cout << "ras: corrected=" << ss.eccCorrectedReads.value()
                  << " uncorrectable=" << rs.ueEvents.value()
                  << " retired=" << rs.linesRetired.value()
                  << " sdc=" << ss.sdcEvents.value()
                  << " blast_radius=" << rs.blastRadiusRefs.value()
                  << (sim.scheme().ras().dedupSuspended()
                          ? " dedup_suspended"
                          : "")
                  << "\n";
    }

    if (cfg.persist.enabled) {
        const PersistenceManager &pm = *sim.persistence();
        const PersistStats &ps = pm.stats();
        std::cout << "persist: domain="
                  << persistDomainName(cfg.persist.domain)
                  << " records=" << ps.journalRecords.value()
                  << " commits=" << ps.epochCommits.value()
                  << " checkpoints=" << ps.checkpoints.value()
                  << " barrier_ns=" << ps.barrierNs.value() << "\n";

        if (pm.crashed()) {
            const CrashImage &img = pm.image();
            RecoveredState rec =
                recoverFromImage(img, cfg.persist, sim.scheme().crypto(),
                                 sim.scheme().ecc());
            PadSafetyReport audit = auditPadSafety(rec, img);
            std::cout << "crash: write=" << img.crashWriteIndex
                      << " phase=" << crashPhaseName(img.phase)
                      << " surviving_lines=" << img.content.size()
                      << " durable_records=" << img.records.size()
                      << " torn=" << img.tornRecords << "\n"
                      << "recovery: replayed="
                      << rec.summary.recordsReplayed
                      << " counters_repaired="
                      << rec.summary.countersRepaired
                      << " unresolved=" << rec.summary.countersUnresolved
                      << " mappings_invalidated="
                      << rec.summary.mappingsInvalidated
                      << " pad_violations=" << audit.violations
                      << (rec.summary.ok ? " ok" : " NOT-OK") << "\n";
            if (!opt.recoveryJson.empty()) {
                std::ostringstream os;
                writeRecoveryJson(os, img, rec);
                if (!writeFileAtomic(opt.recoveryJson, os.str()))
                    esd_fatal("cannot write '%s'",
                              opt.recoveryJson.c_str());
                std::cout << "wrote recovery report to "
                          << opt.recoveryJson << "\n";
            }
        } else if (!opt.recoveryJson.empty()) {
            esd_fatal("-recovery-json: the run ended before the "
                      "injected crash point (crash_at_write=%llu, "
                      "%llu writes seen)",
                      static_cast<unsigned long long>(
                          cfg.persist.crashAtWrite),
                      static_cast<unsigned long long>(pm.writeIndex()));
        }
    }

    if (!opt.latencyOut.empty()) {
        std::ofstream out(opt.latencyOut);
        if (!out)
            esd_fatal("cannot open '%s'", opt.latencyOut.c_str());
        for (double v : r.writeLatency.samples())
            out << v << "\n";
        std::cout << "wrote " << r.writeLatency.count()
                  << " write-latency samples to " << opt.latencyOut
                  << "\n";
    }

    if (!opt.statsJson.empty()) {
        // Rendered in memory and published with an atomic rename: a
        // reader never sees a torn report, even if we die mid-write.
        std::ostringstream out;
        writeStatsReport(out, cfg, r, sim.statRegistry(),
                         &sim.sampler(), /*indent=*/2,
                         opt.histBuckets ||
                             cfg.telemetry.histogramBuckets);
        if (!writeFileAtomic(opt.statsJson, out.str()))
            esd_fatal("cannot write '%s'", opt.statsJson.c_str());
        std::cout << "wrote stats report (" << sim.statRegistry().size()
                  << " stats, " << sim.sampler().rows().size()
                  << " interval samples) to " << opt.statsJson << "\n";
    }

    if (!opt.spansOut.empty()) {
        std::ostringstream out;
        spans.writeChromeJson(out);
        if (!writeFileAtomic(opt.spansOut, out.str()))
            esd_fatal("cannot write '%s'", opt.spansOut.c_str());
        std::cout << "wrote " << spans.size() << " of "
                  << spans.totalRecorded() << " spans to "
                  << opt.spansOut << "\n";
    }

    if (!opt.metricsOut.empty())
        std::cout << "wrote " << sim.metricsExporter().snapshots()
                  << " metric snapshots to " << opt.metricsOut << "\n";

    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            esd_fatal("cannot open '%s'", opt.traceOut.c_str());
        events.writeJsonl(out);
        std::cout << "wrote " << events.size() << " of "
                  << events.totalRecorded() << " write events to "
                  << opt.traceOut << "\n";
    }
    return 0;
}
