/**
 * @file
 * Trace format converter: re-encode an on-disk request trace between
 * the three streaming-frontend formats.
 *
 *   esd_tracecvt -in=trace -out=converted -format=text|gzip|binary
 *                [-payload=B]
 *
 * The input format is sniffed from content (never the extension), the
 * output format is whatever -format= says, and the conversion streams
 * record by record in constant memory — a multi-gigabyte trace never
 * materializes in RAM. -payload=false strips line payloads from write
 * records; replay re-synthesizes content deterministically from
 * (address, write index), so a stripped trace still replays
 * bit-identically against a capture that was stripped the same way.
 */

#include <cstdio>

#include "common/config_io.hh"
#include "common/logging.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_frontend.hh"

namespace
{

using namespace esd;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: esd_tracecvt -in=trace -out=converted\n"
        "                    -format=text|gzip|binary [-payload=B]\n"
        "\n"
        "  -in=path      input trace (text, gzip, or binary; format\n"
        "                sniffed from content)\n"
        "  -out=path     output trace, re-encoded\n"
        "  -format=F     output encoding (required)\n"
        "  -payload=B    keep write-line payloads (default true);\n"
        "                false emits address-only records\n");
}

bool
parseBool(const char *flag, const std::string &v)
{
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    esd_fatal("%s: '%s' is not a boolean", flag, v.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path;
    std::string out_path;
    std::string format_str;
    bool payload = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-in=", 0) == 0) {
            in_path = arg.substr(4);
        } else if (arg.rfind("-out=", 0) == 0) {
            out_path = arg.substr(5);
        } else if (arg.rfind("-format=", 0) == 0) {
            format_str = arg.substr(8);
        } else if (arg.rfind("-payload=", 0) == 0) {
            payload = parseBool("-payload", arg.substr(9));
        } else if (arg == "-h" || arg == "-help" || arg == "--help") {
            usage();
            return 0;
        } else {
            usage();
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (in_path.empty() || out_path.empty() || format_str.empty()) {
        usage();
        esd_fatal("need -in=, -out=, and -format=");
    }
    TraceFormat out_format = parseTraceFormat("-format", format_str);
    if (out_format == TraceFormat::Auto)
        esd_fatal("-format: pick an explicit encoding "
                  "(text, gzip, or binary)");

    TraceFormat in_format = detectTraceFormat(in_path);
    std::uint64_t n = convertTrace(in_path, out_path, out_format,
                                   payload);
    std::printf("converted %llu records: %s (%s) -> %s (%s)\n",
                static_cast<unsigned long long>(n), in_path.c_str(),
                traceFormatName(in_format), out_path.c_str(),
                traceFormatName(out_format));
    return 0;
}
