/**
 * @file
 * Batch evaluation CLI: run every (application x scheme) pair and
 * emit one CSV row per run — the raw material for external plotting
 * of any figure.
 *
 *   esd_batch [-records=N] [-warmup=N] [-schemes=0,3] [-apps=a,b,c]
 *             [-jobs=N] [-workers=N] [-ConfigFile=path]
 *             [-ecc=hamming|bch|rs] [-trace-in=path]
 *             [-out=results.csv]
 *
 * Unknown -schemes/-apps values are rejected up front with a non-zero
 * exit. With -jobs=N the grid runs on a thread pool (shared-nothing,
 * one Simulator per pair); rows are written in grid order whatever the
 * completion order, so the CSV is identical at any job count.
 * -workers=N additionally runs each job through the intra-simulation
 * sharded pipeline (exec/pipeline.hh) with N threads; jobs * workers
 * must not oversubscribe the host.
 * -trace-in=path replays one on-disk trace (text/gzip/binary, format
 * sniffed) across every scheme instead of generating synthetic apps —
 * each job streams the file through its own frontend. Incompatible
 * with -apps=; the whole file replays with no warmup unless -records /
 * -warmup are given explicitly.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config_io.hh"
#include "common/logging.hh"
#include "core/simulator.hh"
#include "exec/sweep_runner.hh"
#include "trace/trace_frontend.hh"
#include "trace/workloads.hh"

namespace
{

using namespace esd;

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        out.push_back(item);
    return out;
}

std::string
knownAppNames()
{
    std::string names;
    for (const AppProfile &p : paperApps()) {
        if (!names.empty())
            names += ", ";
        names += p.name;
    }
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t records = 100000;
    std::uint64_t warmup = 20000;
    bool records_given = false;
    bool warmup_given = false;
    unsigned jobs = 1;
    unsigned workers = 0;  ///< 0 = classic single-Simulator jobs
    std::string out_path = "results.csv";
    std::string config_file;
    std::string trace_in;
    std::string ecc_engine;
    std::vector<SchemeKind> schemes = allSchemeKinds();
    std::vector<std::string> apps;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("-records=", 0) == 0) {
            records = std::stoull(arg.substr(9));
            records_given = true;
        } else if (arg.rfind("-warmup=", 0) == 0) {
            warmup = std::stoull(arg.substr(8));
            warmup_given = true;
        } else if (arg.rfind("-trace-in=", 0) == 0) {
            trace_in = arg.substr(10);
        } else if (arg.rfind("-jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(std::stoul(arg.substr(6)));
        } else if (arg.rfind("-workers=", 0) == 0) {
            workers = static_cast<unsigned>(std::stoul(arg.substr(9)));
            if (workers < 1 || workers > 256)
                esd_fatal("-workers: %u out of range [1, 256]", workers);
        } else if (arg.rfind("-out=", 0) == 0) {
            out_path = arg.substr(5);
        } else if (arg.rfind("-ConfigFile=", 0) == 0) {
            config_file = arg.substr(12);
        } else if (arg.rfind("-schemes=", 0) == 0) {
            schemes.clear();
            for (const std::string &s : splitCsv(arg.substr(9))) {
                std::optional<SchemeKind> k = tryParseSchemeKind(s);
                if (!k)
                    esd_fatal("unknown scheme '%s' in -schemes= "
                              "(use 0..5 or a scheme name)",
                              s.c_str());
                schemes.push_back(*k);
            }
            if (schemes.empty())
                esd_fatal("-schemes= lists no schemes");
        } else if (arg.rfind("-apps=", 0) == 0) {
            apps = splitCsv(arg.substr(6));
        } else if (arg.rfind("-ecc=", 0) == 0) {
            ecc_engine = arg.substr(5);
            parseEccEngine("-ecc", ecc_engine);  // fail fast
        } else {
            esd_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (!trace_in.empty()) {
        // One replayed trace replaces the synthetic-app dimension.
        if (!apps.empty())
            esd_fatal("-trace-in is incompatible with -apps= (the "
                      "trace is the workload)");
        // Sniffing validates up front that the file opens; a typo'd
        // path must exit non-zero before any simulation runs.
        detectTraceFormat(trace_in);
        if (!records_given)
            records = 0;
        if (!warmup_given)
            warmup = 0;
    }
    if (apps.empty() && trace_in.empty()) {
        for (const AppProfile &p : paperApps())
            apps.push_back(p.name);
    }
    // Validate the whole grid before any simulation runs: a typo must
    // exit non-zero immediately, not surface after minutes of runs.
    for (const std::string &app : apps) {
        if (!tryFindApp(app))
            esd_fatal("unknown application '%s' in -apps= (valid: %s)",
                      app.c_str(), knownAppNames().c_str());
    }

    // Pipeline workers multiply under the sweep pool: -jobs=J each
    // running a -workers=W pipeline is J*W live threads. Refuse plans
    // that oversubscribe the host instead of quietly thrashing it.
    if (workers >= 1) {
        unsigned hc = std::thread::hardware_concurrency();
        if (hc == 0)
            hc = 1;
        unsigned eff_jobs = jobs == 0 ? hc : jobs;  // -jobs=0: one/hw thread
        if (static_cast<std::uint64_t>(eff_jobs) * workers > hc)
            esd_fatal("-jobs=%u x -workers=%u = %llu threads "
                      "oversubscribes this host (%u hardware threads); "
                      "lower one of them",
                      eff_jobs, workers,
                      static_cast<unsigned long long>(eff_jobs) * workers,
                      hc);
    }

    SimConfig cfg;
    if (!config_file.empty())
        loadConfigFile(cfg, config_file);
    if (!ecc_engine.empty())
        cfg.ecc.engine = parseEccEngine("-ecc", ecc_engine);

    std::ofstream out(out_path);
    if (!out)
        esd_fatal("cannot open '%s'", out_path.c_str());
    out << "app,scheme,records,logical_writes,logical_reads,"
           "dedup_hits,write_reduction,nvm_data_writes,"
           "nvm_writes_total,nvm_reads_total,write_lat_mean,"
           "write_lat_p99,read_lat_mean,read_lat_p99,ipc,"
           "energy_pj,metadata_bytes,fp_cache_hit,amt_cache_hit,"
           "max_line_wear\n";

    // Grid order fixes both the CSV row order and (under -jobs=N) the
    // outcome slots; every pair keeps the historical cfg.seed trace so
    // results stay comparable with serial runs of older versions.
    std::vector<exec::SweepJob> grid;
    if (!trace_in.empty()) {
        // Trace replay: one job per scheme, each streaming its own
        // frontend over the same file. The app column carries the
        // trace path so CSV rows stay self-describing.
        grid.reserve(schemes.size());
        for (SchemeKind k : schemes) {
            exec::SweepJob job;
            job.app = trace_in;
            job.traceFile = trace_in;
            job.scheme = k;
            job.cfg = cfg;
            job.records = records;
            job.warmup = warmup;
            job.pipelineWorkers = workers;
            grid.push_back(std::move(job));
        }
    } else {
        grid.reserve(apps.size() * schemes.size());
        for (const std::string &app : apps) {
            for (SchemeKind k : schemes) {
                exec::SweepJob job;
                job.app = app;
                job.scheme = k;
                job.cfg = cfg;
                job.records = records;
                job.warmup = warmup;
                job.pipelineWorkers = workers;
                grid.push_back(std::move(job));
            }
        }
    }

    exec::SweepRunner runner(jobs);
    std::vector<exec::SweepOutcome> outcomes = runner.run(
        grid, [](std::size_t, const exec::SweepJob &job,
                 const RunResult &r) {
            std::cout << job.app << " / " << r.schemeName << " done\n";
        });

    std::uint64_t failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        const exec::SweepJob &job = grid[i];
        if (!outcomes[i].ok) {
            // A failed job keeps its grid slot as a comment row: the
            // CSV stays aligned with the grid and the failure is
            // visible in the artifact, not silently dropped.
            ++failed;
            out << "# FAILED " << job.app << ','
                << schemeName(job.scheme) << ": " << outcomes[i].error
                << '\n';
            esd_warn("job %s/%s failed: %s", job.app.c_str(),
                     schemeName(job.scheme), outcomes[i].error.c_str());
            continue;
        }
        out << job.app << ',' << r.schemeName << ',' << r.records << ','
            << r.logicalWrites << ',' << r.logicalReads << ','
            << r.dedupHits << ',' << r.writeReduction() << ','
            << r.nvmDataWrites << ',' << r.nvmWritesTotal << ','
            << r.nvmReadsTotal << ',' << r.writeLatency.mean() << ','
            << r.writeLatency.percentile(99) << ','
            << r.readLatency.mean() << ','
            << r.readLatency.percentile(99) << ',' << r.ipc << ','
            << r.energy.total() << ',' << r.metadataNvmBytes << ','
            << r.fpCacheHitRate << ',' << r.amtCacheHitRate << ','
            << r.wear.maxLineWrites << '\n';
    }
    std::cout << "wrote " << out_path << "\n";
    if (failed) {
        std::cerr << failed << " of " << outcomes.size()
                  << " jobs failed\n";
        return 1;
    }
    return 0;
}
