#!/usr/bin/env bash
# Automated full evaluation, mirroring the artifact's run.sh: every
# application under every scheme (0 Baseline, 1 Tra_sha1, 2 DeWrite,
# 3 ESD), one result file per run.
#
# usage: scripts/run.sh [build-dir] [records] [out-dir]
set -euo pipefail

BUILD="${1:-build}"
RECORDS="${2:-200000}"
OUT="${3:-runs}"
SIM="$BUILD/tools/esd_sim"

[ -x "$SIM" ] || { echo "error: $SIM not built (cmake --build $BUILD)"; exit 1; }
mkdir -p "$OUT"

APPS="cactuBSSN deepsjeng gcc imagick lbm leela mcf nab namd roms wrf \
xalancbmk blackscholes bodytrack dedup facesim fluidanimate rtview \
swaptions x264"

for app in $APPS; do
    for scheme in 0 1 2 3; do
        echo "== $app scheme=$scheme"
        "$SIM" -scheme="$scheme" -app="$app" -records="$RECORDS" \
               -warmup=$((RECORDS / 5)) \
               > "$OUT/${app}_scheme${scheme}.txt"
    done
done
echo "results in $OUT/"
