# Capture/replay byte-identity gate for the streaming trace frontend,
# run as a ctest: for every scheme, a captured synthetic run must
# replay to the byte-identical -stats-json= document — from the
# original text capture, from an esd_tracecvt binary re-encoding, and
# from a gzip re-encoding. Invoked as
#
#   cmake -DESD_SIM=<path> -DESD_TRACECVT=<path> -DWORK_DIR=<dir> \
#         -P check_capture_replay.cmake
#
# Any byte of divergence (or any non-zero run) is a FATAL_ERROR.

if(NOT DEFINED ESD_SIM OR NOT DEFINED ESD_TRACECVT
   OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "need -DESD_SIM=, -DESD_TRACECVT=, -DWORK_DIR=")
endif()

set(records 6000)
set(warmup 1000)

foreach(scheme RANGE 0 5)
    set(cap "${WORK_DIR}/capture_s${scheme}.trace")
    set(ref "${WORK_DIR}/capture_s${scheme}_ref.json")

    execute_process(
        COMMAND "${ESD_SIM}" -scheme=${scheme} -app=mcf
                -records=${records} -warmup=${warmup}
                -capture-out=${cap} -stats-json=${ref}
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: capture run failed (rc=${rc})")
    endif()

    # Re-encode the capture through the converter: text is the capture
    # default, binary and gzip exercise the other decoders.
    set(bin "${WORK_DIR}/capture_s${scheme}.bin")
    set(gz "${WORK_DIR}/capture_s${scheme}.gz")
    execute_process(
        COMMAND "${ESD_TRACECVT}" -in=${cap} -out=${bin} -format=binary
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: binary conversion failed (rc=${rc})")
    endif()
    execute_process(
        COMMAND "${ESD_TRACECVT}" -in=${bin} -out=${gz} -format=gzip
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: gzip conversion failed (rc=${rc})")
    endif()

    foreach(replay ${cap} ${bin} ${gz})
        set(got "${WORK_DIR}/capture_s${scheme}_replay.json")
        execute_process(
            COMMAND "${ESD_SIM}" -scheme=${scheme} -trace-in=${replay}
                    -warmup=${warmup} -stats-json=${got}
            RESULT_VARIABLE rc OUTPUT_QUIET)
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                    "scheme ${scheme}: replay of ${replay} failed "
                    "(rc=${rc})")
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                                "${ref}" "${got}"
                        RESULT_VARIABLE same)
        if(NOT same EQUAL 0)
            message(FATAL_ERROR
                    "scheme ${scheme}: replay of ${replay} diverges "
                    "from the captured run (${ref} vs ${got})")
        endif()
    endforeach()
    message(STATUS
            "scheme ${scheme}: capture replays byte-identically "
            "(text, binary, gzip)")
endforeach()

message(STATUS "capture/replay gate: all schemes byte-identical")
