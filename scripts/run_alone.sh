#!/usr/bin/env bash
# Single (app, scheme) run with a write-latency dump for CDF plotting,
# mirroring the artifact's run_alone.sh.
#
# usage: scripts/run_alone.sh <app> <scheme 0..4|name> [records] [latency-file]
set -euo pipefail

APP="${1:?usage: run_alone.sh <app> <scheme> [records] [latency-file]}"
SCHEME="${2:?need a scheme (0..4 or name)}"
RECORDS="${3:-200000}"
LATFILE="${4:-latency_${APP}_${SCHEME}.txt}"
BUILD="${BUILD:-build}"

"$BUILD/tools/esd_sim" -scheme="$SCHEME" -app="$APP" \
    -records="$RECORDS" -warmup=$((RECORDS / 5)) \
    -latency-out="$LATFILE"
echo "write-latency samples: $LATFILE"
