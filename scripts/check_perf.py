#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a committed baseline.

Used by the CI `perf` job: bench_hotpath and bench_sweep_scaling dump
their ESD_BENCH_JSON artifacts, and this script fails the build when
any throughput metric drops below `--threshold` (default 0.85) times
its baseline value. Higher-is-better metrics only; latency-style
metrics are not extracted.

Metric extraction understands the two bench JSON shapes:

  bench_hotpath:        {"schemes": [{"scheme": S, "writes_per_s": W}],
                         "aggregate_writes_per_s": W}
  bench_sweep_scaling:  {"scaling": [{"jobs": N, "writes_per_s": W,
                                      "speedup": X}]}
  bench_pipeline_scaling: {"scaling": [{"workers": N,
                                        "writes_per_s": W,
                                        "speedup": X}]}
  bench_trace_ingest:   {"formats": [{"format": F,
                                      "records_per_s": R}]}
  bench_ecc_codecs:     {"codecs": [{"codec": C,
                                     "encode_lines_per_s": E,
                                     "decode_lines_per_s": D}]}

plus a generic fallback: any top-level numeric field ending in
"_per_s".

Exit status: 0 when every metric holds, 1 on regression or a metric
missing from the fresh run, 2 on usage/IO errors.

Example:
  python3 scripts/check_perf.py \
    --baseline bench/baselines/hotpath.json --fresh hotpath.json

Self-test (used by ctest):
  python3 scripts/check_perf.py --self-test
"""

import argparse
import json
import sys


def extract_metrics(doc):
    """Flatten a bench JSON document into {metric_name: value}."""
    metrics = {}
    for entry in doc.get("schemes", []):
        name = entry.get("scheme")
        if name is not None and "writes_per_s" in entry:
            metrics[f"scheme[{name}].writes_per_s"] = entry["writes_per_s"]
    for entry in doc.get("scaling", []):
        jobs = entry.get("jobs")
        workers = entry.get("workers")
        if jobs is not None:
            label = f"jobs[{jobs}]"
        elif workers is not None:
            label = f"workers[{workers}]"
        else:
            continue
        if "writes_per_s" in entry:
            metrics[f"{label}.writes_per_s"] = entry["writes_per_s"]
        if "speedup" in entry:
            metrics[f"{label}.speedup"] = entry["speedup"]
    for entry in doc.get("formats", []):
        name = entry.get("format")
        if name is not None and "records_per_s" in entry:
            metrics[f"format[{name}].records_per_s"] = \
                entry["records_per_s"]
    for entry in doc.get("codecs", []):
        name = entry.get("codec")
        if name is None:
            continue
        for field in ("encode_lines_per_s", "decode_lines_per_s"):
            if field in entry:
                metrics[f"codec[{name}].{field}"] = entry[field]
    for key, value in doc.items():
        if key.endswith("_per_s") and isinstance(value, (int, float)):
            metrics[key] = value
    return metrics


def compare(baseline, fresh, threshold):
    """Return (rows, failures): one row per baseline metric."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        cur = fresh.get(name)
        if cur is None:
            rows.append((name, base, None, None, "MISSING"))
            failures.append(name)
            continue
        ratio = cur / base if base else float("inf")
        ok = ratio >= threshold
        rows.append((name, base, cur, ratio, "ok" if ok else "FAIL"))
        if not ok:
            failures.append(name)
    return rows, failures


def print_table(rows, threshold):
    name_w = max([len(r[0]) for r in rows] + [len("metric")])
    print(f"{'metric':<{name_w}} {'baseline':>14} {'fresh':>14} "
          f"{'ratio':>8}  status")
    for name, base, cur, ratio, status in rows:
        cur_s = f"{cur:14.1f}" if cur is not None else f"{'-':>14}"
        ratio_s = f"{ratio:8.3f}" if ratio is not None else f"{'-':>8}"
        print(f"{name:<{name_w}} {base:14.1f} {cur_s} {ratio_s}  {status}")
    print(f"(gate: fresh >= {threshold:.2f} x baseline)")


def self_test():
    base = {
        "schemes": [
            {"scheme": "ESD", "writes_per_s": 1000.0},
            {"scheme": "Baseline", "writes_per_s": 2000.0},
        ],
        "aggregate_writes_per_s": 1500.0,
        "scaling": [{"jobs": 4, "writes_per_s": 4000.0, "speedup": 3.5},
                    {"workers": 2, "writes_per_s": 1800.0,
                     "speedup": 1.8}],
        "formats": [{"format": "binary", "records_per_s": 9e6}],
        "codecs": [{"codec": "rs", "encode_lines_per_s": 7e5,
                    "decode_lines_per_s": 3.5e5,
                    "similar_collisions": 0}],
    }
    bm = extract_metrics(base)
    assert bm == {
        "scheme[ESD].writes_per_s": 1000.0,
        "scheme[Baseline].writes_per_s": 2000.0,
        "aggregate_writes_per_s": 1500.0,
        "jobs[4].writes_per_s": 4000.0,
        "jobs[4].speedup": 3.5,
        "workers[2].writes_per_s": 1800.0,
        "workers[2].speedup": 1.8,
        "format[binary].records_per_s": 9e6,
        "codec[rs].encode_lines_per_s": 7e5,
        "codec[rs].decode_lines_per_s": 3.5e5,
    }, bm

    # Identical run passes.
    rows, failures = compare(bm, dict(bm), 0.85)
    assert not failures, failures

    # A 20% regression on one metric fails exactly that metric.
    fresh = dict(bm)
    fresh["scheme[ESD].writes_per_s"] = 800.0
    rows, failures = compare(bm, fresh, 0.85)
    assert failures == ["scheme[ESD].writes_per_s"], failures

    # A 10% regression stays inside the 0.85 gate.
    fresh["scheme[ESD].writes_per_s"] = 900.0
    rows, failures = compare(bm, fresh, 0.85)
    assert not failures, failures

    # A metric absent from the fresh run fails.
    fresh = dict(bm)
    del fresh["jobs[4].speedup"]
    rows, failures = compare(bm, fresh, 0.85)
    assert failures == ["jobs[4].speedup"], failures

    print("check_perf.py self-test: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="committed baseline JSON")
    ap.add_argument("--fresh", help="freshly measured JSON")
    ap.add_argument("--threshold", type=float, default=0.85,
                    help="minimum fresh/baseline ratio (default 0.85)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        ap.error("--baseline and --fresh are required")

    try:
        with open(args.baseline) as f:
            baseline = extract_metrics(json.load(f))
        with open(args.fresh) as f:
            fresh = extract_metrics(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: {e}", file=sys.stderr)
        return 2

    if not baseline:
        print(f"check_perf: no metrics in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    rows, failures = compare(baseline, fresh, args.threshold)
    print_table(rows, args.threshold)
    if failures:
        print(f"check_perf: {len(failures)} metric(s) regressed below "
              f"{args.threshold:.2f}x baseline: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("check_perf: all metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
