# Byte-identity gate for the sharded write pipeline, run as a ctest:
# for every scheme, `esd_sim -workers=8` must write the identical
# -stats-json= document as `esd_sim -workers=1` on an 8-channel
# config. Invoked as
#
#   cmake -DESD_SIM=<path> -DWORK_DIR=<dir> \
#         -P check_pipeline_identity.cmake
#
# Any byte of divergence (or any non-zero run) is a FATAL_ERROR.

if(NOT DEFINED ESD_SIM OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "need -DESD_SIM= and -DWORK_DIR=")
endif()

set(records 8000)
set(warmup 1000)

foreach(scheme RANGE 0 5)
    set(ref "${WORK_DIR}/identity_s${scheme}_w1.json")
    set(got "${WORK_DIR}/identity_s${scheme}_w8.json")

    execute_process(
        COMMAND "${ESD_SIM}" -scheme=${scheme} -app=gcc
                -records=${records} -warmup=${warmup} -channels=8
                -workers=1 -stats-json=${ref}
        RESULT_VARIABLE rc1 OUTPUT_QUIET)
    if(NOT rc1 EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: -workers=1 run failed (rc=${rc1})")
    endif()

    execute_process(
        COMMAND "${ESD_SIM}" -scheme=${scheme} -app=gcc
                -records=${records} -warmup=${warmup} -channels=8
                -workers=8 -stats-json=${got}
        RESULT_VARIABLE rc8 OUTPUT_QUIET)
    if(NOT rc8 EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: -workers=8 run failed (rc=${rc8})")
    endif()

    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            "${ref}" "${got}"
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
                "scheme ${scheme}: -workers=8 stats JSON diverges "
                "from -workers=1 (${ref} vs ${got})")
    endif()
    message(STATUS "scheme ${scheme}: workers 1 vs 8 byte-identical")
endforeach()

message(STATUS "pipeline identity gate: all schemes byte-identical")
