#!/usr/bin/env python3
"""Validate the simulator's telemetry exports.

Used by the CI telemetry-validation step after a short run with every
exporter enabled:

  --spans spans.json       assert the span file is loadable Chrome
                           trace-event JSON: a traceEvents array of
                           well-formed M/X/i events on one process,
                           with at least one complete span per track
                           kind (pipeline + channel);
  --metrics metrics.prom   round-trip the Prometheus text snapshot
                           through a line parser: every line must be a
                           comment, a HELP/TYPE header, or a sample,
                           and every TYPE'd metric must have samples;
  --sweep-a / --sweep-b    two sweep reports (e.g. -jobs=1 vs -jobs=8)
                           that must be byte-identical, including the
                           merged-histogram aggregate percentiles.

Exit status: 0 when every requested check holds, 1 on violation,
2 on usage/IO errors.

Self-test (used by ctest):
  python3 scripts/check_telemetry.py --self-test
"""

import argparse
import json
import re
import sys


def check_spans(doc):
    """Validate a parsed Chrome trace-event document. Returns a list
    of violation strings (empty = valid)."""
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]

    tracks = set()
    complete = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("M", "X", "i"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        if not isinstance(e.get("name"), str):
            errors.append(f"{where}: missing name")
        if ph == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                errors.append(f"{where}: missing numeric {key}")
        if ph == "X":
            complete += 1
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad dur {dur!r}")
            if isinstance(e.get("tid"), (int, float)):
                tracks.add(int(e["tid"]))

    if complete == 0:
        errors.append("no complete ('X') spans recorded")
    # tid 0 is the write pipeline; tid 1+c the memory channels. A run
    # with both layers attached must populate both kinds.
    if 0 not in tracks:
        errors.append("no spans on the write-pipeline track (tid 0)")
    if not any(t >= 1 for t in tracks):
        errors.append("no spans on any channel track (tid >= 1)")
    return errors


SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")
HEADER_RE = re.compile(
    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def check_prometheus(text):
    """Line-parse a Prometheus text exposition page. Returns (metrics
    dict name -> sample count, violations)."""
    errors = []
    typed = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = HEADER_RE.match(line)
            if not m:
                errors.append(f"line {lineno}: malformed comment "
                              f"{line!r}")
            elif m.group(1) == "TYPE":
                typed[line.split()[2]] = line.split()[3]
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = line.split("{")[0].split(" ")[0]
        value = line.rsplit(" ", 1)[1]
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value "
                          f"{value!r}")
        samples[name] = samples.get(name, 0) + 1

    if not typed:
        errors.append("no # TYPE headers found")
    for name, kind in typed.items():
        if kind == "summary":
            # Samples appear as name{quantile=...}, name_sum, name_count.
            if samples.get(name, 0) == 0 or \
                    samples.get(name + "_count", 0) == 0:
                errors.append(f"summary {name} has no samples")
        elif samples.get(name, 0) == 0:
            errors.append(f"{kind} {name} has no samples")
    return samples, errors


def check_sweeps_identical(text_a, text_b):
    errors = []
    if text_a != text_b:
        errors.append("sweep reports are not byte-identical")
    try:
        doc = json.loads(text_a)
    except json.JSONDecodeError as e:
        return errors + [f"sweep report unparseable: {e}"]
    agg = doc.get("aggregate")
    if not isinstance(agg, dict):
        errors.append("sweep report has no aggregate section")
        return errors
    for key in ("read_latency", "write_latency"):
        lat = agg.get(key)
        if not isinstance(lat, dict):
            errors.append(f"aggregate missing {key}")
            continue
        for field in ("count", "p50", "p90", "p99", "buckets"):
            if field not in lat:
                errors.append(f"aggregate.{key} missing {field}")
        buckets = lat.get("buckets")
        if isinstance(buckets, list) and lat.get("count", 0) > 0:
            total = sum(b[2] for b in buckets if len(b) == 3)
            if total != lat["count"]:
                errors.append(
                    f"aggregate.{key}: bucket counts sum to {total}, "
                    f"count says {lat['count']}")
    return errors


def self_test():
    ok_spans = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "esd_sim"}},
            {"name": "write", "ph": "X", "ts": 0.1, "dur": 0.25,
             "pid": 1, "tid": 0},
            {"name": "read", "ph": "X", "ts": 0.2, "dur": 0.075,
             "pid": 1, "tid": 1},
            {"name": "coalesced", "ph": "i", "ts": 0.3, "pid": 1,
             "tid": 1, "s": "t"},
        ]
    }
    assert check_spans(ok_spans) == [], check_spans(ok_spans)
    assert check_spans({"traceEvents": []})  # empty: violations
    bad = {"traceEvents": [{"name": "w", "ph": "X", "ts": 1,
                            "pid": 1, "tid": 0, "dur": -5}]}
    assert any("dur" in e for e in check_spans(bad))

    page = ("# HELP esd_pcm_reads device reads\n"
            "# TYPE esd_pcm_reads counter\n"
            "esd_pcm_reads 42\n"
            "# TYPE esd_scheme_write_latency summary\n"
            "esd_scheme_write_latency{quantile=\"0.5\"} 83\n"
            "esd_scheme_write_latency_sum 887.2\n"
            "esd_scheme_write_latency_count 9594\n")
    samples, errors = check_prometheus(page)
    assert errors == [], errors
    assert samples["esd_pcm_reads"] == 1
    _, errors = check_prometheus("esd_bad_value{x=\"1\"} notanumber\n"
                                 "# TYPE esd_bad_value gauge\n")
    assert errors, "non-numeric value not caught"
    _, errors = check_prometheus("# TYPE esd_ghost counter\n")
    assert any("no samples" in e for e in errors)

    sweep = json.dumps({
        "job_count": 1, "jobs": [],
        "aggregate": {
            "read_latency": {"count": 2, "mean": 5.0, "min": 4,
                             "max": 6, "p50": 4, "p90": 6, "p99": 6,
                             "buckets": [[4, 1, 1], [6, 1, 1]]},
            "write_latency": {"count": 0, "mean": 0, "min": 0,
                              "max": 0, "p50": 0, "p90": 0, "p99": 0,
                              "buckets": []},
        }})
    assert check_sweeps_identical(sweep, sweep) == []
    assert check_sweeps_identical(sweep, sweep + " ")
    broken = sweep.replace('"count": 2', '"count": 3')
    assert any("sum to" in e for e in check_sweeps_identical(broken,
                                                             broken))
    print("check_telemetry.py self-test: ok")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--spans")
    ap.add_argument("--metrics")
    ap.add_argument("--sweep-a")
    ap.add_argument("--sweep-b")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not (args.spans or args.metrics or (args.sweep_a and
                                           args.sweep_b)):
        ap.error("nothing to check: give --spans, --metrics, and/or "
                 "--sweep-a/--sweep-b")

    failures = []
    if args.spans:
        try:
            doc = json.load(open(args.spans))
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {args.spans}: {e}", file=sys.stderr)
            return 2
        errs = check_spans(doc)
        failures += [f"{args.spans}: {e}" for e in errs]
        if not errs:
            n = sum(1 for e in doc["traceEvents"]
                    if e.get("ph") == "X")
            print(f"{args.spans}: ok ({n} spans)")
    if args.metrics:
        try:
            text = open(args.metrics).read()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        samples, errs = check_prometheus(text)
        failures += [f"{args.metrics}: {e}" for e in errs]
        if not errs:
            print(f"{args.metrics}: ok ({len(samples)} metric "
                  f"families)")
    if args.sweep_a and args.sweep_b:
        try:
            a = open(args.sweep_a).read()
            b = open(args.sweep_b).read()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        errs = check_sweeps_identical(a, b)
        failures += [f"{args.sweep_a} vs {args.sweep_b}: {e}"
                     for e in errs]
        if not errs:
            print(f"{args.sweep_a} == {args.sweep_b}: ok")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
