/**
 * @file
 * Known-answer and property tests for the crypto substrate: SHA-1,
 * MD5, CRC32C/CRC64, AES-128 and the counter-mode line engine.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_set>

#include "common/random.hh"
#include "crypto/aes.hh"
#include "crypto/crc.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace esd
{
namespace
{

// ---------------------------------------------------------------- SHA-1

TEST(Sha1, EmptyString)
{
    EXPECT_EQ(Sha1::toHex(Sha1::digest("", 0)),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc)
{
    EXPECT_EQ(Sha1::toHex(Sha1::digest("abc", 3)),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage)
{
    const char *msg =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(Sha1::toHex(Sha1::digest(msg, std::strlen(msg))),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, StreamingMatchesOneShot)
{
    Pcg32 rng(1);
    std::vector<std::uint8_t> buf(1000);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    Sha1 s;
    // Feed in awkward chunk sizes crossing block boundaries.
    std::size_t off = 0;
    for (std::size_t chunk : {1u, 63u, 64u, 65u, 300u, 507u}) {
        std::size_t take = std::min(chunk, buf.size() - off);
        s.update(buf.data() + off, take);
        off += take;
    }
    s.update(buf.data() + off, buf.size() - off);
    EXPECT_EQ(s.finish(), Sha1::digest(buf.data(), buf.size()));
}

TEST(Sha1, Fingerprint64DiffersForDifferentLines)
{
    Pcg32 rng(2);
    CacheLine a, b;
    rng.fillLine(a);
    rng.fillLine(b);
    EXPECT_NE(Sha1::fingerprint64(a), Sha1::fingerprint64(b));
    EXPECT_EQ(Sha1::fingerprint64(a), Sha1::fingerprint64(a));
}

// ----------------------------------------------------------------- MD5

TEST(Md5, EmptyString)
{
    EXPECT_EQ(Md5::toHex(Md5::digest("", 0)),
              "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, Abc)
{
    EXPECT_EQ(Md5::toHex(Md5::digest("abc", 3)),
              "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, QuickBrownFox)
{
    const char *msg = "The quick brown fox jumps over the lazy dog";
    EXPECT_EQ(Md5::toHex(Md5::digest(msg, std::strlen(msg))),
              "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5, StreamingMatchesOneShot)
{
    Pcg32 rng(3);
    std::vector<std::uint8_t> buf(777);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    Md5 m;
    m.update(buf.data(), 100);
    m.update(buf.data() + 100, 28);
    m.update(buf.data() + 128, buf.size() - 128);
    EXPECT_EQ(m.finish(), Md5::digest(buf.data(), buf.size()));
}

// ----------------------------------------------------------------- CRC

TEST(Crc32c, KnownAnswer)
{
    // CRC32C("123456789") = 0xE3069283 (iSCSI test vector).
    EXPECT_EQ(Crc32c::compute("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero)
{
    EXPECT_EQ(Crc32c::compute("", 0), 0u);
}

TEST(Crc64, KnownAnswer)
{
    // CRC-64/XZ ("123456789") = 0x995DC9BBDF1939FA.
    EXPECT_EQ(Crc64::compute("123456789", 9), 0x995DC9BBDF1939FAull);
}

TEST(Crc, IncrementalMatchesWhole)
{
    Pcg32 rng(4);
    std::vector<std::uint8_t> buf(256);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    std::uint32_t whole = Crc32c::compute(buf.data(), buf.size());
    std::uint32_t part = Crc32c::compute(buf.data(), 100);
    part = Crc32c::compute(buf.data() + 100, buf.size() - 100, part);
    EXPECT_EQ(whole, part);
}

/** CRC32C of 64-byte lines collides far more readily than 64-bit
 * fingerprints — the Fig. 8 motivation. Verify collision construction:
 * distinct lines CAN share a CRC (birthday over 2^32 at ~80k draws has
 * ~53% chance; use a structured pair instead for determinism). */
TEST(Crc32c, LineFingerprintIsOnly32Bits)
{
    Pcg32 rng(5);
    std::unordered_set<std::uint32_t> seen;
    int collisions = 0;
    for (int i = 0; i < 120000; ++i) {
        CacheLine l;
        rng.fillLine(l);
        if (!seen.insert(Crc32c::line(l)).second)
            ++collisions;
    }
    // Expected ~ n^2 / 2^33 = 1.7 collisions; assert at least the
    // space is 32-bit-small by checking we saw no 33-bit behaviour.
    // (Collisions may be 0 on some seeds; the real assertion is that
    // this compiles the collision-rate pipeline used by Fig. 8.)
    EXPECT_GE(collisions, 0);
}

// ----------------------------------------------------------------- AES

TEST(Aes128, SboxFirstValues)
{
    // FIPS-197 S-box spot checks.
    EXPECT_EQ(Aes128::sbox(0x00), 0x63);
    EXPECT_EQ(Aes128::sbox(0x01), 0x7c);
    EXPECT_EQ(Aes128::sbox(0x53), 0xed);
    EXPECT_EQ(Aes128::sbox(0xff), 0x16);
}

TEST(Aes128, Fips197Vector)
{
    AesKey key{};
    AesBlock pt{};
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        pt[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    // FIPS-197 Appendix C.1: ciphertext 69c4e0d86a7b0430d8cdb78070b4c55a.
    const std::uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    AesBlock ct = aes.encryptBlock(pt);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ct[i], expect[i]) << "byte " << i;
}

// ------------------------------------------------------------ CTR mode

TEST(CtrMode, EncryptDecryptRoundTrip)
{
    AesKey key{};
    key.fill(0x42);
    CtrModeEngine eng(key);
    Pcg32 rng(6);
    for (int i = 0; i < 50; ++i) {
        CacheLine plain;
        rng.fillLine(plain);
        Addr addr = static_cast<Addr>(rng.below(1 << 20)) * kLineSize;
        CacheLine cipher = eng.encrypt(addr, plain);
        EXPECT_FALSE(cipher == plain);
        EXPECT_TRUE(eng.decrypt(addr, cipher) == plain);
    }
}

TEST(CtrMode, CounterAdvancesPerWrite)
{
    AesKey key{};
    key.fill(0x37);
    CtrModeEngine eng(key);
    CacheLine plain;
    EXPECT_EQ(eng.counter(0), 0u);
    CacheLine c1 = eng.encrypt(0, plain);
    EXPECT_EQ(eng.counter(0), 1u);
    CacheLine c2 = eng.encrypt(0, plain);
    EXPECT_EQ(eng.counter(0), 2u);
    // Same plaintext, different counter: ciphertext must differ (the
    // diffusion that breaks deduplication-after-encryption).
    EXPECT_FALSE(c1 == c2);
}

TEST(CtrMode, SamePlaintextDifferentAddressesDiffer)
{
    AesKey key{};
    key.fill(0x11);
    CtrModeEngine eng(key);
    CacheLine plain;
    plain.setWord(0, 0xdeadbeef);
    CacheLine a = eng.encrypt(0 * kLineSize, plain);
    CacheLine b = eng.encrypt(1 * kLineSize, plain);
    EXPECT_FALSE(a == b);
}

TEST(CtrMode, ZeroLineCiphertextIsNotZero)
{
    AesKey key{};
    key.fill(0x99);
    CtrModeEngine eng(key);
    CacheLine zero;
    CacheLine c = eng.encrypt(64, zero);
    EXPECT_FALSE(c.isZero());
}

} // namespace
} // namespace esd
