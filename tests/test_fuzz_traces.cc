/**
 * @file
 * Seeded trace fuzzer for the multi-channel backend: random write/read
 * soups sweep the duplication rate and the channel count, and after
 * (and during) each run the structural invariants of the machinery
 * must hold:
 *
 *   - reference counts over live physical lines sum to the AMT's
 *     mapped logical lines;
 *   - every valid EFIT entry resolves to a live physical line (the
 *     eager onPhysFreed erasure keeps the index coherent);
 *   - per-bank busy-until clocks are monotone non-decreasing — the
 *     bank model's core assumption under in-order arrival;
 *   - offered writes are conserved: coalesced + issued = offered,
 *     globally and per channel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/esd.hh"
#include "dedup/mapped_scheme.hh"

namespace esd
{
namespace
{

class FuzzTraceTest
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, unsigned, int>>
{
  protected:
    /** All invariants that must hold at any quiescent point. */
    static void
    checkInvariants(const DedupScheme &scheme, const PcmDevice &dev)
    {
        if (auto *m = dynamic_cast<const MappedDedupScheme *>(&scheme)) {
            std::uint64_t refs = 0;
            for (const auto &[phys, n] : m->lineStore().refTable()) {
                EXPECT_GT(n, 0u) << "live line with zero refs";
                refs += n;
            }
            EXPECT_EQ(refs, m->amt().mappingCount())
                << "refcount sum diverged from AMT mappings";
        }

        if (auto *e = dynamic_cast<const EsdScheme *>(&scheme)) {
            for (const Efit::Entry &ent : e->efit().snapshotValid()) {
                Addr phys = ent.phys.toAddr();
                EXPECT_TRUE(e->lineStore().isLive(phys))
                    << "EFIT entry points at dead line " << phys;
                // Sharded index: the entry's line lives on the shard's
                // channel, so the erase path can find it again.
                EXPECT_LT(dev.channelOf(phys), dev.channelCount());
            }
        }

        const NvmStats &s = dev.stats();
        EXPECT_EQ(s.writesOffered.value(),
                  s.writes.value() + s.writesCoalesced.value());
        std::uint64_t per_channel = 0;
        for (unsigned c = 0; c < dev.channelCount(); ++c)
            per_channel += dev.channelStats(c).writes.value() +
                           dev.channelStats(c).coalescedWrites.value();
        EXPECT_EQ(per_channel, s.writesOffered.value());
        if (!dev.coalescingEnabled())
            EXPECT_EQ(s.writesCoalesced.value(), 0u);
    }
};

TEST_P(FuzzTraceTest, InvariantsHoldUnderRandomTraffic)
{
    auto [kind, channels, dup_pct] = GetParam();

    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 4;
    c.pcm.writeQueueDepth = 4;  // shallow: stalls and drains both fire
    c.channels.count = channels;
    c.channels.wpqCoalescing = channels > 1;
    // Small caches for eviction pressure; the AMT needs >= `channels`
    // sets to shard.
    c.metadata.efitCacheBytes = 64 * 16;
    c.metadata.amtCacheBytes = 64 * kLineSize;
    c.metadata.referHMax = 15;
    c.metadata.decayPeriod = 64;

    PcmDevice dev(c.pcm, c.channels);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(kind, c, dev, store);

    Pcg32 rng(0xF0221u + channels * 131u +
              static_cast<std::uint64_t>(dup_pct));
    std::vector<Tick> bank_clock(dev.totalBanks(), 0);
    Tick now = 0;

    for (int op = 0; op < 2500; ++op) {
        now += 40 + rng.below(120);
        Addr addr = static_cast<Addr>(rng.below(160)) * kLineSize;

        if (rng.chance(0.65)) {
            CacheLine data;
            if (rng.below(100) < static_cast<std::uint32_t>(dup_pct)) {
                // Duplicate pool content; a handful of hot values.
                data.setWord(0, rng.below(4));
                data.setWord(1, 0xBEEF);
            } else {
                rng.fillLine(data);
            }
            scheme->write(addr, data, now);
        } else {
            CacheLine got;
            scheme->read(addr, got, now);
        }

        // Bank clocks may only move forward.
        for (unsigned b = 0; b < dev.totalBanks(); ++b) {
            ASSERT_GE(dev.bankBusyUntil(b), bank_clock[b])
                << "bank " << b << " moved backwards at op " << op;
            bank_clock[b] = dev.bankBusyUntil(b);
        }

        if (op % 250 == 249)
            checkInvariants(*scheme, dev);
    }

    checkInvariants(*scheme, dev);

    // The sweep must have produced real traffic in both directions.
    EXPECT_GT(scheme->stats().logicalWrites.value(), 0u);
    EXPECT_GT(dev.stats().reads.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DupRateByChannels, FuzzTraceTest,
    ::testing::Combine(::testing::Values(SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(10, 70)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_ch" + std::to_string(std::get<1>(info.param)) +
               "_dup" + std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace esd
