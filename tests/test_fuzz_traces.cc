/**
 * @file
 * Seeded trace fuzzer for the multi-channel backend: random write/read
 * soups sweep the duplication rate and the channel count, and after
 * (and during) each run the structural invariants of the machinery
 * must hold:
 *
 *   - reference counts over live physical lines sum to the AMT's
 *     mapped logical lines;
 *   - every valid EFIT entry resolves to a live physical line (the
 *     eager onPhysFreed erasure keeps the index coherent);
 *   - per-bank busy-until clocks are monotone non-decreasing — the
 *     bank model's core assumption under in-order arrival;
 *   - offered writes are conserved: coalesced + issued = offered,
 *     globally and per channel.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/esd.hh"
#include "dedup/mapped_scheme.hh"
#include "exec/pipeline.hh"
#include "exec/sweep_runner.hh"
#include "trace/trace.hh"

namespace esd
{
namespace
{

class FuzzTraceTest
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, unsigned, int>>
{
  public:
    /** All invariants that must hold at any quiescent point. */
    static void
    checkInvariants(const DedupScheme &scheme, const PcmDevice &dev)
    {
        if (auto *m = dynamic_cast<const MappedDedupScheme *>(&scheme)) {
            std::uint64_t refs = 0;
            for (const auto &[phys, n] : m->lineStore().refTable()) {
                EXPECT_GT(n, 0u) << "live line with zero refs";
                refs += n;
            }
            EXPECT_EQ(refs, m->amt().mappingCount())
                << "refcount sum diverged from AMT mappings";
        }

        if (auto *e = dynamic_cast<const EsdScheme *>(&scheme)) {
            for (const Efit::Entry &ent : e->efit().snapshotValid()) {
                Addr phys = ent.phys.toAddr();
                EXPECT_TRUE(e->lineStore().isLive(phys))
                    << "EFIT entry points at dead line " << phys;
                // Sharded index: the entry's line lives on the shard's
                // channel, so the erase path can find it again.
                EXPECT_LT(dev.channelOf(phys), dev.channelCount());
            }
        }

        const NvmStats &s = dev.stats();
        EXPECT_EQ(s.writesOffered.value(),
                  s.writes.value() + s.writesCoalesced.value());
        std::uint64_t per_channel = 0;
        for (unsigned c = 0; c < dev.channelCount(); ++c)
            per_channel += dev.channelStats(c).writes.value() +
                           dev.channelStats(c).coalescedWrites.value();
        EXPECT_EQ(per_channel, s.writesOffered.value());
        if (!dev.coalescingEnabled())
            EXPECT_EQ(s.writesCoalesced.value(), 0u);
    }
};

TEST_P(FuzzTraceTest, InvariantsHoldUnderRandomTraffic)
{
    auto [kind, channels, dup_pct] = GetParam();

    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 4;
    c.pcm.writeQueueDepth = 4;  // shallow: stalls and drains both fire
    c.channels.count = channels;
    c.channels.wpqCoalescing = channels > 1;
    // Small caches for eviction pressure; the AMT needs >= `channels`
    // sets to shard.
    c.metadata.efitCacheBytes = 64 * 16;
    c.metadata.amtCacheBytes = 64 * kLineSize;
    c.metadata.referHMax = 15;
    c.metadata.decayPeriod = 64;

    PcmDevice dev(c.pcm, c.channels);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(kind, c, dev, store);

    Pcg32 rng(0xF0221u + channels * 131u +
              static_cast<std::uint64_t>(dup_pct));
    std::vector<Tick> bank_clock(dev.totalBanks(), 0);
    Tick now = 0;

    for (int op = 0; op < 2500; ++op) {
        now += 40 + rng.below(120);
        Addr addr = static_cast<Addr>(rng.below(160)) * kLineSize;

        if (rng.chance(0.65)) {
            CacheLine data;
            if (rng.below(100) < static_cast<std::uint32_t>(dup_pct)) {
                // Duplicate pool content; a handful of hot values.
                data.setWord(0, rng.below(4));
                data.setWord(1, 0xBEEF);
            } else {
                rng.fillLine(data);
            }
            scheme->write(addr, data, now);
        } else {
            CacheLine got;
            scheme->read(addr, got, now);
        }

        // Bank clocks may only move forward.
        for (unsigned b = 0; b < dev.totalBanks(); ++b) {
            ASSERT_GE(dev.bankBusyUntil(b), bank_clock[b])
                << "bank " << b << " moved backwards at op " << op;
            bank_clock[b] = dev.bankBusyUntil(b);
        }

        if (op % 250 == 249)
            checkInvariants(*scheme, dev);
    }

    checkInvariants(*scheme, dev);

    // The sweep must have produced real traffic in both directions.
    EXPECT_GT(scheme->stats().logicalWrites.value(), 0u);
    EXPECT_GT(dev.stats().reads.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DupRateByChannels, FuzzTraceTest,
    ::testing::Combine(::testing::Values(SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(10, 70)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_ch" + std::to_string(std::get<1>(info.param)) +
               "_dup" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Pipeline fuzz sweep: the same PCG-seeded soups through the sharded
// write pipeline with [persistence] ADR journaling live, sweeping
// worker count x duplication rate x crash injection. Per seed, the
// report must be byte-identical at every worker count, every shard's
// structural invariants must close, the per-shard bank clocks must
// land on identical final values (the timing model is part of the
// determinism contract, not just the counters), and an injected crash
// must converge through recovery whatever thread executed the write.

/** A random soup as a replayable trace, seeded like the serial fuzz. */
VectorTrace
buildFuzzTrace(int dup_pct, int ops)
{
    Pcg32 rng(0xF1BE5u + static_cast<std::uint64_t>(dup_pct));
    VectorTrace trace;
    for (int op = 0; op < ops; ++op) {
        TraceRecord rec;
        rec.addr = static_cast<Addr>(rng.below(320)) * kLineSize;
        if (rng.chance(0.65)) {
            rec.op = OpType::Write;
            if (rng.below(100) < static_cast<std::uint32_t>(dup_pct)) {
                rec.data.setWord(0, rng.below(4));
                rec.data.setWord(1, 0xBEEF);
            } else {
                rng.fillLine(rec.data);
            }
        } else {
            rec.op = OpType::Read;
        }
        trace.push(rec);
    }
    return trace;
}

class PipelineFuzzTest
    : public ::testing::TestWithParam<
          std::tuple<SchemeKind, int, bool>>
{
};

TEST_P(PipelineFuzzTest, ShardsStayCoherentAtAnyWorkerCount)
{
    auto [kind, dup_pct, crash] = GetParam();

    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 4;
    c.pcm.writeQueueDepth = 4;
    c.channels.count = 4;
    c.channels.wpqCoalescing = true;
    c.metadata.efitCacheBytes = 64 * 16;
    c.metadata.amtCacheBytes = 64 * kLineSize;
    c.metadata.referHMax = 15;
    c.metadata.decayPeriod = 64;
    c.pipeline.epochRecords = 256;
    c.persist.enabled = true;
    c.persist.domain = PersistDomain::Adr;
    c.persist.crashAtWrite = crash ? 400 : 0;

    std::string base_report;
    std::vector<std::vector<Tick>> base_clocks;
    for (unsigned workers : {1u, 2u, 4u}) {
        VectorTrace trace = buildFuzzTrace(dup_pct, 3000);
        exec::ShardedPipeline pipe(c, kind, workers);
        pipe.run(trace, trace.size());

        // Recovery convergence: an injected crash must have fired on
        // some shard, recovered cleanly, and passed the pad audit.
        EXPECT_EQ(pipe.checkInjectedCrash(), "")
            << schemeName(kind) << " workers=" << workers;
        if (crash)
            EXPECT_GE(pipe.crashedShard(), 0);
        else
            EXPECT_EQ(pipe.crashedShard(), -1);

        std::ostringstream os;
        pipe.writeReport(os);

        std::vector<std::vector<Tick>> clocks(pipe.shardCount());
        for (unsigned s = 0; s < pipe.shardCount(); ++s) {
            Simulator &sim = pipe.shard(s);
            FuzzTraceTest::checkInvariants(sim.scheme(), sim.device());
            for (unsigned b = 0; b < sim.device().totalBanks(); ++b)
                clocks[s].push_back(sim.device().bankBusyUntil(b));
        }

        if (workers == 1) {
            base_report = os.str();
            base_clocks = clocks;
            EXPECT_GT(pipe.result().logicalWrites, 0u);
        } else {
            ASSERT_EQ(base_report, os.str())
                << schemeName(kind) << " dup=" << dup_pct
                << " crash=" << crash << " workers=" << workers
                << " diverges at "
                << exec::firstJsonDivergence(base_report, os.str());
            ASSERT_EQ(base_clocks, clocks)
                << "per-shard bank clocks moved with the worker count";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DupRateByCrash, PipelineFuzzTest,
    ::testing::Combine(::testing::Values(SchemeKind::Esd,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(10, 70),
                       ::testing::Bool()),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_dup" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_crash" : "_nocrash");
    });

} // namespace
} // namespace esd
