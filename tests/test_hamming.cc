/**
 * @file
 * Unit and property tests for the Hamming(72,64) SEC-DED codec.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/hamming.hh"

namespace esd
{
namespace
{

TEST(Hamming72, ZeroWordHasZeroCheck)
{
    // All-zero data: every parity is even.
    EXPECT_EQ(Hamming72::encode(0), 0);
}

TEST(Hamming72, EncodeIsDeterministic)
{
    EXPECT_EQ(Hamming72::encode(0x0123456789abcdefull),
              Hamming72::encode(0x0123456789abcdefull));
}

TEST(Hamming72, CleanWordDecodesOk)
{
    Pcg32 rng(42);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t d = rng.next64();
        std::uint8_t c = Hamming72::encode(d);
        EccDecodeResult r = Hamming72::decode(d, c);
        EXPECT_EQ(r.status, EccStatus::Ok);
        EXPECT_EQ(r.data, d);
        EXPECT_EQ(r.check, c);
    }
}

TEST(Hamming72, VerifyMatchesEncode)
{
    Pcg32 rng(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t d = rng.next64();
        EXPECT_TRUE(Hamming72::verify(d, Hamming72::encode(d)));
        EXPECT_FALSE(Hamming72::verify(d ^ 1, Hamming72::encode(d)));
    }
}

/** Every single data-bit flip must be corrected, for every position. */
TEST(Hamming72, CorrectsEverySingleDataBitError)
{
    Pcg32 rng(44);
    for (int trial = 0; trial < 8; ++trial) {
        std::uint64_t d = rng.next64();
        std::uint8_t c = Hamming72::encode(d);
        for (unsigned bit = 0; bit < 64; ++bit) {
            EccDecodeResult r = Hamming72::decode(d ^ (1ull << bit), c);
            ASSERT_EQ(r.status, EccStatus::CorrectedData)
                << "bit " << bit;
            EXPECT_EQ(r.data, d) << "bit " << bit;
            EXPECT_EQ(r.bitIndex, bit);
        }
    }
}

/** Every single check-bit flip must be corrected. */
TEST(Hamming72, CorrectsEverySingleCheckBitError)
{
    Pcg32 rng(45);
    for (int trial = 0; trial < 8; ++trial) {
        std::uint64_t d = rng.next64();
        std::uint8_t c = Hamming72::encode(d);
        for (unsigned bit = 0; bit < 8; ++bit) {
            EccDecodeResult r =
                Hamming72::decode(d, c ^ static_cast<std::uint8_t>(
                                            1u << bit));
            ASSERT_EQ(r.status, EccStatus::CorrectedCheck)
                << "check bit " << bit;
            EXPECT_EQ(r.data, d);
            EXPECT_EQ(r.check, c);
            EXPECT_EQ(r.bitIndex, bit);
        }
    }
}

/** All double data-bit errors must be *detected* (never miscorrected
 * into Ok). */
TEST(Hamming72, DetectsDoubleDataBitErrors)
{
    Pcg32 rng(46);
    std::uint64_t d = rng.next64();
    std::uint8_t c = Hamming72::encode(d);
    for (unsigned b1 = 0; b1 < 64; ++b1) {
        for (unsigned b2 = b1 + 1; b2 < 64; ++b2) {
            std::uint64_t corrupted = d ^ (1ull << b1) ^ (1ull << b2);
            EccDecodeResult r = Hamming72::decode(corrupted, c);
            ASSERT_EQ(r.status, EccStatus::Uncorrectable)
                << "bits " << b1 << "," << b2;
        }
    }
}

TEST(Hamming72, DetectsDataPlusCheckDoubleErrors)
{
    Pcg32 rng(47);
    std::uint64_t d = rng.next64();
    std::uint8_t c = Hamming72::encode(d);
    for (unsigned db = 0; db < 64; db += 7) {
        for (unsigned cb = 0; cb < 8; ++cb) {
            EccDecodeResult r = Hamming72::decode(
                d ^ (1ull << db),
                c ^ static_cast<std::uint8_t>(1u << cb));
            ASSERT_EQ(r.status, EccStatus::Uncorrectable)
                << "data bit " << db << " check bit " << cb;
        }
    }
}

/** The code is linear: check(a ^ b) == check(a) ^ check(b) for the
 * Hamming portion (overall parity is also linear). */
TEST(Hamming72, CodeIsLinear)
{
    Pcg32 rng(48);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t a = rng.next64();
        std::uint64_t b = rng.next64();
        EXPECT_EQ(Hamming72::encode(a ^ b),
                  Hamming72::encode(a) ^ Hamming72::encode(b));
    }
}

/** Each Hamming check covers a distinct, nonempty data-bit subset and
 * together they distinguish all single-bit positions. */
TEST(Hamming72, CheckMasksDistinguishDataBits)
{
    for (unsigned c = 0; c < 7; ++c)
        EXPECT_NE(Hamming72::checkMask(c), 0u);

    // Syndrome signature of each data bit must be unique and nonzero.
    for (unsigned b1 = 0; b1 < 64; ++b1) {
        unsigned sig1 = 0;
        for (unsigned c = 0; c < 7; ++c) {
            if (Hamming72::checkMask(c) & (1ull << b1))
                sig1 |= 1u << c;
        }
        EXPECT_NE(sig1, 0u);
        for (unsigned b2 = b1 + 1; b2 < 64; ++b2) {
            unsigned sig2 = 0;
            for (unsigned c = 0; c < 7; ++c) {
                if (Hamming72::checkMask(c) & (1ull << b2))
                    sig2 |= 1u << c;
            }
            ASSERT_NE(sig1, sig2) << "bits " << b1 << " vs " << b2;
        }
    }
}

/** Property sweep: random word, random single flip anywhere in the
 * 72-bit codeword, always corrected back to the original. */
class HammingSingleFlipTest : public ::testing::TestWithParam<int>
{
};

TEST_P(HammingSingleFlipTest, RandomSingleFlipAlwaysCorrected)
{
    Pcg32 rng(1000 + GetParam());
    for (int i = 0; i < 500; ++i) {
        std::uint64_t d = rng.next64();
        std::uint8_t c = Hamming72::encode(d);
        unsigned bit = rng.below(72);
        std::uint64_t dd = d;
        std::uint8_t cc = c;
        if (bit < 64)
            dd ^= 1ull << bit;
        else
            cc ^= static_cast<std::uint8_t>(1u << (bit - 64));
        EccDecodeResult r = Hamming72::decode(dd, cc);
        ASSERT_TRUE(r.corrected());
        EXPECT_EQ(r.data, d);
        EXPECT_EQ(r.check, c);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HammingSingleFlipTest,
                         ::testing::Range(0, 8));

} // namespace
} // namespace esd
