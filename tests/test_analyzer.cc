/**
 * @file
 * Tests for the exact-dedup workload analyzer (Figs. 1 and 3 ground
 * truth).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dedup/analyzer.hh"

namespace esd
{
namespace
{

CacheLine
lineWith(std::uint64_t v)
{
    CacheLine l;
    l.setWord(0, v);
    return l;
}

TEST(DedupAnalyzer, EmptyIsZeroRate)
{
    DedupAnalyzer an;
    EXPECT_EQ(an.totalWrites(), 0u);
    EXPECT_DOUBLE_EQ(an.duplicateRate(), 0.0);
}

TEST(DedupAnalyzer, CountsExactDuplicates)
{
    DedupAnalyzer an;
    an.addWrite(lineWith(1));
    an.addWrite(lineWith(2));
    an.addWrite(lineWith(1));
    an.addWrite(lineWith(1));
    EXPECT_EQ(an.totalWrites(), 4u);
    EXPECT_EQ(an.uniqueLines(), 2u);
    EXPECT_EQ(an.duplicateWrites(), 2u);
    EXPECT_DOUBLE_EQ(an.duplicateRate(), 0.5);
}

TEST(DedupAnalyzer, TracksZeroWrites)
{
    DedupAnalyzer an;
    an.addWrite(CacheLine{});
    an.addWrite(CacheLine{});
    an.addWrite(lineWith(5));
    EXPECT_EQ(an.zeroWrites(), 2u);
}

TEST(DedupAnalyzer, BucketsReflectRefCounts)
{
    DedupAnalyzer an;
    // One line written once, one written 5 times, one written 200
    // times.
    an.addWrite(lineWith(1));
    for (int i = 0; i < 5; ++i)
        an.addWrite(lineWith(2));
    for (int i = 0; i < 200; ++i)
        an.addWrite(lineWith(3));
    RefCountBuckets b = an.buckets();
    EXPECT_EQ(b.lines(0), 1u);    // num1
    EXPECT_EQ(b.lines(1), 1u);    // num10
    EXPECT_EQ(b.lines(3), 1u);    // num1000 (101..1000)
    EXPECT_EQ(b.totalVolume(), 206u);
}

TEST(DedupAnalyzer, ResetClears)
{
    DedupAnalyzer an;
    an.addWrite(lineWith(1));
    an.reset();
    EXPECT_EQ(an.totalWrites(), 0u);
    EXPECT_EQ(an.uniqueLines(), 0u);
}

TEST(DedupAnalyzer, LargeRandomStreamHasNoFalseDuplicates)
{
    // Random 64-byte lines never repeat; the analyzer (FNV-keyed)
    // must agree.
    DedupAnalyzer an;
    Pcg32 rng(3);
    for (int i = 0; i < 20000; ++i) {
        CacheLine l;
        rng.fillLine(l);
        an.addWrite(l);
    }
    EXPECT_EQ(an.duplicateWrites(), 0u);
    EXPECT_EQ(an.uniqueLines(), 20000u);
}

} // namespace
} // namespace esd
