/**
 * @file
 * Tests for the write-event trace ring buffer and its JSONL dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/write_trace.hh"

namespace esd
{
namespace
{

WriteEvent
eventAt(Tick tick)
{
    WriteEvent e;
    e.tick = tick;
    e.addr = tick * 64;
    e.fingerprint = 0xabcd0000 + tick;
    e.outcome = WriteOutcome::Dedup;
    e.probe = FpProbe::Hit;
    e.compare = CompareVerdict::Equal;
    e.bank = static_cast<std::uint16_t>(tick % 4);
    e.queueWaitNs = 10 + tick;
    e.encryptNs = 24;
    e.latencyNs = 150 + tick;
    return e;
}

TEST(WriteEventTrace, FillsUpToCapacity)
{
    WriteEventTrace trace(8);
    EXPECT_EQ(trace.capacity(), 8u);
    EXPECT_EQ(trace.size(), 0u);

    for (Tick t = 0; t < 5; ++t)
        trace.record(eventAt(t));
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.totalRecorded(), 5u);
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_EQ(trace.at(0).tick, 0u);
    EXPECT_EQ(trace.at(4).tick, 4u);
}

TEST(WriteEventTrace, WrapKeepsMostRecentOldestFirst)
{
    WriteEventTrace trace(4);
    for (Tick t = 0; t < 10; ++t)
        trace.record(eventAt(t));

    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.totalRecorded(), 10u);
    EXPECT_EQ(trace.dropped(), 6u);
    // Retained window is ticks 6..9, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(trace.at(i).tick, 6u + i);
}

TEST(WriteEventTrace, ClearEmptiesEverything)
{
    WriteEventTrace trace(4);
    for (Tick t = 0; t < 6; ++t)
        trace.record(eventAt(t));
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalRecorded(), 0u);
    trace.record(eventAt(42));
    EXPECT_EQ(trace.at(0).tick, 42u);
}

TEST(WriteEventTrace, JsonlLinesParseWithFullSchema)
{
    WriteEventTrace trace(4);
    for (Tick t = 0; t < 7; ++t)
        trace.record(eventAt(t));

    std::ostringstream os;
    trace.writeJsonl(os);

    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    Tick expect_tick = 3;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(tryParseJson(line, v, &err)) << err << ": " << line;
        ASSERT_TRUE(v.isObject());
        for (const char *k : {"tick", "addr", "fp", "efit", "compare",
                              "outcome", "bank", "queue_ns",
                              "encrypt_ns", "latency_ns"})
            ASSERT_NE(v.find(k), nullptr) << k;
        EXPECT_EQ(v.find("tick")->number,
                  static_cast<double>(expect_tick));
        EXPECT_EQ(v.find("efit")->str, "hit");
        EXPECT_EQ(v.find("compare")->str, "equal");
        EXPECT_EQ(v.find("outcome")->str, "dedup");
        ++expect_tick;
        ++lines;
    }
    EXPECT_EQ(lines, 4u);
}

TEST(WriteEventTrace, EnumNames)
{
    EXPECT_STREQ(writeOutcomeName(WriteOutcome::Unique), "unique");
    EXPECT_STREQ(writeOutcomeName(WriteOutcome::Collision), "collision");
    EXPECT_STREQ(writeOutcomeName(WriteOutcome::SaturatedRewrite),
                 "saturated_rewrite");
    EXPECT_STREQ(fpProbeName(FpProbe::None), "none");
    EXPECT_STREQ(fpProbeName(FpProbe::Miss), "miss");
    EXPECT_STREQ(compareVerdictName(CompareVerdict::Mismatch),
                 "mismatch");
}

} // namespace
} // namespace esd
