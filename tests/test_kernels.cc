/**
 * @file
 * Equivalence tests for the hot-path kernels introduced with the
 * parallel sweep engine:
 *   - the word-parallel bit-sliced SEC-DED line encoder vs the scalar
 *     Hamming72::encode oracle (exhaustive 16-bit patterns + PCG
 *     randomized), and
 *   - the early-exit 64-bit-word line compare vs memcmp on equal,
 *     near-equal, and random lines.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/types.hh"
#include "ecc/line_ecc.hh"

namespace esd
{
namespace
{

// ------------------------------------------------ bit-sliced SEC-DED

/** All 2^16 patterns, each expanded into a line that places the
 * pattern at a different 16-bit lane of every word, so every data-bit
 * position of the codeword sees both polarities of every pattern. */
TEST(BitslicedHamming, ExhaustiveSixteenBitPatterns)
{
    for (std::uint32_t v = 0; v < (1u << 16); ++v) {
        std::uint64_t words[8];
        for (unsigned j = 0; j < 8; ++j) {
            std::uint64_t w = static_cast<std::uint64_t>(v)
                              << ((j % 4) * 16);
            if (j >= 4)
                w = ~w;  // complemented lanes hit the other polarity
            words[j] = w;
        }
        std::uint8_t fast[8], ref[8];
        Hamming72::encodeLine(words, fast);
        Hamming72::encodeLineScalar(words, ref);
        ASSERT_EQ(0, std::memcmp(fast, ref, 8))
            << "pattern 0x" << std::hex << v;
    }
}

TEST(BitslicedHamming, SingleBitLines)
{
    // Each of the 512 line bits set alone: the sparsest inputs, where
    // a transpose orientation bug is most visible.
    for (unsigned j = 0; j < 8; ++j) {
        for (unsigned b = 0; b < 64; ++b) {
            std::uint64_t words[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            words[j] = 1ull << b;
            std::uint8_t fast[8], ref[8];
            Hamming72::encodeLine(words, fast);
            Hamming72::encodeLineScalar(words, ref);
            ASSERT_EQ(0, std::memcmp(fast, ref, 8))
                << "word " << j << " bit " << b;
        }
    }
}

TEST(BitslicedHamming, RandomizedLines)
{
    Pcg32 rng(0x5eed, 0x111);
    for (int it = 0; it < 50000; ++it) {
        std::uint64_t words[8];
        for (auto &w : words)
            w = rng.next64();
        // Mix in sparse/dense lines: random masking every few iters.
        if (it % 5 == 0) {
            for (auto &w : words)
                w &= rng.next64() & rng.next64();
        }
        std::uint8_t fast[8], ref[8];
        Hamming72::encodeLine(words, fast);
        Hamming72::encodeLineScalar(words, ref);
        ASSERT_EQ(0, std::memcmp(fast, ref, 8)) << "iteration " << it;
    }
}

TEST(BitslicedHamming, LineEccCodecUsesIdenticalEncoding)
{
    Pcg32 rng(0xc0de, 0x222);
    for (int it = 0; it < 5000; ++it) {
        CacheLine line;
        rng.fillLine(line);
        LineEcc fast = LineEccCodec::encode(line);
        LineEcc ref = LineEccCodec::encodeScalar(line);
        ASSERT_EQ(fast, ref);

        // Round trip: the encoding still decodes clean...
        LineDecodeResult d = LineEccCodec::decode(line, fast);
        ASSERT_EQ(EccStatus::Ok, d.status);

        // ...and still corrects a single flipped bit per word.
        CacheLine bad = line;
        unsigned word = rng.below(8);
        unsigned bit = rng.below(64);
        bad.setWord(word, bad.word(word) ^ (1ull << bit));
        LineDecodeResult fix = LineEccCodec::decode(bad, fast);
        ASSERT_EQ(EccStatus::CorrectedData, fix.status);
        ASSERT_TRUE(fix.line == line);
    }
}

// ---------------------------------------------- fast line comparison

CacheLine
randomLine(Pcg32 &rng)
{
    CacheLine l;
    rng.fillLine(l);
    return l;
}

TEST(FastLineCompare, EqualLinesAgreeWithMemcmp)
{
    Pcg32 rng(0xfeed, 0x333);
    for (int it = 0; it < 1000; ++it) {
        CacheLine a = randomLine(rng);
        CacheLine b = a;
        ASSERT_TRUE(linesEqualFast(a, b));
        ASSERT_TRUE(a == b);
    }
    CacheLine z1, z2;
    EXPECT_TRUE(linesEqualFast(z1, z2));
}

TEST(FastLineCompare, EveryNearEqualBitFlipDetected)
{
    Pcg32 rng(0xbeef, 0x444);
    CacheLine base = randomLine(rng);
    for (unsigned bit = 0; bit < kLineSize * 8; ++bit) {
        CacheLine other = base;
        other[bit / 8] =
            static_cast<std::uint8_t>(other[bit / 8] ^
                                      (1u << (bit % 8)));
        ASSERT_FALSE(linesEqualFast(base, other)) << "bit " << bit;
        ASSERT_FALSE(linesEqualFast(other, base)) << "bit " << bit;
        ASSERT_FALSE(base == other);
    }
}

TEST(FastLineCompare, EveryNearEqualByteChangeDetected)
{
    Pcg32 rng(0xabcd, 0x555);
    CacheLine base = randomLine(rng);
    for (unsigned i = 0; i < kLineSize; ++i) {
        CacheLine other = base;
        other[i] = static_cast<std::uint8_t>(other[i] + 1);
        ASSERT_FALSE(linesEqualFast(base, other)) << "byte " << i;
        ASSERT_EQ(base == other, linesEqualFast(base, other));
    }
}

TEST(FastLineCompare, RandomPairsAgreeWithMemcmp)
{
    Pcg32 rng(0x7777, 0x666);
    for (int it = 0; it < 20000; ++it) {
        CacheLine a = randomLine(rng);
        CacheLine b = rng.chance(0.3) ? a : randomLine(rng);
        // Sometimes diverge only in the last word (exercises the full
        // walk before the early exit can trigger).
        if (rng.chance(0.2)) {
            b = a;
            b.setWord(7, b.word(7) ^ (1ull << rng.below(64)));
        }
        bool ref = std::memcmp(a.data(), b.data(), kLineSize) == 0;
        ASSERT_EQ(ref, linesEqualFast(a, b)) << "iteration " << it;
    }
}

} // namespace
} // namespace esd
