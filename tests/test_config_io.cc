/**
 * @file
 * Tests for the key=value configuration parser and renderer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/config_io.hh"
#include "common/logging.hh"

namespace esd
{
namespace
{

TEST(ConfigIo, ApplyKnownKeys)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_latency", "99"));
    EXPECT_EQ(cfg.pcm.readLatency, 99u);
    EXPECT_TRUE(applyConfigKey(cfg, "pcm.capacity_gb", "32"));
    EXPECT_EQ(cfg.pcm.capacityBytes, 32ull << 30);
    EXPECT_TRUE(applyConfigKey(cfg, "metadata.use_lrcu", "false"));
    EXPECT_FALSE(cfg.metadata.useLrcu);
    EXPECT_TRUE(applyConfigKey(cfg, "core.clock_ghz", "3.5"));
    EXPECT_DOUBLE_EQ(cfg.core.clockGhz, 3.5);
    EXPECT_TRUE(applyConfigKey(cfg, "cache.l3_kb", "8192"));
    EXPECT_EQ(cfg.cache.l3Size, 8192u << 10);
    EXPECT_TRUE(applyConfigKey(cfg, "seed", "42"));
    EXPECT_EQ(cfg.seed, 42u);
}

TEST(ConfigIo, UnknownKeyRejected)
{
    SimConfig cfg;
    EXPECT_FALSE(applyConfigKey(cfg, "nonsense.key", "1"));
}

TEST(ConfigIo, BooleanSpellings)
{
    SimConfig cfg;
    for (const char *t : {"true", "1", "yes", "on"}) {
        cfg.pcm.readPriority = false;
        EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_priority", t));
        EXPECT_TRUE(cfg.pcm.readPriority) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        cfg.pcm.readPriority = true;
        EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_priority", f));
        EXPECT_FALSE(cfg.pcm.readPriority) << f;
    }
}

class ConfigFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("esd_cfg_" + std::to_string(::getpid()) + ".cfg");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(ConfigFileTest, LoadOverridesDefaults)
{
    {
        std::ofstream out(path_);
        out << "# a comment\n"
               "\n"
               "pcm.write_latency = 300\n"
               "metadata.efit_kb = 256\n"
               "  crypto.sha1_latency =  500  \n";
    }
    SimConfig cfg;
    loadConfigFile(cfg, path_.string());
    EXPECT_EQ(cfg.pcm.writeLatency, 300u);
    EXPECT_EQ(cfg.metadata.efitCacheBytes, 256u << 10);
    EXPECT_EQ(cfg.crypto.sha1Latency, 500u);
    // Untouched keys keep their Table I defaults.
    EXPECT_EQ(cfg.pcm.readLatency, 75u);
}

TEST_F(ConfigFileTest, UnknownKeyWarnsButContinues)
{
    {
        std::ofstream out(path_);
        out << "bogus.key = 5\npcm.read_latency = 80\n";
    }
    setQuiet(true);
    std::uint64_t warns = warnCount();
    SimConfig cfg;
    loadConfigFile(cfg, path_.string());
    setQuiet(false);
    EXPECT_EQ(warnCount(), warns + 1);
    EXPECT_EQ(cfg.pcm.readLatency, 80u);
}

TEST_F(ConfigFileTest, RenderRoundTrips)
{
    SimConfig cfg;
    cfg.pcm.writeLatency = 222;
    cfg.metadata.referHMax = 77;
    cfg.core.clockGhz = 2.5;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.pcm.writeLatency, 222u);
    EXPECT_EQ(back.metadata.referHMax, 77u);
    EXPECT_DOUBLE_EQ(back.core.clockGhz, 2.5);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, MissingFileIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(loadConfigFile(cfg, "/nonexistent/esd.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ConfigIoDeath, BadIntegerIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.read_latency", "abc"),
                ::testing::ExitedWithCode(1), "not an integer");
}

} // namespace
} // namespace esd
