/**
 * @file
 * Tests for the key=value configuration parser and renderer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/config_io.hh"
#include "common/logging.hh"

namespace esd
{
namespace
{

TEST(ConfigIo, ApplyKnownKeys)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_latency", "99"));
    EXPECT_EQ(cfg.pcm.readLatency, 99u);
    EXPECT_TRUE(applyConfigKey(cfg, "pcm.capacity_gb", "32"));
    EXPECT_EQ(cfg.pcm.capacityBytes, 32ull << 30);
    EXPECT_TRUE(applyConfigKey(cfg, "metadata.use_lrcu", "false"));
    EXPECT_FALSE(cfg.metadata.useLrcu);
    EXPECT_TRUE(applyConfigKey(cfg, "core.clock_ghz", "3.5"));
    EXPECT_DOUBLE_EQ(cfg.core.clockGhz, 3.5);
    EXPECT_TRUE(applyConfigKey(cfg, "cache.l3_kb", "8192"));
    EXPECT_EQ(cfg.cache.l3Size, 8192u << 10);
    EXPECT_TRUE(applyConfigKey(cfg, "seed", "42"));
    EXPECT_EQ(cfg.seed, 42u);
}

TEST(ConfigIo, UnknownKeyRejected)
{
    SimConfig cfg;
    EXPECT_FALSE(applyConfigKey(cfg, "nonsense.key", "1"));
}

TEST(ConfigIo, BooleanSpellings)
{
    SimConfig cfg;
    for (const char *t : {"true", "1", "yes", "on"}) {
        cfg.pcm.readPriority = false;
        EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_priority", t));
        EXPECT_TRUE(cfg.pcm.readPriority) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        cfg.pcm.readPriority = true;
        EXPECT_TRUE(applyConfigKey(cfg, "pcm.read_priority", f));
        EXPECT_FALSE(cfg.pcm.readPriority) << f;
    }
}

class ConfigFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("esd_cfg_" + std::to_string(::getpid()) + ".cfg");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(ConfigFileTest, LoadOverridesDefaults)
{
    {
        std::ofstream out(path_);
        out << "# a comment\n"
               "\n"
               "pcm.write_latency = 300\n"
               "metadata.efit_kb = 256\n"
               "  crypto.sha1_latency =  500  \n";
    }
    SimConfig cfg;
    loadConfigFile(cfg, path_.string());
    EXPECT_EQ(cfg.pcm.writeLatency, 300u);
    EXPECT_EQ(cfg.metadata.efitCacheBytes, 256u << 10);
    EXPECT_EQ(cfg.crypto.sha1Latency, 500u);
    // Untouched keys keep their Table I defaults.
    EXPECT_EQ(cfg.pcm.readLatency, 75u);
}

TEST_F(ConfigFileTest, UnknownKeyWarnsButContinues)
{
    {
        std::ofstream out(path_);
        out << "bogus.key = 5\npcm.read_latency = 80\n";
    }
    setQuiet(true);
    std::uint64_t warns = warnCount();
    SimConfig cfg;
    loadConfigFile(cfg, path_.string());
    setQuiet(false);
    EXPECT_EQ(warnCount(), warns + 1);
    EXPECT_EQ(cfg.pcm.readLatency, 80u);
}

TEST_F(ConfigFileTest, RenderRoundTrips)
{
    SimConfig cfg;
    cfg.pcm.writeLatency = 222;
    cfg.metadata.referHMax = 77;
    cfg.core.clockGhz = 2.5;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.pcm.writeLatency, 222u);
    EXPECT_EQ(back.metadata.referHMax, 77u);
    EXPECT_DOUBLE_EQ(back.core.clockGhz, 2.5);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, MissingFileIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(loadConfigFile(cfg, "/nonexistent/esd.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ConfigIoDeath, BadIntegerIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.read_latency", "abc"),
                ::testing::ExitedWithCode(1), "not an integer");
}

TEST(ConfigIoDeath, NegativeIntegerIsFatal)
{
    // std::stoull would silently wrap -1 to 2^64-1.
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.read_latency", "-1"),
                ::testing::ExitedWithCode(1), "negative");
}

TEST(ConfigIoDeath, TrailingGarbageIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.read_latency", "75ns"),
                ::testing::ExitedWithCode(1), "trailing garbage");
    EXPECT_EXIT(applyConfigKey(cfg, "core.clock_ghz", "2.0GHz"),
                ::testing::ExitedWithCode(1), "trailing garbage");
}

TEST(ConfigIoDeath, OverflowIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.read_latency",
                               "99999999999999999999999999"),
                ::testing::ExitedWithCode(1), "does not fit");
}

TEST(ConfigIo, RasKeysApply)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "ras.enabled", "true"));
    EXPECT_TRUE(cfg.ras.enabled);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.read_ber", "1e-6"));
    EXPECT_DOUBLE_EQ(cfg.ras.readBer, 1e-6);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.write_ber", "0.5"));
    EXPECT_DOUBLE_EQ(cfg.ras.writeBer, 0.5);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.stuck_at_onset_writes", "100"));
    EXPECT_EQ(cfg.ras.stuckAtOnsetWrites, 100u);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.write_verify_retries", "3"));
    EXPECT_EQ(cfg.ras.writeVerifyRetries, 3u);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.spare_region_lines", "1024"));
    EXPECT_EQ(cfg.ras.spareRegionLines, 1024u);
    EXPECT_TRUE(applyConfigKey(cfg, "ras.dedup_suspend_ues", "5"));
    EXPECT_EQ(cfg.ras.dedupSuspendUes, 5u);
}

TEST(ConfigIo, TelemetryKeysApply)
{
    SimConfig cfg;
    EXPECT_TRUE(
        applyConfigKey(cfg, "telemetry.trace_ring_capacity", "1024"));
    EXPECT_EQ(cfg.telemetry.traceRingCapacity, 1024u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "telemetry.span_sample_every", "16"));
    EXPECT_EQ(cfg.telemetry.spanSampleEvery, 16u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "telemetry.span_buffer_cap", "4096"));
    EXPECT_EQ(cfg.telemetry.spanBufferCap, 4096u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "telemetry.metrics_every_writes", "0"));
    EXPECT_EQ(cfg.telemetry.metricsEveryWrites, 0u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "telemetry.histogram_buckets", "true"));
    EXPECT_TRUE(cfg.telemetry.histogramBuckets);
}

TEST_F(ConfigFileTest, TelemetryRenderRoundTrips)
{
    SimConfig cfg;
    cfg.telemetry.traceRingCapacity = 777;
    cfg.telemetry.spanSampleEvery = 3;
    cfg.telemetry.spanBufferCap = 123456;
    cfg.telemetry.metricsEveryWrites = 5000;
    cfg.telemetry.histogramBuckets = true;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.telemetry.traceRingCapacity, 777u);
    EXPECT_EQ(back.telemetry.spanSampleEvery, 3u);
    EXPECT_EQ(back.telemetry.spanBufferCap, 123456u);
    EXPECT_EQ(back.telemetry.metricsEveryWrites, 5000u);
    EXPECT_TRUE(back.telemetry.histogramBuckets);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, TelemetryTraceRingOutOfRangeIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "telemetry.trace_ring_capacity",
                               "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "telemetry.span_sample_every", "0"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfigIoDeath, RasBerOutOfRangeIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "ras.read_ber", "1.5"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "ras.write_ber", "-0.1"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfigIoDeath, RasRetriesOutOfRangeIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "ras.write_verify_retries", "65"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "ras.patrol_lines_per_sweep", "0"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfigIo, ChannelKeysApply)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "channels.count", "4"));
    EXPECT_EQ(cfg.channels.count, 4u);
    EXPECT_TRUE(applyConfigKey(cfg, "channels.wpq_depth", "16"));
    EXPECT_EQ(cfg.channels.wpqDepth, 16u);
    EXPECT_TRUE(applyConfigKey(cfg, "channels.wpq_coalescing", "true"));
    EXPECT_TRUE(cfg.channels.wpqCoalescing);
    EXPECT_TRUE(applyConfigKey(cfg, "channels.wpq_coalescing", "off"));
    EXPECT_FALSE(cfg.channels.wpqCoalescing);
}

TEST(ConfigIoDeath, ChannelCountOutOfRangeIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "channels.count", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "channels.count", "65"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "channels.wpq_depth", "65537"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "channels.count", "-2"),
                ::testing::ExitedWithCode(1), "negative");
    EXPECT_EXIT(applyConfigKey(cfg, "channels.count", "4x"),
                ::testing::ExitedWithCode(1), "trailing garbage");
    EXPECT_EXIT(applyConfigKey(cfg, "channels.wpq_coalescing", "maybe"),
                ::testing::ExitedWithCode(1), "not a boolean");
}

TEST(ConfigIoDeath, PcmGeometryOutOfRangeIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.channels", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.ranks", "65"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.banks", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.banks", "1025"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.write_queue_depth", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.capacity_gb", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.gap_move_period", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pcm.start_gap_region_lines", "0"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST_F(ConfigFileTest, ChannelRoundTrips)
{
    SimConfig cfg;
    cfg.channels.count = 8;
    cfg.channels.wpqDepth = 32;
    cfg.channels.wpqCoalescing = true;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.channels.count, 8u);
    EXPECT_EQ(back.channels.wpqDepth, 32u);
    EXPECT_TRUE(back.channels.wpqCoalescing);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST_F(ConfigFileTest, RasRoundTrips)
{
    SimConfig cfg;
    cfg.ras.enabled = true;
    cfg.ras.readBer = 1e-7;
    cfg.ras.patrolIntervalWrites = 256;
    cfg.ras.writeVerifyRetries = 2;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_TRUE(back.ras.enabled);
    EXPECT_DOUBLE_EQ(back.ras.readBer, 1e-7);
    EXPECT_EQ(back.ras.patrolIntervalWrites, 256u);
    EXPECT_EQ(back.ras.writeVerifyRetries, 2u);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIo, EccKeysApply)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.ecc.engine, EccEngineKind::Hamming);  // default codec
    EXPECT_TRUE(applyConfigKey(cfg, "ecc.engine", "bch"));
    EXPECT_EQ(cfg.ecc.engine, EccEngineKind::Bch);
    EXPECT_TRUE(applyConfigKey(cfg, "ecc.engine", "rs"));
    EXPECT_EQ(cfg.ecc.engine, EccEngineKind::Rs);
    EXPECT_TRUE(applyConfigKey(cfg, "ecc.engine", "hamming"));
    EXPECT_EQ(cfg.ecc.engine, EccEngineKind::Hamming);
}

TEST_F(ConfigFileTest, EccRoundTrips)
{
    SimConfig cfg;
    cfg.ecc.engine = EccEngineKind::Rs;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.ecc.engine, EccEngineKind::Rs);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, UnknownEccEngineIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "ecc.engine", "banana"),
                ::testing::ExitedWithCode(1), "not an ecc engine");
    EXPECT_EXIT(applyConfigKey(cfg, "ecc.engine", "BCH"),
                ::testing::ExitedWithCode(1),
                "expected hamming, bch, or rs");
    // Case-sensitive and whitespace-strict, like every other enum key.
    EXPECT_EXIT(applyConfigKey(cfg, "ecc.engine", "rs "),
                ::testing::ExitedWithCode(1), "not an ecc engine");
}

TEST(ConfigIo, PersistenceKeysApply)
{
    SimConfig cfg;
    EXPECT_FALSE(cfg.persist.enabled);  // default-off master switch
    EXPECT_TRUE(applyConfigKey(cfg, "persistence.enabled", "true"));
    EXPECT_TRUE(cfg.persist.enabled);
    EXPECT_TRUE(applyConfigKey(cfg, "persistence.domain", "eadr"));
    EXPECT_EQ(cfg.persist.domain, PersistDomain::Eadr);
    EXPECT_TRUE(applyConfigKey(cfg, "persistence.epoch_writes", "32"));
    EXPECT_EQ(cfg.persist.epochWrites, 32u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "persistence.checkpoint_epochs", "16"));
    EXPECT_EQ(cfg.persist.checkpointEpochs, 16u);
    EXPECT_TRUE(applyConfigKey(cfg, "persistence.barrier_ns", "45"));
    EXPECT_EQ(cfg.persist.barrierNs, 45u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "persistence.journal_append_ns", "7"));
    EXPECT_EQ(cfg.persist.journalAppendNs, 7u);
    EXPECT_TRUE(applyConfigKey(cfg,
                               "persistence.metadata_buffer_records",
                               "512"));
    EXPECT_EQ(cfg.persist.metadataBufferRecords, 512u);
    EXPECT_TRUE(applyConfigKey(cfg, "persistence.counter_slack", "4"));
    EXPECT_EQ(cfg.persist.counterSlack, 4u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "persistence.counter_probe_max", "64"));
    EXPECT_EQ(cfg.persist.counterProbeMax, 64u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "persistence.crash_at_write", "1000"));
    EXPECT_EQ(cfg.persist.crashAtWrite, 1000u);
    EXPECT_TRUE(
        applyConfigKey(cfg, "persistence.crash_phase", "mid_journal"));
    EXPECT_EQ(cfg.persist.crashPhase, CrashPhase::MidJournal);
    // Unknown keys in the section are rejected like anywhere else.
    EXPECT_FALSE(applyConfigKey(cfg, "persistence.bogus", "1"));
}

TEST_F(ConfigFileTest, PersistenceRoundTrips)
{
    SimConfig cfg;
    cfg.persist.enabled = true;
    cfg.persist.domain = PersistDomain::Eadr;
    cfg.persist.epochWrites = 128;
    cfg.persist.checkpointEpochs = 8;
    cfg.persist.counterSlack = 3;
    cfg.persist.crashAtWrite = 4242;
    cfg.persist.crashPhase = CrashPhase::PreBarrier;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_TRUE(back.persist.enabled);
    EXPECT_EQ(back.persist.domain, PersistDomain::Eadr);
    EXPECT_EQ(back.persist.epochWrites, 128u);
    EXPECT_EQ(back.persist.checkpointEpochs, 8u);
    EXPECT_EQ(back.persist.counterSlack, 3u);
    EXPECT_EQ(back.persist.crashAtWrite, 4242u);
    EXPECT_EQ(back.persist.crashPhase, CrashPhase::PreBarrier);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, PersistenceDomainUnknownIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "persistence.domain", "nvdimm"),
                ::testing::ExitedWithCode(1),
                "not a persistence domain");
}

TEST(ConfigIoDeath, PersistenceCrashPhaseUnknownIsFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "persistence.crash_phase",
                               "mid_write"),
                ::testing::ExitedWithCode(1), "not a crash phase");
}

TEST(ConfigIoDeath, PersistenceRangesAreFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "persistence.epoch_writes", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        applyConfigKey(cfg, "persistence.checkpoint_epochs", "0"),
        ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg,
                               "persistence.metadata_buffer_records",
                               "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "persistence.counter_probe_max",
                               "100000"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfigIo, PipelineKeysApply)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "pipeline.epoch_records", "512"));
    EXPECT_EQ(cfg.pipeline.epochRecords, 512u);
    EXPECT_TRUE(applyConfigKey(cfg, "pipeline.queue_epochs", "8"));
    EXPECT_EQ(cfg.pipeline.queueEpochs, 8u);
    EXPECT_TRUE(applyConfigKey(cfg, "pipeline.sample_epochs", "16"));
    EXPECT_EQ(cfg.pipeline.sampleEpochs, 16u);
    // 0 = sampling off is inside the valid range.
    EXPECT_TRUE(applyConfigKey(cfg, "pipeline.sample_epochs", "0"));
    EXPECT_EQ(cfg.pipeline.sampleEpochs, 0u);
    EXPECT_FALSE(applyConfigKey(cfg, "pipeline.bogus", "1"));
}

TEST_F(ConfigFileTest, PipelineRoundTrips)
{
    SimConfig cfg;
    cfg.pipeline.epochRecords = 1024;
    cfg.pipeline.queueEpochs = 2;
    cfg.pipeline.sampleEpochs = 4;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.pipeline.epochRecords, 1024u);
    EXPECT_EQ(back.pipeline.queueEpochs, 2u);
    EXPECT_EQ(back.pipeline.sampleEpochs, 4u);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, PipelineRangesAreFatal)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "pipeline.epoch_records", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        applyConfigKey(cfg, "pipeline.epoch_records", "1048577"),
        ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pipeline.queue_epochs", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "pipeline.queue_epochs", "1025"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        applyConfigKey(cfg, "pipeline.sample_epochs", "1048577"),
        ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfigIo, ApplyTraceKeys)
{
    SimConfig cfg;
    EXPECT_TRUE(applyConfigKey(cfg, "trace.format", "binary"));
    EXPECT_EQ(cfg.trace.format, TraceFormat::Binary);
    EXPECT_TRUE(applyConfigKey(cfg, "trace.format", "auto"));
    EXPECT_EQ(cfg.trace.format, TraceFormat::Auto);
    EXPECT_TRUE(applyConfigKey(cfg, "trace.line_payload", "false"));
    EXPECT_FALSE(cfg.trace.linePayload);
    EXPECT_TRUE(applyConfigKey(cfg, "trace.read_ahead", "128"));
    EXPECT_EQ(cfg.trace.readAhead, 128u);
    EXPECT_FALSE(applyConfigKey(cfg, "trace.bogus", "1"));
}

TEST_F(ConfigFileTest, TraceRoundTrips)
{
    SimConfig cfg;
    cfg.trace.format = TraceFormat::Gzip;
    cfg.trace.linePayload = false;
    cfg.trace.readAhead = 512;
    {
        std::ofstream out(path_);
        out << renderConfig(cfg);
    }
    SimConfig back;
    loadConfigFile(back, path_.string());
    EXPECT_EQ(back.trace.format, TraceFormat::Gzip);
    EXPECT_FALSE(back.trace.linePayload);
    EXPECT_EQ(back.trace.readAhead, 512u);
    EXPECT_EQ(renderConfig(back), renderConfig(cfg));
}

TEST(ConfigIoDeath, TraceKeysValidate)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "trace.format", "xml"),
                ::testing::ExitedWithCode(1),
                "not a trace format");
    EXPECT_EXIT(applyConfigKey(cfg, "trace.read_ahead", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(applyConfigKey(cfg, "trace.read_ahead", "1048577"),
                ::testing::ExitedWithCode(1), "out of range");
}

} // namespace
} // namespace esd
