/**
 * @file
 * Statistical calibration tests across all 20 application profiles:
 * each generator must actually produce the characteristics its
 * profile declares (duplicate rate, write mix, zero fraction,
 * burstiness, address locality), since every figure bench rests on
 * them.
 */

#include <gtest/gtest.h>

#include "dedup/analyzer.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

struct Measured
{
    double dupRate = 0;
    double writeFrac = 0;
    double zeroFracOfWrites = 0;
    double smallGapFrac = 0;   ///< icount below mean/2 (burst traffic)
    double seqFrac = 0;        ///< writes continuing the previous line
    std::uint64_t writes = 0;
};

Measured
measure(const AppProfile &p, std::uint64_t records)
{
    SyntheticWorkload w(p, 1);
    DedupAnalyzer an;
    Measured m;
    TraceRecord rec;
    Addr last_write = kInvalidAddr;
    std::uint64_t small_gaps = 0, seq = 0;
    for (std::uint64_t i = 0; i < records; ++i) {
        EXPECT_TRUE(w.next(rec));
        small_gaps += rec.icount < p.icountMean / 2;
        if (rec.op == OpType::Write) {
            an.addWrite(rec.data);
            ++m.writes;
            m.zeroFracOfWrites += rec.data.isZero();
            if (last_write != kInvalidAddr &&
                rec.addr == last_write + kLineSize)
                ++seq;
            last_write = rec.addr;
        }
    }
    m.dupRate = an.duplicateRate();
    m.writeFrac = static_cast<double>(m.writes) / records;
    m.zeroFracOfWrites /= std::max<std::uint64_t>(m.writes, 1);
    m.smallGapFrac = static_cast<double>(small_gaps) / records;
    m.seqFrac = static_cast<double>(seq) / std::max<std::uint64_t>(
                                               m.writes - 1, 1);
    return m;
}

class CalibrationTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CalibrationTest, DupRateMatchesProfile)
{
    const AppProfile &p = findApp(GetParam());
    Measured m = measure(p, 40000);
    EXPECT_NEAR(m.dupRate, p.dupRate, 0.06) << p.name;
}

TEST_P(CalibrationTest, WriteMixMatchesProfile)
{
    const AppProfile &p = findApp(GetParam());
    Measured m = measure(p, 40000);
    EXPECT_NEAR(m.writeFrac, p.writeFrac, 0.03) << p.name;
}

TEST_P(CalibrationTest, BurstTrafficPresent)
{
    const AppProfile &p = findApp(GetParam());
    Measured m = measure(p, 20000);
    // With burstProb 0.25 and mean length ~burstLen, most records sit
    // inside bursts (tiny inter-request gaps).
    EXPECT_GT(m.smallGapFrac, 0.5) << p.name;
    EXPECT_LT(m.smallGapFrac, 0.999) << p.name;
}

TEST_P(CalibrationTest, SequentialLocalityTracksSeqProb)
{
    const AppProfile &p = findApp(GetParam());
    Measured m = measure(p, 40000);
    // Sequential runs restart after random jumps; measured fraction
    // tracks seqProb loosely but must be clearly correlated.
    EXPECT_NEAR(m.seqFrac, p.seqProb, 0.12) << p.name;
}

TEST_P(CalibrationTest, ZeroLinesOnlyWhereProfiled)
{
    const AppProfile &p = findApp(GetParam());
    Measured m = measure(p, 30000);
    double expected_zero = p.dupRate * p.zeroFrac;
    EXPECT_NEAR(m.zeroFracOfWrites, expected_zero, 0.08) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CalibrationTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const AppProfile &p : paperApps())
            names.push_back(p.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace esd
