/**
 * @file
 * Integration tests: full trace-driven runs across schemes, checking
 * the cross-scheme invariants the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig cfg;
    cfg.pcm.channels = 1;
    cfg.pcm.banksPerRank = 8;
    return cfg;
}

RunResult
runApp(const char *app, SchemeKind kind, std::uint64_t records = 20000,
       std::uint64_t warmup = 2000)
{
    SyntheticWorkload trace(findApp(app), 1);
    return runWorkload(fastConfig(), kind, trace, records, warmup);
}

TEST(Simulator, ProcessesRequestedRecords)
{
    RunResult r = runApp("gcc", SchemeKind::Baseline, 5000, 500);
    EXPECT_EQ(r.records, 4500u);
    EXPECT_EQ(r.logicalReads + r.logicalWrites, 4500u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.runtimeNs, 0.0);
}

TEST(Simulator, BaselineWritesEverything)
{
    RunResult r = runApp("gcc", SchemeKind::Baseline);
    EXPECT_EQ(r.dedupHits, 0u);
    EXPECT_EQ(r.nvmDataWrites, r.logicalWrites);
}

TEST(Simulator, DedupSchemesReduceDataWrites)
{
    for (SchemeKind k : {SchemeKind::DedupSha1, SchemeKind::DeWrite,
                         SchemeKind::Esd}) {
        RunResult r = runApp("deepsjeng", k);
        EXPECT_GT(r.writeReduction(), 0.8) << schemeName(k);
        EXPECT_EQ(r.nvmDataWrites + r.dedupHits, r.logicalWrites)
            << schemeName(k);
    }
}

TEST(Simulator, FullDedupRemovesAtLeastAsMuchAsSelective)
{
    // ESD intentionally misses low-refcount duplicates (~18% in the
    // paper); full dedup must dominate on write reduction.
    for (const char *app : {"gcc", "lbm", "x264"}) {
        RunResult sha = runApp(app, SchemeKind::DedupSha1);
        RunResult esd = runApp(app, SchemeKind::Esd);
        EXPECT_GE(sha.writeReduction() + 0.02, esd.writeReduction())
            << app;
    }
}

TEST(Simulator, EsdHasNoFingerprintComputeOrNvmLookupLatency)
{
    RunResult r = runApp("wrf", SchemeKind::Esd);
    EXPECT_DOUBLE_EQ(r.breakdown.fpCompute, 0.0);
    EXPECT_DOUBLE_EQ(r.breakdown.fpNvmLookup, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.hash, 0.0);
}

TEST(Simulator, Sha1DominatedByFingerprintCompute)
{
    // Fig. 17: ~80% of Dedup_SHA1 write latency is hashing.
    RunResult r = runApp("gcc", SchemeKind::DedupSha1);
    EXPECT_GT(r.breakdown.fpCompute / r.breakdown.total(), 0.5);
}

TEST(Simulator, EsdBeatsSha1OnWriteLatency)
{
    for (const char *app : {"gcc", "leela", "bodytrack"}) {
        RunResult sha = runApp(app, SchemeKind::DedupSha1);
        RunResult esd = runApp(app, SchemeKind::Esd);
        EXPECT_LT(esd.writeLatency.mean(), sha.writeLatency.mean())
            << app;
    }
}

TEST(Simulator, EsdBeatsBaselineOnHighDupApps)
{
    for (const char *app : {"deepsjeng", "roms"}) {
        RunResult base = runApp(app, SchemeKind::Baseline);
        RunResult esd = runApp(app, SchemeKind::Esd);
        EXPECT_LT(esd.writeLatency.mean(), base.writeLatency.mean())
            << app;
    }
}

TEST(Simulator, MetadataFootprintOrdering)
{
    // Fig. 19: Dedup_SHA1 > DeWrite > ESD > Baseline(0).
    RunResult base = runApp("gcc", SchemeKind::Baseline);
    RunResult sha = runApp("gcc", SchemeKind::DedupSha1);
    RunResult dw = runApp("gcc", SchemeKind::DeWrite);
    RunResult esd = runApp("gcc", SchemeKind::Esd);
    EXPECT_EQ(base.metadataNvmBytes, 0u);
    EXPECT_GT(sha.metadataNvmBytes, dw.metadataNvmBytes);
    EXPECT_GT(dw.metadataNvmBytes, esd.metadataNvmBytes);
    EXPECT_GT(esd.metadataNvmBytes, 0u);
}

TEST(Simulator, EnergyComponentsConsistent)
{
    RunResult r = runApp("mcf", SchemeKind::DedupSha1);
    EXPECT_GT(r.energy.hash, 0.0);
    EXPECT_GT(r.energy.deviceWrite, 0.0);
    EXPECT_GT(r.energy.deviceRead, 0.0);
    EXPECT_NEAR(r.energy.total(),
                r.energy.deviceRead + r.energy.deviceWrite +
                    r.energy.hash + r.energy.crypto + r.energy.metadata,
                1e-6);
}

TEST(Simulator, LatencySamplesMatchOperationCounts)
{
    RunResult r = runApp("nab", SchemeKind::Esd, 8000, 1000);
    EXPECT_EQ(r.writeLatency.count(), r.logicalWrites);
    EXPECT_EQ(r.readLatency.count(), r.logicalReads);
}

TEST(Simulator, WarmupExcludedFromStats)
{
    SyntheticWorkload t1(findApp("gcc"), 1);
    RunResult with_warm = runWorkload(fastConfig(), SchemeKind::Esd, t1,
                                      10000, 5000);
    EXPECT_EQ(with_warm.records, 5000u);
    EXPECT_EQ(with_warm.logicalReads + with_warm.logicalWrites, 5000u);
}

TEST(Simulator, IpcIsPositiveAndBounded)
{
    for (SchemeKind k : allSchemeKinds()) {
        RunResult r = runApp("fluidanimate", k, 10000, 1000);
        EXPECT_GT(r.ipc, 0.0) << schemeName(k);
        EXPECT_LE(r.ipc, 1.01) << schemeName(k);  // in-order, CPI >= 1
    }
}

TEST(Simulator, EsdFpCacheHitRateReported)
{
    RunResult r = runApp("deepsjeng", SchemeKind::Esd);
    EXPECT_GT(r.fpCacheHitRate, 0.5);
    EXPECT_GT(r.amtCacheHitRate, 0.0);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    RunResult a = runApp("leela", SchemeKind::Esd, 6000, 500);
    RunResult b = runApp("leela", SchemeKind::Esd, 6000, 500);
    EXPECT_EQ(a.dedupHits, b.dedupHits);
    EXPECT_DOUBLE_EQ(a.writeLatency.mean(), b.writeLatency.mean());
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

/** Property sweep: for every app, basic conservation laws hold for
 * every scheme. */
class SimulatorConservationTest
    : public ::testing::TestWithParam<std::tuple<std::string, SchemeKind>>
{
};

TEST_P(SimulatorConservationTest, WritesConserved)
{
    auto [app, kind] = GetParam();
    SyntheticWorkload trace(findApp(app), 3);
    RunResult r = runWorkload(fastConfig(), kind, trace, 6000, 500);
    EXPECT_EQ(r.nvmDataWrites + r.dedupHits, r.logicalWrites);
    // Total device writes include metadata traffic.
    EXPECT_GE(r.nvmWritesTotal, r.nvmDataWrites);
    // No scheme may dedup more than it was asked to write.
    EXPECT_LE(r.dedupHits, r.logicalWrites);
}

INSTANTIATE_TEST_SUITE_P(
    AppsBySchemes, SimulatorConservationTest,
    ::testing::Combine(::testing::Values("gcc", "lbm", "deepsjeng",
                                         "swaptions", "dedup"),
                       ::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               schemeName(std::get<1>(info.param));
    });

} // namespace
} // namespace esd
