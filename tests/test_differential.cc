/**
 * @file
 * Golden-model differential harness for the multi-channel backend.
 *
 * Every scheme replays one deterministic mixed-duplication trace —
 * zero floods, a small duplicate pool, unique fills, and rewrite
 * toggles, the content classes real traces mix (Fig. 3) — against a
 * plain shadow map. Each read, mid-trace and in the final sweep, must
 * return exactly the last value written, under both the legacy
 * single-channel device and four channels with WPQ coalescing on.
 * Coalescing is a pure timing optimisation, so content equivalence
 * across channel counts is precisely what this file pins down.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/simulator.hh"
#include "dedup/mapped_scheme.hh"
#include "exec/pipeline.hh"
#include "exec/sweep_runner.hh"
#include "trace/trace.hh"

namespace esd
{
namespace
{

struct Op
{
    bool write = false;
    Addr addr = 0;
    CacheLine data;
};

/** One address pool line, 128 lines wide. */
Addr
lineAddr(std::uint64_t i)
{
    return (i % 128) * kLineSize;
}

/** The deterministic mixed-duplication trace (no RNG: the sequence is
 * the spec). Writes and reads interleave so staleness shows up
 * mid-trace, not only in the final sweep. */
std::vector<Op>
buildTrace()
{
    std::vector<Op> ops;
    auto write = [&](Addr a, const CacheLine &d) {
        ops.push_back(Op{true, a, d});
    };
    auto read = [&](Addr a) { ops.push_back(Op{false, a, CacheLine{}}); };

    // Phase A — zero flood: the hottest duplicate content of all.
    for (std::uint64_t i = 0; i < 64; ++i)
        write(lineAddr(i), CacheLine{});

    // Phase B — small duplicate pool: four contents shared by many
    // addresses drives refcounts well above 1.
    for (std::uint64_t i = 0; i < 128; ++i) {
        CacheLine d;
        d.setWord(0, 0xD00D + (i % 4));
        d.setWord(5, 42);
        write(lineAddr(64 + i), d);
        if (i % 8 == 0)
            read(lineAddr(64 + i / 2));
    }

    // Phase C — unique fills: no two lines alike, every write
    // allocates.
    for (std::uint64_t i = 0; i < 96; ++i) {
        CacheLine d;
        d.setWord(0, 0x1000 + i);
        d.setWord(7, ~i);
        write(lineAddr(3 * i), d);
        if (i % 6 == 0)
            read(lineAddr(3 * i));
    }

    // Phase D — rewrite toggles: the same addresses alternate between
    // two contents, churning remaps, frees, and (with channels) the
    // per-channel free lists; tight back-to-back re-writes are what
    // WPQ coalescing merges.
    for (int round = 0; round < 6; ++round) {
        for (std::uint64_t i = 0; i < 64; ++i) {
            CacheLine d;
            d.setWord(0, round & 1 ? 0xAAAA : 0x5555);
            d.setWord(2, i % 2);
            write(lineAddr(i), d);
        }
        for (std::uint64_t i = 0; i < 64; i += 7)
            read(lineAddr(i));
    }

    // Phase E — partial overwrite of the dup pool back to zero, so
    // dead pool lines must drop their fingerprints.
    for (std::uint64_t i = 0; i < 128; i += 2)
        write(lineAddr(64 + i), CacheLine{});

    return ops;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, unsigned>>
{
};

TEST_P(DifferentialTest, EveryReadReturnsLastWrite)
{
    auto [kind, channels] = GetParam();

    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.channels.count = channels;
    c.channels.wpqCoalescing = channels > 1;  // exercise both paths
    // Tiny metadata caches maximise eviction/staleness pressure (the
    // AMT still needs >= `channels` sets to shard).
    c.metadata.efitCacheBytes = 64 * 16;
    c.metadata.amtCacheBytes = 64 * kLineSize;
    c.metadata.referHMax = 7;
    c.metadata.decayPeriod = 32;

    PcmDevice dev(c.pcm, c.channels);
    NvmStore store(c.pcm.capacityBytes);
    auto scheme = makeScheme(kind, c, dev, store);

    std::unordered_map<Addr, CacheLine> shadow;
    Tick now = 0;
    std::uint64_t op_no = 0;

    for (const Op &op : buildTrace()) {
        now += 97;  // tight enough that WPQ entries overlap re-writes
        if (op.write) {
            scheme->write(op.addr, op.data, now);
            shadow[op.addr] = op.data;
        } else {
            CacheLine got;
            scheme->read(op.addr, got, now);
            auto it = shadow.find(op.addr);
            CacheLine want = it == shadow.end() ? CacheLine{} : it->second;
            ASSERT_EQ(got, want)
                << scheme->name() << " ch=" << channels << " diverges at op "
                << op_no << " addr " << op.addr;
        }
        ++op_no;
    }

    // Final sweep: the scheme must agree with the shadow map on every
    // address ever written.
    for (const auto &[addr, want] : shadow) {
        CacheLine got;
        now += 97;
        scheme->read(addr, got, now);
        ASSERT_EQ(got, want)
            << scheme->name() << " ch=" << channels << " addr " << addr;
    }

    // Device-level write conservation, coalesced or not.
    const NvmStats &ds = dev.stats();
    EXPECT_EQ(ds.writesOffered.value(),
              ds.writes.value() + ds.writesCoalesced.value());
    if (!dev.coalescingEnabled())
        EXPECT_EQ(ds.writesCoalesced.value(), 0u);

    // Scheme-level accounting closes as well.
    const SchemeStats &ss = scheme->stats();
    EXPECT_EQ(ss.nvmDataWrites.value() + ss.dedupHits.value(),
              ss.logicalWrites.value());

    // Mapped schemes: refcounts over live lines equal the AMT mappings.
    if (auto *m = dynamic_cast<const MappedDedupScheme *>(scheme.get())) {
        std::uint64_t refs = 0;
        for (const auto &[phys, n] : m->lineStore().refTable())
            refs += n;
        EXPECT_EQ(refs, m->amt().mappingCount());
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByChannels, DifferentialTest,
    ::testing::Combine(::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(1u, 4u)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_ch" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sharded-pipeline differential harness: the same golden trace through
// exec::ShardedPipeline at workers {1, 2, 4}, for every scheme and
// channel count. Three independent checks per grid point: the report
// bytes never move with the worker count, every shard still agrees
// with the shadow map on the content it owns, and per-shard refcount
// conservation closes.

/** The golden Op trace as a replayable TraceSource. */
VectorTrace
buildVectorTrace()
{
    VectorTrace trace;
    for (const Op &op : buildTrace()) {
        TraceRecord rec;
        rec.op = op.write ? OpType::Write : OpType::Read;
        rec.addr = op.addr;
        rec.data = op.data;
        trace.push(rec);
    }
    return trace;
}

SimConfig
differentialPipelineConfig(unsigned channels)
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.channels.count = channels;
    c.channels.wpqCoalescing = channels > 1;
    // Scaled with the shard count so per-shard eviction pressure stays
    // at the serial harness's level (the fp/EFIT caches need >=
    // `channels` sets to shard at all).
    c.metadata.efitCacheBytes = 64 * 16 * channels;
    c.metadata.amtCacheBytes = 64 * kLineSize;
    c.metadata.referHMax = 7;
    c.metadata.decayPeriod = 32;
    // Many small epochs: the golden trace is short, so a large epoch
    // would degenerate to a single barrier and test nothing.
    c.pipeline.epochRecords = 64;
    return c;
}

class PipelineDifferentialTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, unsigned>>
{
};

TEST_P(PipelineDifferentialTest, WorkerCountsAgreeWithShadow)
{
    auto [kind, channels] = GetParam();
    SimConfig c = differentialPipelineConfig(channels);

    // The shadow map is worker-independent by construction: replay the
    // Op list once.
    std::unordered_map<Addr, CacheLine> shadow;
    for (const Op &op : buildTrace())
        if (op.write)
            shadow[op.addr] = op.data;

    std::string base_report;
    for (unsigned workers : {1u, 2u, 4u}) {
        VectorTrace trace = buildVectorTrace();
        exec::ShardedPipeline pipe(c, kind, workers);
        pipe.run(trace, trace.size());

        std::ostringstream os;
        pipe.writeReport(os);
        if (workers == 1) {
            base_report = os.str();
        } else {
            ASSERT_EQ(base_report, os.str())
                << schemeName(kind) << " ch=" << channels
                << " workers=" << workers << " diverges at "
                << exec::firstJsonDivergence(base_report, os.str());
        }

        // Every shard must agree with the shadow map on the addresses
        // it owns — demux by the same channelOf(line) rule.
        Tick now = 1'000'000'000;
        for (const auto &[addr, want] : shadow) {
            unsigned s = static_cast<unsigned>(lineIndex(addr) %
                                               pipe.shardCount());
            CacheLine got;
            now += 97;
            pipe.shard(s).scheme().read(addr, got, now);
            ASSERT_EQ(got, want)
                << schemeName(kind) << " ch=" << channels << " workers="
                << workers << " shard=" << s << " addr " << addr;
        }

        for (unsigned s = 0; s < pipe.shardCount(); ++s) {
            Simulator &sim = pipe.shard(s);

            // Device-level write conservation per shard.
            const NvmStats &ds = sim.device().stats();
            EXPECT_EQ(ds.writesOffered.value(),
                      ds.writes.value() + ds.writesCoalesced.value());

            // Refcounts over live lines equal the AMT mappings, shard
            // by shard.
            if (auto *m = dynamic_cast<const MappedDedupScheme *>(
                    &sim.scheme())) {
                std::uint64_t refs = 0;
                for (const auto &[phys, n] : m->lineStore().refTable())
                    refs += n;
                EXPECT_EQ(refs, m->amt().mappingCount())
                    << schemeName(kind) << " shard " << s;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByChannels, PipelineDifferentialTest,
    ::testing::Combine(::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::DedupSha1,
                                         SchemeKind::DeWrite,
                                         SchemeKind::Esd,
                                         SchemeKind::EsdFull,
                                         SchemeKind::EsdPlus),
                       ::testing::Values(1u, 4u, 8u)),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n + "_ch" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace esd
