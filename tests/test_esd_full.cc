/**
 * @file
 * Tests for the ESD_Full ablation scheme (ECC fingerprints + full
 * NVMM-resident index) and its relationship to ESD proper.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/simulator.hh"
#include "dedup/esd_full.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 8;
    c.pcm.rowBufferLines = 0;
    return c;
}

TEST(EsdFull, FactoryBuildsIt)
{
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    auto s = makeScheme(SchemeKind::EsdFull, c, dev, store);
    EXPECT_EQ(s->name(), "ESD_Full");
    EXPECT_EQ(parseSchemeKind("esd_full"), SchemeKind::EsdFull);
}

TEST(EsdFull, ReadYourWrites)
{
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    EsdFullScheme scheme(c, dev, store);
    Pcg32 rng(1);
    std::unordered_map<Addr, CacheLine> expect;
    Tick now = 0;
    for (int i = 0; i < 300; ++i) {
        Addr addr = static_cast<Addr>(rng.below(48)) * kLineSize;
        CacheLine data;
        if (rng.chance(0.5))
            data.setWord(0, rng.below(6));
        else
            rng.fillLine(data);
        scheme.write(addr, data, now);
        now += 200;
        expect[addr] = data;
    }
    for (const auto &[addr, want] : expect) {
        CacheLine got;
        scheme.read(addr, got, now);
        now += 200;
        EXPECT_EQ(got, want);
    }
}

TEST(EsdFull, NoHashButDoesNvmLookups)
{
    // Keeps ESD's free fingerprint but pays the full-dedup lookups.
    SimConfig c = cfg();
    PcmDevice dev(c.pcm);
    NvmStore store(c.pcm.capacityBytes);
    EsdFullScheme scheme(c, dev, store);
    Pcg32 rng(2);
    Tick now = 0;
    for (int i = 0; i < 200; ++i) {
        CacheLine data;
        rng.fillLine(data);
        scheme.write(static_cast<Addr>(i) * kLineSize, data, now);
        now += 200;
    }
    EXPECT_DOUBLE_EQ(scheme.stats().hashEnergy, 0.0);
    EXPECT_GT(scheme.stats().fpNvmLookups.value(), 0u);
    EXPECT_GT(scheme.stats().fpNvmStores.value(), 0u);
    EXPECT_GT(scheme.metadataNvmBytes(), 0u);
}

TEST(EsdFull, DedupsAcrossEfitCapacityWhereEsdCannot)
{
    // Force heavy fingerprint pressure with a tiny on-chip cache: the
    // full index still finds old duplicates; selective ESD misses
    // them once evicted.
    SimConfig c = cfg();
    c.metadata.efitCacheBytes = 64 * 16;  // 64 fingerprints on chip
    c.metadata.decayPeriod = 0;

    auto run = [&](SchemeKind kind) {
        SyntheticWorkload trace(findApp("lbm"), 5);
        return runWorkload(c, kind, trace, 30000, 3000);
    };
    RunResult esd = run(SchemeKind::Esd);
    RunResult full = run(SchemeKind::EsdFull);
    EXPECT_GT(full.writeReduction(), esd.writeReduction());
}

TEST(EsdFull, MatchesSha1ReductionOnSameTrace)
{
    // Both are full dedup; the fingerprint differs but byte-compare
    // (EsdFull) and exact-hash (SHA1) find the same duplicates.
    SimConfig c = cfg();
    auto run = [&](SchemeKind kind) {
        SyntheticWorkload trace(findApp("gcc"), 7);
        return runWorkload(c, kind, trace, 20000, 2000);
    };
    RunResult sha = run(SchemeKind::DedupSha1);
    RunResult full = run(SchemeKind::EsdFull);
    EXPECT_NEAR(sha.writeReduction(), full.writeReduction(), 0.01);
}

} // namespace
} // namespace esd
