/**
 * @file
 * Tests for the multi-core simulator.
 */

#include <gtest/gtest.h>

#include "core/multicore.hh"
#include "trace/workloads.hh"

namespace esd
{
namespace
{

SimConfig
cfg()
{
    SimConfig c;
    c.pcm.channels = 1;
    c.pcm.banksPerRank = 4;
    return c;
}

std::vector<std::unique_ptr<TraceSource>>
makeTraces(unsigned cores, const char *app, std::uint64_t seed_base = 10)
{
    std::vector<std::unique_ptr<TraceSource>> t;
    for (unsigned i = 0; i < cores; ++i)
        t.push_back(std::make_unique<SyntheticWorkload>(findApp(app),
                                                        seed_base + i));
    return t;
}

TEST(MultiCore, EveryCoreProcessesItsRecords)
{
    MultiCoreSimulator sim(cfg(), SchemeKind::Esd);
    MultiCoreRunResult r = sim.run(makeTraces(4, "gcc"), 3000, 500);
    ASSERT_EQ(r.cores.size(), 4u);
    for (const CoreResult &c : r.cores) {
        EXPECT_EQ(c.records, 2500u);
        EXPECT_GT(c.ipc, 0.0);
    }
    EXPECT_EQ(r.records, 4u * 2500);
    // Shared stats reset when the LAST core leaves warm-up, so they
    // cover at most the measured records and can trail by up to the
    // other cores' warm-up progress.
    std::uint64_t counted = r.logicalReads + r.logicalWrites;
    EXPECT_LE(counted, r.records);
    EXPECT_GE(counted, r.records - 3u * 500);
}

TEST(MultiCore, SingleCoreMatchesSimulatorShape)
{
    // One core through the multi-core loop must agree with the
    // single-core Simulator on the same trace and config.
    SimConfig c = cfg();
    SyntheticWorkload t1(findApp("wrf"), 3);
    RunResult single = runWorkload(c, SchemeKind::Esd, t1, 5000, 1000);

    MultiCoreSimulator sim(c, SchemeKind::Esd);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(std::make_unique<SyntheticWorkload>(findApp("wrf"),
                                                         3));
    MultiCoreRunResult multi = sim.run(std::move(traces), 5000, 1000);

    EXPECT_EQ(multi.dedupHits, single.dedupHits);
    EXPECT_DOUBLE_EQ(multi.writeLatency.mean(),
                     single.writeLatency.mean());
    EXPECT_NEAR(multi.systemIpc, single.ipc, 1e-9);
}

TEST(MultiCore, MoreCoresMoreContention)
{
    // Same per-core workload: 8 cores sharing 4 banks must see higher
    // mean latencies than 1 core does.
    MultiCoreSimulator one(cfg(), SchemeKind::Baseline);
    MultiCoreRunResult r1 = one.run(makeTraces(1, "mcf"), 4000, 500);

    MultiCoreSimulator eight(cfg(), SchemeKind::Baseline);
    MultiCoreRunResult r8 = eight.run(makeTraces(8, "mcf"), 4000, 500);

    EXPECT_GT(r8.writeLatency.mean(), r1.writeLatency.mean());
    EXPECT_GT(r8.readLatency.mean(), r1.readLatency.mean());
    // Aggregate throughput still grows with cores.
    EXPECT_GT(r8.systemIpc, r1.systemIpc);
}

TEST(MultiCore, CrossCoreDeduplication)
{
    // Different cores writing identical content dedup against each
    // other through the shared EFIT.
    MultiCoreSimulator sim(cfg(), SchemeKind::Esd);
    // Same app, same seed => identical content streams on all cores.
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (int i = 0; i < 4; ++i)
        traces.push_back(
            std::make_unique<SyntheticWorkload>(findApp("deepsjeng"), 1));
    MultiCoreRunResult r = sim.run(std::move(traces), 2000, 0);
    EXPECT_GT(r.writeReduction(), 0.99);
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    MultiCoreSimulator a(cfg(), SchemeKind::DeWrite);
    MultiCoreRunResult ra = a.run(makeTraces(4, "x264"), 3000, 300);
    MultiCoreSimulator b(cfg(), SchemeKind::DeWrite);
    MultiCoreRunResult rb = b.run(makeTraces(4, "x264"), 3000, 300);
    EXPECT_EQ(ra.dedupHits, rb.dedupHits);
    EXPECT_DOUBLE_EQ(ra.wallNs, rb.wallNs);
    EXPECT_DOUBLE_EQ(ra.systemIpc, rb.systemIpc);
}

} // namespace
} // namespace esd
