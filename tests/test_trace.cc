/**
 * @file
 * Tests for the trace substrate: Zipf sampling, synthetic workload
 * calibration against the paper's characterisation, and trace IO.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "dedup/analyzer.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"
#include "trace/zipf.hh"

namespace esd
{
namespace
{

// ----------------------------------------------------------------- zipf

TEST(Zipf, UniformWhenSkewZero)
{
    ZipfSampler z(10, 0.0);
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_NEAR(z.probability(k), 0.1, 1e-12);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfSampler z(1000, 1.1);
    double sum = 0;
    for (std::uint64_t k = 0; k < 1000; ++k)
        sum += z.probability(k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SkewConcentratesOnLowRanks)
{
    ZipfSampler z(10000, 1.2);
    EXPECT_GT(z.probability(0), 100 * z.probability(999));
    Pcg32 rng(1);
    std::uint64_t low = 0;
    for (int i = 0; i < 10000; ++i)
        low += (z.sample(rng) < 100);
    // With s=1.2 the top-100 ranks should receive a large share.
    EXPECT_GT(low, 5000u);
}

TEST(Zipf, SampleWithinPopulation)
{
    ZipfSampler z(37, 0.8);
    Pcg32 rng(2);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.sample(rng), 37u);
}

// ------------------------------------------------------------ profiles

TEST(Workloads, TwentyPaperApps)
{
    EXPECT_EQ(paperApps().size(), 20u);
    unsigned spec = 0, parsec = 0;
    for (const AppProfile &p : paperApps()) {
        if (p.suite == AppProfile::Suite::SpecCpu2017)
            ++spec;
        else
            ++parsec;
    }
    EXPECT_EQ(spec, 12u);
    EXPECT_EQ(parsec, 8u);
}

TEST(Workloads, FindAppByName)
{
    EXPECT_EQ(findApp("lbm").name, "lbm");
    EXPECT_EQ(findApp("deepsjeng").dupRate, 0.999);
}

TEST(Workloads, AverageDupRateNearPaper)
{
    // Fig. 1: average 62.9%, range 33.1%..99.9%.
    double sum = 0, lo = 1, hi = 0;
    for (const AppProfile &p : paperApps()) {
        sum += p.dupRate;
        lo = std::min(lo, p.dupRate);
        hi = std::max(hi, p.dupRate);
    }
    EXPECT_NEAR(sum / paperApps().size(), 0.629, 0.05);
    EXPECT_NEAR(lo, 0.331, 1e-9);
    EXPECT_NEAR(hi, 0.999, 1e-9);
}

// ----------------------------------------------------------- generator

TEST(SyntheticWorkload, Deterministic)
{
    SyntheticWorkload a(findApp("gcc"), 7);
    SyntheticWorkload b(findApp("gcc"), 7);
    TraceRecord ra, rb;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.op, rb.op);
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.icount, rb.icount);
        EXPECT_EQ(ra.data, rb.data);
    }
}

TEST(SyntheticWorkload, ResetReplays)
{
    SyntheticWorkload w(findApp("mcf"), 3);
    TraceRecord first;
    ASSERT_TRUE(w.next(first));
    for (int i = 0; i < 100; ++i)
        w.next(first);
    w.reset();
    TraceRecord again;
    ASSERT_TRUE(w.next(again));
    SyntheticWorkload fresh(findApp("mcf"), 3);
    TraceRecord expect;
    ASSERT_TRUE(fresh.next(expect));
    EXPECT_EQ(again.addr, expect.addr);
    EXPECT_EQ(again.data, expect.data);
}

TEST(SyntheticWorkload, MeasuredDupRateTracksProfile)
{
    for (const char *name : {"gcc", "leela", "deepsjeng", "lbm"}) {
        SyntheticWorkload w(findApp(name), 1);
        DedupAnalyzer an;
        TraceRecord rec;
        std::uint64_t writes = 0;
        while (writes < 30000) {
            ASSERT_TRUE(w.next(rec));
            if (rec.op != OpType::Write)
                continue;
            an.addWrite(rec.data);
            ++writes;
        }
        EXPECT_NEAR(an.duplicateRate(), w.profile().dupRate, 0.06)
            << name;
    }
}

TEST(SyntheticWorkload, ZeroLinesDominateDeepsjeng)
{
    SyntheticWorkload w(findApp("deepsjeng"), 1);
    TraceRecord rec;
    std::uint64_t writes = 0, zeros = 0;
    while (writes < 10000) {
        ASSERT_TRUE(w.next(rec));
        if (rec.op != OpType::Write)
            continue;
        ++writes;
        zeros += rec.data.isZero();
    }
    EXPECT_GT(static_cast<double>(zeros) / writes, 0.7);
}

TEST(SyntheticWorkload, ContentLocalityIsSkewed)
{
    // Fig. 3 shape: few unique lines cover a large write volume.
    SyntheticWorkload w(findApp("dedup"), 1);
    DedupAnalyzer an;
    TraceRecord rec;
    std::uint64_t writes = 0;
    while (writes < 60000) {
        ASSERT_TRUE(w.next(rec));
        if (rec.op != OpType::Write)
            continue;
        an.addWrite(rec.data);
        ++writes;
    }
    RefCountBuckets b = an.buckets();
    // The >100-ref buckets hold a tiny fraction of unique lines but a
    // disproportionate share of total writes.
    double line_frac =
        static_cast<double>(b.lines(3) + b.lines(4)) / b.totalLines();
    double vol_frac =
        static_cast<double>(b.volume(3) + b.volume(4)) / b.totalVolume();
    EXPECT_LT(line_frac, 0.02);
    EXPECT_GT(vol_frac, 0.15);
}

TEST(SyntheticWorkload, ReadsTargetWrittenAddresses)
{
    SyntheticWorkload w(findApp("x264"), 5);
    std::unordered_set<Addr> written;
    TraceRecord rec;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w.next(rec));
        if (rec.op == OpType::Write)
            written.insert(rec.addr);
        else
            EXPECT_TRUE(written.count(rec.addr)) << "read before write";
    }
}

TEST(SyntheticWorkload, WriteFractionTracksProfile)
{
    SyntheticWorkload w(findApp("namd"), 2);
    TraceRecord rec;
    std::uint64_t writes = 0, total = 40000;
    for (std::uint64_t i = 0; i < total; ++i) {
        ASSERT_TRUE(w.next(rec));
        writes += (rec.op == OpType::Write);
    }
    EXPECT_NEAR(static_cast<double>(writes) / total,
                w.profile().writeFrac, 0.03);
}

// ------------------------------------------------------------ trace IO

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("esd_trace_test_" + std::to_string(::getpid()));
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(TraceIoTest, TextRoundTrip)
{
    SyntheticWorkload w(findApp("wrf"), 9);
    std::vector<TraceRecord> recs(200);
    {
        TextTraceWriter writer(path_.string());
        for (auto &r : recs) {
            ASSERT_TRUE(w.next(r));
            writer.write(r);
        }
        EXPECT_EQ(writer.recordsWritten(), recs.size());
    }
    TextTraceReader reader(path_.string());
    TraceRecord got;
    for (const auto &want : recs) {
        ASSERT_TRUE(reader.next(got));
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.icount, want.icount);
        if (want.op == OpType::Write)
            EXPECT_EQ(got.data, want.data);
    }
    EXPECT_FALSE(reader.next(got));
}

TEST_F(TraceIoTest, BinaryRoundTrip)
{
    SyntheticWorkload w(findApp("facesim"), 10);
    std::vector<TraceRecord> recs(500);
    {
        BinaryTraceWriter writer(path_.string());
        for (auto &r : recs) {
            ASSERT_TRUE(w.next(r));
            writer.write(r);
        }
    }
    BinaryTraceReader reader(path_.string());
    TraceRecord got;
    for (const auto &want : recs) {
        ASSERT_TRUE(reader.next(got));
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.icount, want.icount);
        if (want.op == OpType::Write)
            EXPECT_EQ(got.data, want.data);
    }
    EXPECT_FALSE(reader.next(got));
}

TEST_F(TraceIoTest, ReaderResetRestarts)
{
    {
        BinaryTraceWriter writer(path_.string());
        TraceRecord r;
        r.op = OpType::Write;
        r.addr = 0x1240;
        r.icount = 5;
        r.data.setWord(0, 77);
        writer.write(r);
    }
    BinaryTraceReader reader(path_.string());
    TraceRecord got;
    ASSERT_TRUE(reader.next(got));
    EXPECT_FALSE(reader.next(got));
    reader.reset();
    ASSERT_TRUE(reader.next(got));
    EXPECT_EQ(got.addr, 0x1240u);
    EXPECT_EQ(got.data.word(0), 77u);
}

TEST_F(TraceIoTest, TextBadHexAddressIsFatal)
{
    {
        std::ofstream out(path_);
        out << "W zzzz " << std::string(kLineSize * 2, '0') << " 10\n";
    }
    TextTraceReader reader(path_.string());
    TraceRecord rec;
    EXPECT_EXIT(reader.next(rec), ::testing::ExitedWithCode(1),
                "bad hex address 'zzzz'");
}

TEST_F(TraceIoTest, TextTrailingGarbageAddressIsFatal)
{
    {
        std::ofstream out(path_);
        out << "R 12g4 10\n";
    }
    TextTraceReader reader(path_.string());
    TraceRecord rec;
    EXPECT_EXIT(reader.next(rec), ::testing::ExitedWithCode(1),
                "bad hex address");
}

TEST_F(TraceIoTest, TextBadOpIsFatal)
{
    {
        std::ofstream out(path_);
        out << "X 40 10\n";
    }
    TextTraceReader reader(path_.string());
    TraceRecord rec;
    EXPECT_EXIT(reader.next(rec), ::testing::ExitedWithCode(1),
                "bad op 'X'");
}

TEST_F(TraceIoTest, BinaryBadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "NOPE";
    }
    EXPECT_EXIT(BinaryTraceReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "not an ESD binary trace");
}

TEST_F(TraceIoTest, BinaryTruncatedRecordIsFatal)
{
    {
        BinaryTraceWriter writer(path_.string());
        TraceRecord r;
        r.op = OpType::Read;
        r.addr = 0x40;
        writer.write(r);
    }
    // Chop the last record short.
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) - 2);
    BinaryTraceReader reader(path_.string());
    TraceRecord got;
    EXPECT_EXIT(reader.next(got), ::testing::ExitedWithCode(1),
                "truncated record");
}

TEST_F(TraceIoTest, BinaryTruncatedPayloadIsFatal)
{
    {
        BinaryTraceWriter writer(path_.string());
        TraceRecord r;
        r.op = OpType::Write;
        r.addr = 0x80;
        r.data.setWord(0, 42);
        writer.write(r);
    }
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) - 8);
    BinaryTraceReader reader(path_.string());
    TraceRecord got;
    EXPECT_EXIT(reader.next(got), ::testing::ExitedWithCode(1),
                "truncated write payload");
}

TEST_F(TraceIoTest, BinaryBadOpByteIsFatal)
{
    {
        BinaryTraceWriter writer(path_.string());
        TraceRecord r;
        r.op = OpType::Read;
        r.addr = 0x40;
        writer.write(r);
    }
    // Corrupt the op byte (first byte after the 4-byte magic).
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(4);
        char bad = 7;
        f.write(&bad, 1);
    }
    BinaryTraceReader reader(path_.string());
    TraceRecord got;
    EXPECT_EXIT(reader.next(got), ::testing::ExitedWithCode(1),
                "bad op byte 7");
}

TEST(VectorTrace, PushAndReplay)
{
    VectorTrace t;
    TraceRecord r;
    r.addr = 640;
    t.push(r);
    r.addr = 1280;
    t.push(r);
    TraceRecord got;
    ASSERT_TRUE(t.next(got));
    EXPECT_EQ(got.addr, 640u);
    ASSERT_TRUE(t.next(got));
    EXPECT_EQ(got.addr, 1280u);
    EXPECT_FALSE(t.next(got));
    t.reset();
    ASSERT_TRUE(t.next(got));
    EXPECT_EQ(got.addr, 640u);
}

} // namespace
} // namespace esd
